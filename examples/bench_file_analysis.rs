//! Work from an ISCAS'85 `.bench` file: parse, verify logic, time, and
//! enumerate the K most critical paths (the paper's ref. [11] front end).
//!
//! ```sh
//! cargo run --release --example bench_file_analysis
//! ```

use pops::netlist::bench_format::{parse_bench, write_bench};
use pops::prelude::*;
use pops::sta::kpaths::path_weight_ps;

/// The classic c17 benchmark, inline (public-domain ISCAS'85 content).
const C17: &str = "\
# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = Library::cmos025();
    let circuit = parse_bench("c17", C17)?;
    println!(
        "parsed c17: {} gates, depth {}",
        circuit.gate_count(),
        circuit.depth()?
    );

    // Functional sanity: evaluate one vector.
    let values = [
        ("1", true),
        ("2", false),
        ("3", true),
        ("6", false),
        ("7", true),
    ]
    .into_iter()
    .collect();
    let out = circuit.evaluate(&values)?;
    println!("f(1,0,1,0,1) -> 22={} 23={}", out["22"], out["23"]);

    // Timing and path enumeration.
    let sizing = Sizing::minimum(&circuit, &lib);
    let report = analyze(&circuit, &lib, &sizing)?;
    println!("critical delay: {:.1} ps", report.critical_delay_ps());
    let paths = k_most_critical_paths(&circuit, &report, 4);
    for (i, p) in paths.iter().enumerate() {
        println!(
            "  path #{i}: {} gates, frozen weight {:.1} ps",
            p.gates.len(),
            path_weight_ps(&report, p)
        );
    }

    // Optimize the worst path under a hard constraint.
    let extracted = extract_timed_path(
        &circuit,
        &lib,
        &sizing,
        &paths[0],
        &ExtractOptions::default(),
    );
    let bounds = delay_bounds(&lib, &extracted.timed);
    let outcome = optimize(
        &lib,
        &extracted.timed,
        1.15 * bounds.tmin_ps,
        &ProtocolOptions::default(),
    )?;
    println!(
        "optimized: {:?} -> {:.1} ps at {:.1} um",
        outcome.technique, outcome.delay_ps, outcome.area_um
    );

    // Round-trip the netlist to text and back.
    let text = write_bench(&circuit);
    let round = parse_bench("c17", &text)?;
    assert_eq!(round.gate_count(), circuit.gate_count());
    println!("round-tripped .bench: {} bytes", text.len());
    Ok(())
}
