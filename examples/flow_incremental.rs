//! Circuit-level flow on top of the incremental timing engine: optimize
//! whole suite circuits under a delay constraint, then rank the best
//! follow-up upsizing moves with the dirty-cone sensitivity sweep.
//!
//! ```sh
//! cargo run --release --example flow_incremental
//! ```

use pops::flow::{optimize_circuit, FlowOptions};
use pops::gradient::best_upsize_candidate;
use pops::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = Library::cmos025();
    println!(
        "{:<8} {:>6} {:>10} {:>10} {:>7} {:>7} {:>7} {:>12}",
        "circuit", "gates", "T0 (ns)", "T (ns)", "rounds", "paths", "edits", "area (fF)"
    );
    for name in ["fpd", "c432", "c880", "c1908"] {
        let c = suite::circuit(name).expect("suite circuit");
        let s0 = Sizing::minimum(&c, &lib);
        let t0 = analyze(&c, &lib, &s0)?.critical_delay_ps();
        // A hard constraint so the structural write-back engages where
        // sizing alone stalls (buffers + De Morgan rewrites land in
        // `r.circuit`, which may have grown past the input netlist).
        let r = optimize_circuit(&c, &lib, 0.5 * t0, &FlowOptions::default())?;
        println!(
            "{:<8} {:>6} {:>10.2} {:>10.2} {:>7} {:>7} {:>7} {:>12.1}",
            name,
            r.circuit.gate_count(),
            t0 / 1000.0,
            r.final_delay_ps / 1000.0,
            r.rounds,
            r.paths_optimized,
            r.edits_applied,
            r.total_cin_ff,
        );
    }

    // Sensitivity sweep through the incremental engine: the best single
    // upsizing move on an untouched c880.
    let c = suite::circuit("c880").expect("suite circuit");
    let mut graph = TimingGraph::new(&c, &lib, &Sizing::minimum(&c, &lib))?;
    if let Some((g, s)) = best_upsize_candidate(&mut graph, 0.1) {
        println!(
            "\nc880 best upsizing move: gate {g} (dT/dC = {s:.2} ps/fF), \
             probed via {} dirty-cone re-evals",
            graph.stats().gates_reevaluated
        );
    }
    Ok(())
}
