//! Circuit-level flow on top of the incremental timing engine: optimize
//! whole suite circuits under a delay constraint, then rank the best
//! follow-up upsizing moves with the dirty-cone sensitivity sweep.
//!
//! ```sh
//! cargo run --release --example flow_incremental
//! ```

use pops::flow::{optimize_circuit, FlowOptions};
use pops::gradient::{best_upsize_candidate, SensitivitySweep};
use pops::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = Library::cmos025();
    println!(
        "{:<8} {:>6} {:>10} {:>10} {:>7} {:>7} {:>7} {:>12}",
        "circuit", "gates", "T0 (ns)", "T (ns)", "rounds", "paths", "edits", "area (fF)"
    );
    for name in ["fpd", "c432", "c880", "c1908"] {
        let c = suite::circuit(name).expect("suite circuit");
        let s0 = Sizing::minimum(&c, &lib);
        let t0 = analyze(&c, &lib, &s0)?.critical_delay_ps();
        // A hard constraint so the structural write-back engages where
        // sizing alone stalls (buffers + De Morgan rewrites land in
        // `r.circuit`, which may have grown past the input netlist).
        let r = optimize_circuit(&c, &lib, 0.5 * t0, &FlowOptions::default())?;
        println!(
            "{:<8} {:>6} {:>10.2} {:>10.2} {:>7} {:>7} {:>7} {:>12.1}",
            name,
            r.circuit.gate_count(),
            t0 / 1000.0,
            r.final_delay_ps / 1000.0,
            r.rounds,
            r.paths_optimized,
            r.edits_applied,
            r.total_cin_ff,
        );
    }

    // Sensitivity sweep through the incremental engine: the best single
    // upsizing move on an untouched c880.
    let c = suite::circuit("c880").expect("suite circuit");
    let mut graph = TimingGraph::new(&c, &lib, &Sizing::minimum(&c, &lib))?;
    if let Some((g, s)) = best_upsize_candidate(&mut graph, 0.1) {
        println!(
            "\nc880 best upsizing move: gate {g} (dT/dC = {s:.2} ps/fF), \
             probed via {} dirty-cone re-evals",
            graph.stats().gates_reevaluated
        );
    }

    // A TILOS-style mini-loop: one reused slack-driven sweep per round
    // (the candidate list and result buffer are allocated once), apply
    // the best move, repeat. Every probe's slack read is one merged
    // lazy backward flush + an O(1) tournament-root read.
    graph.set_constraint(0.9 * graph.critical_delay_ps());
    let mut sweep = SensitivitySweep::new();
    println!("\nc880 slack-driven rounds (tc = 0.9 T0):");
    for round in 1..=3 {
        let grad = sweep.worst_slack(&mut graph, 0.1);
        let Some((idx, &gain)) = grad
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s > 0.0)
            .max_by(|a, b| a.1.total_cmp(b.1))
        else {
            break;
        };
        let g = graph.circuit().gate_ids().nth(idx).expect("dense ids");
        let cin = graph.sizing().cin_ff(g);
        graph.resize_gate(g, cin * 1.2);
        println!(
            "  round {round}: upsize {g} (dWS/dC = {gain:+.2} ps/fF) -> worst slack {:+.1} ps",
            graph.worst_slack_overall_ps().expect("constrained"),
        );
    }
    Ok(())
}
