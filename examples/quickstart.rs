//! Quickstart: size one bounded path under a delay constraint.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the exact flow of the paper's Fig. 7 protocol on a small path:
//! delay bounds first (feasibility), then constraint classification, then
//! the cheapest technique.

use pops::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = Library::cmos025();

    // A 6-gate bounded path. The input gate's size is pinned by the latch
    // that feeds it; the terminal load is the next latch. One NOR3 node
    // carries heavy off-path fan-out — the interesting node.
    let path = TimedPath::new(
        vec![
            PathStage::new(CellKind::Inv),
            PathStage::new(CellKind::Nand2),
            PathStage::with_load(CellKind::Nor3, 45.0),
            PathStage::new(CellKind::Inv),
            PathStage::new(CellKind::Nand3),
            PathStage::new(CellKind::Inv),
        ],
        lib.min_drive_ff(),
        120.0,
    );

    // Step 1 — design-space exploration: Tmin / Tmax bounds.
    let bounds = delay_bounds(&lib, &path);
    println!(
        "Tmin = {:.1} ps   Tmax = {:.1} ps",
        bounds.tmin_ps, bounds.tmax_ps
    );

    // Step 2 — pick a constraint in each domain and run the protocol.
    for (label, factor) in [("weak", 2.8), ("medium", 1.6), ("hard", 1.08)] {
        let tc = factor * bounds.tmin_ps;
        let outcome = optimize(&lib, &path, tc, &ProtocolOptions::default())?;
        println!(
            "{label:>6}: Tc = {tc:7.1} ps -> {:?} via {:?}, delay {:.1} ps, area {:.1} um \
             ({} buffers, {} restructured)",
            outcome.class,
            outcome.technique,
            outcome.delay_ps,
            outcome.area_um,
            outcome.inserted_buffers,
            outcome.restructured_gates,
        );
    }

    // Step 3 — an infeasible constraint is reported, not looped on.
    let impossible = 0.3 * bounds.tmin_ps;
    match optimize(&lib, &path, impossible, &ProtocolOptions::default()) {
        Err(OptimizeError::Infeasible { tc_ps, tmin_ps }) => {
            println!("infeasible: Tc = {tc_ps:.1} ps < best achievable {tmin_ps:.1} ps");
        }
        other => println!("unexpected: {other:?}"),
    }
    Ok(())
}
