//! Library characterization and buffer insertion: Table 2's `Flimit`
//! metric in action.
//!
//! ```sh
//! cargo run --release --example buffer_exploration
//! ```
//!
//! First characterizes the fan-out limit of every (inverter → gate) pair,
//! then shows the limit doing its job on an overloaded NOR3 node: below
//! `Flimit` a buffer hurts, above it the buffer wins.

use pops::core::bounds::tmin;
use pops::core::buffer::{flimit_table, over_limit_nodes};
use pops::prelude::*;

fn main() {
    let lib = Library::cmos025();

    // 1. Library characterization (the protocol's preprocessing step).
    let gates = [
        CellKind::Inv,
        CellKind::Nand2,
        CellKind::Nand3,
        CellKind::Nand4,
        CellKind::Nor2,
        CellKind::Nor3,
        CellKind::Nor4,
        CellKind::Xor2,
    ];
    println!("Flimit (gate driven by an inverter):");
    for entry in flimit_table(&lib, &gates) {
        println!(
            "  inv -> {:<6}  {:>5.1}",
            entry.gate.to_string(),
            entry.flimit
        );
    }

    // 2. A path with one overloaded node.
    let path = TimedPath::new(
        vec![
            PathStage::new(CellKind::Inv),
            PathStage::with_load(CellKind::Nor3, 140.0), // heavy off-path fanout
            PathStage::new(CellKind::Nand2),
            PathStage::new(CellKind::Inv),
        ],
        lib.min_drive_ff(),
        180.0,
    );
    let base = tmin(&lib, &path);
    println!("\nTmin without buffers: {:.1} ps", base.delay_ps);
    println!("over-limit nodes (stage, fanout/Flimit):");
    for (stage, excess) in over_limit_nodes(&lib, &path, &base.sizes) {
        println!("  stage {stage}: {excess:.2}x over the limit");
    }

    // 3. Insert buffers and compare (Table 3's experiment).
    let (buffered, buffered_tmin) = insert_buffers(&lib, &path);
    println!(
        "Tmin with {} inserted buffer stage(s): {:.1} ps ({:.0}% gain)",
        buffered.buffer_count(),
        buffered_tmin.delay_ps,
        (base.delay_ps - buffered_tmin.delay_ps) / base.delay_ps * 100.0
    );

    // 4. The §4.2 alternative: restructure the NOR3 instead.
    if let Some(restructured) = demorgan_restructure(&lib, &path) {
        let r_tmin = tmin(&lib, &restructured.path);
        println!(
            "Tmin after De Morgan restructuring ({} NOR replaced): {:.1} ps",
            restructured.replacement_count(),
            r_tmin.delay_ps
        );
    }
}
