//! Optimize the carry chain of a *real* gate-level 16-bit ripple-carry
//! adder (not the synthetic suite profile): netlist construction, STA,
//! K-most-critical-paths, extraction, and protocol run.
//!
//! ```sh
//! cargo run --release --example adder_carry_chain
//! ```

use pops::netlist::builders::ripple_carry_adder;
use pops::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = Library::cmos025();
    let adder = ripple_carry_adder(16);
    println!(
        "adder16: {} gates, {} nets, depth {}",
        adder.gate_count(),
        adder.net_count(),
        adder.depth()?
    );

    // STA at minimum drive.
    let sizing = Sizing::minimum(&adder, &lib);
    let report = analyze(&adder, &lib, &sizing)?;
    println!(
        "critical delay at min drive: {:.2} ns",
        report.critical_delay_ps() / 1000.0
    );

    // The carry ripple dominates: look at the top 5 paths.
    let paths = k_most_critical_paths(&adder, &report, 5);
    for (i, p) in paths.iter().enumerate() {
        println!("  path #{i}: {} gates", p.gates.len());
    }

    // Optimize the worst one under a medium constraint.
    let critical = report.critical_path();
    let extracted =
        extract_timed_path(&adder, &lib, &sizing, &critical, &ExtractOptions::default());
    let bounds = delay_bounds(&lib, &extracted.timed);
    println!(
        "carry chain: {} stages, Tmin {:.2} ns, Tmax {:.2} ns",
        extracted.timed.len(),
        bounds.tmin_ps / 1000.0,
        bounds.tmax_ps / 1000.0
    );

    let tc = 1.5 * bounds.tmin_ps;
    let outcome = optimize(&lib, &extracted.timed, tc, &ProtocolOptions::default())?;
    println!(
        "optimized via {:?}: delay {:.2} ns (Tc {:.2} ns), area {:.0} um",
        outcome.technique,
        outcome.delay_ps / 1000.0,
        tc / 1000.0,
        outcome.area_um
    );

    // Write the sizing back into the netlist and re-check with full STA.
    // (Only valid when the protocol did not modify the structure.)
    if outcome.technique == Technique::SizingOnly {
        let mut final_sizing = sizing.clone();
        extracted.apply_sizes(&mut final_sizing, &outcome.sizes);
        let after = analyze(&adder, &lib, &final_sizing)?;
        println!(
            "full-netlist STA after sizing: {:.2} ns (was {:.2} ns)",
            after.critical_delay_ps() / 1000.0,
            report.critical_delay_ps() / 1000.0
        );
    }
    Ok(())
}
