//! The paper's headline workload: optimize the critical path of every
//! ISCAS'85-class benchmark under all three constraint domains.
//!
//! ```sh
//! cargo run --release --example iscas_optimization
//! ```
//!
//! For each circuit: build the netlist, run STA, extract the critical
//! path as a bounded `TimedPath`, then let the Fig. 7 protocol choose
//! between sizing, buffering and restructuring.

use pops::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = Library::cmos025();

    println!(
        "{:<8} {:>5} {:>10} {:>7} | {:>22} {:>10} {:>9}",
        "circuit", "gates", "Tmin(ns)", "class", "technique", "delay(ns)", "area(um)"
    );
    for name in pops::netlist::suite::names() {
        let circuit = pops::netlist::suite::circuit(name).expect("known circuit");
        let sizing = Sizing::minimum(&circuit, &lib);
        let report = analyze(&circuit, &lib, &sizing)?;
        let critical = report.critical_path();
        let extracted = extract_timed_path(
            &circuit,
            &lib,
            &sizing,
            &critical,
            &ExtractOptions::default(),
        );

        let bounds = delay_bounds(&lib, &extracted.timed);
        for factor in [1.1, 1.8, 2.7] {
            let tc = factor * bounds.tmin_ps;
            let outcome = optimize(&lib, &extracted.timed, tc, &ProtocolOptions::default())?;
            println!(
                "{:<8} {:>5} {:>10.2} {:>7} | {:>22} {:>10.2} {:>9.0}",
                name,
                extracted.timed.len(),
                bounds.tmin_ps / 1000.0,
                format!("{:?}", outcome.class),
                format!("{:?}", outcome.technique),
                outcome.delay_ps / 1000.0,
                outcome.area_um,
            );
        }
    }
    Ok(())
}
