//! Buffer insertion and the `Flimit` metric (§4.1, Table 2, Fig. 5).
//!
//! For a gate `i` controlled by a driver `i−1`, the **load buffer
//! insertion limit** `Flimit` is the fan-out `F = C_L/C_IN(i)` above
//! which inserting an optimally sized buffer between gate `i` and its
//! load is faster than driving the load directly (sizes of `i−1` and `i`
//! conserved — the paper's *local* insertion).
//!
//! "Greater is the logical weight of the gate, lower is the limit": the
//! limit is a measure of gate efficiency, which is why the NOR3 (weakest
//! pull-up) must be relieved at much lower loads than an inverter
//! (Table 2: inv 5.7 … nor3 2.7).

use std::collections::{HashMap, HashSet};

use pops_delay::{Library, PathStage, TimedPath};
use pops_netlist::surgery::{EditOp, EditPlan};
use pops_netlist::{CellKind, Circuit, GateId, NetDriver, NetId};

use crate::bounds::{golden_min, tmin, TminResult};

/// One row of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlimitEntry {
    /// Driving cell (`i−1`).
    pub driver: CellKind,
    /// Driven cell (`i`) whose output node is buffered.
    pub gate: CellKind,
    /// The fan-out limit.
    pub flimit: f64,
}

/// Reference sizing used for `Flimit` characterization, as a multiple of
/// the minimum drive (a representative mid-range drive).
const CHAR_DRIVE_FACTOR: f64 = 4.0;

/// Compute `Flimit` for `gate` driven by `driver` under the closed-form
/// model.
///
/// The characterization uses the *worst* of the two input polarities —
/// what matters on a critical path, and what separates cells whose weak
/// edge is the stacked one (a NAND3's series pull-down, a NOR3's series
/// pull-up).
///
/// Returns `None` when no crossover exists below the probed fan-out range
/// (the gate never benefits from local buffering).
pub fn flimit(lib: &Library, driver: CellKind, gate: CellKind) -> Option<f64> {
    let eval = |path: &TimedPath, sizes: &[f64]| path.delay_worst(lib, sizes);
    flimit_with(lib, driver, gate, eval)
}

/// [`flimit`] with a custom delay evaluator (e.g. the transient
/// simulator, producing Table 2's "Simulation" column).
pub fn flimit_with(
    lib: &Library,
    driver: CellKind,
    gate: CellKind,
    eval: impl Fn(&TimedPath, &[f64]) -> f64,
) -> Option<f64> {
    let cref = lib.min_drive_ff();
    let cin_driver = CHAR_DRIVE_FACTOR * cref;
    let cin_gate = CHAR_DRIVE_FACTOR * cref;

    // Delay difference (buffered − direct) at fan-out `f`.
    let advantage = |f: f64| -> f64 {
        let terminal = f * cin_gate;
        let direct = TimedPath::new(
            vec![PathStage::new(driver), PathStage::new(gate)],
            cin_driver,
            terminal,
        );
        let d_a = eval(&direct, &[cin_driver, cin_gate]);

        let buffered = TimedPath::new(
            vec![
                PathStage::new(driver),
                PathStage::new(gate),
                PathStage::new(CellKind::Inv),
            ],
            cin_driver,
            terminal,
        );
        let d_b = golden_min_value(
            |b| eval(&buffered, &[cin_driver, cin_gate, b]),
            cref,
            terminal.max(4.0 * cref),
        );
        d_b - d_a
    };

    // Bracket the crossover: advantage > 0 (buffer hurts) at small F,
    // < 0 (buffer wins) at large F.
    let max_fanout = 120.0;
    let mut lo = 1.0;
    if advantage(lo) <= 0.0 {
        // Buffer already helps at fan-out 1 — degenerate but possible for
        // extremely weak gates; report the floor.
        return Some(lo);
    }
    let mut hi = 2.0;
    while advantage(hi) > 0.0 {
        hi *= 1.5;
        if hi > max_fanout {
            return None;
        }
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if advantage(mid) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// Minimum *value* (not argmin) of a unimodal function by golden section.
fn golden_min_value(f: impl Fn(f64) -> f64, lo: f64, hi: f64) -> f64 {
    let x = golden_min(&f, lo, hi);
    f(x)
}

/// Characterize the Table 2 rows: inverter driving each gate kind.
pub fn flimit_table(lib: &Library, gates: &[CellKind]) -> Vec<FlimitEntry> {
    gates
        .iter()
        .filter_map(|&gate| {
            flimit(lib, CellKind::Inv, gate).map(|f| FlimitEntry {
                driver: CellKind::Inv,
                gate,
                flimit: f,
            })
        })
        .collect()
}

/// Result of inserting buffers into a path.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferedPath {
    /// The modified path.
    pub path: TimedPath,
    /// Stage indices (in the *new* path) of the inserted buffers.
    pub inserted_at: Vec<usize>,
}

impl BufferedPath {
    /// Number of buffers inserted.
    pub fn buffer_count(&self) -> usize {
        self.inserted_at.len()
    }
}

/// Identify over-limit nodes of a sized path: stages whose effective
/// fan-out `C_L(i)/C_IN(i)` exceeds the `Flimit` of their (driver, cell)
/// pair. Returns `(stage, fanout / flimit)` sorted by decreasing excess.
pub fn over_limit_nodes(lib: &Library, path: &TimedPath, sizes: &[f64]) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    for i in 0..path.len() {
        let cell = path.stages()[i].cell;
        let driver = if i == 0 {
            CellKind::Inv // the latch behaves like an inverter stage
        } else {
            path.stages()[i - 1].cell
        };
        let Some(limit) = flimit(lib, driver, cell) else {
            continue;
        };
        let fanout = path.stage_load_ff(i, sizes) / sizes[i];
        if fanout > limit {
            out.push((i, fanout / limit));
        }
    }
    out.sort_by(|a, b| b.1.total_cmp(&a.1));
    out
}

/// Iteratively insert buffers after over-limit nodes until the minimum
/// delay stops improving (§4.1's flow: `Flimit` finds the critical nodes,
/// buffers dilute their loads).
///
/// A buffer on a logic path is a polarity-preserving *pair* of inverters
/// (the non-inverting buffer of the paper's Fig. 5); the pair's second
/// stage takes over the node's off-path load (load isolation), which is
/// what lets the original gate shrink.
///
/// Returns the buffered path and the `Tmin` result on it.
pub fn insert_buffers(lib: &Library, path: &TimedPath) -> (BufferedPath, TminResult) {
    let mut current = path.clone();
    let mut inserted_at: Vec<usize> = Vec::new();
    let mut best = tmin(lib, &current);
    let max_insertions = path.len().max(4);

    for _ in 0..max_insertions {
        let candidates = over_limit_nodes(lib, &current, &best.sizes);
        let mut improved = false;
        for &(node, _excess) in &candidates {
            // Insert the inverter pair after `node`, moving the off-path
            // load onto the second (driving) inverter.
            let mut trial = current.clone();
            let off = trial.stages()[node].off_path_load_ff;
            let cell = trial.stages()[node].cell;
            trial = trial.with_stage_replaced(node, PathStage::new(cell));
            trial = trial.with_stage_inserted(node + 1, PathStage::new(CellKind::Inv));
            trial = trial.with_stage_inserted(node + 2, PathStage::with_load(CellKind::Inv, off));
            let trial_tmin = tmin(lib, &trial);
            if trial_tmin.delay_ps < best.delay_ps * (1.0 - 1e-6) {
                // Accept; shift previously recorded positions.
                for p in inserted_at.iter_mut() {
                    if *p > node {
                        *p += 2;
                    }
                }
                inserted_at.push(node + 1);
                inserted_at.push(node + 2);
                current = trial;
                best = trial_tmin;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }

    inserted_at.sort_unstable();
    (
        BufferedPath {
            path: current,
            inserted_at,
        },
        best,
    )
}

/// Memoized [`flimit`] lookups. Characterizing one (driver, gate) pair
/// runs a bisection with a golden-section inner loop; a netlist-level
/// planning pass touches the same handful of pairs for thousands of
/// nets, so the cache turns the sweep into table lookups.
#[derive(Debug, Clone, Default)]
pub struct FlimitCache {
    map: HashMap<(CellKind, CellKind), Option<f64>>,
}

impl FlimitCache {
    /// An empty cache.
    pub fn new() -> Self {
        FlimitCache::default()
    }

    /// `Flimit` of `gate` driven by `driver`, characterized on first use.
    pub fn get(&mut self, lib: &Library, driver: CellKind, gate: CellKind) -> Option<f64> {
        *self
            .map
            .entry((driver, gate))
            .or_insert_with(|| flimit(lib, driver, gate))
    }
}

/// The cell driving `gate`'s first input pin — the netlist analogue of
/// the path convention in [`over_limit_nodes`] (a primary input behaves
/// like the latch: an inverter stage). Shared with the De Morgan
/// planner so both selection rules read `Flimit` for the same pair.
pub(crate) fn upstream_cell(circuit: &Circuit, gate: GateId) -> CellKind {
    circuit
        .gate(gate)
        .inputs()
        .first()
        .and_then(|&n| match circuit.net(n).driver() {
            Some(NetDriver::Gate(g)) => Some(circuit.gate(g).kind()),
            _ => None,
        })
        .unwrap_or(CellKind::Inv)
}

/// Total capacitive load on a net (fF): the listed gate input pins
/// under `cin_ff` plus the latch load at primary outputs — the same sum
/// STA uses. Shared with the De Morgan planner.
pub(crate) fn net_load_ff(circuit: &Circuit, cin_ff: &[f64], po_load_ff: f64, net: NetId) -> f64 {
    let mut load: f64 = circuit
        .net(net)
        .loads()
        .iter()
        .map(|&(g, _)| cin_ff[g.index()])
        .sum();
    if circuit.net(net).is_output() {
        load += po_load_ff;
    }
    load
}

/// Plan Inv-pair insertions for every candidate net driven past its
/// `Flimit` — the netlist write-back form of [`insert_buffers`]: instead
/// of editing an abstract [`TimedPath`], the returned [`EditPlan`]
/// names real nets and load pins for `Circuit::insert_buffer` /
/// `TimingGraph::apply_edits`.
///
/// For each net the effective fan-out `F = C_L / C_IN(driver gate)` is
/// compared against the `Flimit` of the (upstream cell, driver cell)
/// pair; over-limit nets get a buffer pair that takes over every load
/// pin for which `move_pin(net, gate)` answers `true` — callers keep
/// the timing-critical successors direct (commonly the next gate of
/// the critical path, plus anything without slack headroom for the
/// extra buffer stages). The latch load of a primary output always
/// stays. Nets where nothing moves are skipped.
///
/// Inverter sizes follow the `Flimit` of an inverter driving an
/// inverter as the taper: the second stage carries the moved load at
/// that fan-out, the first loads the relieved net as lightly as the
/// taper allows — so the insertion itself never pushes a net past the
/// inverter limit.
///
/// Candidate nets may repeat; each is planned at most once.
pub fn plan_buffer_insertions(
    circuit: &Circuit,
    lib: &Library,
    cin_ff: &[f64],
    po_load_ff: f64,
    candidates: &[NetId],
    mut move_pin: impl FnMut(NetId, GateId) -> bool,
    cache: &mut FlimitCache,
) -> EditPlan {
    assert_eq!(
        cin_ff.len(),
        circuit.gate_count(),
        "one input capacitance per gate"
    );
    let cref = lib.min_drive_ff();
    let taper = cache
        .get(lib, CellKind::Inv, CellKind::Inv)
        .unwrap_or(4.0)
        .max(2.0);
    let mut plan = EditPlan::new();
    let mut seen: HashSet<NetId> = HashSet::new();
    for &net in candidates {
        if !seen.insert(net) {
            continue;
        }
        let Some(driver) = circuit.driver_gate(net) else {
            continue;
        };
        let load = net_load_ff(circuit, cin_ff, po_load_ff, net);
        let fanout = load / cin_ff[driver.index()];
        let Some(limit) = cache.get(
            lib,
            upstream_cell(circuit, driver),
            circuit.gate(driver).kind(),
        ) else {
            continue;
        };
        if fanout <= limit {
            continue;
        }
        let mut moved = Vec::new();
        let mut moved_cap = 0.0;
        for &(g, pin) in circuit.net(net).loads() {
            if !move_pin(net, g) {
                continue;
            }
            moved.push((g, pin));
            moved_cap += cin_ff[g.index()];
        }
        if moved.is_empty() {
            continue;
        }
        if moved.len() == circuit.net(net).fanout() && !circuit.net(net).is_output() {
            // Everything would move: on an internal net that just
            // lengthens every path through it without isolating
            // anything from the critical chain. (At a primary output
            // the latch stays direct, so full pin re-homing is the
            // classic endpoint relief and remains worthwhile.)
            continue;
        }
        let second = (moved_cap / taper).max(cref);
        let first = (second / taper).max(cref);
        plan.push(EditOp::InsertBuffer {
            net,
            loads: moved,
            stage_cin_ff: [first, second],
        });
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> Library {
        Library::cmos025()
    }

    #[test]
    fn table2_ordering_holds() {
        // Table 2: Flimit(inv→inv) > nand2 > nand3 > nor2 > nor3.
        let lib = lib();
        let f = |g: CellKind| flimit(&lib, CellKind::Inv, g).expect("crossover exists");
        let inv = f(CellKind::Inv);
        let nand2 = f(CellKind::Nand2);
        let nand3 = f(CellKind::Nand3);
        let nor2 = f(CellKind::Nor2);
        let nor3 = f(CellKind::Nor3);
        assert!(inv > nand2, "inv {inv} !> nand2 {nand2}");
        assert!(nand2 > nand3, "nand2 {nand2} !> nand3 {nand3}");
        assert!(nand3 > nor2, "nand3 {nand3} !> nor2 {nor2}");
        assert!(nor2 > nor3, "nor2 {nor2} !> nor3 {nor3}");
    }

    #[test]
    fn table2_values_are_in_the_papers_range() {
        // The paper reports 5.7 / 4.9 / 4.5 / 3.8 / 2.7 on its process;
        // with reconstructed parameters we accept generous bands.
        let lib = lib();
        let f = |g: CellKind| flimit(&lib, CellKind::Inv, g).unwrap();
        assert!(
            (3.5..9.0).contains(&f(CellKind::Inv)),
            "inv {}",
            f(CellKind::Inv)
        );
        assert!(
            (1.5..5.0).contains(&f(CellKind::Nor3)),
            "nor3 {}",
            f(CellKind::Nor3)
        );
    }

    #[test]
    fn buffer_helps_above_the_limit_and_hurts_below() {
        let lib = lib();
        let gate = CellKind::Nor2;
        let limit = flimit(&lib, CellKind::Inv, gate).unwrap();
        let cref = lib.min_drive_ff();
        let cin = CHAR_DRIVE_FACTOR * cref;
        let check = |f: f64| -> f64 {
            let terminal = f * cin;
            let direct = TimedPath::new(
                vec![PathStage::new(CellKind::Inv), PathStage::new(gate)],
                cin,
                terminal,
            );
            let d_a = direct.delay_worst(&lib, &[cin, cin]);
            let buffered = TimedPath::new(
                vec![
                    PathStage::new(CellKind::Inv),
                    PathStage::new(gate),
                    PathStage::new(CellKind::Inv),
                ],
                cin,
                terminal,
            );
            let best_b = golden_min(
                |b| buffered.delay_worst(&lib, &[cin, cin, b]),
                cref,
                terminal.max(4.0 * cref),
            );
            buffered.delay_worst(&lib, &[cin, cin, best_b]) - d_a
        };
        assert!(check(limit * 0.6) > 0.0, "buffer should hurt below Flimit");
        assert!(check(limit * 1.8) < 0.0, "buffer should help above Flimit");
    }

    #[test]
    fn flimit_table_covers_requested_gates() {
        let lib = lib();
        let gates = [
            CellKind::Inv,
            CellKind::Nand2,
            CellKind::Nand3,
            CellKind::Nor2,
            CellKind::Nor3,
        ];
        let table = flimit_table(&lib, &gates);
        assert_eq!(table.len(), 5);
        for e in &table {
            assert_eq!(e.driver, CellKind::Inv);
            assert!(e.flimit > 1.0);
        }
    }

    #[test]
    fn over_limit_detection_flags_heavy_nodes() {
        let lib = lib();
        // NOR3 into a huge terminal load: clearly over-limit.
        let path = TimedPath::new(
            vec![
                PathStage::new(CellKind::Inv),
                PathStage::new(CellKind::Nor3),
            ],
            2.7,
            400.0,
        );
        let sizes = path.min_sizes(&lib);
        let nodes = over_limit_nodes(&lib, &path, &sizes);
        assert!(nodes.iter().any(|&(i, _)| i == 1), "{nodes:?}");
    }

    #[test]
    fn buffer_insertion_improves_tmin_on_overloaded_path() {
        // Table 3's effect: sizing+buffers reaches a lower minimum delay
        // than sizing alone on paths with heavily loaded weak gates.
        let lib = lib();
        let path = TimedPath::new(
            vec![
                PathStage::new(CellKind::Inv),
                PathStage::with_load(CellKind::Nor3, 120.0),
                PathStage::new(CellKind::Nand2),
                PathStage::with_load(CellKind::Nor2, 150.0),
                PathStage::new(CellKind::Inv),
            ],
            2.7,
            200.0,
        );
        let plain = tmin(&lib, &path);
        let (buffered, buffered_tmin) = insert_buffers(&lib, &path);
        assert!(
            buffered.buffer_count() > 0,
            "expected at least one insertion"
        );
        assert!(
            buffered_tmin.delay_ps < plain.delay_ps,
            "buffered {} !< plain {}",
            buffered_tmin.delay_ps,
            plain.delay_ps
        );
    }

    #[test]
    fn buffer_insertion_is_a_no_op_on_light_paths() {
        let lib = lib();
        let path = TimedPath::new(vec![PathStage::new(CellKind::Inv); 4], 2.7, 15.0);
        let (buffered, _) = insert_buffers(&lib, &path);
        assert_eq!(buffered.buffer_count(), 0);
    }

    #[test]
    fn plan_buffer_insertions_targets_only_over_limit_nets() {
        let lib = lib();
        let cref = lib.min_drive_ff();
        // One heavily fanned-out NOR3 and one lightly loaded inverter.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let d = c.add_input("d");
        let heavy = c.add_gate(CellKind::Nor3, &[a, b, d], "heavy").unwrap();
        let light = c.add_gate(CellKind::Inv, &[a], "light").unwrap();
        for i in 0..24 {
            let y = c
                .add_gate(CellKind::Inv, &[heavy], format!("h{i}"))
                .unwrap();
            c.mark_output(y);
        }
        let z = c.add_gate(CellKind::Inv, &[light], "z").unwrap();
        c.mark_output(z);
        let cin: Vec<f64> = vec![cref; c.gate_count()];
        let mut cache = FlimitCache::new();
        let nets: Vec<NetId> = c.net_ids().collect();
        // Keep each net's first load pin direct, as a flow would.
        let first_load = |c: &Circuit, n: NetId| c.net(n).loads().first().map(|&(g, _)| g);
        let plan = plan_buffer_insertions(
            &c,
            &lib,
            &cin,
            0.0,
            &nets,
            |n, g| first_load(&c, n) != Some(g),
            &mut cache,
        );
        let targets: Vec<NetId> = plan
            .ops()
            .iter()
            .map(|op| match op {
                EditOp::InsertBuffer { net, .. } => *net,
                other => panic!("unexpected op {other:?}"),
            })
            .collect();
        assert!(targets.contains(&heavy), "24× fan-out NOR3 is over-limit");
        assert!(!targets.contains(&light), "unit fan-out is within limit");
    }

    #[test]
    fn planned_insertions_respect_the_inverter_taper() {
        let lib = lib();
        let cref = lib.min_drive_ff();
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let heavy = c.add_gate(CellKind::Inv, &[a], "heavy").unwrap();
        let mut first_sink = None;
        for i in 0..30 {
            let y = c
                .add_gate(CellKind::Inv, &[heavy], format!("s{i}"))
                .unwrap();
            first_sink.get_or_insert(c.driver_gate(y).unwrap());
            c.mark_output(y);
        }
        let cin: Vec<f64> = vec![cref; c.gate_count()];
        let mut cache = FlimitCache::new();
        let keep = first_sink.unwrap();
        let plan =
            plan_buffer_insertions(&c, &lib, &cin, 0.0, &[heavy], |_, g| g != keep, &mut cache);
        assert_eq!(plan.len(), 1);
        let EditOp::InsertBuffer {
            loads,
            stage_cin_ff,
            ..
        } = &plan.ops()[0]
        else {
            panic!("expected a buffer op");
        };
        // The kept pin stays; 29 pins move.
        assert_eq!(loads.len(), 29);
        assert!(!loads.iter().any(|&(g, _)| g == keep));
        let taper = cache.get(&lib, CellKind::Inv, CellKind::Inv).unwrap();
        let moved_cap = 29.0 * cref;
        // Second stage drives the moved load at (at most) the taper.
        assert!(moved_cap / stage_cin_ff[1] <= taper + 1e-9);
        assert!(stage_cin_ff[0] >= cref && stage_cin_ff[0] <= stage_cin_ff[1]);
        // Applying the plan leaves every net at or under the limits it
        // already respected.
        plan.apply_to(&mut c).unwrap();
        c.validate().unwrap();
    }

    #[test]
    fn flimit_cache_agrees_with_direct_characterization() {
        let lib = lib();
        let mut cache = FlimitCache::new();
        for gate in [CellKind::Inv, CellKind::Nor3] {
            let direct = flimit(&lib, CellKind::Inv, gate);
            assert_eq!(cache.get(&lib, CellKind::Inv, gate), direct);
            // Second hit is served from the map.
            assert_eq!(cache.get(&lib, CellKind::Inv, gate), direct);
        }
    }

    #[test]
    fn inserted_positions_are_valid_stage_indices() {
        let lib = lib();
        let path = TimedPath::new(
            vec![
                PathStage::new(CellKind::Inv),
                PathStage::with_load(CellKind::Nor3, 300.0),
                PathStage::new(CellKind::Inv),
            ],
            2.7,
            250.0,
        );
        let (buffered, _) = insert_buffers(&lib, &path);
        for &p in &buffered.inserted_at {
            assert!(p < buffered.path.len());
            assert_eq!(buffered.path.stages()[p].cell, CellKind::Inv);
        }
    }
}
