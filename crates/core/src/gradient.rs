//! Operating-point coefficients `A_i` and the analytic path gradient.
//!
//! Eq. (4) of the paper writes the stationarity condition through
//! per-stage "design parameters involved in (1,2)" called `A_i`. Under the
//! reconstructed model, the delay terms that involve the ratio
//! `C_L(i)/C_IN(i)` are:
//!
//! * stage `i`'s own load term `½·M_i·τ_out(i)` (Miller factor `M_i`), and
//! * stage `i+1`'s slope term `½·v_T(i+1)·τ_in(i+1)`, because
//!   `τ_in(i+1) = τ_out(i)`.
//!
//! Hence `A_i = τ·S_i·(M_i + v_T(i+1))/2`, with `v_T(n) = 0` past the last
//! stage, `S_i` the symmetry factor of stage i's output edge and `M_i`
//! evaluated (frozen) at the current operating point. The frozen-`A`
//! gradient
//!
//! ```text
//! ∂T/∂C_IN(i) ≈ A_{i−1}/C_IN(i−1) − A_i·C_L(i)/C_IN(i)²
//! ```
//!
//! is exact up to the derivative of the Miller factor (a few percent);
//! the solvers re-freeze coefficients every sweep so their fixed points
//! satisfy the *exact* first-order conditions to within that residual,
//! and [`crate::bounds`] optionally polishes with exact line searches.

use pops_delay::model::Edge;
use pops_delay::{Library, TimedPath};

/// Operating-point data for a sized path.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    /// `A_i` coefficient per stage (ps·fF/fF — multiplies `C_L/C_IN`).
    pub a: Vec<f64>,
    /// External load `C_L(i)` (fF) per stage: off-path + downstream pin.
    pub load_ext: Vec<f64>,
    /// Miller correction carried upstream: `∂(delay_i)/∂C_L(i)` beyond
    /// the `A_i` term — the Miller factor *shrinks* as the load grows
    /// (ps/fF, ≤ 0).
    pub up_corr: Vec<f64>,
    /// Own Miller correction: `∂(delay_i)/∂C_IN(i)` through the growth
    /// of `C_M` with the gate size (ps/fF, ≥ 0).
    pub own_corr: Vec<f64>,
}

/// Compute the `A_i` coefficients, loads, and Miller correction terms at
/// the sizing `sizes`.
///
/// # Panics
///
/// Panics if `sizes.len() != path.len()`.
pub fn operating_point(lib: &Library, path: &TimedPath, sizes: &[f64]) -> OperatingPoint {
    assert_eq!(sizes.len(), path.len(), "one size per stage");
    let n = path.len();
    let process = lib.process();
    let tau = process.tau_ps;

    // Edge bookkeeping: input edge of stage i.
    let mut in_edges = Vec::with_capacity(n);
    let mut edge = path.input_edge();
    for stage in path.stages() {
        in_edges.push(edge);
        edge = edge.through(stage.cell);
    }

    let mut a = Vec::with_capacity(n);
    let mut load_ext = Vec::with_capacity(n);
    let mut up_corr = Vec::with_capacity(n);
    let mut own_corr = Vec::with_capacity(n);
    for i in 0..n {
        let stage = &path.stages()[i];
        let cell = lib.cell(stage.cell);
        let out_edge = in_edges[i].through(stage.cell);
        let s_i = cell.s_factor(process, out_edge);
        let cl_ext = path.stage_load_ff(i, sizes);
        let c = sizes[i];
        let cl_tot = cell.cpar_ff(c) + cl_ext;
        let cm = cell.miller_ff(c, in_edges[i]);
        let miller = 1.0 + 2.0 * cm / (cm + cl_tot);
        let tau_out = tau * s_i * cl_tot / c;
        let vt_next = if i + 1 < n {
            match out_edge {
                Edge::Rising => process.vtn_reduced(),
                Edge::Falling => process.vtp_reduced(),
            }
        } else {
            0.0
        };
        a.push(tau * s_i * (miller + vt_next) / 2.0);
        load_ext.push(cl_ext);
        // ∂m/∂C_L = −2·C_M/(C_M + C_Ltot)²; delay term is ½·m·τ_out.
        let dm_dcl = -2.0 * cm / ((cm + cl_tot) * (cm + cl_tot));
        up_corr.push(0.5 * dm_dcl * tau_out);
        // C_M = β·c, C_Ltot = p·c + C_L: dm/dc = 2·β·C_L/(βc + pc + C_L)².
        let beta = cm / c;
        let denom = beta * c + cell.cpar_factor * c + cl_ext;
        let dm_dc = 2.0 * beta * cl_ext / (denom * denom);
        own_corr.push(0.5 * dm_dc * tau_out);
    }
    OperatingPoint {
        a,
        load_ext,
        up_corr,
        own_corr,
    }
}

/// Analytic path gradient `∂T/∂C_IN(i)` at `sizes` — exact at the
/// operating point (the Miller correction terms are included).
///
/// Index 0 is the latch-pinned stage; its entry is still computed for
/// diagnostics. Cross-checked against [`TimedPath::gradient`] (numeric
/// central differences) in tests.
pub fn analytic_gradient(lib: &Library, path: &TimedPath, sizes: &[f64]) -> Vec<f64> {
    let op = operating_point(lib, path, sizes);
    let n = path.len();
    let mut g = Vec::with_capacity(n);
    for i in 0..n {
        let upstream = if i > 0 {
            op.a[i - 1] / sizes[i - 1] + op.up_corr[i - 1]
        } else {
            0.0
        };
        let own = op.a[i] * op.load_ext[i] / (sizes[i] * sizes[i]);
        g.push(upstream - own + op.own_corr[i]);
    }
    g
}

/// Analytic slack gradient `∂slack/∂C_IN(i) = −∂T/∂C_IN(i)` at `sizes`
/// (ps/fF). A *positive* entry is a stage whose upsizing buys slack —
/// the quantity slack-driven candidate ranking maximizes, replacing
/// "largest arrival" heuristics with "best slack return per fF".
pub fn slack_gradient(lib: &Library, path: &TimedPath, sizes: &[f64]) -> Vec<f64> {
    analytic_gradient(lib, path, sizes)
        .into_iter()
        .map(|g| -g)
        .collect()
}

/// Interior stage indices ordered best-upsize-candidate first: by
/// descending slack gain per added fF ([`slack_gradient`]), ties broken
/// by index. Stage 0 (the latch-pinned source) is excluded — it is not
/// a sizing variable.
pub fn rank_stages_by_slack_gain(lib: &Library, path: &TimedPath, sizes: &[f64]) -> Vec<usize> {
    let grad = slack_gradient(lib, path, sizes);
    let mut order: Vec<usize> = (1..path.len()).collect();
    order.sort_by(|&a, &b| grad[b].total_cmp(&grad[a]).then(a.cmp(&b)));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_delay::PathStage;
    use pops_netlist::CellKind;

    fn lib() -> Library {
        Library::cmos025()
    }

    fn mixed_path() -> TimedPath {
        use CellKind::*;
        TimedPath::new(
            vec![
                PathStage::new(Inv),
                PathStage::with_load(Nand2, 8.0),
                PathStage::new(Nor3),
                PathStage::new(Inv),
                PathStage::new(Nand3),
            ],
            2.7,
            60.0,
        )
    }

    #[test]
    fn coefficients_are_positive() {
        let lib = lib();
        let p = mixed_path();
        let sizes = p.min_sizes(&lib);
        let op = operating_point(&lib, &p, &sizes);
        for (i, &a) in op.a.iter().enumerate() {
            assert!(a > 0.0, "A[{i}] = {a}");
        }
    }

    #[test]
    fn interior_coefficients_exceed_last() {
        // Interior stages carry the extra v_T slope term; the last stage
        // does not. With similar S factors its A must be smaller than an
        // identical interior stage's. Compare two identical inverters.
        let lib = lib();
        let p = TimedPath::new(vec![PathStage::new(CellKind::Inv); 3], 2.7, 30.0);
        let sizes = p.min_sizes(&lib);
        let op = operating_point(&lib, &p, &sizes);
        // Stage 1 and stage 2 share cell and (roughly) Miller factors;
        // stage 2 (last) lacks the downstream slope term.
        assert!(op.a[1] > op.a[2]);
    }

    #[test]
    fn analytic_gradient_tracks_numeric_gradient() {
        let lib = lib();
        let p = mixed_path();
        let mut sizes = p.min_sizes(&lib);
        for (i, s) in sizes.iter_mut().enumerate().skip(1) {
            *s = 3.0 + 2.0 * i as f64;
        }
        let ana = analytic_gradient(&lib, &p, &sizes);
        let num = p.gradient(&lib, &sizes);
        let scale = num.iter().fold(0.0f64, |m, g| m.max(g.abs()));
        for i in 1..p.len() {
            // Exact up to central-difference truncation: allow a small
            // absolute band scaled by the largest gradient component.
            let err = (ana[i] - num[i]).abs();
            assert!(
                err < 1e-3 * scale + 1e-6,
                "stage {i}: analytic {} vs numeric {} (err {err})",
                ana[i],
                num[i]
            );
        }
    }

    #[test]
    fn gradient_sign_flips_across_the_optimum() {
        // For a mid-path gate: tiny size → own term dominates (negative
        // gradient); huge size → upstream loading dominates (positive).
        let lib = lib();
        let p = TimedPath::new(vec![PathStage::new(CellKind::Inv); 3], 2.7, 100.0);
        let mut sizes = p.min_sizes(&lib);
        sizes[1] = 2.7;
        sizes[2] = 10.0;
        let g_small = analytic_gradient(&lib, &p, &sizes)[1];
        sizes[1] = 200.0;
        let g_big = analytic_gradient(&lib, &p, &sizes)[1];
        assert!(g_small < 0.0);
        assert!(g_big > 0.0);
    }

    #[test]
    fn slack_gradient_is_the_negated_delay_gradient() {
        let lib = lib();
        let p = mixed_path();
        let sizes = p.min_sizes(&lib);
        let delay_grad = analytic_gradient(&lib, &p, &sizes);
        let slack_grad = slack_gradient(&lib, &p, &sizes);
        for i in 0..p.len() {
            assert_eq!(slack_grad[i].to_bits(), (-delay_grad[i]).to_bits());
        }
    }

    #[test]
    fn stage_ranking_puts_the_biggest_slack_gain_first() {
        let lib = lib();
        let p = mixed_path();
        let sizes = p.min_sizes(&lib);
        let grad = slack_gradient(&lib, &p, &sizes);
        let order = rank_stages_by_slack_gain(&lib, &p, &sizes);
        assert_eq!(order.len(), p.len() - 1);
        assert!(!order.contains(&0), "the pinned source is not a variable");
        for w in order.windows(2) {
            assert!(
                grad[w[0]] >= grad[w[1]],
                "ranking must be non-increasing in slack gain"
            );
        }
        // At all-minimum sizing some upsizing must buy slack.
        assert!(grad[order[0]] > 0.0);
    }

    #[test]
    fn loads_match_path_loads() {
        let lib = lib();
        let p = mixed_path();
        let sizes = p.min_sizes(&lib);
        let op = operating_point(&lib, &p, &sizes);
        for i in 0..p.len() {
            assert_eq!(op.load_ext[i], p.stage_load_ff(i, &sizes));
        }
    }
}
