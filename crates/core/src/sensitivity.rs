//! The constant sensitivity method (§3.2, eq. 5–6, Figs. 3–4).
//!
//! Instead of giving every stage the same delay (Sutherland) the paper
//! imposes the same *sensitivity* on every sizing variable:
//! `∂T/∂C_IN(i) = a ≤ 0`. Each value of `a` picks one point on the
//! area/delay Pareto front (`a = 0` is `Tmin`; `a → −∞` collapses to
//! minimum drives, i.e. `Tmax`), so a delay constraint is met at minimum
//! area by bisecting on the scalar `a`.

use pops_delay::{Library, TimedPath};

use crate::error::OptimizeError;
use crate::gradient::operating_point;

/// Options for the constant-sensitivity solver.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityOptions {
    /// Maximum fixed-point sweeps for one `a` value.
    pub max_sweeps: usize,
    /// Relative convergence tolerance on sizes.
    pub tolerance: f64,
    /// Maximum bisection steps on `a`.
    pub max_bisections: usize,
    /// Acceptable relative delay error versus the constraint.
    pub delay_tolerance: f64,
}

impl Default for SensitivityOptions {
    fn default() -> Self {
        SensitivityOptions {
            max_sweeps: 40,
            tolerance: 1e-8,
            max_bisections: 60,
            delay_tolerance: 1e-5,
        }
    }
}

/// One equal-sensitivity design point (one point on Fig. 3's curve).
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityPoint {
    /// The sensitivity coefficient `a` (ps/fF, ≤ 0).
    pub a: f64,
    /// Sizing solving `∂T/∂C_IN(i) = a` (clamped at minimum drive).
    pub sizes: Vec<f64>,
    /// Path delay at this point (ps).
    pub delay_ps: f64,
    /// Total input capacitance (fF), the area/power proxy.
    pub total_cin_ff: f64,
}

/// Solution of a constraint distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintSolution {
    /// The selected sensitivity coefficient.
    pub a: f64,
    /// Final sizing.
    pub sizes: Vec<f64>,
    /// Achieved delay (ps), ≤ the constraint within tolerance.
    pub delay_ps: f64,
    /// Achieved slack `tc − delay` (ps) — what a slack-driven caller
    /// (the circuit flow sizing against per-endpoint required times)
    /// reads back; ≥ 0 within the delay tolerance.
    pub slack_ps: f64,
    /// Total input capacitance (fF).
    pub total_cin_ff: f64,
    /// Bisection steps used.
    pub bisections: usize,
}

/// Solve the equal-sensitivity system for a given `a ≤ 0` (eq. 6).
///
/// Sweeps `C_IN(i) ← √( A_i·C_L(i) / (A_{i−1}/C_IN(i−1) − a) )` over the
/// interior stages with coefficients re-frozen each sweep, clamping at the
/// minimum drive.
///
/// # Panics
///
/// Panics if `a > 0` (positive sensitivities have no solution on a
/// bounded path: the delay would have to *decrease* with extra area).
pub fn solve_for_sensitivity(
    lib: &Library,
    path: &TimedPath,
    a: f64,
    options: &SensitivityOptions,
) -> SensitivityPoint {
    assert!(a <= 0.0, "the sensitivity coefficient must be non-positive");
    let n = path.len();
    let cref = lib.min_drive_ff();
    let mut sizes = path.min_sizes(lib);

    for _ in 0..options.max_sweeps {
        let op = operating_point(lib, path, &sizes);
        let mut max_rel_change: f64 = 0.0;
        for i in 1..n {
            let cl = path.stage_load_ff(i, &sizes);
            // Solve ∂T/∂C_IN(i) = a with the Miller corrections frozen at
            // the current point; upstream ≥ 0 ≥ a keeps this positive.
            let upstream = op.a[i - 1] / sizes[i - 1] + op.up_corr[i - 1] + op.own_corr[i];
            let target = (op.a[i] * cl / (upstream - a).max(1e-12)).sqrt();
            let new = target.max(cref);
            max_rel_change = max_rel_change.max((new - sizes[i]).abs() / sizes[i]);
            sizes[i] = new;
        }
        if max_rel_change < options.tolerance {
            break;
        }
    }

    let delay_ps = path.delay(lib, &sizes).total_ps;
    let total_cin_ff = sizes.iter().sum();
    SensitivityPoint {
        a,
        sizes,
        delay_ps,
        total_cin_ff,
    }
}

/// Sweep the design space over a list of `a` values (Fig. 3's curve).
pub fn design_space_sweep(
    lib: &Library,
    path: &TimedPath,
    a_values: &[f64],
    options: &SensitivityOptions,
) -> Vec<SensitivityPoint> {
    a_values
        .iter()
        .map(|&a| solve_for_sensitivity(lib, path, a, options))
        .collect()
}

/// Distribute a delay constraint on the path at minimum area (eq. 5–6).
///
/// Bisects on `a ∈ [a_lo, 0]`: `a = 0` gives `Tmin`; decreasing `a`
/// shrinks every gate (less area, more delay) until the constraint is
/// met exactly. "Few iterations on the `a` value allows a quick
/// satisfaction of the delay constraint."
///
/// # Errors
///
/// [`OptimizeError::Infeasible`] if `tc_ps < Tmin` (structure
/// modification required — see [`crate::buffer`] and
/// [`crate::restructure`]).
pub fn distribute_constraint(
    lib: &Library,
    path: &TimedPath,
    tc_ps: f64,
) -> Result<ConstraintSolution, OptimizeError> {
    distribute_constraint_with(lib, path, tc_ps, &SensitivityOptions::default())
}

/// [`distribute_constraint`] with explicit options.
///
/// # Errors
///
/// As [`distribute_constraint`].
pub fn distribute_constraint_with(
    lib: &Library,
    path: &TimedPath,
    tc_ps: f64,
    options: &SensitivityOptions,
) -> Result<ConstraintSolution, OptimizeError> {
    // a = 0 gives the minimum delay point.
    let at_zero = solve_for_sensitivity(lib, path, 0.0, options);
    if tc_ps < at_zero.delay_ps {
        return Err(OptimizeError::Infeasible {
            tc_ps,
            tmin_ps: at_zero.delay_ps,
        });
    }
    if at_zero.delay_ps >= tc_ps * (1.0 - options.delay_tolerance) {
        // The constraint equals Tmin: return the minimum-delay sizing.
        return Ok(ConstraintSolution {
            a: 0.0,
            sizes: at_zero.sizes,
            delay_ps: at_zero.delay_ps,
            slack_ps: tc_ps - at_zero.delay_ps,
            total_cin_ff: at_zero.total_cin_ff,
            bisections: 0,
        });
    }

    // Find a lower bracket: delay(a_lo) >= tc.
    let mut a_lo = -1.0;
    let mut lo_point = solve_for_sensitivity(lib, path, a_lo, options);
    let mut expansion = 0;
    while lo_point.delay_ps < tc_ps {
        a_lo *= 4.0;
        lo_point = solve_for_sensitivity(lib, path, a_lo, options);
        expansion += 1;
        if expansion > 60 {
            // All gates are pinned at minimum drive: delay can no longer
            // increase. The constraint is weaker than Tmax; the min-drive
            // sizing (= lo_point) satisfies it at the global minimum area.
            return Ok(ConstraintSolution {
                a: a_lo,
                sizes: lo_point.sizes,
                delay_ps: lo_point.delay_ps,
                slack_ps: tc_ps - lo_point.delay_ps,
                total_cin_ff: lo_point.total_cin_ff,
                bisections: expansion,
            });
        }
    }

    // Bisection: delay(a) is decreasing in a (a ↑ 0 ⇒ bigger gates,
    // faster path).
    let mut hi = 0.0; // delay(hi) = Tmin <= tc
    let mut lo = a_lo; // delay(lo) >= tc
    let mut best = lo_point.clone();
    let mut steps = 0;
    for _ in 0..options.max_bisections {
        steps += 1;
        let mid = 0.5 * (lo + hi);
        let p = solve_for_sensitivity(lib, path, mid, options);
        // Bisect on the sign of the achieved slack: non-negative is
        // feasible, so try to shrink further (more negative a).
        if tc_ps - p.delay_ps >= 0.0 {
            best = p;
            hi = mid;
        } else {
            lo = mid;
        }
        if (hi - lo).abs() < 1e-12 * (1.0 + lo.abs())
            || (best.delay_ps - tc_ps).abs() <= options.delay_tolerance * tc_ps
        {
            break;
        }
    }

    Ok(ConstraintSolution {
        a: best.a,
        sizes: best.sizes,
        delay_ps: best.delay_ps,
        slack_ps: tc_ps - best.delay_ps,
        total_cin_ff: best.total_cin_ff,
        bisections: steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{delay_bounds, tmax};
    use pops_delay::PathStage;
    use pops_netlist::CellKind;

    fn lib() -> Library {
        Library::cmos025()
    }

    fn eleven_gate() -> TimedPath {
        use CellKind::*;
        TimedPath::new(
            vec![
                PathStage::new(Inv),
                PathStage::new(Nand2),
                PathStage::new(Inv),
                PathStage::with_load(Nor2, 5.0),
                PathStage::new(Nand3),
                PathStage::new(Inv),
                PathStage::new(Nor3),
                PathStage::with_load(Nand2, 8.0),
                PathStage::new(Inv),
                PathStage::new(Nor2),
                PathStage::new(Inv),
            ],
            2.7,
            90.0,
        )
    }

    #[test]
    fn a_zero_reproduces_tmin() {
        let lib = lib();
        let path = eleven_gate();
        let p = solve_for_sensitivity(&lib, &path, 0.0, &SensitivityOptions::default());
        let b = delay_bounds(&lib, &path);
        let rel = (p.delay_ps - b.tmin_ps).abs() / b.tmin_ps;
        assert!(rel < 0.01, "a=0 delay {} vs tmin {}", p.delay_ps, b.tmin_ps);
    }

    #[test]
    fn delay_decreases_and_area_increases_toward_a_zero() {
        // Fig. 3: walking a from very negative to 0 trades area for speed.
        let lib = lib();
        let path = eleven_gate();
        let a_values = [-50.0, -10.0, -2.0, -0.5, -0.1, 0.0];
        let pts = design_space_sweep(&lib, &path, &a_values, &SensitivityOptions::default());
        for w in pts.windows(2) {
            assert!(
                w[1].delay_ps <= w[0].delay_ps + 1e-9,
                "delay should fall as a rises: {} -> {}",
                w[0].delay_ps,
                w[1].delay_ps
            );
            assert!(
                w[1].total_cin_ff >= w[0].total_cin_ff - 1e-9,
                "area should grow as a rises"
            );
        }
    }

    #[test]
    fn very_negative_a_recovers_min_drive_sizing() {
        let lib = lib();
        let path = eleven_gate();
        let p = solve_for_sensitivity(&lib, &path, -1e6, &SensitivityOptions::default());
        for (i, &s) in p.sizes.iter().enumerate().skip(1) {
            assert!(
                (s - lib.min_drive_ff()).abs() < 1e-6,
                "stage {i} should clamp at CREF, got {s}"
            );
        }
        assert!((p.delay_ps - tmax(&lib, &path)).abs() < 1e-6);
    }

    #[test]
    fn achieved_gradient_matches_a_in_unclamped_coordinates() {
        let lib = lib();
        let path = eleven_gate();
        let a = -0.8;
        let p = solve_for_sensitivity(&lib, &path, a, &SensitivityOptions::default());
        let grad = path.gradient(&lib, &p.sizes);
        for (i, g) in grad.iter().enumerate().skip(1) {
            if p.sizes[i] > lib.min_drive_ff() * 1.001 {
                let rel = (g - a).abs() / a.abs();
                assert!(rel < 0.02, "stage {i}: gradient {g} vs a {a} (rel {rel})");
            }
        }
    }

    #[test]
    fn constraint_is_met_at_reduced_area() {
        let lib = lib();
        let path = eleven_gate();
        let b = delay_bounds(&lib, &path);
        let tc = 1.2 * b.tmin_ps; // the paper's hard constraint
        let sol = distribute_constraint(&lib, &path, tc).unwrap();
        assert!(
            sol.delay_ps <= tc * 1.0001,
            "delay {} > tc {tc}",
            sol.delay_ps
        );
        // Strictly cheaper than the Tmin sizing.
        let tmin_area: f64 = b.tmin_sizes.iter().sum();
        assert!(
            sol.total_cin_ff < tmin_area,
            "area {} should undercut tmin area {tmin_area}",
            sol.total_cin_ff
        );
    }

    #[test]
    fn solution_slack_is_nonnegative_and_consistent() {
        let lib = lib();
        let path = eleven_gate();
        let b = delay_bounds(&lib, &path);
        for factor in [1.1, 1.5, 2.5] {
            let tc = factor * b.tmin_ps;
            let sol = distribute_constraint(&lib, &path, tc).unwrap();
            assert_eq!(sol.slack_ps, tc - sol.delay_ps, "slack bookkeeping");
            assert!(
                sol.slack_ps >= -1e-5 * tc,
                "achieved slack {} under tc {tc}",
                sol.slack_ps
            );
        }
    }

    #[test]
    fn infeasible_constraint_is_reported() {
        let lib = lib();
        let path = eleven_gate();
        let b = delay_bounds(&lib, &path);
        let err = distribute_constraint(&lib, &path, 0.8 * b.tmin_ps).unwrap_err();
        match err {
            OptimizeError::Infeasible { tc_ps, tmin_ps } => {
                assert!(tc_ps < tmin_ps);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn weak_constraint_returns_min_drives() {
        let lib = lib();
        let path = eleven_gate();
        let tc = tmax(&lib, &path) * 2.0;
        let sol = distribute_constraint(&lib, &path, tc).unwrap();
        for &s in sol.sizes.iter().skip(1) {
            assert!((s - lib.min_drive_ff()).abs() < 1e-6);
        }
    }

    #[test]
    fn tighter_constraints_cost_more_area() {
        let lib = lib();
        let path = eleven_gate();
        let b = delay_bounds(&lib, &path);
        let mut last_area = f64::INFINITY;
        for factor in [1.05, 1.2, 1.6, 2.2, 3.0] {
            let sol = distribute_constraint(&lib, &path, factor * b.tmin_ps).unwrap();
            assert!(
                sol.total_cin_ff <= last_area + 1e-9,
                "area must shrink as the constraint relaxes"
            );
            last_area = sol.total_cin_ff;
        }
    }

    #[test]
    fn solution_area_is_near_optimal_versus_random_feasible_probes() {
        // Provably-minimum-area claim (§3.2): no random feasible sizing
        // should undercut the solver's area by more than a whisker.
        let lib = lib();
        let path = eleven_gate();
        let b = delay_bounds(&lib, &path);
        let tc = 1.3 * b.tmin_ps;
        let sol = distribute_constraint(&lib, &path, tc).unwrap();
        let mut seed = 42u64;
        let mut rand = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut beaten = 0;
        for _ in 0..500 {
            let mut probe = sol.sizes.clone();
            for p in probe.iter_mut().skip(1) {
                *p = (*p * (0.5 + rand())).max(lib.min_drive_ff());
            }
            let d = path.delay(&lib, &probe).total_ps;
            let area: f64 = probe.iter().sum();
            if d <= tc && area < sol.total_cin_ff * 0.995 {
                beaten += 1;
            }
        }
        assert_eq!(beaten, 0, "random probes undercut the optimal area");
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn positive_a_is_rejected() {
        let lib = lib();
        let path = eleven_gate();
        let _ = solve_for_sensitivity(&lib, &path, 0.5, &SensitivityOptions::default());
    }
}
