//! Path acceleration by logic structure modification (§4.2, Table 4).
//!
//! "Instead to speed up a gate with low sensitivity (NOR) with transistor
//! sizing or buffer insertion we use the De Morgan's theorem to replace
//! this gate by a more efficient one (NAND). The number of inserted
//! inverters is the same but the second solution appears less expensive
//! in terms of speed or area."
//!
//! On-path, `NORn` becomes `INV → NANDn → INV` (side inputs receive their
//! own inverters off-path, accounted as a fixed area adder); the NAND's
//! far stronger pull-up replaces the NOR's stacked-PMOS bottleneck, and
//! the flanking inverters provide the same "load dilution" a buffer
//! would.

use std::collections::HashSet;

use pops_delay::{Library, PathStage, TimedPath};
use pops_netlist::surgery::{EditOp, EditPlan};
use pops_netlist::{CellKind, Circuit, GateId};

use crate::bounds::{tmin, TminResult};
use crate::buffer::FlimitCache;

/// Result of a De Morgan restructuring pass.
#[derive(Debug, Clone, PartialEq)]
pub struct RestructuredPath {
    /// The modified path.
    pub path: TimedPath,
    /// Stage indices (in the *new* path) of the replacement NANDs.
    pub replaced_at: Vec<usize>,
    /// Area (fF of input capacitance) of the off-path side-input
    /// inverters implied by De Morgan (`(n−1)` minimum-size inverters per
    /// replaced `NORn`).
    pub side_inverter_cin_ff: f64,
}

impl RestructuredPath {
    /// Number of NOR gates replaced.
    pub fn replacement_count(&self) -> usize {
        self.replaced_at.len()
    }
}

/// Replace every NOR stage of `path` by `INV → NANDn → INV`.
///
/// Only the NOR family is rewritten: Table 2 shows NORs are the
/// inefficient cells (lowest `Flimit`); their NAND duals are strictly
/// stronger on the edge that matters.
///
/// Returns `None` if the path contains no NOR stage (nothing to do).
pub fn demorgan_restructure(lib: &Library, path: &TimedPath) -> Option<RestructuredPath> {
    let has_nor = path
        .stages()
        .iter()
        .any(|s| s.cell.demorgan_dual().is_some() && is_nor(s.cell));
    if !has_nor {
        return None;
    }

    let cref = lib.min_drive_ff();
    let mut stages: Vec<PathStage> = Vec::with_capacity(path.len() + 4);
    let mut replaced_at = Vec::new();
    let mut side_cin = 0.0;
    for stage in path.stages() {
        if is_nor(stage.cell) {
            let dual = stage
                .cell
                .demorgan_dual()
                .expect("NOR cells always have a NAND dual");
            // Input inverter (on-path input only; side inputs get
            // off-path inverters accounted in side_inverter_cin_ff).
            stages.push(PathStage::new(CellKind::Inv));
            replaced_at.push(stages.len());
            stages.push(PathStage::new(dual));
            // Output inverter restores polarity and inherits the node's
            // off-path load (same dilution as a buffer).
            stages.push(PathStage::with_load(CellKind::Inv, stage.off_path_load_ff));
            side_cin += (stage.cell.num_inputs() as f64 - 1.0) * cref;
        } else {
            stages.push(*stage);
        }
    }

    Some(RestructuredPath {
        path: TimedPath::new(stages, path.source_drive_ff(), path.terminal_load_ff())
            .with_input_conditions(path.input_edge(), path.input_transition_ps()),
        replaced_at,
        side_inverter_cin_ff: side_cin,
    })
}

/// Restructure and report the new minimum delay (the Table 4 pipeline:
/// restructure, then globally size).
///
/// Returns `None` when the path has no NOR stage.
pub fn restructured_tmin(
    lib: &Library,
    path: &TimedPath,
) -> Option<(RestructuredPath, TminResult)> {
    let r = demorgan_restructure(lib, path)?;
    let t = tmin(lib, &r.path);
    Some((r, t))
}

/// Selective critical-node restructuring — the flow the paper actually
/// evaluates in Table 4.
///
/// §4.2 uses `Flimit` as the gate-efficiency measure: "smaller is this
/// limit value, less efficient is the gate, which becomes a good
/// candidate" for structure modification. The flow is deterministic
/// preprocessing, not search:
///
/// 1. size the path to its minimum delay and find the over-limit nodes;
/// 2. every over-limit **NOR** is replaced by its `INV → NAND → INV`
///    De Morgan form (a strictly stronger cell, plus the same load
///    dilution a buffer provides);
/// 3. the ordinary buffer-insertion loop then handles the remaining
///    over-limit nodes.
pub fn restructure_critical(lib: &Library, path: &TimedPath) -> CriticalRestructure {
    let cref = lib.min_drive_ff();
    let base = tmin(lib, path);
    let over = crate::buffer::over_limit_nodes(lib, path, &base.sizes);

    // Replace over-limit NORs, highest stage index first so the recorded
    // positions of lower stages stay valid while we edit.
    let mut nor_nodes: Vec<usize> = over
        .iter()
        .map(|&(node, _)| node)
        .filter(|&node| node >= 1 && is_nor(path.stages()[node].cell))
        .collect();
    nor_nodes.sort_unstable_by(|a, b| b.cmp(a));

    let mut current = path.clone();
    let mut replaced = 0usize;
    let mut side_cin = 0.0;
    for node in nor_nodes {
        let stage = current.stages()[node];
        let dual = stage.cell.demorgan_dual().expect("NORs have duals");
        current = current.with_stage_replaced(node, PathStage::new(CellKind::Inv));
        current = current.with_stage_inserted(node + 1, PathStage::new(dual));
        current = current.with_stage_inserted(
            node + 2,
            PathStage::with_load(CellKind::Inv, stage.off_path_load_ff),
        );
        replaced += 1;
        side_cin += (stage.cell.num_inputs() as f64 - 1.0) * cref;
    }

    // Remaining overloads are handled by buffer pairs, as in §4.1.
    let (buffered, _) = crate::buffer::insert_buffers(lib, &current);
    let mut buffer_stage_count = buffered.buffer_count();
    let mut final_path = buffered.path;

    // "The number of inserted inverters is the same": wherever the buffer
    // loop ended up with [NORn, Inv, Inv], the De Morgan form
    // [Inv, NANDn, Inv] has identical stage count but a strictly stronger
    // middle cell — swap it in.
    let mut pairs: Vec<usize> = buffered
        .inserted_at
        .chunks(2)
        .filter(|c| c.len() == 2 && c[1] == c[0] + 1)
        .map(|c| c[0])
        .collect();
    pairs.sort_unstable_by(|a, b| b.cmp(a));
    for p in pairs {
        if p == 0 {
            continue;
        }
        let host = final_path.stages()[p - 1];
        if let (true, Some(dual)) = (is_nor(host.cell), host.cell.demorgan_dual()) {
            final_path = final_path.with_stage_replaced(p - 1, PathStage::new(CellKind::Inv));
            final_path = final_path.with_stage_replaced(p, PathStage::new(dual));
            // Stage p+1 keeps its inverter and the isolated off-path load.
            replaced += 1;
            buffer_stage_count = buffer_stage_count.saturating_sub(2);
            side_cin += (host.cell.num_inputs() as f64 - 1.0) * cref;
        }
    }

    let modified = replaced > 0 || buffer_stage_count > 0;
    let t = if modified {
        tmin(lib, &final_path)
    } else {
        base
    };

    CriticalRestructure {
        path: final_path,
        tmin: t,
        replaced_nors: replaced,
        inserted_buffers: buffer_stage_count,
        side_inverter_cin_ff: side_cin,
    }
}

/// Result of [`restructure_critical`].
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalRestructure {
    /// The modified path (may equal the input if nothing helped).
    pub path: TimedPath,
    /// Minimum delay of the modified path.
    pub tmin: TminResult,
    /// NOR gates replaced by their De Morgan form.
    pub replaced_nors: usize,
    /// Plain buffer pairs inserted at non-NOR over-limit nodes.
    pub inserted_buffers: usize,
    /// Off-path side-inverter area implied by the replacements (fF).
    pub side_inverter_cin_ff: f64,
}

impl CriticalRestructure {
    /// Whether the path was modified at all.
    pub fn modified(&self) -> bool {
        self.replaced_nors > 0 || self.inserted_buffers > 0
    }
}

fn is_nor(cell: CellKind) -> bool {
    matches!(cell, CellKind::Nor2 | CellKind::Nor3 | CellKind::Nor4)
}

/// Plan De Morgan rewrites for every candidate gate that is an
/// over-limit NOR — the netlist write-back form of
/// [`restructure_critical`]'s selection rule: "smaller is this limit
/// value, less efficient is the gate, which becomes a good candidate".
///
/// Candidates (typically the gates of a critical path) are filtered to
/// the NOR family, then kept only where the output net's effective
/// fan-out `C_L / C_IN` exceeds the gate's `Flimit`; each survivor
/// becomes an [`EditOp::DeMorgan`] whose inverters start at the
/// library's minimum drive (the `(n−1)` side inverters of the paper's
/// area accounting, plus the on-path pair, all left for the sizing
/// rounds to grow as needed). Buffer ops from
/// [`crate::buffer::plan_buffer_insertions`] should be ordered *before*
/// these in a combined plan — a De Morgan rewires its gate's input
/// pins, which would invalidate a buffer op's recorded pin list.
///
/// Candidate gates may repeat; each is planned at most once.
pub fn plan_demorgan_restructure(
    circuit: &Circuit,
    lib: &Library,
    cin_ff: &[f64],
    po_load_ff: f64,
    candidates: &[GateId],
    cache: &mut FlimitCache,
) -> EditPlan {
    assert_eq!(
        cin_ff.len(),
        circuit.gate_count(),
        "one input capacitance per gate"
    );
    let mut plan = EditPlan::new();
    let mut seen: HashSet<GateId> = HashSet::new();
    for &gate in candidates {
        if !seen.insert(gate) {
            continue;
        }
        let kind = circuit.gate(gate).kind();
        if !is_nor(kind) {
            continue;
        }
        // Same load summation and upstream-cell convention as the
        // buffer planner, so both read `Flimit` identically.
        let out = circuit.gate(gate).output();
        let load = crate::buffer::net_load_ff(circuit, cin_ff, po_load_ff, out);
        let upstream = crate::buffer::upstream_cell(circuit, gate);
        let Some(limit) = cache.get(lib, upstream, kind) else {
            continue;
        };
        if load / cin_ff[gate.index()] <= limit {
            continue;
        }
        plan.push(EditOp::DeMorgan {
            gate,
            inv_cin_ff: lib.min_drive_ff(),
        });
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::delay_bounds;
    use crate::sensitivity::distribute_constraint;

    fn lib() -> Library {
        Library::cmos025()
    }

    fn nor_heavy_path() -> TimedPath {
        use CellKind::*;
        TimedPath::new(
            vec![
                PathStage::new(Inv),
                PathStage::with_load(Nor3, 60.0),
                PathStage::new(Nand2),
                PathStage::with_load(Nor3, 80.0),
                PathStage::new(Inv),
            ],
            2.7,
            150.0,
        )
    }

    #[test]
    fn nor_stages_become_inv_nand_inv() {
        let lib = lib();
        let path = nor_heavy_path();
        let r = demorgan_restructure(&lib, &path).unwrap();
        assert_eq!(r.replacement_count(), 2);
        // 5 original stages − 2 NORs + 2×3 replacements = 9 stages.
        assert_eq!(r.path.len(), 9);
        for &at in &r.replaced_at {
            assert_eq!(r.path.stages()[at].cell, CellKind::Nand3);
            assert_eq!(r.path.stages()[at - 1].cell, CellKind::Inv);
            assert_eq!(r.path.stages()[at + 1].cell, CellKind::Inv);
        }
    }

    #[test]
    fn side_inverter_area_counts_n_minus_one_per_nor() {
        let lib = lib();
        let path = nor_heavy_path();
        let r = demorgan_restructure(&lib, &path).unwrap();
        // Two NOR3s → 2 × 2 side inverters at CREF.
        let expect = 4.0 * lib.min_drive_ff();
        assert!((r.side_inverter_cin_ff - expect).abs() < 1e-9);
    }

    #[test]
    fn off_path_load_moves_to_the_output_inverter() {
        let lib = lib();
        let path = nor_heavy_path();
        let r = demorgan_restructure(&lib, &path).unwrap();
        let out_inv = r.replaced_at[0] + 1;
        assert_eq!(r.path.stages()[out_inv].off_path_load_ff, 60.0);
        assert_eq!(r.path.stages()[r.replaced_at[0]].off_path_load_ff, 0.0);
    }

    #[test]
    fn nor_free_path_returns_none() {
        let lib = lib();
        let path = TimedPath::new(
            vec![
                PathStage::new(CellKind::Inv),
                PathStage::new(CellKind::Nand2),
            ],
            2.7,
            40.0,
        );
        assert!(demorgan_restructure(&lib, &path).is_none());
    }

    #[test]
    fn restructuring_lowers_the_minimum_delay() {
        let lib = lib();
        let path = nor_heavy_path();
        let original = delay_bounds(&lib, &path);
        let (_, rt) = restructured_tmin(&lib, &path).unwrap();
        assert!(
            rt.delay_ps < original.tmin_ps,
            "restructured tmin {} !< original {}",
            rt.delay_ps,
            original.tmin_ps
        );
    }

    #[test]
    fn restructuring_beats_buffering_under_a_hard_constraint() {
        // Table 4's claim is *relative to buffer insertion*: when the
        // constraint forces structure modification anyway, replacing the
        // critical NOR by its NAND dual is cheaper than buffering around
        // it.
        use crate::buffer::insert_buffers;
        let lib = lib();
        let path = nor_heavy_path();
        let original = delay_bounds(&lib, &path);
        let tc = 1.1 * original.tmin_ps; // hard domain: buffers in play
        let (buffered, _) = insert_buffers(&lib, &path);
        let buff_sol = distribute_constraint(&lib, &buffered.path, tc).unwrap();
        let r = restructure_critical(&lib, &path);
        assert!(r.replaced_nors > 0, "the critical NOR should be replaced");
        let rest_sol = distribute_constraint(&lib, &r.path, tc).unwrap();
        let rest_area = rest_sol.total_cin_ff + r.side_inverter_cin_ff;
        assert!(
            rest_area < buff_sol.total_cin_ff,
            "restructured area {rest_area} !< buffered {}",
            buff_sol.total_cin_ff
        );
    }

    #[test]
    fn critical_restructure_improves_tmin_on_loaded_nors() {
        let lib = lib();
        let path = nor_heavy_path();
        let before = delay_bounds(&lib, &path);
        let r = restructure_critical(&lib, &path);
        assert!(r.modified());
        assert!(r.tmin.delay_ps < before.tmin_ps);
    }

    #[test]
    fn critical_restructure_is_a_no_op_on_light_paths() {
        let lib = lib();
        let path = TimedPath::new(
            vec![
                PathStage::new(CellKind::Inv),
                PathStage::new(CellKind::Nand2),
            ],
            2.7,
            12.0,
        );
        let r = restructure_critical(&lib, &path);
        assert!(!r.modified());
        assert_eq!(r.path.len(), path.len());
    }

    #[test]
    fn plan_demorgan_picks_only_over_limit_nors() {
        let lib = lib();
        let cref = lib.min_drive_ff();
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        // Heavily loaded NOR2, lightly loaded NOR2, heavily loaded NAND2.
        let heavy_nor = c.add_gate(CellKind::Nor2, &[a, b], "hn").unwrap();
        let light_nor = c.add_gate(CellKind::Nor2, &[a, b], "ln").unwrap();
        let heavy_nand = c.add_gate(CellKind::Nand2, &[a, b], "hd").unwrap();
        for i in 0..20 {
            let y = c
                .add_gate(CellKind::Inv, &[heavy_nor], format!("x{i}"))
                .unwrap();
            c.mark_output(y);
            let z = c
                .add_gate(CellKind::Inv, &[heavy_nand], format!("w{i}"))
                .unwrap();
            c.mark_output(z);
        }
        let l = c.add_gate(CellKind::Inv, &[light_nor], "l").unwrap();
        c.mark_output(l);
        let cin: Vec<f64> = vec![cref; c.gate_count()];
        let mut cache = FlimitCache::new();
        let candidates: Vec<GateId> = c.gate_ids().collect();
        let plan = plan_demorgan_restructure(&c, &lib, &cin, 0.0, &candidates, &mut cache);
        let gates: Vec<GateId> = plan
            .ops()
            .iter()
            .map(|op| match op {
                EditOp::DeMorgan { gate, .. } => *gate,
                other => panic!("unexpected op {other:?}"),
            })
            .collect();
        assert_eq!(gates, vec![c.driver_gate(heavy_nor).unwrap()]);
        // Applying keeps the netlist valid and swaps in the dual.
        plan.apply_to(&mut c).unwrap();
        c.validate().unwrap();
        assert_eq!(
            c.gate(c.driver_gate(c.net_by_name("hn_dmz").unwrap()).unwrap())
                .kind(),
            CellKind::Nand2
        );
    }

    #[test]
    fn restructured_path_keeps_boundary_conditions() {
        let lib = lib();
        let path = nor_heavy_path();
        let r = demorgan_restructure(&lib, &path).unwrap();
        assert_eq!(r.path.source_drive_ff(), path.source_drive_ff());
        assert_eq!(r.path.terminal_load_ff(), path.terminal_load_ff());
        assert_eq!(r.path.input_edge(), path.input_edge());
    }
}
