//! Area/delay Pareto front of a bounded path.
//!
//! Fig. 3 and Fig. 6 of the paper are both slices of the same object:
//! the curve traced by the constant-sensitivity solutions as `a` sweeps
//! `(-∞, 0]`. This module materializes that front once and answers the
//! two dual queries — cheapest implementation at a delay budget, fastest
//! implementation at an area budget — by lookup on the sampled front
//! (conservative: the returned point always meets the budget; its cost
//! is within the sampling granularity of the exact bisection answer).

use pops_delay::{Library, TimedPath};

use crate::sensitivity::{solve_for_sensitivity, SensitivityOptions, SensitivityPoint};

/// A materialized area/delay trade-off curve.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoFront {
    /// Points ordered by increasing delay (decreasing area); the first
    /// point is the `Tmin` corner (`a = 0`).
    points: Vec<SensitivityPoint>,
}

/// Options for front construction.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoOptions {
    /// Number of sample points along the front.
    pub samples: usize,
    /// Most negative sensitivity sampled (ps/fF); the front is sampled
    /// geometrically between `-1e-3` and this value, plus the `a = 0`
    /// corner.
    pub a_floor: f64,
    /// Inner solver options.
    pub solver: SensitivityOptions,
}

impl Default for ParetoOptions {
    fn default() -> Self {
        ParetoOptions {
            samples: 24,
            a_floor: -2000.0,
            solver: SensitivityOptions::default(),
        }
    }
}

impl ParetoFront {
    /// Build the front for a path.
    ///
    /// # Panics
    ///
    /// Panics if `options.samples < 2` or `options.a_floor >= 0`.
    pub fn build(lib: &Library, path: &TimedPath, options: &ParetoOptions) -> ParetoFront {
        assert!(options.samples >= 2, "need at least two samples");
        assert!(options.a_floor < 0.0, "the floor must be negative");
        let mut a_values = vec![0.0];
        let n = options.samples - 1;
        let lo = 1e-3f64;
        let ratio = (options.a_floor.abs() / lo).powf(1.0 / (n.max(2) as f64 - 1.0));
        let mut a = lo;
        for _ in 0..n {
            a_values.push(-a);
            a *= ratio;
        }
        let mut points: Vec<SensitivityPoint> = a_values
            .iter()
            .map(|&a| solve_for_sensitivity(lib, path, a, &options.solver))
            .collect();
        points.sort_by(|x, y| x.delay_ps.total_cmp(&y.delay_ps));
        // Drop dominated points (numerical ties can produce them).
        let mut front: Vec<SensitivityPoint> = Vec::with_capacity(points.len());
        for p in points {
            if front
                .last()
                .map(|last: &SensitivityPoint| p.total_cin_ff < last.total_cin_ff - 1e-12)
                .unwrap_or(true)
            {
                front.push(p);
            }
        }
        ParetoFront { points: front }
    }

    /// Points along the front, ordered by increasing delay.
    pub fn points(&self) -> &[SensitivityPoint] {
        &self.points
    }

    /// The minimum-delay corner (`Tmin`).
    pub fn fastest(&self) -> &SensitivityPoint {
        self.points.first().expect("front is never empty")
    }

    /// The minimum-area corner.
    pub fn smallest(&self) -> &SensitivityPoint {
        self.points.last().expect("front is never empty")
    }

    /// Cheapest point meeting a delay budget, if any point does.
    pub fn min_area_at_delay(&self, tc_ps: f64) -> Option<&SensitivityPoint> {
        // Points are delay-ascending / area-descending: the last point
        // still within budget has the least area.
        self.points.iter().rev().find(|p| p.delay_ps <= tc_ps)
    }

    /// Fastest point within an area budget, if any point fits.
    pub fn min_delay_at_area(&self, max_cin_ff: f64) -> Option<&SensitivityPoint> {
        // Delay-ascending: the first point within the budget is fastest.
        self.points.iter().find(|p| p.total_cin_ff <= max_cin_ff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::delay_bounds;
    use crate::sensitivity::distribute_constraint;
    use pops_delay::PathStage;
    use pops_netlist::CellKind;

    fn setup() -> (Library, TimedPath) {
        let lib = Library::cmos025();
        let path = TimedPath::new(
            vec![
                PathStage::new(CellKind::Inv),
                PathStage::new(CellKind::Nand2),
                PathStage::with_load(CellKind::Nor2, 15.0),
                PathStage::new(CellKind::Inv),
                PathStage::new(CellKind::Nand3),
            ],
            2.7,
            90.0,
        );
        (lib, path)
    }

    #[test]
    fn front_is_strictly_ordered() {
        let (lib, path) = setup();
        let front = ParetoFront::build(&lib, &path, &ParetoOptions::default());
        assert!(front.points().len() >= 5);
        for w in front.points().windows(2) {
            assert!(w[1].delay_ps >= w[0].delay_ps);
            assert!(w[1].total_cin_ff < w[0].total_cin_ff);
        }
    }

    #[test]
    fn corners_match_the_bounds() {
        let (lib, path) = setup();
        let front = ParetoFront::build(&lib, &path, &ParetoOptions::default());
        let b = delay_bounds(&lib, &path);
        assert!((front.fastest().delay_ps - b.tmin_ps).abs() < 0.01 * b.tmin_ps);
        assert!((front.smallest().delay_ps - b.tmax_ps).abs() < 0.02 * b.tmax_ps);
    }

    #[test]
    fn delay_query_agrees_with_the_bisection_solver() {
        let (lib, path) = setup();
        let front = ParetoFront::build(
            &lib,
            &path,
            &ParetoOptions {
                samples: 48,
                ..Default::default()
            },
        );
        let b = delay_bounds(&lib, &path);
        for factor in [1.1, 1.5, 2.2] {
            let tc = factor * b.tmin_ps;
            let from_front = front.min_area_at_delay(tc).expect("feasible budget");
            let from_solver = distribute_constraint(&lib, &path, tc).expect("feasible");
            // The sampled front is within a few percent of the exact
            // bisection answer.
            let rel =
                (from_front.total_cin_ff - from_solver.total_cin_ff) / from_solver.total_cin_ff;
            // Sampled-front granularity: conservative by construction,
            // within ~15 % of the exact bisection answer at 48 samples.
            assert!(
                (-1e-9..0.15).contains(&rel),
                "@{factor}: front {} vs solver {}",
                from_front.total_cin_ff,
                from_solver.total_cin_ff
            );
            assert!(from_front.delay_ps <= tc);
        }
    }

    #[test]
    fn area_query_is_dual_consistent() {
        let (lib, path) = setup();
        let front = ParetoFront::build(&lib, &path, &ParetoOptions::default());
        let mid_area = 0.5 * (front.fastest().total_cin_ff + front.smallest().total_cin_ff);
        let p = front
            .min_delay_at_area(mid_area)
            .expect("budget above minimum");
        assert!(p.total_cin_ff <= mid_area);
        // No faster point fits the budget.
        for q in front.points() {
            if q.delay_ps < p.delay_ps {
                assert!(q.total_cin_ff > mid_area);
            }
        }
    }

    #[test]
    fn impossible_budgets_return_none() {
        let (lib, path) = setup();
        let front = ParetoFront::build(&lib, &path, &ParetoOptions::default());
        assert!(front
            .min_area_at_delay(0.5 * front.fastest().delay_ps)
            .is_none());
        assert!(front.min_delay_at_area(1.0).is_none());
    }
}
