//! Optimization error types.

use std::error::Error;
use std::fmt;

/// Errors produced by the POPS optimizers.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizeError {
    /// The delay constraint is below the minimum achievable delay, even
    /// after the allowed structure modifications.
    Infeasible {
        /// Requested constraint (ps).
        tc_ps: f64,
        /// Best minimum delay achievable on the (possibly modified) path.
        tmin_ps: f64,
    },
    /// An iterative solver failed to converge within its budget.
    NoConvergence {
        /// Which solver gave up.
        solver: &'static str,
        /// Iterations consumed.
        iterations: usize,
    },
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeError::Infeasible { tc_ps, tmin_ps } => write!(
                f,
                "delay constraint {tc_ps:.1} ps is below the achievable minimum {tmin_ps:.1} ps"
            ),
            OptimizeError::NoConvergence { solver, iterations } => {
                write!(
                    f,
                    "{solver} failed to converge after {iterations} iterations"
                )
            }
        }
    }
}

impl Error for OptimizeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_numbers() {
        let e = OptimizeError::Infeasible {
            tc_ps: 100.0,
            tmin_ps: 150.0,
        };
        let s = e.to_string();
        assert!(s.contains("100.0"));
        assert!(s.contains("150.0"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn Error> = Box::new(OptimizeError::NoConvergence {
            solver: "tmin",
            iterations: 42,
        });
        assert!(e.to_string().contains("tmin"));
    }
}
