//! POPS — the DATE 2005 "Low Power Oriented CMOS Circuit Optimization
//! Protocol" (Verle, Michel, Azemard, Maurine, Auvergne).
//!
//! Given a *bounded* combinational path (fixed source drive, fixed
//! terminal load) and a delay constraint `Tc`, this crate implements the
//! paper's deterministic optimization flow:
//!
//! 1. [`bounds`] — explore the design space: `Tmax` (all gates at minimum
//!    drive) and `Tmin` (the fixed point of the eq. (4) link equations).
//!    `Tc < Tmin` ⟹ the constraint is infeasible by sizing alone.
//! 2. [`sensitivity`] — the **constant sensitivity method**: size every
//!    gate so `∂T/∂C_IN(i) = a` (eq. 5–6) and bisect on `a` until the
//!    constraint is met at minimum area.
//! 3. [`buffer`] — the **`Flimit` metric** (Table 2): the fan-out at which
//!    inserting an optimally sized buffer beats driving the load directly;
//!    used to identify critical nodes and to build the buffered variant of
//!    a path.
//! 4. [`restructure`] — De Morgan replacement of inefficient (low
//!    `Flimit`) NOR gates by inverter/NAND/inverter structures (§4.2).
//! 5. [`protocol`] — the Fig. 7 decision procedure tying it all together:
//!    weak / medium / hard constraint domains with the 1.2·Tmin and
//!    2.5·Tmin boundaries.
//!
//! [`sutherland`] provides the equal-delay distribution strawman the paper
//! compares against in §3.2.
//!
//! # Example
//!
//! ```
//! use pops_core::protocol::{optimize, ProtocolOptions};
//! use pops_delay::{Library, PathStage, TimedPath};
//! use pops_netlist::CellKind;
//!
//! # fn main() -> Result<(), pops_core::OptimizeError> {
//! let lib = Library::cmos025();
//! let path = TimedPath::new(
//!     vec![PathStage::new(CellKind::Inv), PathStage::new(CellKind::Nand2),
//!          PathStage::new(CellKind::Nor2), PathStage::new(CellKind::Inv)],
//!     lib.min_drive_ff(),
//!     80.0,
//! );
//! let bounds = pops_core::bounds::delay_bounds(&lib, &path);
//! let tc = 1.5 * bounds.tmin_ps; // a medium constraint
//! let outcome = optimize(&lib, &path, tc, &ProtocolOptions::default())?;
//! assert!(outcome.delay_ps <= tc * 1.001);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod buffer;
pub mod error;
pub mod gradient;
pub mod pareto;
pub mod protocol;
pub mod restructure;
pub mod sensitivity;
pub mod sutherland;

pub use bounds::{delay_bounds, DelayBounds};
pub use error::OptimizeError;
pub use sensitivity::{distribute_constraint, ConstraintSolution};
