//! The optimization protocol (Fig. 7) — the paper's headline deliverable.
//!
//! ```text
//! Characterization of the optimization space
//!   • library characterization (Flimit determination)
//!   • path classification, delay bounds Tmax/Tmin
//! Delay constraint Tc distribution
//!   • Tc < Tmin                → structure modification (buffers /
//!                                De Morgan restructuring), re-bound
//!   • weak   (Tc > 2.5·Tmin)   → gate sizing
//!   • medium (1.2 < Tc/Tmin < 2.5) → buffer insertion where it saves area
//!   • hard   (Tc < 1.2·Tmin)   → buffer insertion & global sizing
//! ```

use pops_delay::{Library, TimedPath};

use crate::bounds::{delay_bounds, DelayBounds};
use crate::buffer::insert_buffers;
use crate::error::OptimizeError;
use crate::restructure::restructure_critical;
use crate::sensitivity::{distribute_constraint_with, SensitivityOptions};

/// The paper's constraint domains (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintClass {
    /// `Tc > 2.5·Tmin` — sizing alone is optimal.
    Weak,
    /// `1.2·Tmin ≤ Tc ≤ 2.5·Tmin` — buffers optional, may save area.
    Medium,
    /// `Tmin ≤ Tc < 1.2·Tmin` — buffers plus global sizing.
    Hard,
}

/// Boundary between hard and medium constraint domains, in units of Tmin.
pub const HARD_BOUNDARY: f64 = 1.2;
/// Boundary between medium and weak constraint domains, in units of Tmin.
pub const WEAK_BOUNDARY: f64 = 2.5;

/// Classify a feasible constraint against `Tmin` (Fig. 6's domains).
///
/// # Panics
///
/// Panics if `tc_ps < tmin_ps` (infeasible constraints have no class;
/// the protocol handles them by structure modification first).
pub fn classify(tc_ps: f64, tmin_ps: f64) -> ConstraintClass {
    assert!(
        tc_ps >= tmin_ps,
        "cannot classify an infeasible constraint (tc {tc_ps} < tmin {tmin_ps})"
    );
    let ratio = tc_ps / tmin_ps;
    if ratio > WEAK_BOUNDARY {
        ConstraintClass::Weak
    } else if ratio >= HARD_BOUNDARY {
        ConstraintClass::Medium
    } else {
        ConstraintClass::Hard
    }
}

/// Which technique the protocol ended up applying.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// Constant-sensitivity gate sizing on the unmodified path.
    SizingOnly,
    /// Buffer insertion followed by global constant-sensitivity sizing.
    BufferAndSizing,
    /// De Morgan restructuring followed by global sizing.
    RestructureAndSizing,
}

/// Options steering the protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolOptions {
    /// Allow buffer insertion (§4.1).
    pub allow_buffers: bool,
    /// Allow De Morgan restructuring (§4.2).
    pub allow_restructuring: bool,
    /// Inner solver options.
    pub sensitivity: SensitivityOptions,
}

impl Default for ProtocolOptions {
    fn default() -> Self {
        ProtocolOptions {
            allow_buffers: true,
            allow_restructuring: true,
            sensitivity: SensitivityOptions::default(),
        }
    }
}

/// Outcome of a protocol run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolOutcome {
    /// Constraint class relative to the original path's `Tmin`.
    pub class: ConstraintClass,
    /// Technique that produced the cheapest implementation.
    pub technique: Technique,
    /// The (possibly modified) path that was finally sized.
    pub path: TimedPath,
    /// Final sizing of that path.
    pub sizes: Vec<f64>,
    /// Achieved delay (ps).
    pub delay_ps: f64,
    /// Achieved slack against the requested constraint (ps):
    /// `tc − delay`, ≥ 0 within the solver tolerance. Callers driving
    /// the protocol from a slack view (per-endpoint required times)
    /// read the margin back from here.
    pub slack_ps: f64,
    /// Total input capacitance (fF), including any off-path side
    /// inverters introduced by restructuring.
    pub total_cin_ff: f64,
    /// `ΣW` in µm (the paper's reported area metric).
    pub area_um: f64,
    /// Delay bounds of the *original* path.
    pub bounds: DelayBounds,
    /// Buffers inserted (0 when sizing only).
    pub inserted_buffers: usize,
    /// NOR gates restructured (0 when not applied).
    pub restructured_gates: usize,
}

/// One candidate implementation considered by the protocol. The path it
/// was sized on is *not* stored: only the winning candidate's path is
/// materialized (moved, or cloned once for the unmodified input), so the
/// losing implementations cost no path copies.
struct Candidate {
    technique: Technique,
    sizes: Vec<f64>,
    delay_ps: f64,
    total_cin_ff: f64,
    inserted_buffers: usize,
    restructured_gates: usize,
}

/// Run the Fig. 7 optimization protocol.
///
/// # Errors
///
/// [`OptimizeError::Infeasible`] when `tc_ps` is below the minimum delay
/// of every allowed implementation (sized, buffered, restructured).
pub fn optimize(
    lib: &Library,
    path: &TimedPath,
    tc_ps: f64,
    options: &ProtocolOptions,
) -> Result<ProtocolOutcome, OptimizeError> {
    assert!(tc_ps > 0.0, "constraint must be positive");
    let bounds = delay_bounds(lib, path);

    let mut candidates: Vec<Candidate> = Vec::new();
    let mut best_tmin = bounds.tmin_ps;

    // Candidate 1: sizing with structure conservation (§3).
    if tc_ps >= bounds.tmin_ps {
        if let Ok(sol) = distribute_constraint_with(lib, path, tc_ps, &options.sensitivity) {
            candidates.push(Candidate {
                technique: Technique::SizingOnly,
                sizes: sol.sizes,
                delay_ps: sol.delay_ps,
                total_cin_ff: sol.total_cin_ff,
                inserted_buffers: 0,
                restructured_gates: 0,
            });
        }
    }

    let class_ratio = tc_ps / bounds.tmin_ps;
    let consider_buffers =
        options.allow_buffers && (class_ratio < WEAK_BOUNDARY || candidates.is_empty());
    let mut buffered_path = None;
    if consider_buffers {
        // Candidate 2: buffer insertion + global sizing (§4.1).
        let (buffered, buffered_tmin) = insert_buffers(lib, path);
        best_tmin = best_tmin.min(buffered_tmin.delay_ps);
        if buffered.buffer_count() > 0 && tc_ps >= buffered_tmin.delay_ps {
            if let Ok(sol) =
                distribute_constraint_with(lib, &buffered.path, tc_ps, &options.sensitivity)
            {
                candidates.push(Candidate {
                    technique: Technique::BufferAndSizing,
                    sizes: sol.sizes,
                    delay_ps: sol.delay_ps,
                    total_cin_ff: sol.total_cin_ff,
                    inserted_buffers: buffered.buffer_count(),
                    restructured_gates: 0,
                });
                buffered_path = Some(buffered.path);
            }
        }
    }

    let consider_restructure =
        options.allow_restructuring && (class_ratio < WEAK_BOUNDARY || candidates.is_empty());
    let mut restructured_path = None;
    if consider_restructure {
        // Candidate 3: critical-node De Morgan restructuring + global
        // sizing (§4.2).
        let restructured = restructure_critical(lib, path);
        if restructured.modified() {
            best_tmin = best_tmin.min(restructured.tmin.delay_ps);
            if tc_ps >= restructured.tmin.delay_ps {
                if let Ok(sol) =
                    distribute_constraint_with(lib, &restructured.path, tc_ps, &options.sensitivity)
                {
                    candidates.push(Candidate {
                        technique: Technique::RestructureAndSizing,
                        sizes: sol.sizes,
                        delay_ps: sol.delay_ps,
                        total_cin_ff: sol.total_cin_ff + restructured.side_inverter_cin_ff,
                        inserted_buffers: restructured.inserted_buffers,
                        restructured_gates: restructured.replaced_nors,
                    });
                    restructured_path = Some(restructured.path);
                }
            }
        }
    }

    let Some(best) = candidates
        .into_iter()
        .min_by(|a, b| a.total_cin_ff.total_cmp(&b.total_cin_ff))
    else {
        return Err(OptimizeError::Infeasible {
            tc_ps,
            tmin_ps: best_tmin,
        });
    };

    // Materialize only the winner's path: modified paths are moved out of
    // their builders; the unmodified input is cloned at most once.
    let final_path = match best.technique {
        Technique::SizingOnly => path.clone(),
        Technique::BufferAndSizing => {
            buffered_path.expect("buffer candidate implies a buffered path")
        }
        Technique::RestructureAndSizing => {
            restructured_path.expect("restructure candidate implies a restructured path")
        }
    };

    // Classification is reported against the original Tmin; an originally
    // infeasible constraint that structure modification rescued is Hard
    // by definition.
    let class = if tc_ps < bounds.tmin_ps {
        ConstraintClass::Hard
    } else {
        classify(tc_ps, bounds.tmin_ps)
    };

    Ok(ProtocolOutcome {
        class,
        technique: best.technique,
        area_um: lib.process().width_um(best.total_cin_ff),
        path: final_path,
        sizes: best.sizes,
        delay_ps: best.delay_ps,
        slack_ps: tc_ps - best.delay_ps,
        total_cin_ff: best.total_cin_ff,
        bounds,
        inserted_buffers: best.inserted_buffers,
        restructured_gates: best.restructured_gates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_delay::PathStage;
    use pops_netlist::CellKind;

    fn lib() -> Library {
        Library::cmos025()
    }

    fn loaded_path() -> TimedPath {
        use CellKind::*;
        TimedPath::new(
            vec![
                PathStage::new(Inv),
                PathStage::with_load(Nor3, 90.0),
                PathStage::new(Nand2),
                PathStage::new(Inv),
                PathStage::with_load(Nor2, 70.0),
                PathStage::new(Nand3),
                PathStage::new(Inv),
            ],
            2.7,
            180.0,
        )
    }

    #[test]
    fn classification_boundaries() {
        assert_eq!(classify(300.0, 100.0), ConstraintClass::Weak);
        assert_eq!(classify(251.0, 100.0), ConstraintClass::Weak);
        assert_eq!(classify(200.0, 100.0), ConstraintClass::Medium);
        assert_eq!(classify(119.0, 100.0), ConstraintClass::Hard);
        assert_eq!(classify(120.0, 100.0), ConstraintClass::Medium);
        assert_eq!(classify(250.0, 100.0), ConstraintClass::Medium);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn classifying_infeasible_panics() {
        classify(99.0, 100.0);
    }

    #[test]
    fn weak_constraint_uses_sizing_only() {
        let lib = lib();
        let path = loaded_path();
        let b = delay_bounds(&lib, &path);
        let out = optimize(&lib, &path, 3.0 * b.tmin_ps, &ProtocolOptions::default()).unwrap();
        assert_eq!(out.class, ConstraintClass::Weak);
        assert_eq!(out.technique, Technique::SizingOnly);
        assert!(out.delay_ps <= 3.0 * b.tmin_ps * 1.0001);
    }

    #[test]
    fn hard_constraint_meets_tc() {
        let lib = lib();
        let path = loaded_path();
        let b = delay_bounds(&lib, &path);
        let tc = 1.1 * b.tmin_ps;
        let out = optimize(&lib, &path, tc, &ProtocolOptions::default()).unwrap();
        assert_eq!(out.class, ConstraintClass::Hard);
        assert!(out.delay_ps <= tc * 1.0001);
    }

    #[test]
    fn sub_tmin_constraint_is_rescued_by_structure_modification() {
        // Tc below the sizing-only Tmin: only buffers/restructuring can
        // save it (the paper's "structure modification" branch).
        let lib = lib();
        let path = loaded_path();
        let b = delay_bounds(&lib, &path);
        let tc = 0.97 * b.tmin_ps;
        let out = optimize(&lib, &path, tc, &ProtocolOptions::default()).unwrap();
        assert_eq!(out.class, ConstraintClass::Hard);
        assert!(out.delay_ps <= tc * 1.0001);
        assert!(
            out.inserted_buffers > 0 || out.restructured_gates > 0,
            "structure must have been modified"
        );
    }

    #[test]
    fn impossible_constraint_errors_with_best_tmin() {
        let lib = lib();
        let path = loaded_path();
        let b = delay_bounds(&lib, &path);
        let err = optimize(&lib, &path, 0.2 * b.tmin_ps, &ProtocolOptions::default()).unwrap_err();
        match err {
            OptimizeError::Infeasible { tmin_ps, .. } => {
                // The reported floor must not exceed the sizing-only Tmin
                // (structure modification can only lower it).
                assert!(tmin_ps <= b.tmin_ps * 1.0001);
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn disabling_modifications_restricts_to_sizing() {
        let lib = lib();
        let path = loaded_path();
        let b = delay_bounds(&lib, &path);
        let opts = ProtocolOptions {
            allow_buffers: false,
            allow_restructuring: false,
            ..Default::default()
        };
        let out = optimize(&lib, &path, 1.15 * b.tmin_ps, &opts).unwrap();
        assert_eq!(out.technique, Technique::SizingOnly);
        // And a sub-Tmin constraint now genuinely fails.
        assert!(optimize(&lib, &path, 0.97 * b.tmin_ps, &opts).is_err());
    }

    #[test]
    fn medium_domain_buffering_never_loses_on_area() {
        // Fig. 6/8: in the medium domain the protocol picks the cheaper of
        // sizing vs buffering — so allowing buffers can only help.
        let lib = lib();
        let path = loaded_path();
        let b = delay_bounds(&lib, &path);
        let tc = 1.5 * b.tmin_ps;
        let with = optimize(&lib, &path, tc, &ProtocolOptions::default()).unwrap();
        let without = optimize(
            &lib,
            &path,
            tc,
            &ProtocolOptions {
                allow_buffers: false,
                allow_restructuring: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(with.total_cin_ff <= without.total_cin_ff * 1.0001);
    }

    #[test]
    fn outcome_reports_the_achieved_slack() {
        let lib = lib();
        let path = loaded_path();
        let b = delay_bounds(&lib, &path);
        let tc = 1.4 * b.tmin_ps;
        let out = optimize(&lib, &path, tc, &ProtocolOptions::default()).unwrap();
        assert_eq!(out.slack_ps, tc - out.delay_ps);
        assert!(out.slack_ps >= -1e-4 * tc, "slack {}", out.slack_ps);
    }

    #[test]
    fn outcome_area_matches_width_conversion() {
        let lib = lib();
        let path = loaded_path();
        let b = delay_bounds(&lib, &path);
        let out = optimize(&lib, &path, 2.0 * b.tmin_ps, &ProtocolOptions::default()).unwrap();
        let expect = lib.process().width_um(out.total_cin_ff);
        assert!((out.area_um - expect).abs() < 1e-9);
    }
}
