//! Path delay bounds: `Tmax` and `Tmin` (§3.1, Figs. 1–2).
//!
//! * `Tmax` — the "pseudo-upper bound (at minimum area)": every gate at
//!   the minimum available drive.
//! * `Tmin` — the inferior bound, obtained by cancelling `∂T/∂C_IN(i)`
//!   for every interior gate: the eq. (4) link equations
//!   `C_IN(i) = √( (A_i/A_{i−1}) · C_IN(i−1) · C_L(i) )`,
//!   solved by the paper's iterative backward/forward sweeps from an
//!   initial solution seeded at `C_REF` (Fig. 1 shows the trajectory).

use pops_delay::{Library, TimedPath};

use crate::gradient::operating_point;

/// One recorded sweep of the `Tmin` iteration (the data behind Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TminIteration {
    /// `Σ C_IN / C_REF` after this sweep (Fig. 1's x-axis).
    pub total_cin_over_cref: f64,
    /// Path delay after this sweep (ps).
    pub delay_ps: f64,
}

/// Result of the `Tmin` search.
#[derive(Debug, Clone, PartialEq)]
pub struct TminResult {
    /// Sizing achieving the minimum delay.
    pub sizes: Vec<f64>,
    /// The minimum path delay (ps).
    pub delay_ps: f64,
    /// Per-sweep trajectory (for Fig. 1).
    pub trace: Vec<TminIteration>,
    /// Sweeps used.
    pub iterations: usize,
}

/// Both delay bounds of a path.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayBounds {
    /// Minimum achievable delay (ps).
    pub tmin_ps: f64,
    /// Delay with every gate at minimum drive (ps).
    pub tmax_ps: f64,
    /// Sizing achieving `tmin_ps`.
    pub tmin_sizes: Vec<f64>,
}

impl DelayBounds {
    /// Is a constraint achievable by sizing alone (structure conserved)?
    pub fn is_feasible(&self, tc_ps: f64) -> bool {
        tc_ps >= self.tmin_ps
    }
}

/// Options for the `Tmin` fixed-point iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct TminOptions {
    /// Initial interior sizing (fF); the paper seeds with `C_REF`.
    pub start_cin_ff: Option<f64>,
    /// Maximum number of sweeps.
    pub max_sweeps: usize,
    /// Relative convergence tolerance on sizes.
    pub tolerance: f64,
    /// Run exact per-coordinate golden-section polish after the link
    /// equations converge (guarantees a true local — hence, by convexity,
    /// global — minimum of the full model).
    pub polish: bool,
}

impl Default for TminOptions {
    fn default() -> Self {
        TminOptions {
            start_cin_ff: None,
            max_sweeps: 200,
            tolerance: 1e-10,
            polish: true,
        }
    }
}

/// `Tmax`: path delay with all gates at minimum drive.
pub fn tmax(lib: &Library, path: &TimedPath) -> f64 {
    let sizes = path.min_sizes(lib);
    path.delay(lib, &sizes).total_ps
}

/// `Tmin` with default options.
pub fn tmin(lib: &Library, path: &TimedPath) -> TminResult {
    tmin_with(lib, path, &TminOptions::default())
}

/// `Tmin` via the paper's iterative link-equation sweeps (eq. 4).
///
/// Every sweep recomputes the `A_i` coefficients at the current operating
/// point, applies
/// `C_IN(i) ← √((A_i/A_{i−1}) · C_IN(i−1) · C_L(i))` forward over the
/// interior stages, and records the (`ΣC_IN/C_REF`, delay) pair. The
/// paper's observation that "the final value Tmin is conserved whatever
/// is the initial solution, ie the C_REF value" is covered by tests.
pub fn tmin_with(lib: &Library, path: &TimedPath, options: &TminOptions) -> TminResult {
    let n = path.len();
    let cref = lib.min_drive_ff();
    let mut sizes = path.min_sizes(lib);
    if let Some(start) = options.start_cin_ff {
        assert!(start > 0.0, "start size must be positive");
        for s in sizes.iter_mut().skip(1) {
            *s = start;
        }
    }

    let mut trace = Vec::new();
    let mut iterations = 0;
    record(lib, path, &sizes, cref, &mut trace);

    for sweep in 0..options.max_sweeps {
        iterations = sweep + 1;
        let op = operating_point(lib, path, &sizes);
        let mut max_rel_change: f64 = 0.0;
        // Forward sweep over interior stages. C_L(i) uses the *current*
        // neighbour sizes, exactly as the paper's backward-initialized
        // iteration does. The Miller corrections (frozen at the current
        // point) make the fixed point a true stationary point of the
        // full model.
        for i in 1..n {
            let cl = path.stage_load_ff(i, &sizes);
            let upstream = op.a[i - 1] / sizes[i - 1] + op.up_corr[i - 1] + op.own_corr[i];
            let target = (op.a[i] * cl / upstream.max(1e-12)).sqrt();
            let new = target.max(cref);
            max_rel_change = max_rel_change.max((new - sizes[i]).abs() / sizes[i]);
            sizes[i] = new;
        }
        record(lib, path, &sizes, cref, &mut trace);
        if max_rel_change < options.tolerance {
            break;
        }
    }

    if options.polish && n > 1 {
        polish(lib, path, &mut sizes, cref);
        record(lib, path, &sizes, cref, &mut trace);
    }

    let delay_ps = path.delay(lib, &sizes).total_ps;
    TminResult {
        sizes,
        delay_ps,
        trace,
        iterations,
    }
}

/// Compute both bounds.
pub fn delay_bounds(lib: &Library, path: &TimedPath) -> DelayBounds {
    let t = tmin(lib, path);
    DelayBounds {
        tmin_ps: t.delay_ps,
        tmax_ps: tmax(lib, path),
        tmin_sizes: t.sizes,
    }
}

fn record(
    lib: &Library,
    path: &TimedPath,
    sizes: &[f64],
    cref: f64,
    trace: &mut Vec<TminIteration>,
) {
    trace.push(TminIteration {
        total_cin_over_cref: sizes.iter().sum::<f64>() / cref,
        delay_ps: path.delay(lib, sizes).total_ps,
    });
}

/// Cyclic per-coordinate golden-section descent on the exact model.
///
/// The path delay is convex in each coordinate on a bounded path, so this
/// converges to the exact minimizer; a handful of cycles suffices after
/// the link equations have done the heavy lifting.
fn polish(lib: &Library, path: &TimedPath, sizes: &mut [f64], cref: f64) {
    const CYCLES: usize = 6;
    for _ in 0..CYCLES {
        for i in 1..sizes.len() {
            let best = golden_min(
                |c| {
                    let mut probe = sizes.to_vec();
                    probe[i] = c;
                    path.delay(lib, &probe).total_ps
                },
                cref,
                (sizes[i] * 16.0).max(cref * 64.0),
            );
            sizes[i] = best;
        }
    }
}

/// Golden-section minimization of a unimodal scalar function on
/// `[lo, hi]`, returning the argmin.
///
/// Exposed because several harness experiments need 1-D searches over
/// the same convex delay landscapes the optimizers exploit.
///
/// # Example
///
/// ```
/// let x = pops_core::bounds::golden_min(|x| (x - 2.0_f64).powi(2), 0.0, 10.0);
/// assert!((x - 2.0).abs() < 1e-6);
/// ```
pub fn golden_min(f: impl Fn(f64) -> f64, lo: f64, hi: f64) -> f64 {
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let mut a = lo;
    let mut b = hi;
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    for _ in 0..80 {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
        }
        if (b - a).abs() < 1e-9 * (1.0 + b.abs()) {
            break;
        }
    }
    0.5 * (a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_delay::PathStage;
    use pops_netlist::CellKind;

    fn lib() -> Library {
        Library::cmos025()
    }

    fn chain(n: usize, terminal: f64) -> TimedPath {
        TimedPath::new(
            vec![PathStage::new(CellKind::Inv); n],
            Library::cmos025().min_drive_ff(),
            terminal,
        )
    }

    fn mixed() -> TimedPath {
        use CellKind::*;
        TimedPath::new(
            vec![
                PathStage::new(Inv),
                PathStage::with_load(Nand2, 6.0),
                PathStage::new(Nor2),
                PathStage::new(Inv),
                PathStage::with_load(Nand3, 10.0),
                PathStage::new(Inv),
            ],
            2.7,
            120.0,
        )
    }

    #[test]
    fn tmin_below_tmax() {
        let lib = lib();
        for path in [chain(5, 200.0), mixed()] {
            let b = delay_bounds(&lib, &path);
            assert!(
                b.tmin_ps < b.tmax_ps,
                "tmin {} !< tmax {}",
                b.tmin_ps,
                b.tmax_ps
            );
        }
    }

    #[test]
    fn tmin_is_independent_of_the_start_point() {
        // The paper: "the final value Tmin is conserved whatever is the
        // initial solution, ie the CREF value".
        let lib = lib();
        let path = mixed();
        let mut results = Vec::new();
        for start in [2.7, 10.0, 40.0, 120.0] {
            let r = tmin_with(
                &lib,
                &path,
                &TminOptions {
                    start_cin_ff: Some(start),
                    ..Default::default()
                },
            );
            results.push(r.delay_ps);
        }
        for w in results.windows(2) {
            assert!(
                (w[0] - w[1]).abs() < 1e-3 * w[0],
                "Tmin differs across starts: {results:?}"
            );
        }
    }

    #[test]
    fn tmin_gradient_vanishes_in_the_interior() {
        let lib = lib();
        let path = mixed();
        let r = tmin(&lib, &path);
        let grad = path.gradient(&lib, &r.sizes);
        // Scale: compare against the gradient magnitude at min sizes.
        let ref_grad = path
            .gradient(&lib, &path.min_sizes(&lib))
            .iter()
            .map(|g| g.abs())
            .fold(0.0f64, f64::max);
        for (i, g) in grad.iter().enumerate().skip(1) {
            // Clamped-at-CREF coordinates may keep positive gradient.
            if r.sizes[i] > lib.min_drive_ff() * 1.001 {
                assert!(
                    g.abs() < 0.02 * ref_grad,
                    "stage {i} gradient {g} (ref {ref_grad})"
                );
            }
        }
    }

    #[test]
    fn no_random_probe_beats_tmin() {
        let lib = lib();
        let path = mixed();
        let r = tmin(&lib, &path);
        // Deterministic pseudo-random probes around the optimum.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut rand = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..200 {
            let mut probe = r.sizes.clone();
            for p in probe.iter_mut().skip(1) {
                *p = (*p * (0.25 + 3.0 * rand())).max(lib.min_drive_ff());
            }
            let d = path.delay(&lib, &probe).total_ps;
            assert!(d >= r.delay_ps - 1e-6, "probe {d} < tmin {}", r.delay_ps);
        }
    }

    #[test]
    fn trace_is_recorded_and_delay_monotonically_improves_late() {
        let lib = lib();
        let path = chain(7, 400.0);
        let r = tmin(&lib, &path);
        assert!(r.trace.len() >= 3);
        // Final recorded delay equals the reported Tmin.
        let last = r.trace.last().unwrap();
        assert!((last.delay_ps - r.delay_ps).abs() < 1e-9);
        // The trace ends strictly better than it starts (Fig. 1's descent).
        assert!(r.trace[0].delay_ps > r.delay_ps);
    }

    #[test]
    fn single_gate_path_has_equal_bounds() {
        let lib = lib();
        let path = chain(1, 50.0);
        let b = delay_bounds(&lib, &path);
        assert!((b.tmin_ps - b.tmax_ps).abs() < 1e-9);
    }

    #[test]
    fn heavier_terminal_load_raises_tmin() {
        let lib = lib();
        let light = delay_bounds(&lib, &chain(5, 50.0));
        let heavy = delay_bounds(&lib, &chain(5, 500.0));
        assert!(heavy.tmin_ps > light.tmin_ps);
    }

    #[test]
    fn feasibility_uses_tmin() {
        let lib = lib();
        let b = delay_bounds(&lib, &chain(4, 100.0));
        assert!(b.is_feasible(b.tmin_ps * 1.01));
        assert!(!b.is_feasible(b.tmin_ps * 0.99));
    }

    #[test]
    fn golden_min_finds_parabola_vertex() {
        let x = golden_min(|x| (x - 3.25) * (x - 3.25), 0.0, 10.0);
        assert!((x - 3.25).abs() < 1e-6);
    }

    #[test]
    fn tmin_sizes_taper_toward_a_heavy_load() {
        // Classic tapered-buffer shape: monotone increasing sizes.
        let lib = lib();
        let path = chain(4, 600.0);
        let r = tmin(&lib, &path);
        for w in r.sizes.windows(2) {
            assert!(w[1] > w[0], "sizes should taper up: {:?}", r.sizes);
        }
    }
}
