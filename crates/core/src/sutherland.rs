//! Equal-delay constraint distribution (§3.2's strawman).
//!
//! "The simplest method is the Sutherland method, directly deduced from
//! Mead's optimization rule of an ideal inverter array: the same delay
//! constraint is imposed on each element of the path. If this supplies a
//! very fast method for distributing the constraint, this is at the cost
//! of an over-sizing of the gates with an important logical weight value."
//!
//! The ablation benchmark compares this to the constant-sensitivity
//! method (Fig. 4).

use pops_delay::{Library, TimedPath};

use crate::bounds::golden_min;
use crate::error::OptimizeError;

/// Result of the equal-delay distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct SutherlandSolution {
    /// Final sizing.
    pub sizes: Vec<f64>,
    /// Achieved path delay (ps).
    pub delay_ps: f64,
    /// Total input capacitance (fF).
    pub total_cin_ff: f64,
    /// Full passes used.
    pub passes: usize,
}

/// Size cap as a multiple of `C_REF` (prevents runaway sizes on
/// infeasible per-stage budgets).
const MAX_SIZE_FACTOR: f64 = 4000.0;

/// Distribute `tc_ps` by giving every stage the same delay budget.
///
/// Iterates backward passes: each interior stage is sized (by scalar
/// minimization of the absolute budget error) so its delay matches
/// `tc / n` under the current slopes and loads; the per-stage budget is
/// then rescaled by the achieved total and the pass repeats.
///
/// # Errors
///
/// [`OptimizeError::Infeasible`] when the equal-delay budget cannot be
/// met even with capped maximum sizes.
pub fn equal_delay_distribution(
    lib: &Library,
    path: &TimedPath,
    tc_ps: f64,
) -> Result<SutherlandSolution, OptimizeError> {
    assert!(tc_ps > 0.0, "constraint must be positive");
    let n = path.len();
    let cref = lib.min_drive_ff();
    let cmax = cref * MAX_SIZE_FACTOR;
    let mut sizes = path.min_sizes(lib);
    let mut budget = tc_ps / n as f64;
    let mut passes = 0;

    const MAX_PASSES: usize = 40;
    for pass in 0..MAX_PASSES {
        passes = pass + 1;
        // Backward sweep: output stages first (their loads are known).
        for i in (1..n).rev() {
            let stage_delay = |c: f64| {
                let mut probe = sizes.clone();
                probe[i] = c;
                path.delay(lib, &probe).stages[i].delay_ps
            };
            // The stage delay is U-shaped in its own size: first falling
            // (drive strength) then rising again (the stage loads its own
            // driver, degrading its input slope). Only the falling branch
            // is meaningful — a gate must never "meet" its budget by
            // being slowed through self-loading. Find the branch first.
            let c_fastest = golden_min(stage_delay, cref, cmax);
            let d_fastest = stage_delay(c_fastest);
            sizes[i] = if stage_delay(cref) <= budget {
                cref
            } else if d_fastest >= budget {
                c_fastest
            } else {
                // Bisect d(c) = budget on the decreasing branch.
                let (mut lo, mut hi) = (cref, c_fastest);
                for _ in 0..60 {
                    let mid = 0.5 * (lo + hi);
                    if stage_delay(mid) > budget {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                0.5 * (lo + hi)
            };
        }
        let total = path.delay(lib, &sizes).total_ps;
        if total <= tc_ps {
            return Ok(SutherlandSolution {
                total_cin_ff: sizes.iter().sum(),
                delay_ps: total,
                sizes,
                passes,
            });
        }
        // Tighten the per-stage budget proportionally and retry.
        budget *= (tc_ps / total).max(0.5);
        if budget < 1e-3 {
            break;
        }
    }

    let total = path.delay(lib, &sizes).total_ps;
    if total <= tc_ps {
        Ok(SutherlandSolution {
            total_cin_ff: sizes.iter().sum(),
            delay_ps: total,
            sizes,
            passes,
        })
    } else {
        Err(OptimizeError::Infeasible {
            tc_ps,
            tmin_ps: total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::delay_bounds;
    use crate::sensitivity::distribute_constraint;
    use pops_delay::PathStage;
    use pops_netlist::CellKind;

    fn lib() -> Library {
        Library::cmos025()
    }

    fn weighted_path() -> TimedPath {
        use CellKind::*;
        // Deliberately includes heavy-logical-weight gates (NOR3) that the
        // equal-delay rule over-sizes.
        TimedPath::new(
            vec![
                PathStage::new(Inv),
                PathStage::new(Nor3),
                PathStage::new(Nand2),
                PathStage::new(Nor3),
                PathStage::new(Inv),
                PathStage::new(Nand3),
                PathStage::new(Inv),
            ],
            2.7,
            100.0,
        )
    }

    #[test]
    fn meets_a_feasible_constraint() {
        let lib = lib();
        let path = weighted_path();
        let b = delay_bounds(&lib, &path);
        let tc = 1.5 * b.tmin_ps;
        let sol = equal_delay_distribution(&lib, &path, tc).unwrap();
        assert!(sol.delay_ps <= tc * 1.0001);
    }

    #[test]
    fn constant_sensitivity_needs_less_area() {
        // The paper's §3.2 claim (Fig. 4): equal-delay over-sizes gates
        // with big logical weights; the sensitivity method is cheaper.
        let lib = lib();
        let path = weighted_path();
        let b = delay_bounds(&lib, &path);
        let tc = 1.4 * b.tmin_ps;
        let suth = equal_delay_distribution(&lib, &path, tc).unwrap();
        let sens = distribute_constraint(&lib, &path, tc).unwrap();
        assert!(
            sens.total_cin_ff < suth.total_cin_ff,
            "sensitivity {} !< sutherland {}",
            sens.total_cin_ff,
            suth.total_cin_ff
        );
    }

    #[test]
    fn impossible_budget_errors_out() {
        let lib = lib();
        let path = weighted_path();
        let b = delay_bounds(&lib, &path);
        let err = equal_delay_distribution(&lib, &path, 0.5 * b.tmin_ps).unwrap_err();
        assert!(matches!(err, OptimizeError::Infeasible { .. }));
    }

    #[test]
    fn loose_budget_stays_small() {
        let lib = lib();
        let path = weighted_path();
        let b = delay_bounds(&lib, &path);
        let sol = equal_delay_distribution(&lib, &path, 5.0 * b.tmax_ps).unwrap();
        // With a generous budget, no gate should balloon.
        for &s in &sol.sizes {
            assert!(s < 50.0 * lib.min_drive_ff(), "size {s}");
        }
    }
}
