//! Incremental graph surgery vs full rebuild: the cost of landing one
//! structural edit under live timing state.
//!
//! The measured operation is the write-back flow's hot move once sizing
//! stalls: insert one Inv-pair buffer on a fanout-heavy net and bring
//! the whole timing picture — forward arrivals *and* the maintained
//! backward required/slack/k-paths state — back to bit-exactness.
//!
//! * `surgery` — clone a warm [`TimingGraph`] (cheap memcpy setup,
//!   excluded by measuring only the edit), then `apply_edits` with one
//!   `InsertBuffer` op: circuit mutation + structural array rebuild +
//!   seeded dirty-cone re-timing, forward and backward.
//! * `rebuild` — what landing the same edit cost before `apply_edits`:
//!   apply the op to a circuit copy, build a fresh `TimingGraph` on it
//!   and set the constraint (full forward + full backward pass).
//!
//! One sample per candidate net (the deepest fanout-heavy nets), timed
//! individually; median and mean per edit are reported. Results are
//! recorded as a baseline in `BENCH_sta_surgery.json` at the repository
//! root.

use std::time::Instant;

use pops_bench::microbench::format_ns;
use pops_bench::{mean, median, write_baseline};
use pops_delay::Library;
use pops_netlist::suite;
use pops_netlist::surgery::{EditOp, EditPlan};
use pops_netlist::NetId;
use pops_sta::{Sizing, TimingGraph};

struct CircuitBaseline {
    circuit: String,
    gates: usize,
    edits_sampled: usize,
    surgery_median_ns: f64,
    surgery_mean_ns: f64,
    rebuild_median_ns: f64,
    rebuild_mean_ns: f64,
    speedup_median: f64,
    speedup_mean: f64,
}
pops_bench::json_fields!(CircuitBaseline {
    circuit,
    gates,
    edits_sampled,
    surgery_median_ns,
    surgery_mean_ns,
    rebuild_median_ns,
    rebuild_mean_ns,
    speedup_median,
    speedup_mean
});

fn main() {
    let lib = Library::cmos025();
    let mut baselines = Vec::new();

    for name in ["c6288", "c7552"] {
        let circuit = suite::circuit(name).expect("suite circuit");
        let sizing = Sizing::minimum(&circuit, &lib);
        let mut graph = TimingGraph::new(&circuit, &lib, &sizing).expect("acyclic");
        graph.set_constraint(0.9 * graph.critical_delay_ps());

        // Candidate nets: the deepest 24 with fanout >= 3 — the shape
        // the flow actually buffers (relieving a loaded driver without
        // re-timing the whole design).
        let order = circuit.topo_order().expect("acyclic");
        let nets: Vec<NetId> = order
            .iter()
            .rev()
            .map(|&g| circuit.gate(g).output())
            .filter(|&n| circuit.net(n).fanout() >= 3)
            .take(24)
            .collect();
        assert!(!nets.is_empty(), "{name} has fanout-heavy nets");

        let plan_for = |net: NetId| -> EditPlan {
            vec![EditOp::InsertBuffer {
                net,
                loads: circuit.net(net).loads()[1..].to_vec(),
                stage_cin_ff: [lib.min_drive_ff(), 4.0 * lib.min_drive_ff()],
            }]
            .into()
        };

        // Steady state: the graph owns its circuit after the first edit
        // of a write-back run (the one-time copy-on-write clone is not
        // the recurring cost). Land one edit up front, then measure the
        // next edit from that owned state.
        let mut base_graph = graph.clone();
        base_graph
            .apply_edits(&plan_for(nets[0]))
            .expect("valid edit");
        let base_circuit = base_graph.circuit().clone();
        let samples = &nets[1..];

        let mut surgery_ns = Vec::with_capacity(samples.len());
        let mut rebuild_ns = Vec::with_capacity(samples.len());
        for &net in samples {
            let plan = plan_for(net);

            // Incremental: mutate + patch + re-time the seeded cones.
            let mut patched = base_graph.clone();
            let t0 = Instant::now();
            patched.apply_edits(&plan).expect("valid edit");
            std::hint::black_box(patched.worst_slack_overall_ps());
            surgery_ns.push(t0.elapsed().as_nanos() as f64);

            // Rebuild: same edit, from-scratch graph + backward pass.
            let mut edited = base_circuit.clone();
            let tc = graph.constraint_ps().expect("constraint set");
            let sizing_after = patched.sizing().clone();
            let t0 = Instant::now();
            plan.apply_to(&mut edited).expect("valid edit");
            let mut fresh = TimingGraph::new(&edited, &lib, &sizing_after).expect("still acyclic");
            fresh.set_constraint(tc);
            std::hint::black_box(fresh.worst_slack_overall_ps());
            rebuild_ns.push(t0.elapsed().as_nanos() as f64);

            // The two must agree bit-for-bit — the bench is only valid
            // while the equivalence contract holds.
            assert_eq!(
                patched.worst_slack_overall_ps().map(f64::to_bits),
                fresh.worst_slack_overall_ps().map(f64::to_bits),
                "{name}: surgery diverged from rebuild"
            );
        }

        let (s_med, s_mean) = (median(surgery_ns.clone()), mean(&surgery_ns));
        let (r_med, r_mean) = (median(rebuild_ns.clone()), mean(&rebuild_ns));
        baselines.push(CircuitBaseline {
            circuit: name.to_string(),
            gates: circuit.gate_count(),
            edits_sampled: samples.len(),
            surgery_median_ns: s_med,
            surgery_mean_ns: s_mean,
            rebuild_median_ns: r_med,
            rebuild_mean_ns: r_mean,
            speedup_median: r_med / s_med,
            speedup_mean: r_mean / s_mean,
        });
    }

    println!(
        "circuit      gates  edits   surgery median   rebuild median   speedup (median / mean)"
    );
    for b in &baselines {
        println!(
            "{:<10} {:>6} {:>6}  {:>14}  {:>15}  {:>7.1}x / {:.1}x",
            b.circuit,
            b.gates,
            b.edits_sampled,
            format_ns(b.surgery_median_ns),
            format_ns(b.rebuild_median_ns),
            b.speedup_median,
            b.speedup_mean,
        );
    }

    write_baseline("sta_surgery", &baselines);
}
