//! Incremental vs full *backward* STA on the slack-driven loop's hot
//! operation: resize one gate, then re-query the design-worst slack.
//!
//! `full` re-runs the whole backward pass (`required_times` over the
//! current forward state) per query — what every slack read cost before
//! the maintained backward state. The incremental side sweeps a probe
//! over **every** gate of the circuit — resize by 1.2×, re-read
//! `worst_slack_overall_ps()`, revert (two forward + two backward
//! dirty-cone updates, the slack-driven probing pattern) — timing each
//! probe individually. Like the forward cones, backward cone sizes are
//! heavily skewed, so both the median (typical-gate) and mean per-probe
//! times are reported. Results are recorded as a baseline in
//! `BENCH_sta_backward.json` at the repository root.

use std::time::Instant;

use pops_bench::microbench::format_ns;
use pops_bench::{mean, median, write_baseline};
use pops_delay::Library;
use pops_netlist::suite;
use pops_sta::{required_times, Sizing, TimingGraph};

struct CircuitBaseline {
    circuit: String,
    gates: usize,
    full_backward_ns: f64,
    probe_median_ns: f64,
    probe_mean_ns: f64,
    speedup_median: f64,
    speedup_mean: f64,
}
pops_bench::json_fields!(CircuitBaseline {
    circuit,
    gates,
    full_backward_ns,
    probe_median_ns,
    probe_mean_ns,
    speedup_median,
    speedup_mean
});

/// Median time of one full backward pass + worst-slack fold (one slack
/// query of the pre-incremental loop), over enough repeats to be stable.
fn measure_full(
    circuit: &pops_netlist::Circuit,
    lib: &Library,
    sizing: &Sizing,
    graph: &TimingGraph,
    tc: f64,
) -> f64 {
    let samples = 15usize;
    let reps = 4usize;
    let mut times = Vec::with_capacity(samples);
    // Derive from a plain forward report so the graph's cached backward
    // state cannot short-circuit the pass being measured.
    let report =
        pops_sta::analysis::analyze_with(circuit, lib, sizing, graph.options()).expect("acyclic");
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..reps {
            let slacks = required_times(circuit, lib, sizing, &report, tc).expect("acyclic");
            std::hint::black_box(slacks.worst_slack_overall_ps());
        }
        times.push(t0.elapsed().as_nanos() as f64 / reps as f64);
    }
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    let lib = Library::cmos025();
    let mut baselines = Vec::new();

    for name in ["fpd", "c432", "c880", "c1908", "c6288", "c7552"] {
        let circuit = suite::circuit(name).expect("suite circuit");
        let sizing = Sizing::minimum(&circuit, &lib);
        let mut graph = TimingGraph::new(&circuit, &lib, &sizing).expect("acyclic");
        let tc = 0.9 * graph.critical_delay_ps();
        graph.set_constraint(tc);
        let full = measure_full(&circuit, &lib, &sizing, &graph, tc);

        let gates: Vec<_> = circuit.gate_ids().collect();
        // Warm-up sweep (touch every cone once, flushing per step so
        // the measured probes start settled), then the measured sweep.
        for &g in &gates {
            let orig = graph.sizing().cin_ff(g);
            graph.resize_gate(g, orig * 1.2);
            let _ = graph.worst_slack_overall_ps();
            graph.resize_gate(g, orig);
            let _ = graph.worst_slack_overall_ps();
        }
        let mut probe_ns: Vec<f64> = Vec::with_capacity(gates.len());
        for &g in &gates {
            let orig = graph.sizing().cin_ff(g);
            let t0 = Instant::now();
            graph.resize_gate(g, orig * 1.2);
            std::hint::black_box(graph.worst_slack_overall_ps());
            graph.resize_gate(g, orig);
            probe_ns.push(t0.elapsed().as_nanos() as f64);
        }
        let (probe_median, probe_mean) = (median(probe_ns.clone()), mean(&probe_ns));

        baselines.push(CircuitBaseline {
            circuit: name.to_string(),
            gates: circuit.gate_count(),
            full_backward_ns: full,
            probe_median_ns: probe_median,
            probe_mean_ns: probe_mean,
            speedup_median: full / probe_median,
            speedup_mean: full / probe_mean,
        });
    }

    println!(
        "circuit      gates   full/query   probe median   probe mean   speedup (median / mean)"
    );
    for b in &baselines {
        println!(
            "{:<10} {:>6}  {:>11}  {:>12}  {:>11}  {:>7.1}x / {:.1}x",
            b.circuit,
            b.gates,
            format_ns(b.full_backward_ns),
            format_ns(b.probe_median_ns),
            format_ns(b.probe_mean_ns),
            b.speedup_median,
            b.speedup_mean,
        );
    }

    write_baseline("sta_backward", &baselines);
}
