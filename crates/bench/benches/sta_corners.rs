//! Fused multi-corner throughput: the sizing loop's burst-mutate
//! workload (K gate resizes per worst-slack read, K ∈ {1, 8, 64})
//! timed on one fused slow/typical/fast graph against the same
//! mutations replayed on three independent single-corner graphs.
//!
//! Both sides execute identical mutation sequences and are
//! cross-checked bit-for-bit every round (each fused corner view
//! against its single-corner twin, and the fused worst-over-corners
//! against the twins' folded worst — the `corner_equivalence` suite's
//! invariant, enforced here while timing). The fused side drains each
//! dirty-cone gate **once covering all three corners** through the
//! stride-3 slabs; the per-corner side pays the cone — arc hoisting,
//! dirty bookkeeping, tournament-tree folds — once per corner. The
//! speedup is that bookkeeping amortization; the acceptance bar is a
//! median above 1.0 at every K.
//!
//! Results are recorded in `BENCH_sta_corners.json` at the repository
//! root. All rows are `optional`: like the scaling bench's larger
//! classes, they gate only when the CI run regenerates them.

use std::time::Instant;

use pops_bench::microbench::format_ns;
use pops_bench::{mean, median, write_baseline};
use pops_delay::{CornerSet, Library, Process};
use pops_netlist::{suite, GateId};
use pops_sta::analysis::AnalyzeOptions;
use pops_sta::{Sizing, TimingGraph};

struct CornerRow {
    kind: &'static str,
    circuit: String,
    gates: usize,
    corners: usize,
    k: usize,
    rounds: usize,
    per_corner_median_ns: f64,
    per_corner_mean_ns: f64,
    fused_median_ns: f64,
    fused_mean_ns: f64,
    speedup_median: f64,
    speedup_mean: f64,
    optional: bool,
}
pops_bench::json_fields!(CornerRow {
    kind,
    circuit,
    gates,
    corners,
    k,
    rounds,
    per_corner_median_ns,
    per_corner_mean_ns,
    fused_median_ns,
    fused_mean_ns,
    speedup_median,
    speedup_mean,
    optional
});

/// One timed round of the fused side: K resizes, one worst-slack read.
#[inline(never)]
fn run_fused(graph: &mut TimingGraph, changes: &[(GateId, f64)]) -> (Option<f64>, f64) {
    let t0 = Instant::now();
    graph.resize_gates(changes.iter().copied());
    let w = std::hint::black_box(graph.worst_slack_overall_ps());
    (w, t0.elapsed().as_nanos() as f64)
}

/// One timed round of the per-corner side: the same K resizes and a
/// worst-slack read on *every* single-corner twin, plus the fold the
/// fused engine maintains for free.
#[inline(never)]
fn run_per_corner(twins: &mut [TimingGraph], changes: &[(GateId, f64)]) -> (Option<f64>, f64) {
    let t0 = Instant::now();
    let mut worst = f64::INFINITY;
    for g in twins.iter_mut() {
        g.resize_gates(changes.iter().copied());
        if let Some(w) = std::hint::black_box(g.worst_slack_overall_ps()) {
            worst = worst.min(w);
        }
    }
    let w = (worst != f64::INFINITY).then_some(worst);
    (w, t0.elapsed().as_nanos() as f64)
}

/// The K gates of one round: a non-wrapping chunk of the gate cycle
/// (same scheme as `sta_forward`).
fn round_gates(gates: &[GateId], cursor: &mut usize, k: usize) -> Vec<GateId> {
    if *cursor + k > gates.len() {
        *cursor = 0;
        return gates[gates.len() - k..].to_vec();
    }
    let chunk = gates[*cursor..*cursor + k].to_vec();
    *cursor += k;
    chunk
}

fn main() {
    let lib = Library::cmos025();
    let set = CornerSet::slow_typical_fast(Process::cmos025());
    let corner_libs: Vec<Library> = set.iter().map(|p| Library::new(p.clone())).collect();
    let options = AnalyzeOptions::default();
    let mut rows = Vec::new();

    for name in ["fpd", "c432", "c880", "c1908", "c6288", "c7552"] {
        let circuit = suite::circuit(name).expect("suite circuit");
        let sizing = Sizing::minimum(&circuit, &lib);
        let gates: Vec<GateId> = circuit.gate_ids().collect();

        let mut fused =
            TimingGraph::with_corners(&circuit, &lib, &sizing, &options, &set).expect("acyclic");
        let mut twins: Vec<TimingGraph> = corner_libs
            .iter()
            .map(|l| TimingGraph::with_options(&circuit, l, &sizing, &options).expect("acyclic"))
            .collect();
        let tc = 0.95 * fused.critical_delay_ps();
        fused.set_constraint(tc);
        for g in &mut twins {
            g.set_constraint(tc);
        }

        // Warm-up: one full flush on every graph from a whole-design
        // resize, so the measured rounds start from settled state.
        let warm: Vec<(GateId, f64)> = gates.iter().map(|&g| (g, sizing.cin_ff(g) * 1.1)).collect();
        let _ = run_fused(&mut fused, &warm);
        let _ = run_per_corner(&mut twins, &warm);

        let base: Vec<f64> = gates.iter().map(|&g| fused.sizing().cin_ff(g)).collect();

        for k in [1usize, 8, 64] {
            let k = k.min(gates.len());
            let rounds = gates.len().div_ceil(k).max(512 / k).max(16);
            let mut cursor = 0usize;
            let mut phase = vec![false; gates.len()];
            let mut fused_ns = Vec::with_capacity(rounds);
            let mut split_ns = Vec::with_capacity(rounds);

            for round in 0..rounds {
                let chunk = round_gates(&gates, &mut cursor, k);
                let changes: Vec<(GateId, f64)> = chunk
                    .iter()
                    .map(|&g| {
                        let i = g.index();
                        phase[i] = !phase[i];
                        (g, base[i] * if phase[i] { 1.2 } else { 1.0 })
                    })
                    .collect();

                // Alternate which side is timed first each round so the
                // cold-cache penalty cancels within round pairs.
                let (w_fused, w_split);
                if round % 2 == 0 {
                    let (w, ns) = run_fused(&mut fused, &changes);
                    w_fused = w;
                    fused_ns.push(ns);
                    let (w, ns) = run_per_corner(&mut twins, &changes);
                    w_split = w;
                    split_ns.push(ns);
                } else {
                    let (w, ns) = run_per_corner(&mut twins, &changes);
                    w_split = w;
                    split_ns.push(ns);
                    let (w, ns) = run_fused(&mut fused, &changes);
                    w_fused = w;
                    fused_ns.push(ns);
                }

                // The bench is only valid while the fused fold and the
                // independent corners agree bit-for-bit.
                assert_eq!(
                    w_fused.map(f64::to_bits),
                    w_split.map(f64::to_bits),
                    "{name} K={k}: fused worst-over-corners diverged"
                );
                for (c, twin) in twins.iter().enumerate() {
                    assert_eq!(
                        fused.worst_slack_overall_ps_corner(c).map(f64::to_bits),
                        twin.worst_slack_overall_ps().map(f64::to_bits),
                        "{name} K={k}: corner {c} diverged"
                    );
                }
            }

            // Restore the base sizing for the next K.
            let restore: Vec<(GateId, f64)> = gates.iter().map(|&g| (g, base[g.index()])).collect();
            let _ = run_fused(&mut fused, &restore);
            let _ = run_per_corner(&mut twins, &restore);

            let pair_ratios: Vec<f64> = split_ns
                .chunks_exact(2)
                .zip(fused_ns.chunks_exact(2))
                .map(|(s, f)| (s[0] + s[1]) / (f[0] + f[1]))
                .collect();
            rows.push(CornerRow {
                kind: "corners",
                circuit: name.to_string(),
                gates: circuit.gate_count(),
                corners: set.len(),
                k,
                rounds,
                per_corner_median_ns: median(split_ns.clone()),
                per_corner_mean_ns: mean(&split_ns),
                fused_median_ns: median(fused_ns.clone()),
                fused_mean_ns: mean(&fused_ns),
                speedup_median: median(pair_ratios),
                speedup_mean: mean(&split_ns) / mean(&fused_ns),
                optional: true,
            });
        }
    }

    println!(
        "circuit      gates  corners    K  rounds  per-corner median  fused median   speedup (median / mean)"
    );
    for r in &rows {
        println!(
            "{:<10} {:>6} {:>8} {:>4} {:>7}  {:>17}  {:>12}  {:>7.2}x / {:.2}x",
            r.circuit,
            r.gates,
            r.corners,
            r.k,
            r.rounds,
            format_ns(r.per_corner_median_ns),
            format_ns(r.fused_median_ns),
            r.speedup_median,
            r.speedup_mean,
        );
    }

    write_baseline("sta_corners", &rows);
}
