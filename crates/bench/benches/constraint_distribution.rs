//! Criterion counterpart of Table 1: deterministic constant-sensitivity
//! distribution vs the TILOS-style iterative baseline, per circuit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pops_amps::{greedy_size_for_constraint, GreedyOptions};
use pops_bench::workload;
use pops_core::bounds::delay_bounds;
use pops_core::sensitivity::distribute_constraint;
use pops_delay::Library;
use std::hint::black_box;

fn bench_constraint_distribution(c: &mut Criterion) {
    let lib = Library::cmos025();
    let mut group = c.benchmark_group("constraint_distribution");
    group.sample_size(10);
    for name in ["fpd", "c432", "c1908", "c6288"] {
        let w = workload(&lib, name);
        let b = delay_bounds(&lib, &w.path);
        let tc = 1.2 * b.tmin_ps;
        group.bench_with_input(BenchmarkId::new("pops", name), &w, |bench, w| {
            bench.iter(|| black_box(distribute_constraint(&lib, &w.path, tc)))
        });
        // The iterative baseline is orders of magnitude slower: keep it to
        // the two smaller circuits so the suite stays runnable.
        if matches!(name, "fpd" | "c432") {
            group.bench_with_input(BenchmarkId::new("amps_greedy", name), &w, |bench, w| {
                bench.iter(|| {
                    black_box(greedy_size_for_constraint(
                        &lib,
                        &w.path,
                        tc,
                        &GreedyOptions::default(),
                    ))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_constraint_distribution);
criterion_main!(benches);
