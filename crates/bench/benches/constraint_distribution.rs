//! Micro-bench counterpart of Table 1: deterministic constant-sensitivity
//! distribution vs the TILOS-style iterative baseline, per circuit.

use pops_amps::{greedy_size_for_constraint, GreedyOptions};
use pops_bench::microbench::Runner;
use pops_bench::workload;
use pops_core::bounds::delay_bounds;
use pops_core::sensitivity::distribute_constraint;
use pops_delay::Library;

fn main() {
    let lib = Library::cmos025();
    let mut runner = Runner::new("constraint_distribution");
    for name in ["fpd", "c432", "c1908", "c6288"] {
        let w = workload(&lib, name);
        let b = delay_bounds(&lib, &w.path);
        let tc = 1.2 * b.tmin_ps;
        runner.bench(&format!("pops/{name}"), || {
            distribute_constraint(&lib, &w.path, tc)
        });
        // The iterative baseline is orders of magnitude slower: keep it to
        // the two smaller circuits so the suite stays runnable.
        if matches!(name, "fpd" | "c432") {
            runner.bench(&format!("amps_greedy/{name}"), || {
                greedy_size_for_constraint(&lib, &w.path, tc, &GreedyOptions::default())
            });
        }
    }
    runner.finish();
}
