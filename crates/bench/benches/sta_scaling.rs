//! Million-gate scaling characterization on the synthetic fabrics
//! (`synth10k` / `synth100k` / `synth1m`): four row families, one
//! committed artifact (`BENCH_sta_scaling.json`).
//!
//! * `full_sweep` — forced-sweep throughput (budgets `(0,1)`): one gate
//!   resize per round, the delay read pays a whole rank-major forward
//!   sweep. One row per worker-thread count; `parallel_speedup_median`
//!   is the 1-thread median over this row's median. Every thread row
//!   records `host_cores` (the recording host's available parallelism)
//!   so `bench_gate` can tell a comparable environment from an
//!   oversubscribed one; worker counts beyond the host's cores are
//!   dropped up front — a 4-worker pool on a 1-core container measures
//!   scheduler thrash, not scaling.
//! * `backward_sweep` — same shape for the backward direction: each
//!   round toggles the timing constraint (wholesale backward
//!   invalidation) so the worst-slack read pays exactly one gate-centric
//!   `sweep_required_full` plus the worst-slack index refold, the
//!   level-barrier parallel path under test.
//! * `lazy` — the merged-flush-vs-per-mutation workload of
//!   `sta_forward`, K resizes per delay read, on the fabrics. The
//!   speedup is a ratio of two strategies on the same machine in the
//!   same process, so these rows ARE gated (the `synth10k` rows are
//!   mandatory — CI reproduces them; larger classes are `optional`).
//! * `calibration` — drain-vs-sweep cost at seeded dirty fractions
//!   0.25/0.5/0.75/0.9: pure-drain budgets `(1,1)` against forced-sweep
//!   budgets `(0,1)` on twin graphs under identical mutations.
//!   `drain_over_sweep` < 1 means the cone drain still wins at that
//!   dirty fraction.
//! * `budget_config` — the configured ¾-rank forward / ⅓-rank backward
//!   cut-over fractions next to `measured_crossover_fraction`, the
//!   interpolated dirty fraction where the calibration ratio crosses
//!   1.0 — the budget defaults justified by measurement, per size
//!   class, not by reasoning.
//!
//! Every timed comparison cross-checks the two sides bit-for-bit each
//! round; a divergence aborts the bench.
//!
//! Environment knobs (CI runs the small class only):
//!
//! * `STA_SCALING_CLASSES` — comma list of class names
//!   (default `synth10k,synth100k`; `synth1m` opts in the full run).
//! * `STA_SCALING_THREADS` — comma list of worker counts for the
//!   `full_sweep` / `backward_sweep` rows (default `1,2,4,8`; `1` is
//!   always prepended — it anchors the speedup column; counts beyond
//!   the host's cores are dropped with a note).

use std::time::Instant;

use pops_bench::json::ToJson;
use pops_bench::microbench::format_ns;
use pops_bench::{mean, median, write_baseline};
use pops_delay::Library;
use pops_netlist::{suite, GateId};
use pops_sta::{Sizing, TimingGraph};

struct SweepRow {
    kind: &'static str,
    circuit: String,
    gates: usize,
    threads: usize,
    host_cores: usize,
    rounds: usize,
    sweep_median_ns: f64,
    sweep_mean_ns: f64,
    gates_per_sec: f64,
    parallel_speedup_median: f64,
    optional: bool,
}
pops_bench::json_fields!(SweepRow {
    kind,
    circuit,
    gates,
    threads,
    host_cores,
    rounds,
    sweep_median_ns,
    sweep_mean_ns,
    gates_per_sec,
    parallel_speedup_median,
    optional
});

struct LazyRow {
    kind: &'static str,
    circuit: String,
    gates: usize,
    k: usize,
    rounds: usize,
    eager_median_ns: f64,
    eager_mean_ns: f64,
    merged_median_ns: f64,
    merged_mean_ns: f64,
    speedup_median: f64,
    speedup_mean: f64,
    optional: bool,
}
pops_bench::json_fields!(LazyRow {
    kind,
    circuit,
    gates,
    k,
    rounds,
    eager_median_ns,
    eager_mean_ns,
    merged_median_ns,
    merged_mean_ns,
    speedup_median,
    speedup_mean,
    optional
});

struct CalibRow {
    kind: &'static str,
    circuit: String,
    gates: usize,
    rounds: usize,
    dirty_fraction: f64,
    drain_median_ns: f64,
    sweep_median_ns: f64,
    drain_over_sweep: f64,
    optional: bool,
}
pops_bench::json_fields!(CalibRow {
    kind,
    circuit,
    gates,
    rounds,
    dirty_fraction,
    drain_median_ns,
    sweep_median_ns,
    drain_over_sweep,
    optional
});

struct ConfigRow {
    kind: &'static str,
    circuit: String,
    gates: usize,
    fwd_budget: (u32, u32),
    bwd_budget: (u32, u32),
    forward_sweep_fraction: f64,
    backward_sweep_fraction: f64,
    measured_crossover_fraction: f64,
    default_threads: usize,
    parallel_threshold: usize,
    optional: bool,
}
pops_bench::json_fields!(ConfigRow {
    kind,
    circuit,
    gates,
    fwd_budget,
    bwd_budget,
    forward_sweep_fraction,
    backward_sweep_fraction,
    measured_crossover_fraction,
    default_threads,
    parallel_threshold,
    optional
});

enum Row {
    Sweep(SweepRow),
    Lazy(LazyRow),
    Calib(CalibRow),
    Config(ConfigRow),
}
impl ToJson for Row {
    fn write_json(&self, out: &mut String) {
        match self {
            Row::Sweep(r) => r.write_json(out),
            Row::Lazy(r) => r.write_json(out),
            Row::Calib(r) => r.write_json(out),
            Row::Config(r) => r.write_json(out),
        }
    }
}

/// The recording host's available parallelism, stamped onto every
/// thread row so the gate can tell whether the environment could
/// actually run that many workers.
fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn env_list(name: &str, default: &str) -> Vec<String> {
    std::env::var(name)
        .unwrap_or_else(|_| default.to_string())
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// `count` distinct gates spread evenly across the id range, so a
/// probe set of any size touches every region of the fabric instead of
/// one corner of it.
fn spaced_gates(gates: &[GateId], count: usize) -> Vec<GateId> {
    let count = count.clamp(1, gates.len());
    let step = gates.len() as f64 / count as f64;
    (0..count)
        .map(|i| gates[(i as f64 * step) as usize])
        .collect()
}

/// Dirty fraction where the drain/sweep cost ratio crosses 1.0,
/// linearly interpolated between the two bracketing calibration points.
/// If the drain never wins the crossover is the first fraction; if it
/// never loses, the last (the real crossover sits at or beyond the
/// measured range — the artifact records the bound actually observed).
fn crossover_fraction(points: &[(f64, f64)]) -> f64 {
    match points.first() {
        None => 0.0,
        Some(&(f0, r0)) if r0 >= 1.0 => f0,
        Some(_) => {
            for w in points.windows(2) {
                let ((f0, r0), (f1, r1)) = (w[0], w[1]);
                if r0 < 1.0 && r1 >= 1.0 {
                    return f0 + (f1 - f0) * (1.0 - r0) / (r1 - r0);
                }
            }
            points.last().unwrap().0
        }
    }
}

fn main() {
    let lib = Library::cmos025();
    let classes = env_list("STA_SCALING_CLASSES", "synth10k,synth100k");
    let mut thread_counts: Vec<usize> = env_list("STA_SCALING_THREADS", "1,2,4,8")
        .iter()
        .map(|s| match s.parse() {
            Ok(0) => panic!("STA_SCALING_THREADS: count must be at least 1, got \"0\""),
            Ok(n) => n,
            Err(e) => panic!("STA_SCALING_THREADS: \"{s}\" is not a count: {e}"),
        })
        .collect();
    if !thread_counts.contains(&1) {
        thread_counts.insert(0, 1);
    }
    thread_counts.sort_unstable();
    thread_counts.dedup();
    // Oversubscribed pools measure scheduler thrash, not scaling: a row
    // recorded that way poisons the artifact (a 1-core container makes
    // `parallel_speedup_median` < 1 by construction). Drop those counts
    // up front instead of recording incomparable numbers.
    let cores = host_cores();
    let dropped: Vec<usize> = thread_counts
        .iter()
        .copied()
        .filter(|&t| t > cores)
        .collect();
    thread_counts.retain(|&t| t <= cores);
    for t in &dropped {
        println!("note: dropping {t}-thread rows — host has {cores} core(s)");
    }

    let mut rows: Vec<Row> = Vec::new();

    for class in &classes {
        let circuit = suite::scaling_circuit(class)
            .unwrap_or_else(|| panic!("unknown scaling class {class:?}"));
        let n = circuit.gate_count();
        let sizing = Sizing::minimum(&circuit, &lib);
        let gates: Vec<GateId> = circuit.gate_ids().collect();
        let mandatory = class == "synth10k";
        println!("== {class} ({n} gates) ==");

        // ---- full-sweep throughput across worker-thread counts ----
        {
            let mut graph = TimingGraph::new(&circuit, &lib, &sizing).expect("acyclic");
            graph.set_sweep_budgets((0, 1), (0, 1)); // every flush is a full sweep
            graph.set_parallel_threshold(0);
            let probe = gates[gates.len() / 2];
            let base = graph.sizing().cin_ff(probe);
            let rounds = ((1usize << 21) / n).clamp(4, 64) & !1;
            let mut anchor_bits: [Option<u64>; 2] = [None, None];
            let mut t1_median = f64::NAN;

            for &t in &thread_counts {
                graph.set_threads(t);
                let mut ns = Vec::with_capacity(rounds);
                for r in 0..rounds {
                    let cin = if r % 2 == 0 { base * 1.2 } else { base };
                    let t0 = Instant::now();
                    graph.resize_gate(probe, cin);
                    let d = std::hint::black_box(graph.critical_delay_ps());
                    ns.push(t0.elapsed().as_nanos() as f64);
                    // The sweep must produce the same bits at every
                    // thread count (phase parity selects which of the
                    // two toggled states this round landed on).
                    match anchor_bits[r % 2] {
                        None => anchor_bits[r % 2] = Some(d.to_bits()),
                        Some(bits) => assert_eq!(
                            bits,
                            d.to_bits(),
                            "{class}: {t}-thread sweep diverged from 1-thread"
                        ),
                    }
                }
                let med = median(ns.clone());
                if t == 1 {
                    t1_median = med;
                }
                let row = SweepRow {
                    kind: "full_sweep",
                    circuit: class.clone(),
                    gates: n,
                    threads: t,
                    host_cores: cores,
                    rounds,
                    sweep_median_ns: med,
                    sweep_mean_ns: mean(&ns),
                    gates_per_sec: n as f64 / (med * 1e-9),
                    parallel_speedup_median: t1_median / med,
                    optional: true,
                };
                println!(
                    "  full_sweep  threads={t}  median {:>10}  {:>12.0} gates/s  speedup {:.2}x",
                    format_ns(row.sweep_median_ns),
                    row.gates_per_sec,
                    row.parallel_speedup_median,
                );
                rows.push(Row::Sweep(row));
            }
        }

        // ---- backward full-sweep throughput across worker-thread counts ----
        {
            let mut graph = TimingGraph::new(&circuit, &lib, &sizing).expect("acyclic");
            graph.set_sweep_budgets((0, 1), (0, 1)); // every flush is a full sweep
            graph.set_parallel_threshold(0);
            // Settle the forward side once up front; each timed round
            // then toggles the constraint — a wholesale backward
            // invalidation — so the worst-slack read pays exactly one
            // gate-centric backward sweep plus the worst-slack index
            // refold, and nothing on the forward side.
            let d0 = graph.critical_delay_ps();
            let tc = [d0 * 1.05, d0 * 1.10];
            let rounds = ((1usize << 21) / n).clamp(4, 64) & !1;
            let mut anchor_bits: [Option<u64>; 2] = [None, None];
            let mut t1_median = f64::NAN;

            for &t in &thread_counts {
                graph.set_threads(t);
                let mut ns = Vec::with_capacity(rounds);
                for r in 0..rounds {
                    let t0 = Instant::now();
                    graph.set_constraint(tc[r % 2]);
                    let s = std::hint::black_box(
                        graph.worst_slack_overall_ps().expect("finite constraint"),
                    );
                    ns.push(t0.elapsed().as_nanos() as f64);
                    match anchor_bits[r % 2] {
                        None => anchor_bits[r % 2] = Some(s.to_bits()),
                        Some(bits) => assert_eq!(
                            bits,
                            s.to_bits(),
                            "{class}: {t}-thread backward sweep diverged from 1-thread"
                        ),
                    }
                }
                let med = median(ns.clone());
                if t == 1 {
                    t1_median = med;
                }
                let row = SweepRow {
                    kind: "backward_sweep",
                    circuit: class.clone(),
                    gates: n,
                    threads: t,
                    host_cores: cores,
                    rounds,
                    sweep_median_ns: med,
                    sweep_mean_ns: mean(&ns),
                    gates_per_sec: n as f64 / (med * 1e-9),
                    parallel_speedup_median: t1_median / med,
                    optional: true,
                };
                println!(
                    "  bwd_sweep   threads={t}  median {:>10}  {:>12.0} gates/s  speedup {:.2}x",
                    format_ns(row.sweep_median_ns),
                    row.gates_per_sec,
                    row.parallel_speedup_median,
                );
                rows.push(Row::Sweep(row));
            }
        }

        // ---- lazy merged flush vs per-mutation reads (the gated rows) ----
        for k in [8usize, 64] {
            let k = k.min(gates.len());
            let rounds = (gates.len() / k).clamp(1, 24);
            let probes = spaced_gates(&gates, k * rounds);
            let mut merged = TimingGraph::new(&circuit, &lib, &sizing).expect("acyclic");
            let mut eager = TimingGraph::new(&circuit, &lib, &sizing).expect("acyclic");
            merged.set_threads(1); // strategy comparison, not thread scaling
            eager.set_threads(1);
            let base: Vec<f64> = probes.iter().map(|&g| merged.sizing().cin_ff(g)).collect();

            // Warm-up: two flushes on each side so the first timed round
            // is not paying the log/bitset allocations.
            for graph in [&mut merged, &mut eager] {
                for _ in 0..2 {
                    graph.resize_gate(probes[0], base[0] * 1.1);
                    let _ = graph.critical_delay_ps();
                    graph.resize_gate(probes[0], base[0]);
                    let _ = graph.critical_delay_ps();
                }
            }

            let mut merged_ns = Vec::with_capacity(rounds);
            let mut eager_ns = Vec::with_capacity(rounds);
            for r in 0..rounds {
                let chunk: Vec<(GateId, f64)> = (r * k..(r + 1) * k)
                    .map(|i| (probes[i], base[i] * 1.2))
                    .collect();

                let t0 = Instant::now();
                for &(g, cin) in &chunk {
                    merged.resize_gate(g, cin);
                }
                let d_merged = std::hint::black_box(merged.critical_delay_ps());
                merged_ns.push(t0.elapsed().as_nanos() as f64);

                let t0 = Instant::now();
                let mut d_eager = 0.0;
                for &(g, cin) in &chunk {
                    eager.resize_gate(g, cin);
                    d_eager = std::hint::black_box(eager.critical_delay_ps());
                }
                eager_ns.push(t0.elapsed().as_nanos() as f64);

                assert_eq!(
                    d_merged.to_bits(),
                    d_eager.to_bits(),
                    "{class} K={k}: merged flush diverged from per-mutation reads"
                );
            }

            let (m_med, m_mean) = (median(merged_ns.clone()), mean(&merged_ns));
            let (e_med, e_mean) = (median(eager_ns.clone()), mean(&eager_ns));
            let row = LazyRow {
                kind: "lazy",
                circuit: class.clone(),
                gates: n,
                k,
                rounds,
                eager_median_ns: e_med,
                eager_mean_ns: e_mean,
                merged_median_ns: m_med,
                merged_mean_ns: m_mean,
                speedup_median: e_med / m_med,
                speedup_mean: e_mean / m_mean,
                optional: !mandatory,
            };
            println!(
                "  lazy        K={k:<3}  per-mut {:>10}  merged {:>10}  speedup {:.1}x / {:.1}x",
                format_ns(e_med),
                format_ns(m_med),
                row.speedup_median,
                row.speedup_mean,
            );
            rows.push(Row::Lazy(row));
        }

        // ---- drain-vs-sweep calibration across dirty fractions ----
        let mut calib_points: Vec<(f64, f64)> = Vec::new();
        {
            let mut drain = TimingGraph::new(&circuit, &lib, &sizing).expect("acyclic");
            let mut sweep = TimingGraph::new(&circuit, &lib, &sizing).expect("acyclic");
            drain.set_threads(1);
            sweep.set_threads(1);
            drain.set_sweep_budgets((1, 1), (1, 1)); // the cut-over can never fire
            sweep.set_sweep_budgets((0, 1), (0, 1)); // every flush is a full sweep
            let rounds = ((1usize << 20) / n).clamp(4, 8) & !1;

            for fraction in [0.25f64, 0.5, 0.75, 0.9] {
                let dirty = spaced_gates(&gates, (fraction * n as f64) as usize);
                let base: Vec<f64> = dirty.iter().map(|&g| drain.sizing().cin_ff(g)).collect();
                let mut drain_ns = Vec::with_capacity(rounds);
                let mut sweep_ns = Vec::with_capacity(rounds);

                for r in 0..rounds {
                    let scale = if r % 2 == 0 { 1.2 } else { 1.0 };
                    let changes: Vec<(GateId, f64)> = dirty
                        .iter()
                        .zip(&base)
                        .map(|(&g, &b)| (g, b * scale))
                        .collect();

                    let t0 = Instant::now();
                    drain.resize_gates(changes.iter().copied());
                    let d_drain = std::hint::black_box(drain.critical_delay_ps());
                    drain_ns.push(t0.elapsed().as_nanos() as f64);

                    let t0 = Instant::now();
                    sweep.resize_gates(changes.iter().copied());
                    let d_sweep = std::hint::black_box(sweep.critical_delay_ps());
                    sweep_ns.push(t0.elapsed().as_nanos() as f64);

                    assert_eq!(
                        d_drain.to_bits(),
                        d_sweep.to_bits(),
                        "{class} f={fraction}: drain diverged from forced sweep"
                    );
                }

                let (d_med, s_med) = (median(drain_ns), median(sweep_ns.clone()));
                let ratio = d_med / s_med;
                calib_points.push((fraction, ratio));
                println!(
                    "  calibration f={fraction:<4}  drain {:>10}  sweep {:>10}  ratio {ratio:.2}",
                    format_ns(d_med),
                    format_ns(s_med),
                );
                rows.push(Row::Calib(CalibRow {
                    kind: "calibration",
                    circuit: class.clone(),
                    gates: n,
                    rounds,
                    dirty_fraction: fraction,
                    drain_median_ns: d_med,
                    sweep_median_ns: s_med,
                    drain_over_sweep: ratio,
                    optional: true,
                }));
            }
        }

        // ---- configured budgets next to the measured crossover ----
        {
            let graph = TimingGraph::new(&circuit, &lib, &sizing).expect("acyclic");
            let (fwd, bwd) = graph.sweep_budgets();
            let crossover = crossover_fraction(&calib_points);
            println!(
                "  budget_config  fwd {}/{}  bwd {}/{}  measured crossover {crossover:.2}",
                fwd.0, fwd.1, bwd.0, bwd.1,
            );
            rows.push(Row::Config(ConfigRow {
                kind: "budget_config",
                circuit: class.clone(),
                gates: n,
                fwd_budget: fwd,
                bwd_budget: bwd,
                forward_sweep_fraction: f64::from(fwd.0) / f64::from(fwd.1),
                backward_sweep_fraction: f64::from(bwd.0) / f64::from(bwd.1),
                measured_crossover_fraction: crossover,
                default_threads: graph.threads(),
                parallel_threshold: graph.parallel_threshold(),
                optional: true,
            }));
        }
    }

    write_baseline("sta_scaling", &rows);
}
