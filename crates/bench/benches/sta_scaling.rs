//! Bench the STA front end (analysis + critical path extraction) across
//! the benchmark suite sizes (160 … 3512 gates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pops_delay::Library;
use pops_netlist::suite;
use pops_sta::analysis::analyze;
use pops_sta::{k_most_critical_paths, Sizing};
use std::hint::black_box;

fn bench_sta(c: &mut Criterion) {
    let lib = Library::cmos025();
    let mut group = c.benchmark_group("sta_scaling");
    for name in ["c432", "c880", "c1908", "c7552"] {
        let circuit = suite::circuit(name).expect("suite circuit");
        let sizing = Sizing::minimum(&circuit, &lib);
        group.bench_with_input(BenchmarkId::new("analyze", name), &circuit, |b, circ| {
            b.iter(|| black_box(analyze(circ, &lib, &sizing)))
        });
        let report = analyze(&circuit, &lib, &sizing).expect("acyclic");
        group.bench_with_input(
            BenchmarkId::new("k_paths_16", name),
            &circuit,
            |b, circ| b.iter(|| black_box(k_most_critical_paths(circ, &report, 16))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sta);
criterion_main!(benches);
