//! Bench the STA front end (analysis + critical path extraction) across
//! the benchmark suite sizes (160 … 3512 gates).

use pops_bench::microbench::Runner;
use pops_delay::Library;
use pops_netlist::suite;
use pops_sta::analysis::analyze;
use pops_sta::{k_most_critical_paths, Sizing};

fn main() {
    let lib = Library::cmos025();
    let mut runner = Runner::new("sta_scaling");
    for name in ["c432", "c880", "c1908", "c7552"] {
        let circuit = suite::circuit(name).expect("suite circuit");
        let sizing = Sizing::minimum(&circuit, &lib);
        runner.bench(&format!("analyze/{name}"), || {
            analyze(&circuit, &lib, &sizing)
        });
        let report = analyze(&circuit, &lib, &sizing).expect("acyclic");
        runner.bench(&format!("k_paths_16/{name}"), || {
            k_most_critical_paths(&circuit, &report, 16)
        });
    }
    runner.finish();
}
