//! Bench the `Flimit` library characterization (the pre-processing step
//! of the Fig. 7 protocol — "Library characterization (Flimit
//! determination)").

use pops_bench::microbench::Runner;
use pops_core::buffer::{flimit, flimit_table};
use pops_delay::Library;
use pops_netlist::CellKind;

fn main() {
    let lib = Library::cmos025();
    let mut runner = Runner::new("flimit");
    for gate in [CellKind::Inv, CellKind::Nand3, CellKind::Nor3] {
        runner.bench(&format!("flimit/{gate}"), || {
            flimit(&lib, CellKind::Inv, gate)
        });
    }

    let gates = [
        CellKind::Inv,
        CellKind::Nand2,
        CellKind::Nand3,
        CellKind::Nor2,
        CellKind::Nor3,
    ];
    runner.bench("flimit_table_5", || flimit_table(&lib, &gates));
    runner.finish();
}
