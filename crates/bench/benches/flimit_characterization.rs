//! Bench the `Flimit` library characterization (the pre-processing step
//! of the Fig. 7 protocol — "Library characterization (Flimit
//! determination)").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pops_core::buffer::{flimit, flimit_table};
use pops_delay::Library;
use pops_netlist::CellKind;
use std::hint::black_box;

fn bench_flimit(c: &mut Criterion) {
    let lib = Library::cmos025();
    let mut group = c.benchmark_group("flimit");
    for gate in [CellKind::Inv, CellKind::Nand3, CellKind::Nor3] {
        group.bench_with_input(
            BenchmarkId::from_parameter(gate),
            &gate,
            |b, &g| b.iter(|| black_box(flimit(&lib, CellKind::Inv, g))),
        );
    }
    group.finish();

    let gates = [
        CellKind::Inv,
        CellKind::Nand2,
        CellKind::Nand3,
        CellKind::Nor2,
        CellKind::Nor3,
    ];
    c.bench_function("flimit_table_5", |b| {
        b.iter(|| black_box(flimit_table(&lib, &gates)))
    });
}

criterion_group!(benches, bench_flimit);
criterion_main!(benches);
