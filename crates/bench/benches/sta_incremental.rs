//! Incremental vs full STA on the sizing loop's hot operation: resize
//! one gate, then re-query the critical delay.
//!
//! `full` re-runs `analyze()` from scratch per iteration (what the flow
//! did before the incremental engine). The incremental side sweeps a
//! probe over **every** gate of the circuit — resize by 1.2×, re-query
//! the critical delay, revert (two dirty-cone updates, the
//! sensitivity/greedy probing pattern) — timing each probe individually.
//!
//! Cone sizes are heavily skewed (median cone ≈ 20 gates, while the few
//! gates next to the primary inputs fan out to a third of the circuit),
//! so both the median (typical-gate) and mean per-probe times are
//! reported. Results are recorded as a baseline in
//! `BENCH_sta_incremental.json` at the repository root.

use std::time::Instant;

use pops_bench::microbench::format_ns;
use pops_bench::{mean, median, write_baseline};
use pops_delay::Library;
use pops_netlist::suite;
use pops_sta::analysis::analyze;
use pops_sta::{Sizing, TimingGraph};

struct CircuitBaseline {
    circuit: String,
    gates: usize,
    full_reanalyze_ns: f64,
    probe_median_ns: f64,
    probe_mean_ns: f64,
    speedup_median: f64,
    speedup_mean: f64,
}
pops_bench::json_fields!(CircuitBaseline {
    circuit,
    gates,
    full_reanalyze_ns,
    probe_median_ns,
    probe_mean_ns,
    speedup_median,
    speedup_mean
});

/// Median full-analysis time (one "iteration" of the pre-incremental
/// sizing loop), over enough repeats to be stable.
fn measure_full(circuit: &pops_netlist::Circuit, lib: &Library, sizing: &Sizing) -> f64 {
    let samples = 15usize;
    let reps = 4usize;
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..reps {
            let r = analyze(circuit, lib, sizing).expect("acyclic");
            std::hint::black_box(r.critical_delay_ps());
        }
        times.push(t0.elapsed().as_nanos() as f64 / reps as f64);
    }
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    let lib = Library::cmos025();
    let mut baselines = Vec::new();

    for name in ["fpd", "c432", "c880", "c1908", "c6288", "c7552"] {
        let circuit = suite::circuit(name).expect("suite circuit");
        let sizing = Sizing::minimum(&circuit, &lib);
        let full = measure_full(&circuit, &lib, &sizing);

        let mut graph = TimingGraph::new(&circuit, &lib, &sizing).expect("acyclic");
        let gates: Vec<_> = circuit.gate_ids().collect();

        // Warm-up sweep (touch every cone once), then the measured
        // sweep. The delay reads force the (lazy) flush per step so the
        // measured probes start from settled state instead of paying
        // one giant merged cone on the first read.
        for &g in &gates {
            let orig = graph.sizing().cin_ff(g);
            graph.resize_gate(g, orig * 1.2);
            let _ = graph.critical_delay_ps();
            graph.resize_gate(g, orig);
            let _ = graph.critical_delay_ps();
        }
        let mut probe_ns: Vec<f64> = Vec::with_capacity(gates.len());
        for &g in &gates {
            let orig = graph.sizing().cin_ff(g);
            let t0 = Instant::now();
            graph.resize_gate(g, orig * 1.2);
            std::hint::black_box(graph.critical_delay_ps());
            graph.resize_gate(g, orig);
            probe_ns.push(t0.elapsed().as_nanos() as f64);
        }
        let (probe_median, probe_mean) = (median(probe_ns.clone()), mean(&probe_ns));

        baselines.push(CircuitBaseline {
            circuit: name.to_string(),
            gates: circuit.gate_count(),
            full_reanalyze_ns: full,
            probe_median_ns: probe_median,
            probe_mean_ns: probe_mean,
            speedup_median: full / probe_median,
            speedup_mean: full / probe_mean,
        });
    }

    println!(
        "circuit      gates   full/iter   probe median   probe mean   speedup (median / mean)"
    );
    for b in &baselines {
        println!(
            "{:<10} {:>6}  {:>10}  {:>12}  {:>11}  {:>7.1}x / {:.1}x",
            b.circuit,
            b.gates,
            format_ns(b.full_reanalyze_ns),
            format_ns(b.probe_median_ns),
            format_ns(b.probe_mean_ns),
            b.speedup_median,
            b.speedup_mean,
        );
    }

    write_baseline("sta_incremental", &baselines);
}
