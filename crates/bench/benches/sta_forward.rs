//! Lazy forward flushing on the burst-mutate workload: K gate resizes
//! per critical-delay read, K ∈ {1, 8, 64} — the sizing loop's
//! write-back pattern with the slack side factored out (no constraint
//! is ever set, so the measured difference is purely the *forward*
//! strategy).
//!
//! Both sides execute the identical mutation sequence:
//!
//! * `merged` — the lazy engine as-is: K resizes only append forward
//!   seed logs; the one delay read per round drains the merged cone
//!   (overlapping cones deduplicate in the rank bitset, and the
//!   budgeted cut-over caps a saturated flush at one full topo sweep).
//! * `per-mutation` — what the same round cost before PR 5: a delay
//!   read after *every* resize forces the flush each mutation, i.e. the
//!   old eager `resize → propagate` semantics expressed through the
//!   query API (identical arc evaluations, identical bits).
//!
//! Gate sizes toggle between their base value and 1.2× as the round
//! cursor cycles the gate list, keeping the state bounded without
//! probe/revert pairs. Per-round times are collected over enough rounds
//! to cycle every gate, alternating which side is timed first each
//! round (the first-timed side pays the round's cold caches — timing
//! one side first systematically biased K = 1 below 1.0×).
//! `speedup_median` is the median over *round pairs* of the paired
//! ratio `(e₀+e₁)/(m₀+m₁)`: each pair contains one merged-first and one
//! eager-first round, so order bias and load drift cancel inside the
//! pair. Per-side medians and means ride along, and the two sides are
//! cross-checked bit-for-bit every round. Results are recorded in
//! `BENCH_sta_forward.json` at the repository root; the acceptance bar
//! is a median speedup > 1.0 from K = 8 on every suite circuit (at
//! K = 1 the sides do identical work and the ratio sits at ~1.0, the
//! lazy bookkeeping being noise).

use std::time::Instant;

use pops_bench::microbench::format_ns;
use pops_bench::{mean, median, write_baseline};
use pops_delay::Library;
use pops_netlist::{suite, GateId};
use pops_sta::{Sizing, TimingGraph};

struct WorkloadBaseline {
    circuit: String,
    gates: usize,
    k: usize,
    rounds: usize,
    eager_median_ns: f64,
    eager_mean_ns: f64,
    merged_median_ns: f64,
    merged_mean_ns: f64,
    speedup_median: f64,
    speedup_mean: f64,
}
pops_bench::json_fields!(WorkloadBaseline {
    circuit,
    gates,
    k,
    rounds,
    eager_median_ns,
    eager_mean_ns,
    merged_median_ns,
    merged_mean_ns,
    speedup_median,
    speedup_mean
});

/// One timed round of one side. Both strategies run through this one
/// function so they execute the same machine code — separate loops per
/// side give the branch predictor and icache a systematic preference
/// for one of them, which is visible at K = 1 where the strategies
/// otherwise do identical work.
///
/// * `per_mutation = false` — merged: K resizes append seed logs, the
///   single delay read drains the merged cone.
/// * `per_mutation = true` — a delay read after every resize forces the
///   flush each mutation, the pre-lazy eager semantics.
///
/// Returns the final delay and the elapsed nanoseconds.
#[inline(never)]
fn run_side(graph: &mut TimingGraph, changes: &[(GateId, f64)], per_mutation: bool) -> (f64, f64) {
    let t0 = Instant::now();
    let mut d = 0.0;
    for &(g, cin) in changes {
        graph.resize_gate(g, cin);
        if per_mutation {
            d = std::hint::black_box(graph.critical_delay_ps());
        }
    }
    if !per_mutation {
        d = std::hint::black_box(graph.critical_delay_ps());
    }
    (d, t0.elapsed().as_nanos() as f64)
}

/// The K gates of one round: a non-wrapping chunk of the gate cycle,
/// without duplicates within one round. When fewer than K gates remain,
/// the round takes the *last* K (overlapping the previous chunk) so the
/// `len % K` tail gates are exercised too, then the cursor restarts.
fn round_gates(gates: &[GateId], cursor: &mut usize, k: usize) -> Vec<GateId> {
    if *cursor + k > gates.len() {
        *cursor = 0;
        return gates[gates.len() - k..].to_vec();
    }
    let chunk = gates[*cursor..*cursor + k].to_vec();
    *cursor += k;
    chunk
}

fn main() {
    let lib = Library::cmos025();
    let mut baselines = Vec::new();

    for name in ["fpd", "c432", "c880", "c1908", "c6288", "c7552"] {
        let circuit = suite::circuit(name).expect("suite circuit");
        let sizing = Sizing::minimum(&circuit, &lib);
        let gates: Vec<GateId> = circuit.gate_ids().collect();

        let mut merged = TimingGraph::new(&circuit, &lib, &sizing).expect("acyclic");
        let mut eager = TimingGraph::new(&circuit, &lib, &sizing).expect("acyclic");

        // Warm-up: touch every cone once on both graphs, flushing per
        // step so the measured rounds start from settled state.
        for &g in &gates {
            let orig = merged.sizing().cin_ff(g);
            for graph in [&mut merged, &mut eager] {
                graph.resize_gate(g, orig * 1.2);
                let _ = graph.critical_delay_ps();
                graph.resize_gate(g, orig);
                let _ = graph.critical_delay_ps();
            }
        }

        // Base sizes and per-gate toggle phase (shared by both sides so
        // their mutation sequences stay identical).
        let base: Vec<f64> = gates.iter().map(|&g| merged.sizing().cin_ff(g)).collect();

        for k in [1usize, 8, 64] {
            let k = k.min(gates.len());
            // Enough rounds to touch every gate at least once, with a
            // floor that scales the sample count up as K shrinks — the
            // K = 1 rounds are microsecond-sized and their median is
            // the acceptance-gated ~1.0× anchor, so it needs the most
            // samples to sit still on a noisy runner.
            let rounds = gates.len().div_ceil(k).max(1024 / k).max(32);
            let mut cursor = 0usize;
            let mut phase = vec![false; gates.len()];
            let mut merged_ns = Vec::with_capacity(rounds);
            let mut eager_ns = Vec::with_capacity(rounds);

            for round in 0..rounds {
                let chunk = round_gates(&gates, &mut cursor, k);
                let changes: Vec<(GateId, f64)> = chunk
                    .iter()
                    .map(|&g| {
                        let i = g.index();
                        phase[i] = !phase[i];
                        (g, base[i] * if phase[i] { 1.2 } else { 1.0 })
                    })
                    .collect();

                // Alternate which side is timed first each round: the
                // first-timed side pays the round's cold caches (the
                // cone's slabs were last touched a whole gate cycle
                // ago), which showed up as a systematic ~0.9× at K = 1
                // where the two sides otherwise do identical work.
                let mut d_merged = 0.0;
                let mut d_eager = 0.0;
                for side in 0..2 {
                    if (round + side) % 2 == 0 {
                        let (d, ns) = run_side(&mut merged, &changes, false);
                        d_merged = d;
                        merged_ns.push(ns);
                    } else {
                        let (d, ns) = run_side(&mut eager, &changes, true);
                        d_eager = d;
                        eager_ns.push(ns);
                    }
                }

                // The bench is only valid while both sides agree
                // bit-for-bit at every round boundary.
                assert_eq!(
                    d_merged.to_bits(),
                    d_eager.to_bits(),
                    "{name} K={k}: merged flush diverged from per-mutation propagation"
                );
            }

            // Restore the base sizing for the next K.
            for graph in [&mut merged, &mut eager] {
                graph.resize_gates(gates.iter().map(|&g| (g, base[g.index()])));
                let _ = graph.critical_delay_ps();
            }

            let (m_med, m_mean) = (median(merged_ns.clone()), mean(&merged_ns));
            let (e_med, e_mean) = (median(eager_ns.clone()), mean(&eager_ns));
            // Paired speedup estimator: consecutive rounds alternate
            // which side is timed first, so summing each pair puts one
            // cold-first round of *each* side in both numerator and
            // denominator — order bias and load drift cancel within the
            // pair, and the median over pairs is far tighter than the
            // ratio of grand medians on a noisy runner. At K = 1 the
            // sides do identical work and this sits at 1.0×.
            let pair_ratios: Vec<f64> = eager_ns
                .chunks_exact(2)
                .zip(merged_ns.chunks_exact(2))
                .map(|(e, m)| (e[0] + e[1]) / (m[0] + m[1]))
                .collect();
            baselines.push(WorkloadBaseline {
                circuit: name.to_string(),
                gates: circuit.gate_count(),
                k,
                rounds,
                eager_median_ns: e_med,
                eager_mean_ns: e_mean,
                merged_median_ns: m_med,
                merged_mean_ns: m_mean,
                speedup_median: median(pair_ratios),
                speedup_mean: e_mean / m_mean,
            });
        }
    }

    println!(
        "circuit      gates    K  rounds  per-mut median  merged median   speedup (median / mean)"
    );
    for b in &baselines {
        println!(
            "{:<10} {:>6} {:>4} {:>7}  {:>14}  {:>13}  {:>7.1}x / {:.1}x",
            b.circuit,
            b.gates,
            b.k,
            b.rounds,
            format_ns(b.eager_median_ns),
            format_ns(b.merged_median_ns),
            b.speedup_median,
            b.speedup_mean,
        );
    }

    write_baseline("sta_forward", &baselines);
}
