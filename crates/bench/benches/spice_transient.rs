//! Bench the transistor-level transient simulator (the SPICE substitute
//! behind Fig. 2's validation and Table 2's "Simulation" column).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pops_delay::{Library, PathStage, TimedPath};
use pops_netlist::CellKind;
use pops_spice::path_sim::simulate_path;
use pops_spice::{simulate_stage, ElectricalParams, EquivalentStage, Waveform};
use std::hint::black_box;

fn bench_spice(c: &mut Criterion) {
    let lib = Library::cmos025();
    let params = ElectricalParams::cmos025();

    let stage = EquivalentStage::from_cell(&params, &lib, CellKind::Inv, 5.4);
    let vin = Waveform::ramp(0.0, 50.0, 0.0, params.vdd, 0.1);
    c.bench_function("spice_stage_inv", |b| {
        b.iter(|| black_box(simulate_stage(&params, &stage, 20.0, &vin)))
    });

    let mut group = c.benchmark_group("spice_path");
    for n in [3usize, 8, 16] {
        let path = TimedPath::new(
            vec![PathStage::new(CellKind::Inv); n],
            lib.min_drive_ff(),
            30.0,
        );
        let sizes = path.min_sizes(&lib);
        group.bench_with_input(BenchmarkId::from_parameter(n), &path, |b, p| {
            b.iter(|| black_box(simulate_path(&params, &lib, p, &sizes)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spice);
criterion_main!(benches);
