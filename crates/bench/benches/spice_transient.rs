//! Bench the transistor-level transient simulator (the SPICE substitute
//! behind Fig. 2's validation and Table 2's "Simulation" column).

use pops_bench::microbench::Runner;
use pops_delay::{Library, PathStage, TimedPath};
use pops_netlist::CellKind;
use pops_spice::path_sim::simulate_path;
use pops_spice::{simulate_stage, ElectricalParams, EquivalentStage, Waveform};

fn main() {
    let lib = Library::cmos025();
    let params = ElectricalParams::cmos025();
    let mut runner = Runner::new("spice_transient");

    let stage = EquivalentStage::from_cell(&params, &lib, CellKind::Inv, 5.4);
    let vin = Waveform::ramp(0.0, 50.0, 0.0, params.vdd, 0.1);
    runner.bench("spice_stage_inv", || {
        simulate_stage(&params, &stage, 20.0, &vin)
    });

    for n in [3usize, 8, 16] {
        let path = TimedPath::new(
            vec![PathStage::new(CellKind::Inv); n],
            lib.min_drive_ff(),
            30.0,
        );
        let sizes = path.min_sizes(&lib);
        runner.bench(&format!("spice_path/{n}"), || {
            simulate_path(&params, &lib, &path, &sizes)
        });
    }
    runner.finish();
}
