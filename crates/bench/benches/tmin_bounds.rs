//! Bench the `Tmin` link-equation fixed point (Fig. 1's engine) as the
//! path length grows.

use pops_bench::microbench::Runner;
use pops_core::bounds::{tmin, tmin_with, TminOptions};
use pops_delay::{Library, PathStage, TimedPath};
use pops_netlist::CellKind;

fn path_of(n: usize, lib: &Library) -> TimedPath {
    use CellKind::*;
    let cycle = [Inv, Nand2, Nor2, Inv, Nand3, Nor3];
    let stages: Vec<PathStage> = (0..n)
        .map(|i| PathStage::with_load(cycle[i % cycle.len()], (i % 3) as f64 * 4.0))
        .collect();
    TimedPath::new(stages, lib.min_drive_ff(), 120.0)
}

fn main() {
    let lib = Library::cmos025();
    let mut runner = Runner::new("tmin_bounds");
    for n in [8usize, 16, 32, 64, 128] {
        let path = path_of(n, &lib);
        runner.bench(&format!("tmin/{n}"), || tmin(&lib, &path));
        runner.bench(&format!("tmin_no_polish/{n}"), || {
            tmin_with(
                &lib,
                &path,
                &TminOptions {
                    polish: false,
                    ..Default::default()
                },
            )
        });
    }
    runner.finish();
}
