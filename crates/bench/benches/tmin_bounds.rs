//! Bench the `Tmin` link-equation fixed point (Fig. 1's engine) as the
//! path length grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pops_core::bounds::{tmin, tmin_with, TminOptions};
use pops_delay::{Library, PathStage, TimedPath};
use pops_netlist::CellKind;
use std::hint::black_box;

fn path_of(n: usize, lib: &Library) -> TimedPath {
    use CellKind::*;
    let cycle = [Inv, Nand2, Nor2, Inv, Nand3, Nor3];
    let stages: Vec<PathStage> = (0..n)
        .map(|i| PathStage::with_load(cycle[i % cycle.len()], (i % 3) as f64 * 4.0))
        .collect();
    TimedPath::new(stages, lib.min_drive_ff(), 120.0)
}

fn bench_tmin(c: &mut Criterion) {
    let lib = Library::cmos025();
    let mut group = c.benchmark_group("tmin_bounds");
    for n in [8usize, 16, 32, 64, 128] {
        let path = path_of(n, &lib);
        group.bench_with_input(BenchmarkId::new("tmin", n), &path, |b, p| {
            b.iter(|| black_box(tmin(&lib, p)))
        });
        group.bench_with_input(BenchmarkId::new("tmin_no_polish", n), &path, |b, p| {
            b.iter(|| {
                black_box(tmin_with(
                    &lib,
                    p,
                    &TminOptions {
                        polish: false,
                        ..Default::default()
                    },
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tmin);
criterion_main!(benches);
