//! Lazy backward flushing + worst-slack index on the *mixed* workload
//! the sizing loop actually runs: one batched write-back of K gate
//! sizes per design-worst-slack read, K ∈ {1, 8, 64} (the flow's
//! per-path `resize_gates` batches, a sensitivity round's accumulated
//! moves).
//!
//! Both sides execute the identical mutation sequence on an
//! incrementally forward-timed graph, so the measured difference is
//! purely the backward strategy:
//!
//! * `incremental` — the maintained backward state: the batch only
//!   accumulates lazy seeds; the slack read flushes one merged backward
//!   cone and reads the tournament-tree root in O(1).
//! * `full` — what the same round cost before: the batch re-times
//!   forward as usual, and the slack read runs a whole backward pass
//!   (`required_times`, every arc re-evaluated) plus the O(nets)
//!   worst-slack fold.
//!
//! Gate sizes toggle between their base value and 1.2× as the round
//! cursor cycles the gate list, keeping the state bounded without
//! probe/revert pairs. Per-round times are collected over enough rounds
//! to cycle every gate; median and mean are reported per (circuit, K),
//! and the two sides are cross-checked bit-for-bit every round.
//! Results are recorded in `BENCH_sta_lazy.json` at the repository
//! root; the acceptance bar for the small circuits that used to break
//! even (fpd, c432, c880 — see `BENCH_sta_backward.json` before this
//! change) is a median speedup ≥ 1.0 from K = 8.

use std::time::Instant;

use pops_bench::microbench::format_ns;
use pops_bench::{mean, median, write_baseline};
use pops_delay::Library;
use pops_netlist::{suite, GateId};
use pops_sta::{required_times, Sizing, TimingGraph};

struct WorkloadBaseline {
    circuit: String,
    gates: usize,
    k: usize,
    rounds: usize,
    full_median_ns: f64,
    full_mean_ns: f64,
    probe_median_ns: f64,
    probe_mean_ns: f64,
    speedup_median: f64,
    speedup_mean: f64,
}
pops_bench::json_fields!(WorkloadBaseline {
    circuit,
    gates,
    k,
    rounds,
    full_median_ns,
    full_mean_ns,
    probe_median_ns,
    probe_mean_ns,
    speedup_median,
    speedup_mean
});

/// The K gates of one round: a non-wrapping chunk of the gate cycle,
/// without duplicates within one round. When fewer than K gates remain,
/// the round takes the *last* K (overlapping the previous chunk) so the
/// `len % K` tail gates are probed too, then the cursor restarts.
fn round_gates(gates: &[GateId], cursor: &mut usize, k: usize) -> Vec<GateId> {
    if *cursor + k > gates.len() {
        *cursor = 0;
        return gates[gates.len() - k..].to_vec();
    }
    let chunk = gates[*cursor..*cursor + k].to_vec();
    *cursor += k;
    chunk
}

fn main() {
    let lib = Library::cmos025();
    let mut baselines = Vec::new();

    for name in ["fpd", "c432", "c880", "c1908", "c6288", "c7552"] {
        let circuit = suite::circuit(name).expect("suite circuit");
        let sizing = Sizing::minimum(&circuit, &lib);
        let gates: Vec<GateId> = circuit.gate_ids().collect();

        // Lazy side: maintained backward state under the constraint.
        let mut lazy = TimingGraph::new(&circuit, &lib, &sizing).expect("acyclic");
        let tc = 0.9 * lazy.critical_delay_ps();
        lazy.set_constraint(tc);
        let _ = lazy.worst_slack_overall_ps(); // settle the initial pass

        // Eager-full side: forward-incremental only; every slack read
        // pays a from-scratch backward pass over the current state.
        let mut full = TimingGraph::new(&circuit, &lib, &sizing).expect("acyclic");

        // Warm-up: touch every cone once on both graphs.
        for &g in &gates {
            let orig = lazy.sizing().cin_ff(g);
            lazy.resize_gate(g, orig * 1.2);
            full.resize_gate(g, orig * 1.2);
            let _ = lazy.worst_slack_overall_ps();
            lazy.resize_gate(g, orig);
            full.resize_gate(g, orig);
        }
        let _ = lazy.worst_slack_overall_ps();

        // Base sizes and per-gate toggle phase (shared by both sides so
        // their mutation sequences stay identical).
        let base: Vec<f64> = gates.iter().map(|&g| lazy.sizing().cin_ff(g)).collect();

        for k in [1usize, 8, 64] {
            let k = k.min(gates.len());
            // Enough rounds to touch every gate at least once, and at
            // least 32 so the medians are stable on the small circuits.
            let rounds = gates.len().div_ceil(k).max(32);
            let mut cursor = 0usize;
            let mut phase = vec![false; gates.len()];
            let mut lazy_ns = Vec::with_capacity(rounds);
            let mut full_ns = Vec::with_capacity(rounds);

            for _ in 0..rounds {
                let chunk = round_gates(&gates, &mut cursor, k);
                // One write-back batch: each touched gate toggles
                // between its base size and 1.2× it.
                let changes: Vec<(GateId, f64)> = chunk
                    .iter()
                    .map(|&g| {
                        let i = g.index();
                        phase[i] = !phase[i];
                        (g, base[i] * if phase[i] { 1.2 } else { 1.0 })
                    })
                    .collect();

                // Incremental: one batched forward re-time, one merged
                // lazy flush, one O(1) tournament-root read.
                let t0 = Instant::now();
                lazy.resize_gates(changes.iter().copied());
                let ws_lazy = std::hint::black_box(lazy.worst_slack_overall_ps());
                lazy_ns.push(t0.elapsed().as_nanos() as f64);

                // Eager-full: the same batched forward re-time, then a
                // whole backward pass and the O(nets) fold for the one
                // slack read.
                let t0 = Instant::now();
                full.resize_gates(changes.iter().copied());
                let slacks =
                    required_times(&circuit, &lib, full.sizing(), &full, tc).expect("acyclic");
                let ws_full = std::hint::black_box(slacks.worst_slack_overall_ps());
                full_ns.push(t0.elapsed().as_nanos() as f64);

                // The bench is only valid while the lazy state answers
                // bit-identically to the from-scratch pass.
                assert_eq!(
                    ws_lazy.map(f64::to_bits),
                    ws_full.map(f64::to_bits),
                    "{name} K={k}: lazy slack diverged from the full pass"
                );
            }

            // Restore the base sizing for the next K.
            let restore: Vec<(GateId, f64)> = gates.iter().map(|&g| (g, base[g.index()])).collect();
            lazy.resize_gates(restore.iter().copied());
            full.resize_gates(restore.iter().copied());
            let _ = lazy.worst_slack_overall_ps();

            let (l_med, l_mean) = (median(lazy_ns.clone()), mean(&lazy_ns));
            let (f_med, f_mean) = (median(full_ns.clone()), mean(&full_ns));
            baselines.push(WorkloadBaseline {
                circuit: name.to_string(),
                gates: circuit.gate_count(),
                k,
                rounds,
                full_median_ns: f_med,
                full_mean_ns: f_mean,
                probe_median_ns: l_med,
                probe_mean_ns: l_mean,
                speedup_median: f_med / l_med,
                speedup_mean: f_mean / l_mean,
            });
        }
    }

    println!(
        "circuit      gates    K  rounds   full median   incr median   speedup (median / mean)"
    );
    for b in &baselines {
        println!(
            "{:<10} {:>6} {:>4} {:>7}  {:>12}  {:>12}  {:>7.1}x / {:.1}x",
            b.circuit,
            b.gates,
            b.k,
            b.rounds,
            format_ns(b.full_median_ns),
            format_ns(b.probe_median_ns),
            b.speedup_median,
            b.speedup_mean,
        );
    }

    write_baseline("sta_lazy", &baselines);
}
