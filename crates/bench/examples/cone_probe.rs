//! Diagnostic: the dirty-cone size distribution of the incremental STA
//! engine across the benchmark suite.
//!
//! For every gate, probe a 1.2× resize (and revert) and count how many
//! gates the engine re-evaluated. The distribution is heavily skewed:
//! the median cone is a few dozen gates, while gates next to the primary
//! inputs fan out to a third of the circuit — which is why the
//! `sta_incremental` bench reports both median and mean probe times.

use pops_delay::Library;
use pops_netlist::suite;
use pops_sta::{Sizing, TimingGraph};

fn main() {
    let lib = Library::cmos025();
    for name in ["fpd", "c432", "c880", "c1908", "c6288", "c7552"] {
        let c = suite::circuit(name).unwrap();
        let s = Sizing::minimum(&c, &lib);
        let mut g = TimingGraph::new(&c, &lib, &s).unwrap();
        let mut cones: Vec<usize> = Vec::new();
        for target in c.gate_ids() {
            let orig = g.sizing().cin_ff(target);
            let before = g.stats().gates_reevaluated;
            // The engine is lazy in both directions: each read forces
            // the flush whose cone this diagnostic is counting.
            g.resize_gate(target, orig * 1.2);
            let _ = g.critical_delay_ps();
            g.resize_gate(target, orig);
            let _ = g.critical_delay_ps();
            cones.push((g.stats().gates_reevaluated - before) / 2);
        }
        cones.sort_unstable();
        let n = cones.len();
        println!(
            "{name}: gates={n} min={} p25={} median={} p75={} p90={} max={} mean={:.0}",
            cones[0],
            cones[n / 4],
            cones[n / 2],
            cones[3 * n / 4],
            cones[9 * n / 10],
            cones[n - 1],
            cones.iter().sum::<usize>() as f64 / n as f64
        );
    }
}
