//! In-tree source-policy linter — the static half of PR 10's audit pair
//! (the dynamic half is `pops_sta::audit`, the shadow-access race
//! detector).
//!
//! Walks every `.rs` file of the workspace (no external deps, a simple
//! line/token scanner over comment- and string-stripped source) and
//! enforces the repo's source policy:
//!
//! 1. **`unsafe` confinement** — the token `unsafe` appears only in
//!    `crates/sta/src/parallel.rs`, the one module whose safety argument
//!    the race auditor mechanically checks.
//! 2. **Deny headers** — every crate root (`crates/*/src/lib.rs` and the
//!    facade `src/lib.rs`) carries `#![deny(unsafe_code)]` (or
//!    `forbid`).
//! 3. **No `unwrap` in library code** — `.unwrap()` is banned outside
//!    `#[cfg(test)]` regions and `src/bin/` CLIs; failures must travel
//!    as typed errors (`StaError` and friends).
//! 4. **`expect` needs a license** — `.expect(` in library code must be
//!    listed in `crates/bench/static_audit_allow.txt` (invariant-backed
//!    proofs like lock poisoning or builder arity).
//! 5. **`Ordering::Relaxed` confinement** — only the `faultinject` and
//!    `audit` arming fast paths may use relaxed atomics.
//! 6. **Float `==` confinement** — bitwise float equality is a
//!    deliberate tool of the bit-stability modules; everywhere else it
//!    is a bug magnet and must be allowlisted.
//!
//! Exit status 0 = clean, 1 = violations (printed one per line as
//! `rule path:line: source`), 2 = usage/IO error. CI runs this next to
//! `cargo clippy -- -D warnings`.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One policy violation: which rule, where, and the offending line.
struct Violation {
    rule: &'static str,
    path: String,
    line: usize,
    text: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{}: {}",
            self.rule,
            self.path,
            self.line,
            self.text.trim()
        )
    }
}

/// One allowlist entry: `rule  path-suffix  line-substring` (whitespace
/// separated; the substring may be `*` for "any line in that file").
struct Allow {
    rule: String,
    path_suffix: String,
    needle: String,
}

fn load_allowlist(path: &Path) -> Vec<Allow> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let (Some(rule), Some(suffix)) = (parts.next(), parts.next()) else {
            continue;
        };
        out.push(Allow {
            rule: rule.to_string(),
            path_suffix: suffix.to_string(),
            needle: parts.next().unwrap_or("*").trim().to_string(),
        });
    }
    out
}

fn allowed(allows: &[Allow], rule: &str, path: &str, line_text: &str) -> bool {
    allows.iter().any(|a| {
        a.rule == rule
            && path.ends_with(&a.path_suffix)
            && (a.needle == "*" || line_text.contains(&a.needle))
    })
}

/// Strip comments and string/char literals from Rust source, preserving
/// the line structure, so token rules never fire inside a doc example or
/// a message string. Replaced regions become spaces.
fn code_mask(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = vec![b' '; b.len()];
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            out[i] = b'\n';
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < b.len() {
            if b[i + 1] == b'/' {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            if b[i + 1] == b'*' {
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        out[i] = b'\n';
                    }
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                continue;
            }
        }
        // Raw strings: r"…", r#"…"#, br##"…"## etc.
        if (c == b'r' || c == b'b') && !prev_is_ident(b, i) {
            let mut j = i;
            if b[j] == b'b' && j + 1 < b.len() && b[j + 1] == b'r' {
                j += 1;
            }
            if b[j] == b'r' {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while k < b.len() && b[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                if k < b.len() && b[k] == b'"' {
                    // Copy the prefix so `r` stays a code token boundary.
                    out[i..k + 1].copy_from_slice(&b[i..k + 1]);
                    i = k + 1;
                    'raw: while i < b.len() {
                        if b[i] == b'\n' {
                            out[i] = b'\n';
                        }
                        if b[i] == b'"' {
                            let mut h = 0usize;
                            while i + 1 + h < b.len() && b[i + 1 + h] == b'#' && h < hashes {
                                h += 1;
                            }
                            if h == hashes {
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        i += 1;
                    }
                    continue;
                }
            }
        }
        // Plain strings (and byte strings — the `b` was copied above
        // only for raw forms; a lone `b"` reaches here at `"`.)
        if c == b'"' {
            i += 1;
            while i < b.len() {
                if b[i] == b'\n' {
                    out[i] = b'\n';
                }
                if b[i] == b'\\' {
                    // Preserve line-continuation newlines (`"… \` + EOL).
                    if i + 1 < b.len() && b[i + 1] == b'\n' {
                        out[i + 1] = b'\n';
                    }
                    i += 2;
                    continue;
                }
                if b[i] == b'"' {
                    i += 1;
                    break;
                }
                i += 1;
            }
            continue;
        }
        // Char literals vs lifetimes.
        if c == b'\'' {
            if i + 1 < b.len() && b[i + 1] == b'\\' {
                // '\n', '\u{..}' …
                i += 2;
                while i < b.len() && b[i] != b'\'' {
                    i += 1;
                }
                i += 1;
                continue;
            }
            if i + 2 < b.len() && b[i + 2] == b'\'' {
                // 'x'
                i += 3;
                continue;
            }
            // Lifetime: keep scanning normally past the quote.
            out[i] = c;
            i += 1;
            continue;
        }
        out[i] = c;
        i += 1;
    }
    String::from_utf8(out).unwrap_or_default()
}

fn prev_is_ident(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

/// Whole-word occurrences of `word` in `line`.
fn has_word(line: &str, word: &str) -> bool {
    let b = line.as_bytes();
    let w = word.as_bytes();
    let mut start = 0usize;
    while let Some(p) = line[start..].find(word) {
        let at = start + p;
        let before_ok = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
        let after = at + w.len();
        let after_ok = after >= b.len() || !(b[after].is_ascii_alphanumeric() || b[after] == b'_');
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

/// Mark the lines belonging to `#[cfg(test)]`-gated items (brace-tracked
/// from the attribute to the item's closing brace).
fn test_region_lines(mask: &str) -> Vec<bool> {
    let lines: Vec<&str> = mask.lines().collect();
    let mut in_test = vec![false; lines.len()];
    let mut l = 0usize;
    while l < lines.len() {
        if lines[l].trim_start().starts_with("#[cfg(test)]") {
            // Find the opening brace of the gated item, then track depth.
            let mut depth = 0i64;
            let mut opened = false;
            let mut m = l;
            while m < lines.len() {
                in_test[m] = true;
                for ch in lines[m].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                m += 1;
            }
            l = m + 1;
        } else {
            l += 1;
        }
    }
    in_test
}

/// A token is "float-like" if it is a float literal (`1.5`, `0.`,
/// `1e-9`) or a named float constant (`INFINITY`, `NEG_INFINITY`,
/// `NAN`).
fn float_like(token: &str) -> bool {
    let t = token.trim();
    if t.ends_with("INFINITY") || t.ends_with("NAN") {
        return true;
    }
    let mut digits = false;
    let mut dot = false;
    let mut exp = false;
    for (i, c) in t.char_indices() {
        match c {
            '0'..='9' | '_' => digits = true,
            '.' => dot = true,
            // The operand token may be cut at a sign (`1.5e-3` → `1.5e`);
            // a digits-then-exponent prefix is already float-shaped.
            'e' | 'E' if digits => exp = true,
            '+' | '-' if exp => {}
            'f' if t[i..].starts_with("f64") || t[i..].starts_with("f32") => return digits,
            _ => return false,
        }
    }
    digits && (dot || exp)
}

/// Does this masked line compare something against a float with `==` or
/// `!=`? (Bitwise comparisons go through `.to_bits()` and never look
/// float-like.)
fn has_float_eq(line: &str) -> bool {
    let b = line.as_bytes();
    let mut i = 0usize;
    while i + 1 < b.len() {
        let op = (b[i] == b'=' || b[i] == b'!') && b[i + 1] == b'=';
        // Exclude `<=`, `>=`, `=>`, `===`-ish runs and `!=` vs `!==`.
        let not_cmp_assign = i == 0 || !matches!(b[i - 1], b'<' | b'>' | b'=' | b'+' | b'-');
        let not_fat_arrow = i + 2 >= b.len() || b[i + 2] != b'>';
        if op && not_cmp_assign && not_fat_arrow && (i + 2 >= b.len() || b[i + 2] != b'=') {
            // Right operand.
            let rhs: String = line[i + 2..]
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | ':'))
                .collect();
            // Left operand.
            let lhs: String = line[..i]
                .trim_end()
                .chars()
                .rev()
                .take_while(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | ':'))
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
                .collect();
            if float_like(&rhs) || float_like(&lhs) {
                return true;
            }
        }
        i += 1;
    }
    false
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if p.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&p, out);
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
}

/// Library code is subject to the unwrap/expect/ordering/float rules:
/// `src/**` of the facade and of every crate — but not `src/bin/` CLIs.
fn is_lib_code(rel: &str) -> bool {
    let under_src = rel.starts_with("src/") || rel.contains("/src/");
    under_src && !rel.contains("/bin/")
}

fn scan_repo(root: &Path) -> Result<Vec<Violation>, String> {
    let allows = load_allowlist(&root.join("crates/bench/static_audit_allow.txt"));
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "benches", "examples"] {
        walk(&root.join(top), &mut files);
    }
    files.sort();
    if files.is_empty() {
        return Err(format!("no .rs files under {}", root.display()));
    }

    let mut violations = Vec::new();
    let mut lib_roots_seen = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .map_err(|e| e.to_string())?
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let mask = code_mask(&src);
        let in_test = test_region_lines(&mask);
        let lib = is_lib_code(&rel);
        let is_crate_root =
            rel == "src/lib.rs" || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"));
        if is_crate_root {
            lib_roots_seen.push(rel.clone());
            let has_header = mask.lines().any(|l| {
                l.contains("#![deny(unsafe_code)]") || l.contains("#![forbid(unsafe_code)]")
            });
            if !has_header {
                violations.push(Violation {
                    rule: "deny-header",
                    path: rel.clone(),
                    line: 1,
                    text: "crate root lacks #![deny(unsafe_code)]".into(),
                });
            }
        }

        let src_lines: Vec<&str> = src.lines().collect();
        for (idx, line) in mask.lines().enumerate() {
            let shown = src_lines.get(idx).copied().unwrap_or(line).to_string();
            let lineno = idx + 1;
            // 1. `unsafe` confinement (everywhere, tests included).
            if has_word(line, "unsafe") && rel != "crates/sta/src/parallel.rs" {
                violations.push(Violation {
                    rule: "unsafe-outside-parallel",
                    path: rel.clone(),
                    line: lineno,
                    text: shown.clone(),
                });
            }
            if !lib || in_test[idx] {
                continue;
            }
            // 3. No `.unwrap()` in library code.
            if line.contains(".unwrap()") {
                violations.push(Violation {
                    rule: "unwrap-in-lib",
                    path: rel.clone(),
                    line: lineno,
                    text: shown.clone(),
                });
            }
            // 4. `.expect(` needs an allowlist license.
            if line.contains(".expect(") && !allowed(&allows, "expect-in-lib", &rel, &shown) {
                violations.push(Violation {
                    rule: "expect-in-lib",
                    path: rel.clone(),
                    line: lineno,
                    text: shown.clone(),
                });
            }
            // 5. Relaxed atomics only in the arming fast paths.
            if line.contains("Ordering::Relaxed")
                && rel != "crates/sta/src/faultinject.rs"
                && rel != "crates/sta/src/audit.rs"
            {
                violations.push(Violation {
                    rule: "relaxed-ordering",
                    path: rel.clone(),
                    line: lineno,
                    text: shown.clone(),
                });
            }
            // 6. Float equality only in the bit-stability modules.
            if has_float_eq(line) && !allowed(&allows, "float-eq", &rel, &shown) {
                violations.push(Violation {
                    rule: "float-eq",
                    path: rel.clone(),
                    line: lineno,
                    text: shown,
                });
            }
        }
    }
    if lib_roots_seen.len() < 2 {
        return Err(format!(
            "only {} crate roots found — wrong directory? (root: {})",
            lib_roots_seen.len(),
            root.display()
        ));
    }
    Ok(violations)
}

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(p) => PathBuf::from(p),
        None => Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    let root = match root.canonicalize() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("static_audit: cannot resolve repo root: {e}");
            return ExitCode::from(2);
        }
    };
    match scan_repo(&root) {
        Err(e) => {
            eprintln!("static_audit: {e}");
            ExitCode::from(2)
        }
        Ok(v) if v.is_empty() => {
            println!("static_audit: clean");
            ExitCode::SUCCESS
        }
        Ok(v) => {
            for violation in &v {
                println!("{violation}");
            }
            println!("static_audit: {} violation(s)", v.len());
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_strips_comments_strings_and_doc_examples() {
        let src = r#"
/// ```
/// x.unwrap();
/// ```
fn f() {
    let s = "contains unsafe and .unwrap()";
    let c = '"';
    // trailing .expect( note
    real();
}
"#;
        let mask = code_mask(src);
        assert!(!mask.contains("unwrap"), "{mask}");
        assert!(!mask.contains("unsafe"), "{mask}");
        assert!(!mask.contains("expect"), "{mask}");
        assert!(mask.contains("real()"));
        assert_eq!(mask.lines().count(), src.lines().count());
    }

    #[test]
    fn word_matching_does_not_cross_identifiers() {
        assert!(has_word("unsafe fn q()", "unsafe"));
        assert!(!has_word("#![deny(unsafe_code)]", "unsafe"));
        assert!(!has_word("my_unsafe_thing", "unsafe"));
    }

    #[test]
    fn float_eq_detection() {
        assert!(has_float_eq("if tau_ps == 0.0 {"));
        assert!(has_float_eq("if t_in == f64::NEG_INFINITY {"));
        assert!(has_float_eq("x != 1.5e-3"));
        assert!(!has_float_eq("a.to_bits() != b.to_bits()"));
        assert!(!has_float_eq("if n == 0 {"));
        assert!(!has_float_eq("if n <= 0.0 {"));
        assert!(!has_float_eq("Some(x) => y,"));
    }

    #[test]
    fn cfg_test_regions_are_brace_tracked() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let t = test_region_lines(src);
        assert_eq!(t, [false, true, true, true, true, false]);
    }

    #[test]
    fn the_repo_itself_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let v = scan_repo(&root.canonicalize().expect("repo root resolves")).expect("scan runs");
        assert!(
            v.is_empty(),
            "policy violations:\n{}",
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
