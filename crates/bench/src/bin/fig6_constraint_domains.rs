//! Fig. 6 — delay/area fronts of a 13-gate array: gate sizing vs buffer
//! insertion with global sizing, and the three constraint domains the
//! crossover structure defines (hard < 1.2·Tmin < medium < 2.5·Tmin <
//! weak).

use pops_bench::paper_ref::{DOMAIN_HARD_BOUNDARY, DOMAIN_WEAK_BOUNDARY};
use pops_bench::{print_table, write_artifact};
use pops_core::bounds::delay_bounds;
use pops_core::buffer::insert_buffers;
use pops_core::sensitivity::distribute_constraint;
use pops_delay::{Library, PathStage, TimedPath};
use pops_netlist::CellKind;

struct Point {
    tc_over_tmin: f64,
    tc_ps: f64,
    sizing_area_um: Option<f64>,
    buffered_area_um: Option<f64>,
}
pops_bench::json_fields!(Point {
    tc_over_tmin,
    tc_ps,
    sizing_area_um,
    buffered_area_um
});

fn thirteen_gate_array(lib: &Library) -> TimedPath {
    use CellKind::*;
    // Heavily loaded *early* nodes: with the path input pinned by the
    // latch, the first gates cannot build enough drive by tapering, so
    // the fan-out at those nodes stays above `Flimit` even at the optimal
    // sizing — the Fig. 5 "overloaded node" situation where buffer
    // insertion competes with (and beats) pure sizing.
    TimedPath::new(
        vec![
            PathStage::new(Inv),
            PathStage::with_load(Nor3, 260.0),
            PathStage::new(Nand2),
            PathStage::with_load(Nor2, 180.0),
            PathStage::new(Inv),
            PathStage::new(Nand3),
            PathStage::new(Inv),
            PathStage::new(Nor2),
            PathStage::new(Nand2),
            PathStage::new(Inv),
            PathStage::new(Nor2),
            PathStage::new(Nand2),
            PathStage::new(Inv),
        ],
        lib.min_drive_ff(),
        160.0,
    )
}

fn main() {
    let lib = Library::cmos025();
    let path = thirteen_gate_array(&lib);
    let b = delay_bounds(&lib, &path);
    let (buffered, buffered_tmin) = insert_buffers(&lib, &path);

    println!("Fig. 6 — constraint domains on a 13-gate array");
    println!(
        "original Tmin = {:.1} ps, buffered Tmin = {:.1} ps ({} buffers)\n",
        b.tmin_ps,
        buffered_tmin.delay_ps,
        buffered.buffer_count()
    );

    let mut points = Vec::new();
    let mut table = Vec::new();
    let factors = [
        0.97, 1.0, 1.05, 1.1, 1.2, 1.35, 1.5, 1.8, 2.1, 2.5, 3.0, 3.5,
    ];
    for &f in &factors {
        let tc = f * b.tmin_ps;
        let sizing_area = distribute_constraint(&lib, &path, tc)
            .ok()
            .map(|s| lib.process().width_um(s.total_cin_ff));
        let buffered_area = distribute_constraint(&lib, &buffered.path, tc)
            .ok()
            .map(|s| lib.process().width_um(s.total_cin_ff));
        let domain = if f < 1.0 {
            "infeasible by sizing"
        } else if f < DOMAIN_HARD_BOUNDARY {
            "hard"
        } else if f <= DOMAIN_WEAK_BOUNDARY {
            "medium"
        } else {
            "weak"
        };
        let show = |a: &Option<f64>| {
            a.map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "infeasible".into())
        };
        let winner = match (&sizing_area, &buffered_area) {
            (Some(s), Some(bu)) => {
                if bu < s {
                    "buffered"
                } else {
                    "sizing"
                }
            }
            (Some(_), None) => "sizing",
            (None, Some(_)) => "buffered",
            (None, None) => "-",
        };
        table.push(vec![
            format!("{f:.2}"),
            format!("{:.1}", tc),
            show(&sizing_area),
            show(&buffered_area),
            domain.to_string(),
            winner.to_string(),
        ]);
        points.push(Point {
            tc_over_tmin: f,
            tc_ps: tc,
            sizing_area_um: sizing_area,
            buffered_area_um: buffered_area,
        });
    }
    print_table(
        &[
            "Tc/Tmin",
            "Tc (ps)",
            "sizing sigmaW (um)",
            "buffered sigmaW (um)",
            "domain",
            "winner",
        ],
        &table,
    );
    println!(
        "\nShape check (paper): buffering wins in the hard domain (and rescues \
         Tc < Tmin), the two fronts converge through the medium domain, and \
         sizing suffices in the weak domain."
    );
    write_artifact("fig6_constraint_domains", &points);
}
