//! Table 2 — the buffer-insertion fan-out limit `Flimit` for a gate
//! driven by an inverter: closed-form calculation vs transistor-level
//! simulation (the paper's HSPICE column).

use pops_bench::paper_ref::TABLE2_FLIMIT;
use pops_bench::{print_table, write_artifact};
use pops_core::buffer::{flimit, flimit_with};
use pops_delay::{Edge, Library};
use pops_netlist::CellKind;
use pops_spice::path_sim::simulate_path;
use pops_spice::ElectricalParams;

struct Row {
    gate: String,
    calculated: f64,
    simulated: f64,
    paper_calculated: f64,
    paper_simulated: f64,
}
pops_bench::json_fields!(Row {
    gate,
    calculated,
    simulated,
    paper_calculated,
    paper_simulated
});

fn main() {
    let lib = Library::cmos025();
    let params = ElectricalParams::cmos025();
    let gates = [
        CellKind::Inv,
        CellKind::Nand2,
        CellKind::Nand3,
        CellKind::Nor2,
        CellKind::Nor3,
    ];

    println!("Table 2 — fan-out limit Flimit (gate driven by an inverter)\n");

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (idx, &gate) in gates.iter().enumerate() {
        let calc = flimit(&lib, CellKind::Inv, gate).expect("crossover exists");
        // Simulated column: worst-edge delay from the transient simulator.
        let sim_eval = |path: &pops_delay::TimedPath, sizes: &[f64]| {
            let rising = simulate_path(&params, &lib, path, sizes).total_delay_ps;
            let falling_path = path
                .clone()
                .with_input_conditions(Edge::Falling, path.input_transition_ps());
            let falling = simulate_path(&params, &lib, &falling_path, sizes).total_delay_ps;
            rising.max(falling)
        };
        let sim = flimit_with(&lib, CellKind::Inv, gate, sim_eval).expect("crossover exists");
        let (name, paper_calc, paper_sim) = TABLE2_FLIMIT[idx];
        table.push(vec![
            format!("inv -> {gate}"),
            format!("{calc:.1}"),
            format!("{sim:.1}"),
            format!("{paper_calc:.1}"),
            format!("{paper_sim:.1}"),
        ]);
        rows.push(Row {
            gate: name.to_string(),
            calculated: calc,
            simulated: sim,
            paper_calculated: paper_calc,
            paper_simulated: paper_sim,
        });
    }
    print_table(
        &["pair", "calc.", "simul.", "paper calc.", "paper simul."],
        &table,
    );
    println!(
        "\nShape check (paper): strict ordering inv > nand2 > nand3 > nor2 > \
         nor3 — \"greater is the logical weight of the gate, lower is the \
         limit\"."
    );
    write_artifact("table2_flimit", &rows);
}
