//! Ablation — §3.2's comparison: the equal-delay (Sutherland/Mead)
//! distribution vs the constant sensitivity method, at the same
//! constraint, on every circuit.

use pops_bench::{fig2_workloads, print_table, write_artifact};
use pops_core::bounds::delay_bounds;
use pops_core::sensitivity::distribute_constraint;
use pops_core::sutherland::equal_delay_distribution;
use pops_delay::Library;

struct Row {
    circuit: String,
    tc_ps: f64,
    sutherland_um: Option<f64>,
    sensitivity_um: f64,
    saving_pct: Option<f64>,
}
pops_bench::json_fields!(Row {
    circuit,
    tc_ps,
    sutherland_um,
    sensitivity_um,
    saving_pct
});

fn main() {
    let lib = Library::cmos025();
    println!("Ablation — equal-delay (Sutherland) vs constant sensitivity (Tc = 1.4 * Tmin)\n");

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for w in fig2_workloads(&lib) {
        let b = delay_bounds(&lib, &w.path);
        let tc = 1.4 * b.tmin_ps;
        let suth = equal_delay_distribution(&lib, &w.path, tc)
            .ok()
            .map(|s| lib.process().width_um(s.total_cin_ff));
        let sens = distribute_constraint(&lib, &w.path, tc).expect("feasible");
        let sens_um = lib.process().width_um(sens.total_cin_ff);
        let saving = suth.map(|s| (s - sens_um) / s * 100.0);
        table.push(vec![
            w.name.to_string(),
            suth.map(|s| format!("{s:.0}"))
                .unwrap_or_else(|| "inf.".into()),
            format!("{sens_um:.0}"),
            saving
                .map(|s| format!("{s:+.1}%"))
                .unwrap_or_else(|| "-".into()),
        ]);
        rows.push(Row {
            circuit: w.name.to_string(),
            tc_ps: tc,
            sutherland_um: suth,
            sensitivity_um: sens_um,
            saving_pct: saving,
        });
    }
    print_table(
        &[
            "circuit",
            "Sutherland sigmaW (um)",
            "sensitivity sigmaW (um)",
            "saving",
        ],
        &table,
    );
    println!(
        "\nShape check (paper §3.2): the equal-delay rule over-sizes gates \
         with large logical weights; constant sensitivity is never worse."
    );
    write_artifact("ablation_sutherland", &rows);
}
