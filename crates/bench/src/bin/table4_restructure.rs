//! Table 4 — buffer insertion vs De Morgan logic restructuring: path
//! area under hard and medium constraints on the NOR-bearing circuits.

use pops_bench::paper_ref::{TABLE4_HARD, TABLE4_MEDIUM};
use pops_bench::{print_table, write_artifact};
use pops_core::bounds::delay_bounds;
use pops_core::buffer::insert_buffers;
use pops_core::restructure::restructure_critical;
use pops_core::sensitivity::distribute_constraint;
use pops_delay::{Library, PathStage, TimedPath};
use pops_netlist::CellKind;

/// A NOR-dominated path with heavily loaded critical NOR nodes — the
/// situation real technology-mapped ISCAS'85 critical paths present (and
/// the reason the paper restructures at all). The synthetic suite's
/// spines carry milder NOR loading, so this microbenchmark demonstrates
/// the §4.2 effect directly; the cXXXX rows report the suite behaviour.
fn nor_micro(lib: &Library) -> TimedPath {
    use CellKind::*;
    TimedPath::new(
        vec![
            PathStage::new(Inv),
            PathStage::with_load(Nor3, 60.0),
            PathStage::new(Nand2),
            PathStage::with_load(Nor3, 80.0),
            PathStage::new(Inv),
        ],
        lib.min_drive_ff(),
        150.0,
    )
}

struct Row {
    circuit: String,
    constraint: String,
    buffered_um: Option<f64>,
    restructured_um: Option<f64>,
    gain_pct: Option<f64>,
    paper_gain_pct: Option<u32>,
}
pops_bench::json_fields!(Row {
    circuit,
    constraint,
    buffered_um,
    restructured_um,
    gain_pct,
    paper_gain_pct
});

/// Minimal path holder so suite workloads and the microbenchmark share
/// one code path below.
struct Borrowed {
    path: TimedPath,
}

fn main() {
    let lib = Library::cmos025();
    let circuits = ["nor_micro", "c1355", "c1908", "c5315", "c7552"];
    println!("Table 4 — buffer insertion vs logic restructuring (sigmaW)\n");

    let mut rows = Vec::new();
    for (constraint, factor, paper) in [("hard", 1.15, TABLE4_HARD), ("medium", 1.8, TABLE4_MEDIUM)]
    {
        println!("== {constraint} constraint (Tc = {factor} * Tmin) ==");
        let mut table = Vec::new();
        for name in circuits {
            let path = if name == "nor_micro" {
                nor_micro(&lib)
            } else {
                pops_bench::workload(&lib, name).path
            };
            let w = Borrowed { path };
            let b = delay_bounds(&lib, &w.path);
            let tc = factor * b.tmin_ps;

            let (buffered, _) = insert_buffers(&lib, &w.path);
            let buff_area = distribute_constraint(&lib, &buffered.path, tc)
                .ok()
                .map(|s| lib.process().width_um(s.total_cin_ff));

            let rest = restructure_critical(&lib, &w.path);
            let rest_area = distribute_constraint(&lib, &rest.path, tc).ok().map(|s| {
                lib.process()
                    .width_um(s.total_cin_ff + rest.side_inverter_cin_ff)
            });

            let gain = match (buff_area, rest_area) {
                (Some(bu), Some(re)) => Some((bu - re) / bu * 100.0),
                _ => None,
            };
            let paper_gain = paper.iter().find(|r| r.0 == name).map(|r| r.3);
            let show = |a: Option<f64>| {
                a.map(|v| format!("{v:.0}"))
                    .unwrap_or_else(|| "inf.".into())
            };
            table.push(vec![
                name.to_string(),
                show(buff_area),
                show(rest_area),
                gain.map(|g| format!("{g:+.0}%"))
                    .unwrap_or_else(|| "-".into()),
                paper_gain
                    .map(|g| format!("{g}%"))
                    .unwrap_or_else(|| "- (unreadable in scan)".into()),
            ]);
            rows.push(Row {
                circuit: name.to_string(),
                constraint: constraint.to_string(),
                buffered_um: buff_area,
                restructured_um: rest_area,
                gain_pct: gain,
                paper_gain_pct: paper_gain,
            });
        }
        print_table(
            &[
                "circuit",
                "buff sigmaW (um)",
                "restruct sigmaW (um)",
                "gain",
                "paper gain",
            ],
            &table,
        );
        println!();
    }
    println!(
        "Shape check (paper): \"deterministic logic structure modification on \
         critical path supplies a non negligible area (power) save\" — \
         restructuring beats buffering, more so under hard constraints."
    );
    write_artifact("table4_restructure", &rows);
}
