//! Table 3 — minimum delay: sizing alone vs sizing plus buffer
//! insertion, per circuit, with the paper's gain percentages alongside.

use pops_bench::paper_ref::table3_row;
use pops_bench::report::{gain_pct, ns};
use pops_bench::{fig2_workloads, print_table, write_artifact};
use pops_core::bounds::tmin;
use pops_core::buffer::insert_buffers;
use pops_delay::Library;

struct Row {
    circuit: String,
    sizing_tmin_ns: f64,
    buffered_tmin_ns: f64,
    gain_pct: f64,
    buffers: usize,
    paper_gain_pct: Option<u32>,
}
pops_bench::json_fields!(Row {
    circuit,
    sizing_tmin_ns,
    buffered_tmin_ns,
    gain_pct,
    buffers,
    paper_gain_pct
});

fn main() {
    let lib = Library::cmos025();
    println!("Table 3 — Tmin: sizing vs buffer insertion\n");

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for w in fig2_workloads(&lib) {
        let sizing = tmin(&lib, &w.path);
        let (buffered, buffered_tmin) = insert_buffers(&lib, &w.path);
        let gain = (sizing.delay_ps - buffered_tmin.delay_ps) / sizing.delay_ps * 100.0;
        let paper = table3_row(w.name).map(|r| r.3);
        table.push(vec![
            w.name.to_string(),
            ns(sizing.delay_ps),
            ns(buffered_tmin.delay_ps),
            gain_pct(sizing.delay_ps, buffered_tmin.delay_ps),
            buffered.buffer_count().to_string(),
            paper.map(|g| format!("{g}%")).unwrap_or_else(|| "-".into()),
        ]);
        rows.push(Row {
            circuit: w.name.to_string(),
            sizing_tmin_ns: sizing.delay_ps / 1000.0,
            buffered_tmin_ns: buffered_tmin.delay_ps / 1000.0,
            gain_pct: gain,
            buffers: buffered.buffer_count(),
            paper_gain_pct: paper,
        });
    }
    print_table(
        &[
            "circuit",
            "sizing Tmin (ns)",
            "buff Tmin (ns)",
            "gain",
            "buffers",
            "paper gain",
        ],
        &table,
    );
    println!(
        "\nShape check (paper): buffering never hurts Tmin; gains vary 2-22% \
         with the path's load structure."
    );
    write_artifact("table3_buffer_gain", &rows);
}
