//! Ablation — accuracy of the reconstructed closed-form model (eqs. 1–3)
//! against the transistor-level simulator, across cells, sizings and
//! loads; plus the analytic-vs-numeric gradient residual.

use pops_bench::{print_table, write_artifact};
use pops_core::gradient::analytic_gradient;
use pops_delay::{Library, PathStage, TimedPath};
use pops_netlist::CellKind;
use pops_spice::path_sim::simulate_path;
use pops_spice::ElectricalParams;

struct Case {
    label: String,
    model_ps: f64,
    spice_ps: f64,
    ratio: f64,
}
pops_bench::json_fields!(Case {
    label,
    model_ps,
    spice_ps,
    ratio
});

struct Artifact {
    cases: Vec<Case>,
    rank_agreement: bool,
    max_gradient_err_rel: f64,
}
pops_bench::json_fields!(Artifact {
    cases,
    rank_agreement,
    max_gradient_err_rel
});

fn main() {
    let lib = Library::cmos025();
    let params = ElectricalParams::cmos025();

    // A spread of path shapes and sizings.
    let mut cases = Vec::new();
    let mut table = Vec::new();
    let paths: Vec<(&str, TimedPath, Vec<f64>)> = build_cases(&lib);
    for (label, path, sizes) in &paths {
        let model = path.delay(&lib, sizes).total_ps;
        let spice = simulate_path(&params, &lib, path, sizes).total_delay_ps;
        let ratio = model / spice;
        table.push(vec![
            label.to_string(),
            format!("{model:.1}"),
            format!("{spice:.1}"),
            format!("{ratio:.2}"),
        ]);
        cases.push(Case {
            label: label.to_string(),
            model_ps: model,
            spice_ps: spice,
            ratio,
        });
    }
    println!("Ablation — closed-form model vs transistor-level simulation\n");
    print_table(&["case", "model (ps)", "spice (ps)", "model/spice"], &table);

    // Ranking agreement: the model must order the cases like the sim.
    let mut by_model: Vec<usize> = (0..cases.len()).collect();
    by_model.sort_by(|&a, &b| cases[a].model_ps.total_cmp(&cases[b].model_ps));
    let mut by_spice: Vec<usize> = (0..cases.len()).collect();
    by_spice.sort_by(|&a, &b| cases[a].spice_ps.total_cmp(&cases[b].spice_ps));
    let rank_agreement = by_model == by_spice;
    println!("\nranking agreement (model vs spice): {rank_agreement}");

    // Gradient residual on a representative path.
    let (_, grad_path, grad_sizes) = &paths[1];
    let ana = analytic_gradient(&lib, grad_path, grad_sizes);
    let num = grad_path.gradient(&lib, grad_sizes);
    let scale = num.iter().fold(0.0f64, |m, g| m.max(g.abs()));
    let max_rel = ana
        .iter()
        .zip(&num)
        .skip(1)
        .map(|(a, n)| (a - n).abs() / scale)
        .fold(0.0f64, f64::max);
    println!("max analytic-vs-numeric gradient error (scaled): {max_rel:.2e}");

    write_artifact(
        "ablation_model_accuracy",
        &Artifact {
            cases,
            rank_agreement,
            max_gradient_err_rel: max_rel,
        },
    );
}

fn build_cases(lib: &Library) -> Vec<(&'static str, TimedPath, Vec<f64>)> {
    use CellKind::*;
    let cref = lib.min_drive_ff();
    let mut out = Vec::new();

    let chain = TimedPath::new(vec![PathStage::new(Inv); 5], cref, 60.0);
    let min = chain.min_sizes(lib);
    out.push(("inv chain, min sizes", chain.clone(), min));
    out.push((
        "inv chain, tapered",
        chain.clone(),
        vec![cref, 2.0 * cref, 4.0 * cref, 8.0 * cref, 16.0 * cref],
    ));

    let mixed = TimedPath::new(
        vec![
            PathStage::new(Inv),
            PathStage::with_load(Nand3, 10.0),
            PathStage::new(Nor2),
            PathStage::new(Inv),
        ],
        cref,
        45.0,
    );
    let min = mixed.min_sizes(lib);
    out.push(("mixed path, min sizes", mixed.clone(), min));
    out.push((
        "mixed path, uniform 4x",
        mixed.clone(),
        vec![cref, 4.0 * cref, 4.0 * cref, 4.0 * cref],
    ));

    let nor_heavy = TimedPath::new(
        vec![
            PathStage::new(Inv),
            PathStage::new(Nor3),
            PathStage::new(Nor3),
            PathStage::new(Inv),
        ],
        cref,
        30.0,
    );
    let min = nor_heavy.min_sizes(lib);
    out.push(("nor3 pair, min sizes", nor_heavy, min));
    out
}
