//! Fig. 8 — path implementation area (ΣW) per circuit for the three
//! constraint domains (hard / medium / weak), comparing pure sizing,
//! local buffer insertion, and buffer insertion with global sizing.

use pops_bench::{fig2_workloads, print_table, write_artifact};
use pops_core::bounds::{delay_bounds, golden_min};
use pops_core::buffer::insert_buffers;
use pops_core::sensitivity::distribute_constraint;
use pops_delay::Library;

struct Row {
    circuit: String,
    domain: String,
    tc_over_tmin: f64,
    sizing_um: Option<f64>,
    local_buff_um: Option<f64>,
    global_buff_um: Option<f64>,
}
pops_bench::json_fields!(Row {
    circuit,
    domain,
    tc_over_tmin,
    sizing_um,
    local_buff_um,
    global_buff_um
});

fn main() {
    let lib = Library::cmos025();
    println!("Fig. 8 — area per constraint domain: sizing / local buff / global buff\n");

    let mut rows = Vec::new();
    for (domain, factor) in [("hard", 1.1), ("medium", 1.8), ("weak", 2.7)] {
        println!("== {domain} constraint (Tc = {factor} * Tmin) ==");
        let mut table = Vec::new();
        for w in fig2_workloads(&lib) {
            let b = delay_bounds(&lib, &w.path);
            let tc = factor * b.tmin_ps;

            // Pure sizing.
            let sizing = distribute_constraint(&lib, &w.path, tc)
                .ok()
                .map(|s| lib.process().width_um(s.total_cin_ff));

            // Buffered structure (shared by the two buffering variants).
            let (buffered, _) = insert_buffers(&lib, &w.path);

            // Local buffering: original gates keep the sizing-only
            // solution; only the inserted buffers are scaled (bisected) to
            // just meet Tc.
            let local = local_buffer_area(&lib, &w, &buffered, tc);

            // Global: full constant-sensitivity re-sizing of the buffered
            // path.
            let global = distribute_constraint(&lib, &buffered.path, tc)
                .ok()
                .map(|s| lib.process().width_um(s.total_cin_ff));

            let show = |a: &Option<f64>| {
                a.map(|v| format!("{v:.0}"))
                    .unwrap_or_else(|| "inf.".into())
            };
            table.push(vec![
                w.name.to_string(),
                show(&sizing),
                show(&local),
                show(&global),
            ]);
            rows.push(Row {
                circuit: w.name.to_string(),
                domain: domain.to_string(),
                tc_over_tmin: factor,
                sizing_um: sizing,
                local_buff_um: local,
                global_buff_um: global,
            });
        }
        print_table(
            &[
                "circuit",
                "sizing (um)",
                "local buff (um)",
                "global buff (um)",
            ],
            &table,
        );
        println!();
    }
    println!(
        "Shape check (paper): roughly equivalent areas in the weak/medium \
         domains; under hard constraints global buffering yields the \
         important saving."
    );
    write_artifact("fig8_area_domains", &rows);
}

/// Area of the "local buffering" variant: sizing-only gate sizes, buffers
/// scaled by a single factor bisected to just meet `tc`.
fn local_buffer_area(
    lib: &Library,
    w: &pops_bench::Workload,
    buffered: &pops_core::buffer::BufferedPath,
    tc: f64,
) -> Option<f64> {
    let base = distribute_constraint(lib, &w.path, tc).ok()?;
    if buffered.inserted_at.is_empty() {
        return Some(lib.process().width_um(base.total_cin_ff));
    }
    // Rebuild the buffered sizing: original stages keep `base` sizes,
    // buffer stages get `scale * CREF`.
    let make_sizes = |scale: f64| {
        let mut sizes = Vec::with_capacity(buffered.path.len());
        let mut base_iter = base.sizes.iter();
        for i in 0..buffered.path.len() {
            if buffered.inserted_at.contains(&i) {
                sizes.push(scale * lib.min_drive_ff());
            } else {
                sizes.push(*base_iter.next().expect("stage counts line up"));
            }
        }
        sizes
    };
    let delay_at = |scale: f64| buffered.path.delay(lib, &make_sizes(scale)).total_ps;
    // Find the buffer scale minimizing delay, then the smallest scale
    // meeting tc on the decreasing branch.
    let best_scale = golden_min(delay_at, 1.0, 64.0);
    if delay_at(best_scale) > tc {
        return None; // local buffering alone cannot meet tc
    }
    let (mut lo, mut hi) = (1.0f64, best_scale);
    if delay_at(lo) <= tc {
        hi = lo;
    }
    for _ in 0..50 {
        let mid = 0.5 * (lo + hi);
        if delay_at(mid) <= tc {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let sizes = make_sizes(hi);
    Some(lib.process().width_um(sizes.iter().sum()))
}
