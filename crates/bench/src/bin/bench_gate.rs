//! Bench-regression gate: compare freshly produced `BENCH_*.json`
//! artifacts against the committed baselines and fail when a speedup
//! regresses past the tolerance.
//!
//! ```text
//! bench_gate <baseline_dir> <current_dir> [--tolerance <fraction>]
//! ```
//!
//! Every `BENCH_*.json` in `<baseline_dir>` that also exists in
//! `<current_dir>` is parsed as an array of row objects; rows are keyed
//! by their `kind` and `circuit` members plus the optional `k`,
//! `threads` and `dirty_fraction` members (the mixed workload's batch
//! size, the scaling bench's worker count and calibration point). For
//! each pair of rows, every `speedup_*` member in the baseline must be
//! matched by a current value no lower than `baseline · (1 − tolerance)`
//! (default tolerance 0.20 — bench runners are noisy; the gate catches
//! real regressions, not jitter). A baseline row or member missing from
//! the current artifact fails too: silently dropping a measurement is
//! how regressions hide. The one escape hatch is a baseline row
//! carrying `"optional": true` — those rows may be absent from the
//! current run (the scaling bench's large classes and machine-dependent
//! thread rows are committed from a full local run, while CI
//! regenerates only the small class); when present they are gated
//! normally.
//!
//! Thread-scaling rows (`parallel_speedup_median`) gate only when both
//! sides are *comparable*: each row must record a `host_cores` at least
//! as large as its worker count, proving the environment could actually
//! run the pool it timed. A multi-worker row recorded on a 1-core
//! container has `parallel_speedup_median < 1` by construction —
//! comparing against it (or holding a multi-core baseline against a
//! 1-core rerun) gates scheduler thrash, not scaling, so those pairs
//! are skipped with a note instead.
//!
//! Exit code 0 when everything passes, 1 otherwise, with one line per
//! comparison on stdout.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pops_bench::json::{parse, Value};

/// The gated members: medians are the headline numbers the acceptance
/// criteria quote; means ride along with the same tolerance.
const GATED: [&str; 2] = ["speedup_median", "speedup_mean"];

/// Gated too, but only between rows whose recorded `host_cores` covers
/// their worker count on *both* sides (see the module docs).
const THREAD_GATED: &str = "parallel_speedup_median";

fn row_key(row: &Value) -> String {
    let mut key = row
        .get("circuit")
        .and_then(Value::as_str)
        .unwrap_or("<unkeyed>")
        .to_string();
    // Row families of one artifact can share a circuit AND a worker
    // count (the scaling bench's forward and backward sweep rows), so
    // the family tag leads the key when present.
    if let Some(kind) = row.get("kind").and_then(Value::as_str) {
        key = format!("{kind} {key}");
    }
    if let Some(k) = row.get("k").and_then(Value::as_f64) {
        key.push_str(&format!(" K={k}"));
    }
    if let Some(t) = row.get("threads").and_then(Value::as_f64) {
        key.push_str(&format!(" T={t}"));
    }
    if let Some(f) = row.get("dirty_fraction").and_then(Value::as_f64) {
        key.push_str(&format!(" f={f}"));
    }
    key
}

/// A baseline row that the current run is allowed to omit (it still
/// gates normally whenever the current artifact does contain it).
fn is_optional(row: &Value) -> bool {
    row.get("optional") == Some(&Value::Bool(true))
}

/// Whether a row's thread-scaling number was recorded in an environment
/// that could actually run its worker pool. Single-worker rows are
/// trivially comparable; multi-worker rows must carry a `host_cores` at
/// least as large as `threads` (rows predating the metadata are treated
/// as incomparable — their provenance is unknown).
fn thread_scaling_comparable(row: &Value) -> bool {
    let Some(t) = row.get("threads").and_then(Value::as_f64) else {
        return true;
    };
    if t <= 1.0 {
        return true;
    }
    row.get("host_cores")
        .and_then(Value::as_f64)
        .is_some_and(|c| c >= t)
}

fn load_rows(path: &Path) -> Result<Vec<Value>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let value = parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
    value
        .as_array()
        .map(<[Value]>::to_vec)
        .ok_or_else(|| format!("{} is not a JSON array", path.display()))
}

fn gate_file(name: &str, baseline: &Path, current: &Path, tolerance: f64) -> Result<usize, String> {
    let base_rows = load_rows(baseline)?;
    let cur_rows = load_rows(current)?;
    Ok(gate_rows(name, &base_rows, &cur_rows, tolerance))
}

fn gate_rows(name: &str, base_rows: &[Value], cur_rows: &[Value], tolerance: f64) -> usize {
    let mut failures = 0usize;
    for base in base_rows {
        let key = row_key(base);
        let Some(cur) = cur_rows.iter().find(|r| row_key(r) == key) else {
            if is_optional(base) {
                println!("skip {name} [{key}]: optional row not produced by this run");
            } else {
                println!("FAIL {name} [{key}]: row missing from current artifact");
                failures += 1;
            }
            continue;
        };
        for member in GATED {
            failures += gate_member(name, &key, member, base, cur, tolerance);
        }
        if base.get(THREAD_GATED).and_then(Value::as_f64).is_some() {
            if !thread_scaling_comparable(base) {
                println!(
                    "skip {name} [{key}] {THREAD_GATED}: baseline host could not \
                     run this worker count"
                );
            } else if !thread_scaling_comparable(cur) {
                println!(
                    "skip {name} [{key}] {THREAD_GATED}: current host cannot \
                     run this worker count"
                );
            } else {
                failures += gate_member(name, &key, THREAD_GATED, base, cur, tolerance);
            }
        }
    }
    failures
}

/// Gate one speedup member of one row pair; returns the failure count
/// (0 or 1). A member absent from the baseline gates nothing.
fn gate_member(
    name: &str,
    key: &str,
    member: &str,
    base: &Value,
    cur: &Value,
    tolerance: f64,
) -> usize {
    let Some(want) = base.get(member).and_then(Value::as_f64) else {
        return 0;
    };
    let floor = want * (1.0 - tolerance);
    match cur.get(member).and_then(Value::as_f64) {
        Some(got) if got >= floor => {
            println!("  ok {name} [{key}] {member}: {got:.3} vs baseline {want:.3}");
            0
        }
        Some(got) => {
            println!(
                "FAIL {name} [{key}] {member}: {got:.3} < floor {floor:.3} \
                 (baseline {want:.3}, tolerance {tolerance})"
            );
            1
        }
        None => {
            println!("FAIL {name} [{key}] {member}: missing from current artifact");
            1
        }
    }
}

/// Parse and validate a `--tolerance` value. The tolerance is the
/// *fraction of the baseline a speedup may drop* before the gate fails,
/// so only `0 < t < 1` gates anything sensible: zero rejects every
/// benign jitter, a negative value demands current runs *beat* the
/// baseline, `NaN` poisons every floor into `NaN` (failing every row
/// regardless of the data), and `t >= 1` drops the floor to zero or
/// below — a gate that can never fire. All of those are operator
/// errors, not thresholds; reject them loudly instead of gating with a
/// nonsense floor.
fn parse_tolerance(raw: Option<&str>) -> Result<f64, String> {
    let raw = raw.ok_or("--tolerance takes a fraction, e.g. 0.2")?;
    let t: f64 = raw
        .parse()
        .map_err(|_| format!("--tolerance: not a number: {raw:?}"))?;
    if t.is_nan() {
        return Err("--tolerance: NaN is not a threshold".into());
    }
    if t <= 0.0 {
        return Err(format!(
            "--tolerance: must be positive, got {t} (a zero or negative \
             tolerance fails every comparison instead of gating regressions)"
        ));
    }
    if t >= 1.0 {
        return Err(format!(
            "--tolerance: must be below 1, got {t} (the floor would drop \
             to zero or below and the gate could never fire)"
        ));
    }
    Ok(t)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = 0.20f64;
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--tolerance" {
            tolerance = match parse_tolerance(it.next().map(String::as_str)) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
        } else {
            dirs.push(PathBuf::from(arg));
        }
    }
    let [baseline_dir, current_dir] = &dirs[..] else {
        eprintln!("usage: bench_gate <baseline_dir> <current_dir> [--tolerance <fraction>]");
        return ExitCode::FAILURE;
    };

    let mut names: Vec<String> = match std::fs::read_dir(baseline_dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            .collect(),
        Err(e) => {
            eprintln!("cannot list {}: {e}", baseline_dir.display());
            return ExitCode::FAILURE;
        }
    };
    names.sort();
    if names.is_empty() {
        eprintln!("no BENCH_*.json baselines in {}", baseline_dir.display());
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    let mut compared = 0usize;
    for name in &names {
        let current = current_dir.join(name);
        if !current.exists() {
            // The artifact was not regenerated in this run: nothing to
            // gate (the committed copy is by definition unregressed).
            println!("skip {name}: not produced by this run");
            continue;
        }
        compared += 1;
        match gate_file(name, &baseline_dir.join(name), &current, tolerance) {
            Ok(n) => failures += n,
            Err(e) => {
                println!("FAIL {e}");
                failures += 1;
            }
        }
    }

    println!(
        "bench gate: {compared} artifact(s) compared, {failures} failure(s), tolerance {tolerance}"
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::{gate_rows, parse_tolerance, row_key};
    use pops_bench::json::{parse, Value};

    fn rows(json: &str) -> Vec<Value> {
        parse(json).unwrap().as_array().unwrap().to_vec()
    }

    #[test]
    fn row_keys_distinguish_k_threads_and_fraction() {
        let r = rows(
            r#"[
                {"circuit":"synth10k"},
                {"circuit":"synth10k","k":8},
                {"circuit":"synth10k","threads":4},
                {"circuit":"synth10k","dirty_fraction":0.75}
            ]"#,
        );
        let keys: Vec<String> = r.iter().map(row_key).collect();
        assert_eq!(
            keys,
            [
                "synth10k",
                "synth10k K=8",
                "synth10k T=4",
                "synth10k f=0.75"
            ]
        );
    }

    #[test]
    fn row_keys_distinguish_sweep_directions() {
        // The scaling bench's forward and backward sweep rows share a
        // circuit and a worker count; only the `kind` tells them apart.
        let r = rows(
            r#"[
                {"kind":"full_sweep","circuit":"synth10k","threads":1},
                {"kind":"backward_sweep","circuit":"synth10k","threads":1}
            ]"#,
        );
        let keys: Vec<String> = r.iter().map(row_key).collect();
        assert_eq!(
            keys,
            ["full_sweep synth10k T=1", "backward_sweep synth10k T=1"]
        );
        assert_ne!(keys[0], keys[1]);
    }

    #[test]
    fn missing_optional_rows_are_skipped_not_failed() {
        let base = rows(
            r#"[
                {"circuit":"synth100k","k":8,"speedup_median":2.0,"optional":true},
                {"circuit":"synth10k","k":8,"speedup_median":2.0}
            ]"#,
        );
        // Current run produced only the mandatory row, unregressed.
        let cur = rows(r#"[{"circuit":"synth10k","k":8,"speedup_median":1.9}]"#);
        assert_eq!(gate_rows("t", &base, &cur, 0.2), 0);
        // Dropping the mandatory row still fails.
        assert_eq!(gate_rows("t", &base, &[], 0.2), 1);
    }

    #[test]
    fn present_optional_rows_still_gate() {
        let base = rows(r#"[{"circuit":"synth100k","k":8,"speedup_median":2.0,"optional":true}]"#);
        let regressed = rows(r#"[{"circuit":"synth100k","k":8,"speedup_median":1.0}]"#);
        assert_eq!(gate_rows("t", &base, &regressed, 0.2), 1);
        let fine = rows(r#"[{"circuit":"synth100k","k":8,"speedup_median":1.9}]"#);
        assert_eq!(gate_rows("t", &base, &fine, 0.2), 0);
    }

    #[test]
    fn thread_rows_do_not_collide() {
        // Two thread rows of the same circuit: each must match its own
        // counterpart, not the first row that shares the circuit name.
        let base = rows(
            r#"[
                {"circuit":"synth10k","threads":1,"speedup_median":1.0},
                {"circuit":"synth10k","threads":4,"speedup_median":3.0}
            ]"#,
        );
        let cur = rows(
            r#"[
                {"circuit":"synth10k","threads":4,"speedup_median":3.1},
                {"circuit":"synth10k","threads":1,"speedup_median":1.0}
            ]"#,
        );
        assert_eq!(gate_rows("t", &base, &cur, 0.2), 0);
        // Regress only the 4-thread row: exactly one failure.
        let cur = rows(
            r#"[
                {"circuit":"synth10k","threads":4,"speedup_median":1.5},
                {"circuit":"synth10k","threads":1,"speedup_median":1.0}
            ]"#,
        );
        assert_eq!(gate_rows("t", &base, &cur, 0.2), 1);
    }

    #[test]
    fn thread_rows_gate_only_between_capable_hosts() {
        // Both sides recorded on a host with cores >= workers: the
        // thread speedup gates like any other member.
        let base = rows(
            r#"[{"circuit":"synth10k","threads":4,"host_cores":8,
                 "parallel_speedup_median":3.0}]"#,
        );
        let fine = rows(
            r#"[{"circuit":"synth10k","threads":4,"host_cores":8,
                 "parallel_speedup_median":2.9}]"#,
        );
        assert_eq!(gate_rows("t", &base, &fine, 0.2), 0);
        let regressed = rows(
            r#"[{"circuit":"synth10k","threads":4,"host_cores":8,
                 "parallel_speedup_median":1.1}]"#,
        );
        assert_eq!(gate_rows("t", &base, &regressed, 0.2), 1);

        // Current run on a 1-core container: skipped, not failed — the
        // oversubscribed pool measures scheduler thrash, not scaling.
        let cramped = rows(
            r#"[{"circuit":"synth10k","threads":4,"host_cores":1,
                 "parallel_speedup_median":0.6}]"#,
        );
        assert_eq!(gate_rows("t", &base, &cramped, 0.2), 0);

        // Baseline itself recorded on an undersized host (or predating
        // the metadata entirely): never gate against it.
        let bad_base = rows(
            r#"[{"circuit":"synth10k","threads":4,"host_cores":1,
                 "parallel_speedup_median":0.6}]"#,
        );
        assert_eq!(gate_rows("t", &bad_base, &regressed, 0.2), 0);
        let legacy_base = rows(
            r#"[{"circuit":"synth10k","threads":4,
                 "parallel_speedup_median":3.0}]"#,
        );
        assert_eq!(gate_rows("t", &legacy_base, &regressed, 0.2), 0);
    }

    #[test]
    fn single_worker_rows_are_always_comparable() {
        // threads = 1 needs no host_cores: any machine can run one
        // worker, and its speedup column is the 1.0 anchor.
        let base = rows(
            r#"[{"circuit":"synth10k","threads":1,
                 "parallel_speedup_median":1.0}]"#,
        );
        let cur = rows(
            r#"[{"circuit":"synth10k","threads":1,
                 "parallel_speedup_median":1.0}]"#,
        );
        assert_eq!(gate_rows("t", &base, &cur, 0.2), 0);
        let broken = rows(
            r#"[{"circuit":"synth10k","threads":1,
                 "parallel_speedup_median":0.5}]"#,
        );
        assert_eq!(gate_rows("t", &base, &broken, 0.2), 1);
    }

    #[test]
    fn sensible_fractions_parse() {
        assert_eq!(parse_tolerance(Some("0.2")).unwrap(), 0.2);
        assert_eq!(parse_tolerance(Some("0.05")).unwrap(), 0.05);
        assert_eq!(parse_tolerance(Some("0.999")).unwrap(), 0.999);
    }

    #[test]
    fn nonsense_thresholds_are_rejected() {
        // Each of these used to gate silently with a meaningless floor.
        for bad in ["0", "0.0", "-0.3", "NaN", "-NaN", "1", "1.5", "inf", "-inf"] {
            assert!(
                parse_tolerance(Some(bad)).is_err(),
                "tolerance {bad:?} must be rejected"
            );
        }
        assert!(parse_tolerance(Some("not-a-number")).is_err());
        assert!(parse_tolerance(None).is_err(), "missing value");
    }
}
