//! Bench-regression gate: compare freshly produced `BENCH_*.json`
//! artifacts against the committed baselines and fail when a speedup
//! regresses past the tolerance.
//!
//! ```text
//! bench_gate <baseline_dir> <current_dir> [--tolerance <fraction>]
//! ```
//!
//! Every `BENCH_*.json` in `<baseline_dir>` that also exists in
//! `<current_dir>` is parsed as an array of row objects; rows are keyed
//! by their `circuit` member plus the optional `k` member (the mixed
//! workload's batch size). For each pair of rows, every `speedup_*`
//! member in the baseline must be matched by a current value no lower
//! than `baseline · (1 − tolerance)` (default tolerance 0.20 — bench
//! runners are noisy; the gate catches real regressions, not jitter).
//! A baseline row or member missing from the current artifact fails
//! too: silently dropping a measurement is how regressions hide.
//!
//! Exit code 0 when everything passes, 1 otherwise, with one line per
//! comparison on stdout.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pops_bench::json::{parse, Value};

/// The gated members: medians are the headline numbers the acceptance
/// criteria quote; means ride along with the same tolerance.
const GATED: [&str; 2] = ["speedup_median", "speedup_mean"];

fn row_key(row: &Value) -> String {
    let circuit = row
        .get("circuit")
        .and_then(Value::as_str)
        .unwrap_or("<unkeyed>");
    match row.get("k").and_then(Value::as_f64) {
        Some(k) => format!("{circuit} K={k}"),
        None => circuit.to_string(),
    }
}

fn load_rows(path: &Path) -> Result<Vec<Value>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let value = parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
    value
        .as_array()
        .map(<[Value]>::to_vec)
        .ok_or_else(|| format!("{} is not a JSON array", path.display()))
}

fn gate_file(name: &str, baseline: &Path, current: &Path, tolerance: f64) -> Result<usize, String> {
    let base_rows = load_rows(baseline)?;
    let cur_rows = load_rows(current)?;
    let mut failures = 0usize;
    for base in &base_rows {
        let key = row_key(base);
        let Some(cur) = cur_rows.iter().find(|r| row_key(r) == key) else {
            println!("FAIL {name} [{key}]: row missing from current artifact");
            failures += 1;
            continue;
        };
        for member in GATED {
            let Some(want) = base.get(member).and_then(Value::as_f64) else {
                continue;
            };
            let floor = want * (1.0 - tolerance);
            match cur.get(member).and_then(Value::as_f64) {
                Some(got) if got >= floor => {
                    println!("  ok {name} [{key}] {member}: {got:.3} vs baseline {want:.3}");
                }
                Some(got) => {
                    println!(
                        "FAIL {name} [{key}] {member}: {got:.3} < floor {floor:.3} \
                         (baseline {want:.3}, tolerance {tolerance})"
                    );
                    failures += 1;
                }
                None => {
                    println!("FAIL {name} [{key}] {member}: missing from current artifact");
                    failures += 1;
                }
            }
        }
    }
    Ok(failures)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = 0.20f64;
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--tolerance" {
            tolerance = it
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--tolerance takes a fraction, e.g. 0.2");
        } else {
            dirs.push(PathBuf::from(arg));
        }
    }
    let [baseline_dir, current_dir] = &dirs[..] else {
        eprintln!("usage: bench_gate <baseline_dir> <current_dir> [--tolerance <fraction>]");
        return ExitCode::FAILURE;
    };

    let mut names: Vec<String> = match std::fs::read_dir(baseline_dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            .collect(),
        Err(e) => {
            eprintln!("cannot list {}: {e}", baseline_dir.display());
            return ExitCode::FAILURE;
        }
    };
    names.sort();
    if names.is_empty() {
        eprintln!("no BENCH_*.json baselines in {}", baseline_dir.display());
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    let mut compared = 0usize;
    for name in &names {
        let current = current_dir.join(name);
        if !current.exists() {
            // The artifact was not regenerated in this run: nothing to
            // gate (the committed copy is by definition unregressed).
            println!("skip {name}: not produced by this run");
            continue;
        }
        compared += 1;
        match gate_file(name, &baseline_dir.join(name), &current, tolerance) {
            Ok(n) => failures += n,
            Err(e) => {
                println!("FAIL {e}");
                failures += 1;
            }
        }
    }

    println!(
        "bench gate: {compared} artifact(s) compared, {failures} failure(s), tolerance {tolerance}"
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
