//! Table 1 — CPU time to satisfy a path delay constraint: POPS'
//! deterministic distribution vs the AMPS-style iterative sizer.
//!
//! The paper reports a two-orders-of-magnitude speedup. Wall-clock
//! milliseconds on today's hardware are far smaller than 2005's, so the
//! column to compare is the *ratio*.

use std::time::Instant;

use pops_amps::{greedy_size_for_constraint, GreedyOptions};
use pops_bench::paper_ref::TABLE1_CPU_TIME;
use pops_bench::{paper_workloads, print_table, write_artifact};
use pops_core::bounds::delay_bounds;
use pops_core::sensitivity::distribute_constraint;
use pops_delay::Library;

struct Row {
    circuit: String,
    gates: usize,
    pops_ms: f64,
    amps_ms: f64,
    speedup: f64,
    paper_speedup: Option<f64>,
}
pops_bench::json_fields!(Row {
    circuit,
    gates,
    pops_ms,
    amps_ms,
    speedup,
    paper_speedup
});

fn time_ms(mut f: impl FnMut()) -> f64 {
    // Repeat fast bodies for stable numbers.
    let t0 = Instant::now();
    let mut reps = 0u32;
    loop {
        f();
        reps += 1;
        if t0.elapsed().as_millis() >= 50 || reps >= 100 {
            break;
        }
    }
    t0.elapsed().as_secs_f64() * 1000.0 / reps as f64
}

fn main() {
    let lib = Library::cmos025();
    println!("Table 1 — CPU time for constraint distribution (Tc = 1.2 * Tmin)\n");

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for w in paper_workloads(&lib) {
        let b = delay_bounds(&lib, &w.path);
        let tc = 1.2 * b.tmin_ps;
        let pops_ms = time_ms(|| {
            let _ = distribute_constraint(&lib, &w.path, tc);
        });
        let t0 = Instant::now();
        let _ = greedy_size_for_constraint(&lib, &w.path, tc, &GreedyOptions::default());
        let amps_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let speedup = amps_ms / pops_ms;
        let paper = TABLE1_CPU_TIME
            .iter()
            .find(|r| r.0 == w.name)
            .map(|r| r.3 / r.2);
        table.push(vec![
            w.name.to_string(),
            w.gate_count.to_string(),
            format!("{pops_ms:.2}"),
            format!("{amps_ms:.2}"),
            format!("{speedup:.0}x"),
            paper
                .map(|s| format!("{s:.0}x"))
                .unwrap_or_else(|| "-".into()),
        ]);
        rows.push(Row {
            circuit: w.name.to_string(),
            gates: w.gate_count,
            pops_ms,
            amps_ms,
            speedup,
            paper_speedup: paper,
        });
    }
    print_table(
        &[
            "circuit",
            "gates",
            "POPS (ms)",
            "AMPS (ms)",
            "speedup",
            "paper speedup",
        ],
        &table,
    );
    println!(
        "\nShape check (paper): \"a two order of magnitude speed up of the \
         constraint distribution step\"."
    );
    write_artifact("table1_cpu_time", &rows);
}
