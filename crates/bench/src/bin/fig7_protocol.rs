//! Fig. 7 — the optimization protocol itself, exercised end to end on
//! every circuit and every constraint domain. Prints which technique the
//! protocol selected and what it cost.

use pops_bench::{fig2_workloads, print_table, write_artifact};
use pops_core::bounds::delay_bounds;
use pops_core::protocol::{optimize, ProtocolOptions, Technique};
use pops_delay::Library;

struct Row {
    circuit: String,
    tc_over_tmin: f64,
    class: String,
    technique: String,
    delay_ps: f64,
    area_um: f64,
    buffers: usize,
    restructured: usize,
}
pops_bench::json_fields!(Row {
    circuit,
    tc_over_tmin,
    class,
    technique,
    delay_ps,
    area_um,
    buffers,
    restructured
});

fn main() {
    let lib = Library::cmos025();
    println!("Fig. 7 — protocol decisions across the constraint spectrum\n");

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for w in fig2_workloads(&lib) {
        let b = delay_bounds(&lib, &w.path);
        for factor in [0.97, 1.1, 1.8, 2.7] {
            let tc = factor * b.tmin_ps;
            match optimize(&lib, &w.path, tc, &ProtocolOptions::default()) {
                Ok(out) => {
                    let technique = match out.technique {
                        Technique::SizingOnly => "sizing",
                        Technique::BufferAndSizing => "buffer+sizing",
                        Technique::RestructureAndSizing => "restructure+sizing",
                    };
                    table.push(vec![
                        w.name.to_string(),
                        format!("{factor:.2}"),
                        format!("{:?}", out.class),
                        technique.to_string(),
                        format!("{:.0}", out.delay_ps),
                        format!("{:.0}", out.area_um),
                        out.inserted_buffers.to_string(),
                        out.restructured_gates.to_string(),
                    ]);
                    rows.push(Row {
                        circuit: w.name.to_string(),
                        tc_over_tmin: factor,
                        class: format!("{:?}", out.class),
                        technique: technique.to_string(),
                        delay_ps: out.delay_ps,
                        area_um: out.area_um,
                        buffers: out.inserted_buffers,
                        restructured: out.restructured_gates,
                    });
                }
                Err(e) => {
                    table.push(vec![
                        w.name.to_string(),
                        format!("{factor:.2}"),
                        "-".into(),
                        format!("infeasible: {e}"),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                }
            }
        }
    }
    print_table(
        &[
            "circuit",
            "Tc/Tmin",
            "class",
            "technique",
            "delay (ps)",
            "sigmaW (um)",
            "buffers",
            "restruct",
        ],
        &table,
    );
    println!(
        "\nShape check (paper, Fig. 7): weak constraints are solved by sizing \
         alone; hard and sub-Tmin constraints trigger structure modification."
    );
    write_artifact("fig7_protocol", &rows);
}
