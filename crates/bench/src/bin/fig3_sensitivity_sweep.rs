//! Fig. 3 — the constant sensitivity method on an 11-gate path: each
//! value of the coefficient `a` yields one (area, delay) point; sweeping
//! `a` from 0 to large negative values walks the whole design space from
//! `Tmin` to the minimum-area/`Tmax` corner.

use pops_bench::{print_table, write_artifact};
use pops_core::bounds::{tmax, tmin};
use pops_core::sensitivity::{design_space_sweep, SensitivityOptions};
use pops_delay::{Library, PathStage, TimedPath};
use pops_netlist::CellKind;

struct Point {
    a: f64,
    area_um: f64,
    delay_ps: f64,
}
pops_bench::json_fields!(Point {
    a,
    area_um,
    delay_ps
});

fn eleven_gate_path(lib: &Library) -> TimedPath {
    use CellKind::*;
    TimedPath::new(
        vec![
            PathStage::new(Inv),
            PathStage::new(Nand2),
            PathStage::new(Inv),
            PathStage::with_load(Nor2, 5.0),
            PathStage::new(Nand3),
            PathStage::new(Inv),
            PathStage::new(Nor3),
            PathStage::with_load(Nand2, 8.0),
            PathStage::new(Inv),
            PathStage::new(Nor2),
            PathStage::new(Inv),
        ],
        lib.min_drive_ff(),
        90.0,
    )
}

fn main() {
    let lib = Library::cmos025();
    let path = eleven_gate_path(&lib);

    // The paper annotates a = -0.06, -0.6, -0.8 on its curve; we sweep a
    // denser log grid covering the same range and beyond.
    let a_values: Vec<f64> = vec![
        0.0, -0.01, -0.03, -0.06, -0.1, -0.2, -0.4, -0.6, -0.8, -1.2, -2.0, -4.0, -8.0, -20.0,
        -60.0,
    ];
    let points = design_space_sweep(&lib, &path, &a_values, &SensitivityOptions::default());

    println!("Fig. 3 — constant sensitivity design-space sweep (11-gate path)\n");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:+.2}", p.a),
                format!("{:.1}", path.area_um(&lib, &p.sizes)),
                format!("{:.1}", p.delay_ps),
            ]
        })
        .collect();
    print_table(&["a (ps/fF)", "sigmaW (um)", "delay (ps)"], &rows);

    let t_min = tmin(&lib, &path).delay_ps;
    let t_max = tmax(&lib, &path);
    println!(
        "\nT(a=0)  = {:.1} ps  (the Tmin anchor of the curve)",
        t_min
    );
    println!(
        "Tmax    = {:.1} ps  (minimum-drive end of the curve)",
        t_max
    );
    println!(
        "Shape check (paper): delay rises monotonically as a goes negative, \
         area falls monotonically — one curve, fully ordered."
    );

    let artifact: Vec<Point> = points
        .iter()
        .map(|p| Point {
            a: p.a,
            area_um: path.area_um(&lib, &p.sizes),
            delay_ps: p.delay_ps,
        })
        .collect();
    write_artifact("fig3_sensitivity_sweep", &artifact);
}
