//! Fig. 2 — minimum delay `Tmin` per circuit: POPS (deterministic link
//! equations) vs AMPS (iterative industrial baseline), with the POPS
//! sizing cross-validated by the transistor-level simulator (the paper's
//! "delay values are obtained from SPICE simulations").

use pops_amps::{greedy_min_delay, random_min_delay, GreedyOptions, RandomSearchOptions};
use pops_bench::paper_ref::table3_row;
use pops_bench::report::ns;
use pops_bench::{fig2_workloads, print_table, write_artifact};
use pops_core::bounds::tmin;
use pops_delay::Library;
use pops_spice::path_sim::simulate_path;
use pops_spice::ElectricalParams;

struct Row {
    circuit: String,
    gates: usize,
    pops_tmin_ns: f64,
    amps_tmin_ns: f64,
    spice_ns: f64,
    paper_pops_ns: Option<f64>,
}
pops_bench::json_fields!(Row {
    circuit,
    gates,
    pops_tmin_ns,
    amps_tmin_ns,
    spice_ns,
    paper_pops_ns
});

fn main() {
    let lib = Library::cmos025();
    let params = ElectricalParams::cmos025();

    println!("Fig. 2 — Tmin: POPS vs AMPS (with SPICE-substitute validation)\n");

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for w in fig2_workloads(&lib) {
        let pops = tmin(&lib, &w.path);
        let greedy = greedy_min_delay(&lib, &w.path, &GreedyOptions::default());
        let random = random_min_delay(
            &lib,
            &w.path,
            &RandomSearchOptions {
                samples: 400,
                refinement_rounds: 400,
                ..Default::default()
            },
        );
        let amps = greedy.delay_ps.min(random.delay_ps);
        let spice = simulate_path(&params, &lib, &w.path, &pops.sizes).total_delay_ps;
        let paper = table3_row(w.name).map(|r| r.1);
        table.push(vec![
            w.name.to_string(),
            w.gate_count.to_string(),
            ns(pops.delay_ps),
            ns(amps),
            ns(spice),
            paper
                .map(|p| format!("{p:.2}"))
                .unwrap_or_else(|| "-".into()),
            if pops.delay_ps <= amps * 1.005 {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
        rows.push(Row {
            circuit: w.name.to_string(),
            gates: w.gate_count,
            pops_tmin_ns: pops.delay_ps / 1000.0,
            amps_tmin_ns: amps / 1000.0,
            spice_ns: spice / 1000.0,
            paper_pops_ns: paper,
        });
    }
    print_table(
        &[
            "circuit",
            "gates",
            "POPS Tmin (ns)",
            "AMPS Tmin (ns)",
            "SPICE-sub (ns)",
            "paper POPS (ns)",
            "POPS <= AMPS",
        ],
        &table,
    );
    println!(
        "\nShape check (paper): POPS' deterministic minimum undercuts the \
         iterative tool on every circuit."
    );

    write_artifact("fig2_tmin_vs_amps", &rows);
}
