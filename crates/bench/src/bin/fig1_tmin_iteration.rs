//! Fig. 1 — sensitivity of the path delay to gate sizing: the `Tmin`
//! link-equation iteration trajectory from different starting points.
//!
//! The paper shows delay vs `ΣC_IN/C_REF` converging to the same `Tmin`
//! whatever the initial (`C_REF`-seeded) solution. We reproduce the
//! trajectory for the 11-gate path from three different seeds.

use pops_bench::{print_table, write_artifact};
use pops_core::bounds::{tmin_with, TminOptions};
use pops_delay::{Library, PathStage, TimedPath};
use pops_netlist::CellKind;

struct TracePoint {
    start_cin_ff: f64,
    sweep: usize,
    total_cin_over_cref: f64,
    delay_ps: f64,
}
pops_bench::json_fields!(TracePoint {
    start_cin_ff,
    sweep,
    total_cin_over_cref,
    delay_ps
});

struct Fig1 {
    tmin_ps_per_start: Vec<(f64, f64)>,
    trace: Vec<TracePoint>,
}
pops_bench::json_fields!(Fig1 {
    tmin_ps_per_start,
    trace
});

fn eleven_gate_path(lib: &Library) -> TimedPath {
    use CellKind::*;
    TimedPath::new(
        vec![
            PathStage::new(Inv),
            PathStage::new(Nand2),
            PathStage::new(Inv),
            PathStage::with_load(Nor2, 5.0),
            PathStage::new(Nand3),
            PathStage::new(Inv),
            PathStage::new(Nor3),
            PathStage::with_load(Nand2, 8.0),
            PathStage::new(Inv),
            PathStage::new(Nor2),
            PathStage::new(Inv),
        ],
        lib.min_drive_ff(),
        90.0,
    )
}

fn main() {
    let lib = Library::cmos025();
    let path = eleven_gate_path(&lib);
    let starts = [
        lib.min_drive_ff(),
        10.0 * lib.min_drive_ff(),
        40.0 * lib.min_drive_ff(),
    ];

    println!("Fig. 1 — Tmin iteration: delay vs sigma(CIN)/CREF");
    println!("(paper: all starts converge to the same Tmin)\n");

    let mut rows = Vec::new();
    let mut trace = Vec::new();
    let mut finals = Vec::new();
    for &start in &starts {
        let r = tmin_with(
            &lib,
            &path,
            &TminOptions {
                start_cin_ff: Some(start),
                ..Default::default()
            },
        );
        for (sweep, pt) in r.trace.iter().enumerate() {
            trace.push(TracePoint {
                start_cin_ff: start,
                sweep,
                total_cin_over_cref: pt.total_cin_over_cref,
                delay_ps: pt.delay_ps,
            });
        }
        finals.push((start, r.delay_ps));
        let first = r.trace.first().expect("non-empty trace");
        let last = r.trace.last().expect("non-empty trace");
        rows.push(vec![
            format!("{:.1}", start),
            format!("{}", r.trace.len()),
            format!(
                "{:.1} -> {:.1}",
                first.total_cin_over_cref, last.total_cin_over_cref
            ),
            format!("{:.1} -> {:.1}", first.delay_ps, last.delay_ps),
            format!("{:.2}", r.delay_ps),
        ]);
    }
    print_table(
        &[
            "start CIN (fF)",
            "sweeps",
            "sigmaCIN/CREF (first -> last)",
            "delay ps (first -> last)",
            "Tmin (ps)",
        ],
        &rows,
    );

    let spread = finals
        .iter()
        .map(|&(_, d)| d)
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), d| {
            (lo.min(d), hi.max(d))
        });
    println!(
        "\nTmin spread across starts: {:.3} ps ({:.4}%) — the paper's invariance claim",
        spread.1 - spread.0,
        (spread.1 - spread.0) / spread.0 * 100.0
    );

    write_artifact(
        "fig1_tmin_iteration",
        &Fig1 {
            tmin_ps_per_start: finals,
            trace,
        },
    );
}
