//! Fig. 4 — implementation area (ΣW) of the critical path under the hard
//! constraint `Tc = 1.2·Tmin`: POPS' constant sensitivity method vs the
//! AMPS-style iterative sizer.

use pops_amps::{greedy_size_for_constraint, GreedyOptions};
use pops_bench::{fig2_workloads, print_table, write_artifact};
use pops_core::bounds::delay_bounds;
use pops_core::sensitivity::distribute_constraint;
use pops_delay::Library;

struct Row {
    circuit: String,
    tc_ps: f64,
    pops_area_um: f64,
    amps_greedy_area_um: f64,
    amps_recovered_area_um: f64,
    pops_saving_vs_greedy_pct: f64,
}
pops_bench::json_fields!(Row {
    circuit,
    tc_ps,
    pops_area_um,
    amps_greedy_area_um,
    amps_recovered_area_um,
    pops_saving_vs_greedy_pct
});

fn main() {
    let lib = Library::cmos025();
    println!("Fig. 4 — area under Tc = 1.2 * Tmin: POPS vs AMPS\n");
    println!(
        "(AMPS column = plain TILOS-style greedy; +recovery = greedy followed \
         by an area-recovery pass, the strongest iterative variant)\n"
    );

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for w in fig2_workloads(&lib) {
        let b = delay_bounds(&lib, &w.path);
        let tc = 1.2 * b.tmin_ps;
        let pops = distribute_constraint(&lib, &w.path, tc).expect("tc > tmin is feasible");
        let plain = greedy_size_for_constraint(
            &lib,
            &w.path,
            tc,
            &GreedyOptions {
                area_recovery: false,
                ..Default::default()
            },
        )
        .expect("feasible");
        let recovered = greedy_size_for_constraint(&lib, &w.path, tc, &GreedyOptions::default())
            .expect("feasible");
        let pops_area = lib.process().width_um(pops.total_cin_ff);
        let plain_area = lib.process().width_um(plain.total_cin_ff);
        let recovered_area = lib.process().width_um(recovered.total_cin_ff);
        let saving = (plain_area - pops_area) / plain_area * 100.0;
        table.push(vec![
            w.name.to_string(),
            format!("{:.2}", tc / 1000.0),
            format!("{pops_area:.1}"),
            format!("{plain_area:.1}"),
            format!("{recovered_area:.1}"),
            format!("{saving:+.1}%"),
        ]);
        rows.push(Row {
            circuit: w.name.to_string(),
            tc_ps: tc,
            pops_area_um: pops_area,
            amps_greedy_area_um: plain_area,
            amps_recovered_area_um: recovered_area,
            pops_saving_vs_greedy_pct: saving,
        });
    }
    print_table(
        &[
            "circuit",
            "Tc (ns)",
            "POPS sigmaW (um)",
            "AMPS sigmaW (um)",
            "AMPS+recovery (um)",
            "POPS saving",
        ],
        &table,
    );
    println!(
        "\nShape check (paper): \"the equal sensitivity method results in a \
         smaller area/power implementation\" on every circuit."
    );
    write_artifact("fig4_area_vs_amps", &rows);
}
