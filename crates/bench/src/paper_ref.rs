//! The paper's published numbers, kept next to our measurements in every
//! table so drift is visible at a glance.
//!
//! Values are transcribed from Verle et al., DATE 2005. Absolute numbers
//! reflect the authors' proprietary 0.25 µm foundry deck and the real
//! (unavailable) technology-mapped netlists; the reproduction targets the
//! *shape*: orderings, crossovers, gain signs and rough factors.

/// Table 1 — CPU time (ms) for constraint distribution: (circuit, gate
/// count on path, POPS ms, AMPS ms).
pub const TABLE1_CPU_TIME: &[(&str, usize, f64, f64)] = &[
    ("adder16", 99, 159.0, 23700.0),
    ("fpd", 14, 19.0, 6120.0),
    ("c432", 29, 29.0, 9950.0),
    ("c499", 29, 30.0, 9050.0),
    ("c880", 28, 29.0, 9850.0),
    ("c1355", 30, 49.0, 11400.0),
    ("c1908", 44, 49.0, 11760.0),
    ("c3540", 58, 69.0, 15890.0),
    ("c5315", 60, 90.0, 19400.0),
    ("c6288", 116, 210.0, 21920.0),
    ("c7552", 47, 69.0, 16400.0),
];

/// Table 2 — fan-out limit for a gate driven by an inverter:
/// (gate, calculated, simulated).
pub const TABLE2_FLIMIT: &[(&str, f64, f64)] = &[
    ("INV", 5.7, 5.9),
    ("NAND2", 4.9, 5.4),
    ("NAND3", 4.5, 5.2),
    ("NOR2", 3.8, 3.5),
    ("NOR3", 2.7, 2.5),
];

/// Table 3 — minimum delay (ns): (circuit, sizing Tmin, buffered Tmin,
/// gain %). Fig. 2's POPS series equals the sizing column.
pub const TABLE3_TMIN: &[(&str, f64, f64, u32)] = &[
    ("adder16", 4.53, 4.39, 3),
    ("c432", 2.22, 1.97, 13),
    ("c499", 1.79, 1.64, 9),
    ("c880", 2.09, 1.71, 22),
    ("c1355", 2.16, 1.89, 14),
    ("c1908", 2.66, 2.32, 15),
    ("c3540", 3.29, 3.21, 2),
    ("c5315", 3.57, 3.20, 12),
    ("c6288", 7.98, 7.74, 3),
    ("c7552", 3.08, 2.60, 18),
];

/// Table 4 — area (ΣW µm) under a hard constraint: (circuit, buffered,
/// restructured, gain %). The paper's c7552 hard row is unreadable in
/// the source scan ("X"); it is omitted here.
pub const TABLE4_HARD: &[(&str, f64, f64, u32)] = &[
    ("c1355", 1522.0, 1286.0, 16),
    ("c1908", 2848.0, 2547.0, 11),
    ("c5315", 1770.0, 1578.0, 11),
];

/// Table 4 — area (ΣW µm) under a medium constraint.
pub const TABLE4_MEDIUM: &[(&str, f64, f64, u32)] = &[
    ("c1355", 240.0, 230.0, 4),
    ("c1908", 280.0, 250.0, 11),
    ("c5315", 500.0, 472.0, 6),
    ("c7552", 344.0, 325.0, 6),
];

/// Fig. 6 — the constraint-domain boundaries (in units of Tmin).
pub const DOMAIN_HARD_BOUNDARY: f64 = 1.2;
/// Fig. 6 — weak/medium boundary (in units of Tmin).
pub const DOMAIN_WEAK_BOUNDARY: f64 = 2.5;

/// Look up a Table 3 row by circuit name.
pub fn table3_row(name: &str) -> Option<&'static (&'static str, f64, f64, u32)> {
    TABLE3_TMIN.iter().find(|r| r.0 == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_covers_all_eleven_circuits() {
        assert_eq!(TABLE1_CPU_TIME.len(), 11);
    }

    #[test]
    fn table3_gains_match_the_columns() {
        for &(name, sizing, buffered, gain) in TABLE3_TMIN {
            let computed = ((sizing - buffered) / sizing * 100.0).round() as u32;
            // The paper's printed gains do not always match its own
            // columns (c880: 2.09 -> 1.71 is 18 %, printed as 22 %);
            // allow the published slack.
            assert!(
                computed.abs_diff(gain) <= 5,
                "{name}: computed {computed} vs published {gain}"
            );
        }
    }

    #[test]
    fn flimit_reference_is_ordered() {
        for w in TABLE2_FLIMIT.windows(2) {
            assert!(w[0].1 > w[1].1);
        }
    }
}
