//! Console tables and machine-readable result artifacts.

use std::fs;
use std::path::PathBuf;

use crate::json::ToJson;

/// Print an aligned console table.
///
/// ```
/// pops_bench::print_table(
///     &["circuit", "Tmin (ns)"],
///     &[vec!["c432".to_string(), "2.21".to_string()]],
/// );
/// ```
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let ncol = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncol, "row width must match header width");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |sep: &str| {
        let cells: Vec<String> = widths.iter().map(|w| sep.repeat(*w + 2)).collect();
        format!("+{}+", cells.join("+"))
    };
    println!("{}", line("-"));
    let header_cells: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!(" {h:<w$} "))
        .collect();
    println!("|{}|", header_cells.join("|"));
    println!("{}", line("="));
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!(" {c:<w$} "))
            .collect();
        println!("|{}|", cells.join("|"));
    }
    println!("{}", line("-"));
}

/// Directory where experiment artifacts are written.
pub fn results_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(target).join("paper_results")
}

/// Serialize an experiment result to `target/paper_results/<name>.json`.
///
/// Failures to write are reported on stderr but do not abort the
/// experiment (the console table is the primary output).
pub fn write_artifact<T: ToJson + ?Sized>(name: &str, value: &T) {
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Err(e) = fs::write(&path, value.to_json()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        println!("[artifact] {}", path.display());
    }
}

/// Repository root, resolved relative to this crate's manifest.
pub fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Serialize a benchmark baseline to `BENCH_<name>.json` at the
/// repository root — the committed artifacts the CI regression gate
/// compares fresh runs against. One implementation shared by every
/// bench binary (each used to hand-roll the same write).
///
/// Failures to write are reported on stderr but do not abort the
/// benchmark (the console table is the primary output).
pub fn write_baseline<T: ToJson + ?Sized>(name: &str, value: &T) {
    let path = repo_root().join(format!("BENCH_{name}.json"));
    match fs::write(&path, value.to_json()) {
        Ok(()) => println!("[baseline] {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Median of a sample set (by value; the vector is consumed). For an
/// even-length set this is the mean of the two middle elements — not
/// the upper-middle element, which biased every even-sample timing
/// summary toward its slower half.
///
/// # Panics
///
/// Panics on an empty sample set.
pub fn median(mut xs: Vec<f64>) -> f64 {
    assert!(!xs.is_empty(), "median of an empty sample set");
    debug_assert!(xs.iter().all(|x| !x.is_nan()), "NaN in sample set");
    xs.sort_by(f64::total_cmp);
    let mid = xs.len() / 2;
    if xs.len().is_multiple_of(2) {
        (xs[mid - 1] + xs[mid]) / 2.0
    } else {
        xs[mid]
    }
}

/// Arithmetic mean of a sample set.
///
/// # Panics
///
/// Panics on an empty sample set.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of an empty sample set");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Format picoseconds as nanoseconds with two decimals (the paper's
/// Tmin unit).
pub fn ns(ps: f64) -> String {
    format!("{:.2}", ps / 1000.0)
}

/// Format a relative gain as a percentage (the paper's "gain" rows).
pub fn gain_pct(before: f64, after: f64) -> String {
    format!("{:.0}%", (before - after) / before * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_formats_two_decimals() {
        assert_eq!(ns(4530.0), "4.53");
        assert_eq!(ns(999.5), "1.00");
    }

    #[test]
    fn gain_formats_percent() {
        assert_eq!(gain_pct(100.0, 87.0), "13%");
    }

    #[test]
    fn median_and_mean() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0]), 2.5);
        assert_eq!(median(vec![1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(median(vec![7.0]), 7.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn repo_root_holds_the_workspace_manifest() {
        assert!(repo_root().join("Cargo.toml").exists());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_panic() {
        print_table(&["a", "b"], &[vec!["x".into()]]);
    }
}
