//! Shared harness for regenerating every table and figure of the paper.
//!
//! Each `src/bin/*` binary reproduces one artifact (Fig. 1 … Table 4) and
//! prints the same rows/series the paper reports, next to the paper's
//! published values where available. Machine-readable copies are written
//! to `target/paper_results/*.json` so `EXPERIMENTS.md` can be audited.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod microbench;
pub mod paper_ref;
pub mod report;
pub mod workloads;

pub use report::{mean, median, print_table, write_artifact, write_baseline};
pub use workloads::{fig2_workloads, paper_workloads, workload, Workload};
