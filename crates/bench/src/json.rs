//! Minimal JSON serialization for experiment artifacts.
//!
//! The workspace builds fully offline, so instead of `serde` the result
//! binaries describe their rows through the [`ToJson`] trait, usually via
//! the [`crate::json_fields!`] macro which writes a struct as a JSON
//! object with one member per named field.

/// Types that can write themselves as a JSON value.
pub trait ToJson {
    /// Append this value's JSON encoding to `out`.
    fn write_json(&self, out: &mut String);

    /// Encode this value as a standalone JSON string.
    fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }
}

/// Append a quoted, escaped JSON string.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `"key":` (used by [`crate::json_fields!`]).
pub fn write_key(out: &mut String, key: &str) {
    write_str(out, key);
    out.push(':');
}

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&format!("{self}"));
        } else {
            // JSON has no NaN/Infinity literal.
            out.push_str("null");
        }
    }
}

macro_rules! int_to_json {
    ($($t:ty),*) => {
        $(impl ToJson for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(&format!("{self}"));
            }
        })*
    };
}
int_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        write_str(out, self);
    }
}

impl ToJson for &str {
    fn write_json(&self, out: &mut String) {
        write_str(out, self);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        self.0.write_json(out);
        out.push(',');
        self.1.write_json(out);
        out.push(']');
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        self.0.write_json(out);
        out.push(',');
        self.1.write_json(out);
        out.push(',');
        self.2.write_json(out);
        out.push(']');
    }
}

/// Implement [`ToJson`] for a struct as an object with one member per
/// listed field.
///
/// ```
/// use pops_bench::json::ToJson;
///
/// struct Row { name: String, value: f64 }
/// pops_bench::json_fields!(Row { name, value });
///
/// let r = Row { name: "x".into(), value: 1.5 };
/// assert_eq!(r.to_json(), r#"{"name":"x","value":1.5}"#);
/// ```
#[macro_export]
macro_rules! json_fields {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn write_json(&self, out: &mut String) {
                out.push('{');
                let mut first = true;
                $(
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    $crate::json::write_key(out, stringify!($field));
                    $crate::json::ToJson::write_json(&self.$field, out);
                )+
                let _ = first;
                out.push('}');
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Demo {
        name: String,
        score: f64,
        count: usize,
        missing: Option<f64>,
        flags: Vec<bool>,
    }
    crate::json_fields!(Demo {
        name,
        score,
        count,
        missing,
        flags
    });

    #[test]
    fn object_encoding() {
        let d = Demo {
            name: "a\"b".into(),
            score: 2.25,
            count: 3,
            missing: None,
            flags: vec![true, false],
        };
        assert_eq!(
            d.to_json(),
            r#"{"name":"a\"b","score":2.25,"count":3,"missing":null,"flags":[true,false]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(f64::INFINITY.to_json(), "null");
    }

    #[test]
    fn tuples_are_arrays() {
        assert_eq!((1.5f64, 2usize).to_json(), "[1.5,2]");
    }
}
