//! Minimal JSON serialization for experiment artifacts.
//!
//! The workspace builds fully offline, so instead of `serde` the result
//! binaries describe their rows through the [`ToJson`] trait, usually via
//! the [`crate::json_fields!`] macro which writes a struct as a JSON
//! object with one member per named field.

/// Types that can write themselves as a JSON value.
pub trait ToJson {
    /// Append this value's JSON encoding to `out`.
    fn write_json(&self, out: &mut String);

    /// Encode this value as a standalone JSON string.
    fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }
}

/// Append a quoted, escaped JSON string.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `"key":` (used by [`crate::json_fields!`]).
pub fn write_key(out: &mut String, key: &str) {
    write_str(out, key);
    out.push(':');
}

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&format!("{self}"));
        } else {
            // JSON has no NaN/Infinity literal.
            out.push_str("null");
        }
    }
}

macro_rules! int_to_json {
    ($($t:ty),*) => {
        $(impl ToJson for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(&format!("{self}"));
            }
        })*
    };
}
int_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        write_str(out, self);
    }
}

impl ToJson for &str {
    fn write_json(&self, out: &mut String) {
        write_str(out, self);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        self.0.write_json(out);
        out.push(',');
        self.1.write_json(out);
        out.push(']');
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        self.0.write_json(out);
        out.push(',');
        self.1.write_json(out);
        out.push(',');
        self.2.write_json(out);
        out.push(']');
    }
}

/// Implement [`ToJson`] for a struct as an object with one member per
/// listed field.
///
/// ```
/// use pops_bench::json::ToJson;
///
/// struct Row { name: String, value: f64 }
/// pops_bench::json_fields!(Row { name, value });
///
/// let r = Row { name: "x".into(), value: 1.5 };
/// assert_eq!(r.to_json(), r#"{"name":"x","value":1.5}"#);
/// ```
#[macro_export]
macro_rules! json_fields {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn write_json(&self, out: &mut String) {
                out.push('{');
                let mut first = true;
                $(
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    $crate::json::write_key(out, stringify!($field));
                    $crate::json::ToJson::write_json(&self.$field, out);
                )+
                let _ = first;
                out.push('}');
            }
        }
    };
}

/// A parsed JSON value — the read side of the committed `BENCH_*.json`
/// artifacts (the bench-regression gate compares fresh runs against
/// them). Covers exactly the subset the writer emits: objects, arrays,
/// strings, finite numbers, booleans and `null`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also what non-finite floats serialize to).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, kept as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key (`None` for other variants or a
    /// missing key).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number in a `Num` (`None` otherwise).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string in a `Str` (`None` otherwise).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements of an `Arr` (`None` otherwise).
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a JSON document (strict: exactly one value plus whitespace).
///
/// # Errors
///
/// A human-readable message with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Value::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}", pos = *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}", pos = *pos))?;
                        out.push(
                            char::from_u32(code).ok_or_else(|| {
                                format!("bad code point at byte {pos}", pos = *pos)
                            })?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the whole unescaped run at once: multi-byte
                // UTF-8 continuation bytes are ≥ 0x80 and can never
                // equal `"` or `\`, so the byte scan cannot split a
                // scalar (and the input is a `&str`, so the run is
                // valid UTF-8 by construction).
                let start = *pos;
                while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&bytes[start..*pos])
                        .map_err(|_| "invalid utf-8".to_string())?,
                );
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .ok_or_else(|| format!("expected number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Demo {
        name: String,
        score: f64,
        count: usize,
        missing: Option<f64>,
        flags: Vec<bool>,
    }
    crate::json_fields!(Demo {
        name,
        score,
        count,
        missing,
        flags
    });

    #[test]
    fn object_encoding() {
        let d = Demo {
            name: "a\"b".into(),
            score: 2.25,
            count: 3,
            missing: None,
            flags: vec![true, false],
        };
        assert_eq!(
            d.to_json(),
            r#"{"name":"a\"b","score":2.25,"count":3,"missing":null,"flags":[true,false]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(f64::INFINITY.to_json(), "null");
    }

    #[test]
    fn tuples_are_arrays() {
        assert_eq!((1.5f64, 2usize).to_json(), "[1.5,2]");
    }

    #[test]
    fn parse_round_trips_the_writer() {
        let d = Demo {
            name: "a\"b\n".into(),
            score: -2.25e2,
            count: 3,
            missing: None,
            flags: vec![true, false],
        };
        let v = parse(&d.to_json()).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("a\"b\n"));
        assert_eq!(v.get("score").unwrap().as_f64(), Some(-225.0));
        assert_eq!(v.get("count").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("missing"), Some(&Value::Null));
        assert_eq!(
            v.get("flags").unwrap().as_array(),
            Some(&[Value::Bool(true), Value::Bool(false)][..])
        );
    }

    #[test]
    fn parse_handles_nested_arrays_of_objects() {
        let v = parse(
            r#"[{"circuit":"fpd","speedup_median":1.25},{"circuit":"c432","speedup_median":0.9}]"#,
        )
        .unwrap();
        let rows = v.as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("speedup_median").unwrap().as_f64(), Some(0.9));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(parse(r#""A\t""#).unwrap(), Value::Str("A\t".into()));
    }
}
