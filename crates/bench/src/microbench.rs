//! Tiny wall-clock micro-benchmark harness.
//!
//! The workspace builds offline, so the `benches/` targets use this
//! criterion-free runner (`harness = false`): each benchmark calibrates
//! an iteration count so one sample takes a measurable slice of time,
//! collects a fixed number of samples, and reports the median per-call
//! time. Results are printed as a table and written as a JSON artifact
//! next to the paper-result artifacts.
//!
//! The statistics are deliberately simple — the harness exists to show
//! *orders of magnitude* (e.g. incremental vs full re-analysis), not to
//! resolve single-digit-percent regressions.

use std::time::Instant;

use crate::report::{print_table, write_artifact};

/// Target wall time for one measured sample (batch of iterations).
const SAMPLE_TARGET_NS: f64 = 5_000_000.0;
/// Measured samples per benchmark.
const SAMPLES: usize = 15;
/// Wall time spent warming up before calibration.
const WARMUP_NS: f64 = 20_000_000.0;

/// Outcome of one benchmark: per-call times in nanoseconds.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark label (e.g. `analyze/c432`).
    pub label: String,
    /// Median per-call time over samples (ns).
    pub median_ns: f64,
    /// Fastest sample's per-call time (ns).
    pub min_ns: f64,
    /// Mean per-call time (ns).
    pub mean_ns: f64,
    /// Iterations per sample after calibration.
    pub iters_per_sample: u64,
    /// Samples taken.
    pub samples: usize,
}

crate::json_fields!(BenchResult {
    label,
    median_ns,
    min_ns,
    mean_ns,
    iters_per_sample,
    samples
});

/// Measure one closure. The closure's return value is passed through
/// [`std::hint::black_box`] so the work cannot be optimized away.
pub fn bench_one<T, F: FnMut() -> T>(label: &str, mut f: F) -> BenchResult {
    // Warm-up: run until the warm-up budget is spent (at least once).
    let warm_start = Instant::now();
    loop {
        std::hint::black_box(f());
        if warm_start.elapsed().as_nanos() as f64 >= WARMUP_NS {
            break;
        }
    }

    // Calibrate: how many calls fit in one sample?
    let t0 = Instant::now();
    std::hint::black_box(f());
    let single_ns = (t0.elapsed().as_nanos() as f64).max(1.0);
    let iters = (SAMPLE_TARGET_NS / single_ns).clamp(1.0, 1e9) as u64;

    let mut per_call: Vec<f64> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        per_call.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    per_call.sort_by(f64::total_cmp);

    BenchResult {
        label: label.to_string(),
        median_ns: per_call[per_call.len() / 2],
        min_ns: per_call[0],
        mean_ns: per_call.iter().sum::<f64>() / per_call.len() as f64,
        iters_per_sample: iters,
        samples: SAMPLES,
    }
}

/// A named group of benchmarks, printed and archived on [`Runner::finish`].
pub struct Runner {
    name: String,
    results: Vec<BenchResult>,
}

impl Runner {
    /// Start a benchmark group (usually the bench target's name).
    pub fn new(name: impl Into<String>) -> Self {
        Runner {
            name: name.into(),
            results: Vec::new(),
        }
    }

    /// Run and record one benchmark.
    pub fn bench<T, F: FnMut() -> T>(&mut self, label: &str, f: F) -> &BenchResult {
        let r = bench_one(label, f);
        println!(
            "{:<40} {:>12}  (min {})",
            r.label,
            format_ns(r.median_ns),
            format_ns(r.min_ns)
        );
        self.results.push(r);
        self.results.last().expect("just pushed")
    }

    /// Recorded results so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Print the summary table and write the JSON artifact.
    pub fn finish(self) {
        let rows: Vec<Vec<String>> = self
            .results
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    format_ns(r.median_ns),
                    format_ns(r.min_ns),
                    format!("{}", r.iters_per_sample),
                ]
            })
            .collect();
        println!();
        print_table(&["benchmark", "median/call", "min/call", "iters"], &rows);
        write_artifact(&format!("bench_{}", self.name), &self.results);
    }
}

/// Human-readable time with an adaptive unit.
pub fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::ToJson;

    #[test]
    fn formats_units() {
        assert_eq!(format_ns(12.0), "12 ns");
        assert_eq!(format_ns(1_500.0), "1.50 us");
        assert_eq!(format_ns(2_500_000.0), "2.50 ms");
    }

    #[test]
    fn result_is_json_encodable() {
        let r = BenchResult {
            label: "x".into(),
            median_ns: 1.0,
            min_ns: 1.0,
            mean_ns: 1.0,
            iters_per_sample: 1,
            samples: 1,
        };
        assert!(r.to_json().contains("\"label\":\"x\""));
    }
}
