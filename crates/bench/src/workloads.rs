//! Benchmark workloads: critical paths extracted from the ISCAS'85-like
//! suite, ready for path optimization.

use pops_delay::{Library, TimedPath};
use pops_netlist::suite;
use pops_sta::analysis::analyze;
use pops_sta::{extract_timed_path, ExtractOptions, Sizing};

/// A named bounded path extracted from a benchmark circuit.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name (`"c432"`, …).
    pub name: &'static str,
    /// The bounded critical path.
    pub path: TimedPath,
    /// Gates on the path (the paper's Table 1 "gate nb").
    pub gate_count: usize,
}

/// Extract the critical-path workload of one benchmark.
///
/// # Panics
///
/// Panics if `name` is not in the suite (the binaries iterate over known
/// names only).
pub fn workload(lib: &Library, name: &'static str) -> Workload {
    let circuit =
        suite::circuit(name).unwrap_or_else(|| panic!("unknown benchmark circuit `{name}`"));
    let sizing = Sizing::minimum(&circuit, lib);
    let report = analyze(&circuit, lib, &sizing).expect("suite circuits are acyclic");
    let path = report.critical_path();
    let extracted = extract_timed_path(&circuit, lib, &sizing, &path, &ExtractOptions::default());
    Workload {
        name,
        gate_count: extracted.timed.len(),
        path: extracted.timed,
    }
}

/// All eleven paper circuits, in presentation order.
pub fn paper_workloads(lib: &Library) -> Vec<Workload> {
    suite::names()
        .into_iter()
        .map(|n| workload(lib, n))
        .collect()
}

/// The ten circuits of Fig. 2 / Tables 1, 3 (everything except `fpd`,
/// which only appears in the CPU-time table).
pub fn fig2_workloads(lib: &Library) -> Vec<Workload> {
    paper_workloads(lib)
        .into_iter()
        .filter(|w| w.name != "fpd")
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_extract_with_expected_lengths() {
        let lib = Library::cmos025();
        let ws = paper_workloads(&lib);
        assert_eq!(ws.len(), 11);
        for w in &ws {
            let profile = suite::BenchmarkSuite::new().profile(w.name).unwrap();
            // The extracted path must match the published path length to
            // within the slope-induced wiggle (±1 gate).
            assert!(
                w.gate_count + 1 >= profile.path_gates,
                "{}: extracted {} vs profile {}",
                w.name,
                w.gate_count,
                profile.path_gates
            );
        }
    }

    #[test]
    fn workload_paths_are_optimizable() {
        let lib = Library::cmos025();
        let w = workload(&lib, "fpd");
        let b = pops_core::bounds::delay_bounds(&lib, &w.path);
        assert!(b.tmin_ps < b.tmax_ps);
        let sol = pops_core::distribute_constraint(&lib, &w.path, 1.3 * b.tmin_ps).unwrap();
        assert!(sol.delay_ps <= 1.3 * b.tmin_ps * 1.001);
    }
}
