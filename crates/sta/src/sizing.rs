//! Per-gate sizing state of a netlist.

use pops_delay::Library;
use pops_netlist::{Circuit, GateId};

use crate::error::StaError;

/// Input capacitance assigned to every gate of a circuit (fF, per input
/// pin — the same sizing variable the path optimizers use).
///
/// # Example
///
/// ```
/// use pops_netlist::builders::inverter_chain;
/// use pops_delay::Library;
/// use pops_sta::Sizing;
///
/// let c = inverter_chain(3);
/// let lib = Library::cmos025();
/// let mut s = Sizing::minimum(&c, &lib);
/// let g0 = c.gate_ids().next().unwrap();
/// s.set(g0, 2.0 * lib.min_drive_ff());
/// assert!(s.cin_ff(g0) > lib.min_drive_ff());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Sizing {
    cins: Vec<f64>,
}

impl Sizing {
    /// All gates at the library's minimum drive (the paper's `Tmax`
    /// configuration).
    pub fn minimum(circuit: &Circuit, lib: &Library) -> Self {
        Sizing {
            cins: vec![lib.min_drive_ff(); circuit.gate_count()],
        }
    }

    /// All gates at a uniform input capacitance.
    ///
    /// # Panics
    ///
    /// Panics if `cin_ff <= 0`.
    pub fn uniform(circuit: &Circuit, cin_ff: f64) -> Self {
        assert!(cin_ff > 0.0, "input capacitance must be positive");
        Sizing {
            cins: vec![cin_ff; circuit.gate_count()],
        }
    }

    /// Input capacitance of a gate (fF).
    ///
    /// # Panics
    ///
    /// Panics if the gate id is out of range.
    pub fn cin_ff(&self, gate: GateId) -> f64 {
        self.cins[gate.index()]
    }

    /// Set the input capacitance of a gate (fF).
    ///
    /// # Panics
    ///
    /// Panics if the gate id is out of range or `cin_ff <= 0`.
    pub fn set(&mut self, gate: GateId, cin_ff: f64) {
        assert!(cin_ff > 0.0, "input capacitance must be positive");
        self.cins[gate.index()] = cin_ff;
    }

    /// Set the input capacitance of a gate and return the previous
    /// value — one bounds-checked access for the compare-and-set
    /// pattern of resize batches and probe/revert sweeps.
    ///
    /// # Panics
    ///
    /// As [`Sizing::set`].
    pub fn replace(&mut self, gate: GateId, cin_ff: f64) -> f64 {
        assert!(cin_ff > 0.0, "input capacitance must be positive");
        std::mem::replace(&mut self.cins[gate.index()], cin_ff)
    }

    /// Append the input capacitance of a freshly created gate (netlist
    /// surgery allocates gate ids densely at the end of the arena, so
    /// growing the sizing is a push per new gate).
    ///
    /// # Panics
    ///
    /// Panics if `cin_ff <= 0`.
    pub fn push(&mut self, cin_ff: f64) {
        assert!(cin_ff > 0.0, "input capacitance must be positive");
        self.cins.push(cin_ff);
    }

    /// Extend the sizing for a batch of freshly created gates, keyed by
    /// id. Netlist surgery allocates gate ids densely at the end of the
    /// arena, but an edit log may list one op's creations in any order;
    /// keying by id normalizes the order (entries are sorted and applied
    /// ascending), so each size lands at its own gate no matter how the
    /// log is traversed — where a positional `push` loop would silently
    /// mis-size gates — and a log whose id *set* is gapped, duplicated
    /// or not an extension of `len()` is a loud panic.
    ///
    /// # Panics
    ///
    /// Panics with the [`Sizing::try_extend_dense`] error's `Display`
    /// text if the ids (sorted) do not extend `len()` contiguously, or
    /// if any `cin_ff` is not finite and positive.
    pub fn extend_dense(&mut self, new: impl IntoIterator<Item = (GateId, f64)>) {
        self.try_extend_dense(new).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible form of [`Sizing::extend_dense`]: the whole batch is
    /// validated before any entry is applied, so a rejected log leaves
    /// the sizing untouched instead of aborting a long flow run
    /// mid-surgery.
    ///
    /// # Errors
    ///
    /// [`StaError::NonDenseSizing`] when the sorted ids do not extend
    /// `len()` contiguously (gapped, duplicated, or not starting at
    /// `len()`); [`StaError::InvalidDrive`] for a capacitance that is
    /// NaN, infinite, zero or negative.
    pub fn try_extend_dense(
        &mut self,
        new: impl IntoIterator<Item = (GateId, f64)>,
    ) -> Result<(), StaError> {
        let mut entries: Vec<(GateId, f64)> = new.into_iter().collect();
        entries.sort_by_key(|&(g, _)| g.index());
        for (i, &(g, cin_ff)) in entries.iter().enumerate() {
            let expected = self.cins.len() + i;
            if g.index() != expected {
                return Err(StaError::NonDenseSizing {
                    gate: g.index(),
                    expected,
                });
            }
            if !cin_ff.is_finite() || cin_ff <= 0.0 {
                return Err(StaError::InvalidDrive {
                    gate: g.index(),
                    cin_ff,
                });
            }
        }
        for (_, cin_ff) in entries {
            self.push(cin_ff);
        }
        Ok(())
    }

    /// The dense id-indexed capacitance array, for hot loops that
    /// stream it without per-gate bounds-checked calls.
    pub(crate) fn as_slice(&self) -> &[f64] {
        &self.cins
    }

    /// Number of gates covered.
    pub fn len(&self) -> usize {
        self.cins.len()
    }

    /// True when the sizing covers no gates.
    pub fn is_empty(&self) -> bool {
        self.cins.is_empty()
    }

    /// Total input capacitance (fF) — the area/power proxy.
    pub fn total_cin_ff(&self) -> f64 {
        self.cins.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_netlist::builders::inverter_chain;

    #[test]
    fn minimum_sizing_uses_cref() {
        let c = inverter_chain(4);
        let lib = Library::cmos025();
        let s = Sizing::minimum(&c, &lib);
        assert_eq!(s.len(), 4);
        for g in c.gate_ids() {
            assert_eq!(s.cin_ff(g), lib.min_drive_ff());
        }
    }

    #[test]
    fn replace_returns_the_previous_size() {
        let c = inverter_chain(2);
        let lib = Library::cmos025();
        let mut s = Sizing::minimum(&c, &lib);
        let g = c.gate_ids().next().unwrap();
        assert_eq!(s.replace(g, 7.5), lib.min_drive_ff());
        assert_eq!(s.cin_ff(g), 7.5);
    }

    #[test]
    fn set_and_total() {
        let c = inverter_chain(2);
        let lib = Library::cmos025();
        let mut s = Sizing::minimum(&c, &lib);
        let g = c.gate_ids().next().unwrap();
        s.set(g, 10.0);
        assert_eq!(s.cin_ff(g), 10.0);
        assert!((s.total_cin_ff() - (10.0 + lib.min_drive_ff())).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_rejected() {
        let c = inverter_chain(1);
        let lib = Library::cmos025();
        let mut s = Sizing::minimum(&c, &lib);
        s.set(c.gate_ids().next().unwrap(), 0.0);
    }
}
