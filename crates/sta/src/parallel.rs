//! Level-synchronized parallel forward evaluation.
//!
//! The forward timing state lives in rank-major slabs (see
//! [`crate::incremental`]): gates are ordered level-major, so every gate
//! of one logic level has all its fanins in strictly lower levels and
//! its output slot in a level-contiguous range. That makes a level a
//! natural parallel batch — no two gates of the same level read or
//! write the same slot — and a full sweep or a dirty-level drain
//! becomes: *for each level (ascending), evaluate its gates across a
//! worker pool, barrier, continue*.
//!
//! The pool is built in-tree on [`std::thread::scope`] (no external
//! runtime): workers are spawned once per flush and synchronized with
//! two reusable [`Barrier`]s per dispatched level, so per-level cost is
//! a barrier crossing, not a thread spawn. The coordinating thread
//! participates as worker 0 and retains exclusive ownership of all
//! non-slab bookkeeping (dirty bitsets, backward seed logs).
//!
//! # Safety
//!
//! This is the one module in the crate allowed to use `unsafe`
//! (`lib.rs` carries `#![deny(unsafe_code)]`). The slabs are shared
//! with workers as `&[SyncCell<T>]` views created from `&mut` slices,
//! so the borrow checker guarantees no *other* alias exists for the
//! view's lifetime; disjointness *between* workers is structural:
//!
//! * a worker only writes the output slot and delay slot of gates in
//!   its own chunk of the current level (chunks partition the level);
//! * it only reads fanin slots, which belong to strictly lower levels —
//!   settled before the level's start barrier and written by no one
//!   until its end barrier;
//! * the coordinator evaluates gates only while every worker is parked
//!   at the start barrier.
//!
//! Every evaluation — sequential or parallel — goes through the same
//! [`FwdView::eval_shared`] kernel, so the two paths cannot diverge:
//! bit-identical state is a structural property, not a testing
//! aspiration (the differential suite asserts it anyway).
#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::sync::{Barrier, Mutex, RwLock};

use pops_delay::model::{gate_delay_with_output_edge, Edge};
use pops_delay::Library;
use pops_netlist::{CellKind, GateId, NetId};

use crate::analysis::{compatible_input_edges, eidx, EDGES};
use crate::incremental::{ArcTerms, GateParams};

/// Arrival or slope of the gate's output net changed (bitwise) — the
/// forward cone expands through its fanouts.
pub(crate) const F_SLOPE: u8 = 1 << 0;
/// The gate's worst delay changed — its completion bound re-derives.
pub(crate) const F_DELAY: u8 = 1 << 1;
/// The output net's arrival changed — its slack leaf re-folds.
pub(crate) const F_ARRIVAL: u8 = 1 << 2;
/// The output net moved at all (slope or arrival): fanouts re-mark.
pub(crate) const F_OUT_CHANGED: u8 = F_SLOPE | F_ARRIVAL;

/// Predecessor record per edge: `(fanin net, input edge)` of the worst
/// arrival.
pub(crate) type PredPair = [Option<(NetId, Edge)>; 2];

/// A cell whose value may be written by exactly one thread while others
/// provably do not touch it (the level-barrier discipline above).
/// `repr(transparent)` so a `&mut [T]` reinterprets as `&[SyncCell<T>]`.
#[repr(transparent)]
struct SyncCell<T>(UnsafeCell<T>);

// SAFETY: all access goes through `get`/`set` under the level-barrier
// discipline documented in the module docs — no two threads touch the
// same cell between barriers.
unsafe impl<T: Send> Sync for SyncCell<T> {}

impl<T: Copy> SyncCell<T> {
    fn from_mut_slice(s: &mut [T]) -> &[SyncCell<T>] {
        // SAFETY: SyncCell<T> is repr(transparent) over T, so the slice
        // layouts match; the &mut input guarantees the view is the only
        // alias for its lifetime.
        unsafe { &*(s as *mut [T] as *const [SyncCell<T>]) }
    }
    /// SAFETY: no concurrent `set` to the same cell (see module docs).
    unsafe fn get(&self) -> T {
        unsafe { *self.0.get() }
    }
    /// SAFETY: no concurrent access to the same cell (see module docs).
    unsafe fn set(&self, v: T) {
        unsafe { *self.0.get() = v }
    }
}

/// Read-only, `Sync` view of every circuit-derived array the per-gate
/// kernel needs — assembled by the graph per flush so worker threads
/// never see the graph itself (which holds `RefCell`s).
pub(crate) struct EvalCtx<'a> {
    /// Gates in level-major topo order (`pos` indexes this).
    pub topo: &'a [GateId],
    /// Cell kind per gate (id-indexed).
    pub cell: &'a [CellKind],
    /// Flattened model constants per gate (id-indexed).
    pub gate_params: &'a [GateParams],
    /// Reduced thresholds per input edge.
    pub vt: [f64; 2],
    /// Flattened fanin nets (ids, for predecessor records).
    pub fanin: &'a [NetId],
    /// Slot of each flattened fanin net (parallel to `fanin`).
    pub fanin_slots: &'a [u32],
    /// Fanin offsets per gate id.
    pub fanin_off: &'a [u32],
    /// Input capacitance per gate (id-indexed).
    pub cins: &'a [f64],
    /// Slots `0..n_src` hold driverless nets; gate `pos` writes slot
    /// `n_src + pos`.
    pub n_src: usize,
    /// For the debug cross-check against the reference delay model.
    pub lib: &'a Library,
}

/// Exclusive view of the mutable forward slabs for one flush. Created
/// from `&mut` slices (so it is the only alias); shared with workers by
/// `&FwdView` only inside [`run_parallel`]'s barrier discipline.
pub(crate) struct FwdView<'a> {
    arrival: &'a [SyncCell<[f64; 2]>],
    slope: &'a [SyncCell<[f64; 2]>],
    pred: &'a [SyncCell<PredPair>],
    load: &'a [f64],
    gate_delay: &'a [SyncCell<f64>],
}

impl<'a> FwdView<'a> {
    pub(crate) fn new(
        arrival: &'a mut [[f64; 2]],
        slope: &'a mut [[f64; 2]],
        pred: &'a mut [PredPair],
        load: &'a [f64],
        gate_delay: &'a mut [f64],
    ) -> Self {
        FwdView {
            arrival: SyncCell::from_mut_slice(arrival),
            slope: SyncCell::from_mut_slice(slope),
            pred: SyncCell::from_mut_slice(pred),
            load,
            gate_delay: SyncCell::from_mut_slice(gate_delay),
        }
    }

    /// Evaluate the gate at `pos` with exclusive access (`&mut self`
    /// proves no worker shares the view). The sequential drain and
    /// sweep paths use this.
    pub(crate) fn eval_gate(&mut self, ctx: &EvalCtx<'_>, pos: usize) -> u8 {
        // SAFETY: `&mut self` — no other view of the slabs exists.
        unsafe { self.eval_shared(ctx, pos) }
    }

    /// The per-gate kernel: re-run the full pass's step for the gate at
    /// `pos`, write its output slot and return the change flags.
    /// Identical arc order, comparisons and floating-point operations
    /// to the eager engine (the `debug_assert` cross-checks the model).
    ///
    /// # Safety
    ///
    /// No other thread may concurrently access slot `n_src + pos` or
    /// delay slot `pos`, and the gate's fanin slots must not be written
    /// concurrently — guaranteed by the level-barrier discipline.
    unsafe fn eval_shared(&self, ctx: &EvalCtx<'_>, pos: usize) -> u8 {
        let gid = ctx.topo[pos];
        let gi = gid.index();
        let cell = ctx.cell[gi];
        let cin = ctx.cins[gi];
        let out_slot = ctx.n_src + pos;
        let load = self.load[out_slot];

        // The arc terms that do not depend on the fanin are hoisted out
        // of the loop (shared with the backward `eval_required`).
        let ArcTerms {
            tau_out_by_edge,
            miller,
        } = ctx.gate_params[gi].arc_terms(cin, load);

        let mut new_arrival = [f64::NEG_INFINITY; 2];
        let mut new_slope = [0.0f64; 2];
        let mut new_pred: PredPair = [None, None];
        let mut worst_gate_delay = 0.0f64;

        let fanin_range = ctx.fanin_off[gi] as usize..ctx.fanin_off[gi + 1] as usize;
        for out_edge in EDGES {
            let tau_out = tau_out_by_edge[eidx(out_edge)];
            let mut best: Option<(f64, NetId, Edge)> = None;
            for idx in fanin_range.clone() {
                let in_net = ctx.fanin[idx];
                let in_slot = ctx.fanin_slots[idx] as usize;
                // SAFETY: fanin slots live in strictly lower levels,
                // settled before this level started.
                let in_arrival = unsafe { self.arrival[in_slot].get() };
                let in_slope = unsafe { self.slope[in_slot].get() };
                for &in_edge in compatible_input_edges(cell, out_edge) {
                    let t_in = in_arrival[eidx(in_edge)];
                    if t_in == f64::NEG_INFINITY {
                        continue;
                    }
                    let s_in = in_slope[eidx(in_edge)];
                    let i = eidx(in_edge);
                    let delay_ps = 0.5 * ctx.vt[i] * s_in + 0.5 * miller[i] * tau_out;
                    debug_assert_eq!(
                        delay_ps.to_bits(),
                        gate_delay_with_output_edge(
                            ctx.lib, cell, cin, load, s_in, in_edge, out_edge,
                        )
                        .delay_ps
                        .to_bits(),
                        "cached-constant arc delay must match the model"
                    );
                    worst_gate_delay = worst_gate_delay.max(delay_ps);
                    let t_out = t_in + delay_ps;
                    if best.map(|(t, ..)| t_out > t).unwrap_or(true) {
                        best = Some((t_out, in_net, in_edge));
                    }
                }
            }
            if let Some((t, n, e)) = best {
                let i = eidx(out_edge);
                new_arrival[i] = t;
                new_slope[i] = tau_out;
                new_pred[i] = Some((n, e));
            }
        }

        // SAFETY: slot `n_src + pos` and delay slot `pos` belong to this
        // gate alone within the current level.
        let old_delay = unsafe { self.gate_delay[pos].get() };
        let old_arrival = unsafe { self.arrival[out_slot].get() };
        let old_slope = unsafe { self.slope[out_slot].get() };
        let mut flags = 0u8;
        if old_delay.to_bits() != worst_gate_delay.to_bits() {
            flags |= F_DELAY;
        }
        if new_slope[0].to_bits() != old_slope[0].to_bits()
            || new_slope[1].to_bits() != old_slope[1].to_bits()
        {
            flags |= F_SLOPE;
        }
        if new_arrival[0].to_bits() != old_arrival[0].to_bits()
            || new_arrival[1].to_bits() != old_arrival[1].to_bits()
        {
            flags |= F_ARRIVAL;
        }
        unsafe {
            self.gate_delay[pos].set(worst_gate_delay);
            self.arrival[out_slot].set(new_arrival);
            self.slope[out_slot].set(new_slope);
            self.pred[out_slot].set(new_pred);
        }
        flags
    }
}

/// One dispatched batch: either a contiguous position range (a whole
/// level, full-sweep case) or an explicit dirty-position list (drain
/// case). Positions ascend; workers take contiguous chunks in worker
/// order, so the merged result list is position-ordered.
#[derive(Default)]
struct Task {
    lo: u32,
    hi: u32,
    list: Option<Vec<u32>>,
    done: bool,
}

fn chunk(n: usize, w: usize, threads: usize) -> std::ops::Range<usize> {
    n * w / threads..n * (w + 1) / threads
}

/// The coordinator's handle inside [`run_parallel`]: dispatch levels to
/// the pool (or evaluate stragglers inline) while keeping exclusive
/// ownership of all non-slab state.
pub(crate) struct Driver<'p, 'v, 'a> {
    ctx: &'p EvalCtx<'a>,
    view: &'p FwdView<'v>,
    threads: usize,
    task: &'p RwLock<Task>,
    start: &'p Barrier,
    end: &'p Barrier,
    outs: &'p [Mutex<Vec<(u32, u8)>>],
    merged: Vec<(u32, u8)>,
}

impl Driver<'_, '_, '_> {
    /// Evaluate one gate inline. Sound: every worker is parked at the
    /// start barrier whenever the coordinator runs, so the coordinator
    /// has exclusive slab access.
    pub(crate) fn eval_one(&mut self, pos: usize) -> u8 {
        // SAFETY: workers are parked between dispatches (module docs).
        unsafe { self.view.eval_shared(self.ctx, pos) }
    }

    /// Evaluate every position in `[lo, hi)` (one full level) across
    /// the pool. Returns `(pos, flags)` for every gate with nonzero
    /// flags, in ascending position order.
    pub(crate) fn eval_range(&mut self, lo: u32, hi: u32) -> &[(u32, u8)] {
        self.dispatch(Task {
            lo,
            hi,
            list: None,
            done: false,
        });
        &self.merged
    }

    /// Evaluate an explicit ascending position list (one level's dirty
    /// gates) across the pool; the list is borrowed into the task and
    /// returned to `positions` afterwards. Result as [`Driver::eval_range`].
    pub(crate) fn eval_list(&mut self, positions: &mut Vec<u32>) -> &[(u32, u8)] {
        debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
        self.dispatch(Task {
            lo: 0,
            hi: 0,
            list: Some(std::mem::take(positions)),
            done: false,
        });
        *positions = self
            .task
            .write()
            .expect("pool lock")
            .list
            .take()
            .expect("dispatched list comes back");
        &self.merged
    }

    fn dispatch(&mut self, t: Task) {
        *self.task.write().expect("pool lock") = t;
        self.start.wait();
        // The coordinator is worker 0.
        run_chunk(
            self.ctx,
            self.view,
            self.task,
            0,
            self.threads,
            &self.outs[0],
        );
        self.end.wait();
        self.merged.clear();
        for out in self.outs {
            self.merged.append(&mut out.lock().expect("pool lock"));
        }
    }

    fn shutdown(&mut self) {
        self.task.write().expect("pool lock").done = true;
        self.start.wait();
    }
}

fn run_chunk(
    ctx: &EvalCtx<'_>,
    view: &FwdView<'_>,
    task: &RwLock<Task>,
    w: usize,
    threads: usize,
    out: &Mutex<Vec<(u32, u8)>>,
) {
    let t = task.read().expect("pool lock");
    let mut local = out.lock().expect("pool lock");
    match &t.list {
        Some(list) => {
            for &pos in &list[chunk(list.len(), w, threads)] {
                // SAFETY: `pos` is in this worker's chunk of the
                // current level (module-docs discipline).
                let f = unsafe { view.eval_shared(ctx, pos as usize) };
                if f != 0 {
                    local.push((pos, f));
                }
            }
        }
        None => {
            let n = (t.hi - t.lo) as usize;
            let c = chunk(n, w, threads);
            for pos in t.lo + c.start as u32..t.lo + c.end as u32 {
                // SAFETY: as above.
                let f = unsafe { view.eval_shared(ctx, pos as usize) };
                if f != 0 {
                    local.push((pos, f));
                }
            }
        }
    }
}

/// Spin up `threads - 1` workers for the duration of `body` and hand
/// the coordinator a [`Driver`]. The `&mut FwdView` guarantees the
/// caller holds the only view; it is reborrowed shared across the pool.
pub(crate) fn run_parallel<R>(
    ctx: &EvalCtx<'_>,
    view: &mut FwdView<'_>,
    threads: usize,
    body: impl FnOnce(&mut Driver<'_, '_, '_>) -> R,
) -> R {
    assert!(threads >= 2, "run_parallel needs a pool");
    let task = RwLock::new(Task::default());
    let start = Barrier::new(threads);
    let end = Barrier::new(threads);
    let outs: Vec<Mutex<Vec<(u32, u8)>>> = (0..threads).map(|_| Mutex::new(Vec::new())).collect();
    let view: &FwdView = view;
    std::thread::scope(|s| {
        for (w, out) in outs.iter().enumerate().skip(1) {
            let (task, start, end) = (&task, &start, &end);
            s.spawn(move || loop {
                start.wait();
                if task.read().expect("pool lock").done {
                    return;
                }
                run_chunk(ctx, view, task, w, threads, out);
                end.wait();
            });
        }
        let mut driver = Driver {
            ctx,
            view,
            threads,
            task: &task,
            start: &start,
            end: &end,
            outs: &outs,
            merged: Vec::new(),
        };
        // Release the workers even when the body panics (an assertion
        // in an inline eval, say) — otherwise they stay parked at the
        // start barrier and the scope deadlocks instead of propagating.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut driver)));
        driver.shutdown();
        match r {
            Ok(r) => r,
            Err(p) => std::panic::resume_unwind(p),
        }
    })
}

/// Collect (and clear) every set bit of `bits` whose index lies in
/// `[lo, hi)`, pushing the indices in ascending order. The drain's
/// per-level dirty gather.
pub(crate) fn gather_range(bits: &mut [u64], lo: u32, hi: u32, out: &mut Vec<u32>) {
    if lo >= hi {
        return;
    }
    let (lo, hi) = (lo as usize, hi as usize);
    let mut word = lo / 64;
    let last = (hi - 1) / 64;
    while word <= last {
        let mut mask = u64::MAX;
        if word == lo / 64 {
            mask &= u64::MAX << (lo % 64);
        }
        if word == last && hi % 64 != 0 {
            mask &= u64::MAX >> (64 - hi % 64);
        }
        let mut hits = bits[word] & mask;
        bits[word] &= !hits;
        while hits != 0 {
            let bit = hits.trailing_zeros();
            out.push((word * 64) as u32 + bit);
            hits &= hits - 1;
        }
        word += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_range_respects_bounds_and_clears() {
        let mut bits = vec![0u64; 3];
        for i in [0usize, 5, 63, 64, 70, 127, 128, 150] {
            bits[i / 64] |= 1 << (i % 64);
        }
        let mut out = Vec::new();
        gather_range(&mut bits, 5, 128, &mut out);
        assert_eq!(out, [5, 63, 64, 70, 127]);
        // Cleared inside the range, untouched outside (0, 128, 150).
        assert_eq!(bits[0], 1);
        assert_eq!(bits[1], 0);
        assert_eq!(bits[2], (1 << (150 - 128)) | 1);
        out.clear();
        gather_range(&mut bits, 128, 151, &mut out);
        assert_eq!(out, [128, 150]);
    }

    #[test]
    fn chunks_partition_exactly() {
        for n in [0usize, 1, 7, 64, 1000] {
            for t in 1..6 {
                let mut covered = 0;
                for w in 0..t {
                    let c = chunk(n, w, t);
                    assert_eq!(c.start, covered);
                    covered = c.end;
                }
                assert_eq!(covered, n);
            }
        }
    }
}
