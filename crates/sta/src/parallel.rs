//! Level-synchronized parallel evaluation, both timing directions.
//!
//! The timing state lives in rank-major slabs (see
//! [`crate::incremental`]): gates are ordered level-major, so every gate
//! of one logic level has all its fanins in strictly lower levels and
//! its output slot in a level-contiguous range. That makes a level a
//! natural parallel batch — no two gates of the same level read or
//! write the same slot — and a full sweep or a dirty-level drain
//! becomes: *for each level (ascending), evaluate its gates across a
//! worker pool, barrier, continue*.
//!
//! The same independence argument runs backward: the required-time and
//! completion kernels *pull* from fanout slots, which belong to
//! strictly **higher** levels — settled before the level's start
//! barrier when levels dispatch in *descending* order — and write only
//! the evaluated net's (or gate's) own slot. The one backward pass that
//! does not fit the pull shape is the gate-centric
//! `sweep_required_full`, a scatter: same-level gates min-update shared
//! fanin slots at lower levels. Its parallel form has workers *emit*
//! `(slot·edge, candidate)` pairs into per-worker buffers instead of
//! writing slabs, and the coordinator min-folds the buffers at the
//! barrier — a min over one multiset is order-independent, so the fold
//! is bit-identical to the sequential scatter no matter how the level
//! was chunked.
//!
//! The pool is built in-tree on [`std::thread::scope`] (no external
//! runtime): workers are spawned once per flush and synchronized with
//! two reusable [`Barrier`]s per dispatched level, so per-level cost is
//! a barrier crossing, not a thread spawn. The coordinating thread
//! participates as worker 0 and retains exclusive ownership of all
//! non-slab bookkeeping (dirty bitsets, seed logs, the worst-slack
//! tournament tree — workers *compute* refreshed slack keys, the
//! coordinator applies them).
//!
//! # Safety
//!
//! This is the one module in the crate allowed to use `unsafe`
//! (`lib.rs` carries `#![deny(unsafe_code)]`). The slabs are shared
//! with workers as `&[SyncCell<T>]` views created from `&mut` slices,
//! so the borrow checker guarantees no *other* alias exists for the
//! view's lifetime; disjointness *between* workers is structural:
//!
//! * a worker only writes the output slot and delay slot (forward), or
//!   required/completion slot (backward), of gates in its own chunk of
//!   the current level (chunks partition the level) — *checked by the
//!   auditor's write-write rule: same-level write-sets must be pairwise
//!   disjoint across workers* ([`RaceKind::WriteWrite`](crate::RaceKind));
//! * it only reads fanin slots (forward) or fanout slots (backward),
//!   which belong to strictly lower resp. higher levels — settled
//!   before the level's start barrier and written by no one until its
//!   end barrier — *checked by the auditor's cross-level rule: forward
//!   reads must decode (through the `slot·C + c` stride) to source
//!   slots or strictly lower levels, backward reads to the current or
//!   higher levels* ([`RaceKind::CrossLevel`](crate::RaceKind)); the
//!   kernels' old-value reads of their own output slots are legal
//!   because the same worker owns the batch's writes to those indices —
//!   *checked by the read-write rule: a read may alias a same-level
//!   write only if the reader wrote it*
//!   ([`RaceKind::ReadWrite`](crate::RaceKind));
//! * the backward sweep's scatter never writes slabs from workers at
//!   all — candidates travel through per-worker buffers and are folded
//!   by the coordinator between barriers — *visible to the auditor as
//!   coordinator-only writes, so an accidental worker-side scatter
//!   would surface as a write-write hazard*;
//! * the coordinator evaluates gates and folds candidates only while
//!   every worker is parked at the start barrier.
//!
//! When armed, [`crate::audit`] turns this prose into a barrier-time
//! machine check: every `SyncCell` access in the shared kernels records
//! `(worker, slab, widened index, kind)` into per-worker logs, workers
//! commit them at the end of each chunk (before the end barrier), and
//! the coordinator verifies the rules above after every level,
//! surfacing violations as typed
//! [`StaError::RaceHazard`](crate::StaError) values. Disarmed, each
//! kernel pays one relaxed atomic load. The widened slot-index
//! arithmetic itself is additionally `debug_assert!`-bounded inside
//! every kernel, so a bad stride is caught in debug twins even with the
//! auditor off.
//!
//! Every evaluation — sequential or parallel, either direction — goes
//! through the same shared kernels ([`FwdView::eval_shared`],
//! [`BwdView::eval_required_shared`], [`BwdView::eval_completion_shared`],
//! [`BwdView::sweep_gate_shared`]), so the paths cannot diverge:
//! bit-identical state is a structural property, not a testing
//! aspiration (the differential suite asserts it anyway).
#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::sync::{Barrier, Mutex, RwLock};

use pops_delay::model::{gate_delay_with_output_edge_vt, Edge};
use pops_delay::{Library, VtTiming};
use pops_netlist::{CellKind, GateId, NetId, VtClass};

use crate::analysis::{compatible_input_edges, eidx, EDGES};
use crate::incremental::{ArcTerms, GateParams};
use crate::slack::{min2, WorstSlackIndex};

/// Arrival or slope of the gate's output net changed (bitwise) — the
/// forward cone expands through its fanouts.
pub(crate) const F_SLOPE: u8 = 1 << 0;
/// The gate's worst delay changed — its completion bound re-derives.
pub(crate) const F_DELAY: u8 = 1 << 1;
/// The output net's arrival changed — its slack leaf re-folds.
pub(crate) const F_ARRIVAL: u8 = 1 << 2;
/// The output net moved at all (slope or arrival): fanouts re-mark.
pub(crate) const F_OUT_CHANGED: u8 = F_SLOPE | F_ARRIVAL;

/// Predecessor record per edge: `(fanin net, input edge)` of the worst
/// arrival.
pub(crate) type PredPair = [Option<(NetId, Edge)>; 2];

/// A cell whose value may be written by exactly one thread while others
/// provably do not touch it (the level-barrier discipline above).
/// `repr(transparent)` so a `&mut [T]` reinterprets as `&[SyncCell<T>]`.
#[repr(transparent)]
struct SyncCell<T>(UnsafeCell<T>);

// SAFETY: all access goes through `get`/`set` under the level-barrier
// discipline documented in the module docs — no two threads touch the
// same cell between barriers.
unsafe impl<T: Send> Sync for SyncCell<T> {}

impl<T: Copy> SyncCell<T> {
    fn from_mut_slice(s: &mut [T]) -> &[SyncCell<T>] {
        // SAFETY: SyncCell<T> is repr(transparent) over T, so the slice
        // layouts match; the &mut input guarantees the view is the only
        // alias for its lifetime.
        unsafe { &*(s as *mut [T] as *const [SyncCell<T>]) }
    }
    /// SAFETY: no concurrent `set` to the same cell (see module docs).
    unsafe fn get(&self) -> T {
        unsafe { *self.0.get() }
    }
    /// SAFETY: no concurrent access to the same cell (see module docs).
    unsafe fn set(&self, v: T) {
        unsafe { *self.0.get() = v }
    }
}

/// Read-only, `Sync` view of every circuit-derived array the per-gate
/// kernel needs — assembled by the graph per flush so worker threads
/// never see the graph itself (which holds `RefCell`s).
pub(crate) struct EvalCtx<'a> {
    /// Gates in level-major topo order (`pos` indexes this).
    pub topo: &'a [GateId],
    /// Cell kind per gate (id-indexed).
    pub cell: &'a [CellKind],
    /// Flattened model constants per (gate, corner), corner-innermost:
    /// gate `gi` at corner `c` is `gate_params[gi * n_corners + c]`.
    pub gate_params: &'a [GateParams],
    /// Number of process corners (the stride of every per-corner slab).
    pub n_corners: usize,
    /// Vt variant per gate (id-indexed; for the debug model cross-check
    /// — the electrical effect is baked into `gate_params`).
    pub vt_class: &'a [VtClass],
    /// Flattened fanin nets (ids, for predecessor records).
    pub fanin: &'a [NetId],
    /// Slot of each flattened fanin net (parallel to `fanin`).
    pub fanin_slots: &'a [u32],
    /// Fanin offsets per gate id.
    pub fanin_off: &'a [u32],
    /// Input capacitance per gate (id-indexed).
    pub cins: &'a [f64],
    /// Slots `0..n_src` hold driverless nets; gate `pos` writes slot
    /// `n_src + pos`.
    pub n_src: usize,
    /// Output net per gate id (backward kernels key their fanout walk
    /// on it).
    pub out_net: &'a [NetId],
    /// Flattened fanout gates per net id (`fanout_off` delimits).
    pub fanout: &'a [GateId],
    /// Fanout offsets per net id.
    pub fanout_off: &'a [u32],
    /// Topo position per gate id (fanout gates resolve to their slots
    /// as `n_src + rank`).
    pub rank: &'a [u32],
    /// Primary-output flag per net id.
    pub is_po: &'a [bool],
    /// One characterized library per corner, corner-indexed — for the
    /// debug cross-check against the reference delay model.
    pub libs: &'a [Library],
}

/// Exclusive view of the mutable forward slabs for one flush. Created
/// from `&mut` slices (so it is the only alias); shared with workers by
/// `&FwdView` only inside [`run_parallel`]'s barrier discipline.
pub(crate) struct FwdView<'a> {
    arrival: &'a [SyncCell<[f64; 2]>],
    slope: &'a [SyncCell<[f64; 2]>],
    pred: &'a [SyncCell<PredPair>],
    load: &'a [f64],
    gate_delay: &'a [SyncCell<f64>],
}

impl<'a> FwdView<'a> {
    pub(crate) fn new(
        arrival: &'a mut [[f64; 2]],
        slope: &'a mut [[f64; 2]],
        pred: &'a mut [PredPair],
        load: &'a [f64],
        gate_delay: &'a mut [f64],
    ) -> Self {
        FwdView {
            arrival: SyncCell::from_mut_slice(arrival),
            slope: SyncCell::from_mut_slice(slope),
            pred: SyncCell::from_mut_slice(pred),
            load,
            gate_delay: SyncCell::from_mut_slice(gate_delay),
        }
    }

    /// Evaluate the gate at `pos` with exclusive access (`&mut self`
    /// proves no worker shares the view). The sequential drain and
    /// sweep paths use this.
    pub(crate) fn eval_gate(&mut self, ctx: &EvalCtx<'_>, pos: usize) -> u8 {
        // SAFETY: `&mut self` — no other view of the slabs exists.
        unsafe { self.eval_shared(ctx, pos) }
    }

    /// The per-gate kernel: re-run the full pass's step for the gate at
    /// `pos` across every corner, write its output slots and return the
    /// change flags OR-ed over corners. Corners are fully independent
    /// lanes — identical arc order, comparisons and floating-point
    /// operations per corner to a single-corner engine (the
    /// `debug_assert` cross-checks the model).
    ///
    /// # Safety
    ///
    /// No other thread may concurrently access the corner slots of
    /// `n_src + pos` or delay slots of `pos`, and the gate's fanin
    /// slots must not be written concurrently — guaranteed by the
    /// level-barrier discipline.
    unsafe fn eval_shared(&self, ctx: &EvalCtx<'_>, pos: usize) -> u8 {
        let gid = ctx.topo[pos];
        let gi = gid.index();
        let cell = ctx.cell[gi];
        let cin = ctx.cins[gi];
        let out_slot = ctx.n_src + pos;
        let load = self.load[out_slot];
        let nc = ctx.n_corners;
        let fanin_range = ctx.fanin_off[gi] as usize..ctx.fanin_off[gi + 1] as usize;

        // Executable form of the SAFETY argument: the widened output
        // indices must stay inside their slabs — an off-by-one in the
        // `slot·C + c` stride would otherwise alias a neighboring slot.
        debug_assert!(pos < ctx.topo.len(), "gate pos {pos} out of topo range");
        debug_assert!(
            (out_slot + 1) * nc <= self.arrival.len(),
            "output slot {out_slot} stride overflows the arrival slab"
        );
        debug_assert_eq!(self.arrival.len(), self.slope.len());
        debug_assert_eq!(self.arrival.len(), self.pred.len());
        debug_assert!(
            (pos + 1) * nc <= self.gate_delay.len(),
            "gate pos {pos} stride overflows the delay slab"
        );

        let on = crate::audit::on();
        let mut flags = 0u8;
        for c in 0..nc {
            let params = &ctx.gate_params[gi * nc + c];
            // The arc terms that do not depend on the fanin are hoisted
            // out of the loop (shared with the backward `eval_required`).
            let ArcTerms {
                tau_out_by_edge,
                miller,
            } = params.arc_terms(cin, load);

            let mut new_arrival = [f64::NEG_INFINITY; 2];
            let mut new_slope = [0.0f64; 2];
            let mut new_pred: PredPair = [None, None];
            let mut worst_gate_delay = 0.0f64;

            for out_edge in EDGES {
                let tau_out = tau_out_by_edge[eidx(out_edge)];
                let mut best: Option<(f64, NetId, Edge)> = None;
                for idx in fanin_range.clone() {
                    let in_net = ctx.fanin[idx];
                    let in_slot = ctx.fanin_slots[idx] as usize;
                    // SAFETY: fanin slots live in strictly lower levels,
                    // settled before this level started — the auditor's
                    // cross-level read check verifies exactly this.
                    debug_assert!(
                        (in_slot + 1) * nc <= self.arrival.len(),
                        "fanin slot {in_slot} stride overflows the arrival slab"
                    );
                    if on {
                        crate::audit::read(crate::audit::Slab::Arrival, in_slot * nc + c);
                        crate::audit::read(crate::audit::Slab::Slope, in_slot * nc + c);
                    }
                    let in_arrival = unsafe { self.arrival[in_slot * nc + c].get() };
                    let in_slope = unsafe { self.slope[in_slot * nc + c].get() };
                    for &in_edge in compatible_input_edges(cell, out_edge) {
                        let t_in = in_arrival[eidx(in_edge)];
                        if t_in == f64::NEG_INFINITY {
                            continue;
                        }
                        let s_in = in_slope[eidx(in_edge)];
                        let i = eidx(in_edge);
                        let delay_ps = 0.5 * params.vt[i] * s_in + 0.5 * miller[i] * tau_out;
                        debug_assert!(
                            delay_ps.to_bits()
                                == gate_delay_with_output_edge_vt(
                                    &ctx.libs[c],
                                    cell,
                                    VtTiming::of(ctx.vt_class[gi]),
                                    cin,
                                    load,
                                    s_in,
                                    in_edge,
                                    out_edge,
                                )
                                .delay_ps
                                .to_bits(),
                            "cached-constant arc delay must match the model"
                        );
                        worst_gate_delay = worst_gate_delay.max(delay_ps);
                        let t_out = t_in + delay_ps;
                        if best.map(|(t, ..)| t_out > t).unwrap_or(true) {
                            best = Some((t_out, in_net, in_edge));
                        }
                    }
                }
                if let Some((t, n, e)) = best {
                    let i = eidx(out_edge);
                    new_arrival[i] = t;
                    new_slope[i] = tau_out;
                    new_pred[i] = Some((n, e));
                }
            }
            // Fault-injection hook: disarmed this is the identity on a
            // relaxed atomic load; armed it may turn a chosen parallel
            // corner-lane's rising arrival into NaN just before the slab
            // write — corruption bitwise convergence cannot wash out of
            // the poisoned slot, and one the post-flush audit scan must
            // catch. Injected here (not at the load/slope *reads*) so
            // the delay model only ever sees clean operands: NaN flows
            // through assert-free max/add folds only.
            new_arrival[0] = crate::faultinject::poison_write(new_arrival[0]);

            // SAFETY: slot `n_src + pos` and delay slot `pos` (all
            // corners) belong to this gate alone within the current
            // level — the auditor's write-write check verifies the
            // partition, and its read-write check legalizes these
            // old-value reads only because the same worker owns the
            // batch's writes to the same indices.
            if on {
                crate::audit::read(crate::audit::Slab::GateDelay, pos * nc + c);
                crate::audit::read(crate::audit::Slab::Arrival, out_slot * nc + c);
                crate::audit::read(crate::audit::Slab::Slope, out_slot * nc + c);
            }
            let old_delay = unsafe { self.gate_delay[pos * nc + c].get() };
            let old_arrival = unsafe { self.arrival[out_slot * nc + c].get() };
            let old_slope = unsafe { self.slope[out_slot * nc + c].get() };
            if old_delay.to_bits() != worst_gate_delay.to_bits() {
                flags |= F_DELAY;
            }
            if new_slope[0].to_bits() != old_slope[0].to_bits()
                || new_slope[1].to_bits() != old_slope[1].to_bits()
            {
                flags |= F_SLOPE;
            }
            if new_arrival[0].to_bits() != old_arrival[0].to_bits()
                || new_arrival[1].to_bits() != old_arrival[1].to_bits()
            {
                flags |= F_ARRIVAL;
            }
            if on {
                crate::audit::write(crate::audit::Slab::GateDelay, pos * nc + c);
                crate::audit::write(crate::audit::Slab::Arrival, out_slot * nc + c);
                crate::audit::write(crate::audit::Slab::Slope, out_slot * nc + c);
                crate::audit::write(crate::audit::Slab::Pred, out_slot * nc + c);
            }
            unsafe {
                self.gate_delay[pos * nc + c].set(worst_gate_delay);
                self.arrival[out_slot * nc + c].set(new_arrival);
                self.slope[out_slot * nc + c].set(new_slope);
                self.pred[out_slot * nc + c].set(new_pred);
            }
        }
        flags
    }
}

/// Exclusive view of the mutable backward slabs for one flush, plus
/// read-only forward state (settled first — the two-phase flush
/// contract, so no [`SyncCell`] needed there). Created from `&mut`
/// slices; shared with workers by `&BwdView` only inside
/// [`run_parallel_bwd`]'s barrier discipline.
pub(crate) struct BwdView<'a> {
    required: &'a [SyncCell<[f64; 2]>],
    completion: &'a [SyncCell<f64>],
    arrival: &'a [[f64; 2]],
    slope: &'a [[f64; 2]],
    load: &'a [f64],
    gate_delay_worst: &'a [f64],
    tc_ps: f64,
}

impl<'a> BwdView<'a> {
    pub(crate) fn new(
        required: &'a mut [[f64; 2]],
        completion: &'a mut [f64],
        arrival: &'a [[f64; 2]],
        slope: &'a [[f64; 2]],
        load: &'a [f64],
        gate_delay_worst: &'a [f64],
        tc_ps: f64,
    ) -> Self {
        BwdView {
            required: SyncCell::from_mut_slice(required),
            completion: SyncCell::from_mut_slice(completion),
            arrival,
            slope,
            load,
            gate_delay_worst,
            tc_ps,
        }
    }

    /// [`BwdView::eval_required_shared`] with exclusive access (`&mut
    /// self` proves no worker shares the view) — the sequential drain
    /// and the PI-sink path.
    pub(crate) fn eval_required_net(
        &mut self,
        ctx: &EvalCtx<'_>,
        net: usize,
        slot: usize,
    ) -> (bool, f64) {
        // SAFETY: `&mut self` — no other view of the slabs exists.
        unsafe { self.eval_required_shared(ctx, net, slot) }
    }

    /// [`BwdView::eval_completion_shared`] with exclusive access.
    pub(crate) fn eval_completion_gate(&mut self, ctx: &EvalCtx<'_>, pos: usize) -> bool {
        // SAFETY: `&mut self` — no other view of the slabs exists.
        unsafe { self.eval_completion_shared(ctx, pos) }
    }

    /// One gate of the gate-centric required sweep with exclusive
    /// access, folding each candidate into the slabs as it is emitted —
    /// the sequential sweep path (zero buffering; identical arithmetic
    /// to the buffered parallel form, and the min-fold makes the
    /// interleaving irrelevant).
    pub(crate) fn sweep_gate_fold(&mut self, ctx: &EvalCtx<'_>, pos: usize) {
        let this: &Self = self;
        // SAFETY: `&mut self` — no other view of the slabs exists (the
        // emit closure is lexically inside this unsafe block).
        unsafe { this.sweep_gate_shared(ctx, pos, |se, v| this.fold_candidate_shared(se, v)) }
    }

    /// Recompute the required times of the net `net` (slab slot `slot`)
    /// from its fanout arcs and write its slot; returns `(changed,
    /// key)` where `key` is the net's refreshed worst-slack leaf
    /// (computed here so parallel workers fold their own batch of leaf
    /// updates — the coordinator merely applies them at the barrier).
    ///
    /// Candidates are exactly the full backward pass's for this net —
    /// same arc delays (via the cached constants, asserted against the
    /// model), accumulated by the same `<` min — so the result is
    /// bit-identical to a fresh [`crate::required_times`]: a min over
    /// one multiset is order-independent.
    ///
    /// # Safety
    ///
    /// No other thread may concurrently access slot `slot`, and the
    /// net's fanout slots must not be written concurrently — guaranteed
    /// by the descending level-barrier discipline (fanout gates live in
    /// strictly higher levels, settled before this level started).
    unsafe fn eval_required_shared(
        &self,
        ctx: &EvalCtx<'_>,
        net: usize,
        slot: usize,
    ) -> (bool, f64) {
        let nc = ctx.n_corners;
        let (lo, hi) = (
            ctx.fanout_off[net] as usize,
            ctx.fanout_off[net + 1] as usize,
        );
        // Executable slot-bounds form of the SAFETY argument.
        debug_assert!(
            (slot + 1) * nc <= self.required.len(),
            "required slot {slot} stride overflows the slab"
        );
        debug_assert_eq!(self.required.len(), self.slope.len());
        let on = crate::audit::on();
        let mut changed = false;
        let mut key = f64::INFINITY;
        for c in 0..nc {
            let mut req = if ctx.is_po[net] {
                [self.tc_ps; 2]
            } else {
                [f64::INFINITY; 2]
            };
            let slope = self.slope[slot * nc + c];
            for &h in &ctx.fanout[lo..hi] {
                let g = h.index();
                let cell = ctx.cell[g];
                // A gate's output slot is `n_src + rank` — no net-id
                // round-trip.
                let h_out_slot = ctx.n_src + ctx.rank[g] as usize;
                let cin = ctx.cins[g];
                let load = self.load[h_out_slot];
                let params = &ctx.gate_params[g * nc + c];
                // Same hoisted arc terms as the forward kernel
                // (bit-identical to `gate_delay_with_output_edge_vt`).
                let ArcTerms {
                    tau_out_by_edge,
                    miller,
                } = params.arc_terms(cin, load);
                for out_edge in EDGES {
                    // SAFETY: fanout slots live in strictly higher
                    // levels, settled before this level started — the
                    // auditor's backward cross-level check (read level
                    // ≥ current) verifies exactly this.
                    debug_assert!(
                        (h_out_slot + 1) * nc <= self.required.len(),
                        "fanout slot {h_out_slot} stride overflows the required slab"
                    );
                    if on {
                        crate::audit::read(crate::audit::Slab::Required, h_out_slot * nc + c);
                    }
                    let req_out =
                        unsafe { self.required[h_out_slot * nc + c].get() }[eidx(out_edge)];
                    if req_out == f64::INFINITY {
                        continue;
                    }
                    let tau_out = tau_out_by_edge[eidx(out_edge)];
                    for &in_edge in compatible_input_edges(cell, out_edge) {
                        let i = eidx(in_edge);
                        let delay_ps = 0.5 * params.vt[i] * slope[i] + 0.5 * miller[i] * tau_out;
                        debug_assert_eq!(
                            delay_ps.to_bits(),
                            gate_delay_with_output_edge_vt(
                                &ctx.libs[c],
                                cell,
                                VtTiming::of(ctx.vt_class[g]),
                                cin,
                                load,
                                slope[i],
                                in_edge,
                                out_edge,
                            )
                            .delay_ps
                            .to_bits(),
                            "cached-constant backward arc delay must match the model"
                        );
                        let candidate = req_out - delay_ps;
                        if candidate < req[i] {
                            req[i] = candidate;
                        }
                    }
                }
            }
            // SAFETY: slot `slot` (all corners) belongs to this net
            // alone within the current level — verified by the
            // auditor's write-write partition check.
            if on {
                crate::audit::read(crate::audit::Slab::Required, slot * nc + c);
                crate::audit::write(crate::audit::Slab::Required, slot * nc + c);
            }
            let cur = unsafe { self.required[slot * nc + c].get() };
            changed |= req[0].to_bits() != cur[0].to_bits() || req[1].to_bits() != cur[1].to_bits();
            unsafe { self.required[slot * nc + c].set(req) };
            // Worst-over-corners slack leaf: corner 0's key, min2-folded
            // with the rest in corner order (single-corner reduces to
            // the plain key bit-for-bit).
            let corner_key = WorstSlackIndex::key(req, self.arrival[slot * nc + c]);
            key = if c == 0 {
                corner_key
            } else {
                min2(key, corner_key)
            };
        }
        (changed, key)
    }

    /// Recompute the completion bound of the gate at topo position
    /// `pos`; returns whether it changed (bitwise). Same fold, in the
    /// same successor order, as [`crate::kpaths::completion_bounds`].
    ///
    /// # Safety
    ///
    /// No other thread may concurrently access completion slot `pos`,
    /// and the gate's successor slots must not be written concurrently
    /// — guaranteed by the descending level-barrier discipline
    /// (successors rank strictly higher).
    unsafe fn eval_completion_shared(&self, ctx: &EvalCtx<'_>, pos: usize) -> bool {
        let gid = ctx.topo[pos];
        let out = ctx.out_net[gid.index()].index();
        let nc = ctx.n_corners;
        let (lo, hi) = (
            ctx.fanout_off[out] as usize,
            ctx.fanout_off[out + 1] as usize,
        );
        // Executable slot-bounds form of the SAFETY argument.
        debug_assert!(
            (pos + 1) * nc <= self.completion.len(),
            "completion pos {pos} stride overflows the slab"
        );
        let on = crate::audit::on();
        let mut changed = false;
        for c in 0..nc {
            let mut best = if ctx.is_po[out] {
                0.0
            } else {
                f64::NEG_INFINITY
            };
            for &succ in &ctx.fanout[lo..hi] {
                // SAFETY: successors rank strictly higher — settled
                // before this level started; verified by the auditor's
                // backward cross-level check on the pos-indexed slab.
                let succ_pos = ctx.rank[succ.index()] as usize;
                debug_assert!(
                    (succ_pos + 1) * nc <= self.completion.len(),
                    "successor pos {succ_pos} stride overflows the completion slab"
                );
                if on {
                    crate::audit::read(crate::audit::Slab::Completion, succ_pos * nc + c);
                }
                let comp = unsafe { self.completion[succ_pos * nc + c].get() };
                if comp.is_finite() {
                    best = best.max(comp);
                }
            }
            let new = if best.is_finite() {
                self.gate_delay_worst[pos * nc + c] + best
            } else {
                f64::NEG_INFINITY
            };
            // SAFETY: completion slot `pos` (all corners) belongs to
            // this gate alone within the current level — verified by
            // the auditor's write-write partition check.
            if on {
                crate::audit::read(crate::audit::Slab::Completion, pos * nc + c);
                crate::audit::write(crate::audit::Slab::Completion, pos * nc + c);
            }
            let cur = unsafe { self.completion[pos * nc + c].get() };
            changed |= new.to_bits() != cur.to_bits();
            unsafe { self.completion[pos * nc + c].set(new) };
        }
        changed
    }

    /// One gate of the gate-centric required sweep: read the gate's own
    /// (settled) required slot, hoist its arc terms once, and *emit*
    /// one `(slot | edge << 31, candidate)` pair per fanin arc instead
    /// of writing the fanin slots — the caller decides whether `emit`
    /// folds immediately (sequential / coordinator-inline) or buffers
    /// for the barrier fold (parallel workers). Exactly
    /// [`crate::required_times`]'s per-gate walk over the cached
    /// constants.
    ///
    /// # Safety
    ///
    /// The gate's own required slot must not be written concurrently —
    /// guaranteed by the descending level-barrier discipline (all
    /// candidates *into* this level were folded before it started).
    unsafe fn sweep_gate_shared(
        &self,
        ctx: &EvalCtx<'_>,
        pos: usize,
        mut emit: impl FnMut(u32, f64),
    ) {
        let gid = ctx.topo[pos];
        let gi = gid.index();
        let out_slot = ctx.n_src + pos;
        let cell = ctx.cell[gi];
        let cin = ctx.cins[gi];
        let load = self.load[out_slot];
        let nc = ctx.n_corners;
        let fanin_range = ctx.fanin_off[gi] as usize..ctx.fanin_off[gi + 1] as usize;
        // Executable slot-bounds form of the SAFETY argument.
        debug_assert!(
            (out_slot + 1) * nc <= self.required.len(),
            "sweep out slot {out_slot} stride overflows the required slab"
        );
        let on = crate::audit::on();
        for c in 0..nc {
            let params = &ctx.gate_params[gi * nc + c];
            let ArcTerms {
                tau_out_by_edge,
                miller,
            } = params.arc_terms(cin, load);
            for out_edge in EDGES {
                // SAFETY: the gate's own slot; every candidate into this
                // level was folded before its start barrier — the
                // auditor's backward cross-level check (read level ≥
                // current) verifies exactly this.
                if on {
                    crate::audit::read(crate::audit::Slab::Required, out_slot * nc + c);
                }
                let req_out = unsafe { self.required[out_slot * nc + c].get() }[eidx(out_edge)];
                if req_out == f64::INFINITY {
                    continue;
                }
                let tau_out = tau_out_by_edge[eidx(out_edge)];
                for idx in fanin_range.clone() {
                    let in_slot = ctx.fanin_slots[idx] as usize;
                    for &in_edge in compatible_input_edges(cell, out_edge) {
                        let i = eidx(in_edge);
                        let slope = self.slope[in_slot * nc + c][i];
                        let delay_ps = 0.5 * params.vt[i] * slope + 0.5 * miller[i] * tau_out;
                        debug_assert_eq!(
                            delay_ps.to_bits(),
                            gate_delay_with_output_edge_vt(
                                &ctx.libs[c],
                                cell,
                                VtTiming::of(ctx.vt_class[gi]),
                                cin,
                                load,
                                slope,
                                in_edge,
                                out_edge,
                            )
                            .delay_ps
                            .to_bits(),
                            "cached-constant sweep arc delay must match the model"
                        );
                        // The emit key carries the *widened* (corner-
                        // innermost) slab index, so the fold needs no
                        // corner awareness. The index must fit the 31
                        // payload bits next to the edge tag.
                        debug_assert!(
                            in_slot * nc + c < (1usize << 31),
                            "widened fanin index overflows the emit key payload"
                        );
                        debug_assert!(
                            (in_slot + 1) * nc <= self.required.len(),
                            "sweep fanin slot {in_slot} stride overflows the required slab"
                        );
                        emit(
                            (in_slot * nc + c) as u32 | (i as u32) << 31,
                            req_out - delay_ps,
                        );
                    }
                }
            }
        }
    }

    /// Min-fold one emitted sweep candidate into its required slot.
    /// Order-independent across any interleaving of emitters (min over
    /// one multiset), so the barrier fold is bit-identical to the
    /// sequential scatter.
    ///
    /// # Safety
    ///
    /// Single-threaded slab access only: the sequential sweep (`&mut`
    /// view) or the coordinator while every worker is parked.
    unsafe fn fold_candidate_shared(&self, slot_edge: u32, candidate: f64) {
        let (slot, i) = (
            (slot_edge & !(1 << 31)) as usize,
            (slot_edge >> 31) as usize,
        );
        debug_assert!(
            slot < self.required.len(),
            "fold target {slot} outside the required slab"
        );
        // Recorded as a write only: the fold is a single-owner
        // read-modify-write of a strictly-lower-level slot (the
        // coordinator while workers are parked, or the sequential
        // sweep), so the auditor's write-write check covers it without
        // tripping the cross-level *read* rule.
        if crate::audit::on() {
            crate::audit::write(crate::audit::Slab::Required, slot);
        }
        // SAFETY: caller guarantees exclusive access (see above).
        let mut cur = unsafe { self.required[slot].get() };
        if candidate < cur[i] {
            cur[i] = candidate;
            unsafe { self.required[slot].set(cur) };
        }
    }
}

/// One dispatched batch: either a contiguous position range (a whole
/// level, full-sweep case) or an explicit dirty-position list (drain
/// case). Positions ascend; workers take contiguous chunks in worker
/// order, so the merged result list is position-ordered.
#[derive(Default)]
struct Task {
    lo: u32,
    hi: u32,
    list: Option<Vec<u32>>,
    done: bool,
}

fn chunk(n: usize, w: usize, threads: usize) -> std::ops::Range<usize> {
    n * w / threads..n * (w + 1) / threads
}

/// The coordinator's handle inside [`run_parallel`]: dispatch levels to
/// the pool (or evaluate stragglers inline) while keeping exclusive
/// ownership of all non-slab state.
pub(crate) struct Driver<'p, 'v, 'a> {
    ctx: &'p EvalCtx<'a>,
    view: &'p FwdView<'v>,
    threads: usize,
    task: &'p RwLock<Task>,
    start: &'p Barrier,
    end: &'p Barrier,
    outs: &'p [Mutex<Vec<(u32, u8)>>],
    merged: Vec<(u32, u8)>,
}

impl Driver<'_, '_, '_> {
    /// Evaluate one gate inline. Sound: every worker is parked at the
    /// start barrier whenever the coordinator runs, so the coordinator
    /// has exclusive slab access.
    pub(crate) fn eval_one(&mut self, pos: usize) -> u8 {
        // SAFETY: workers are parked between dispatches (module docs).
        unsafe { self.view.eval_shared(self.ctx, pos) }
    }

    /// Evaluate every position in `[lo, hi)` (one full level) across
    /// the pool. Returns `(pos, flags)` for every gate with nonzero
    /// flags, in ascending position order.
    pub(crate) fn eval_range(&mut self, lo: u32, hi: u32) -> &[(u32, u8)] {
        self.dispatch(Task {
            lo,
            hi,
            list: None,
            done: false,
        });
        &self.merged
    }

    /// Evaluate an explicit ascending position list (one level's dirty
    /// gates) across the pool; the list is borrowed into the task and
    /// returned to `positions` afterwards. Result as [`Driver::eval_range`].
    pub(crate) fn eval_list(&mut self, positions: &mut Vec<u32>) -> &[(u32, u8)] {
        debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
        self.dispatch(Task {
            lo: 0,
            hi: 0,
            list: Some(std::mem::take(positions)),
            done: false,
        });
        *positions = self
            .task
            .write()
            .expect("pool lock")
            .list
            .take()
            .expect("dispatched list comes back");
        &self.merged
    }

    fn dispatch(&mut self, t: Task) {
        *self.task.write().expect("pool lock") = t;
        self.start.wait();
        // The coordinator is worker 0.
        run_chunk(
            self.ctx,
            self.view,
            self.task,
            0,
            self.threads,
            &self.outs[0],
        );
        self.end.wait();
        self.merged.clear();
        for out in self.outs {
            self.merged.append(&mut out.lock().expect("pool lock"));
        }
    }

    fn shutdown(&mut self) {
        self.task.write().expect("pool lock").done = true;
        self.start.wait();
    }
}

fn run_chunk(
    ctx: &EvalCtx<'_>,
    view: &FwdView<'_>,
    task: &RwLock<Task>,
    w: usize,
    threads: usize,
    out: &Mutex<Vec<(u32, u8)>>,
) {
    let t = task.read().expect("pool lock");
    let mut local = out.lock().expect("pool lock");
    match &t.list {
        Some(list) => {
            for &pos in &list[chunk(list.len(), w, threads)] {
                // SAFETY: `pos` is in this worker's chunk of the
                // current level (module-docs discipline).
                let f = unsafe { view.eval_shared(ctx, pos as usize) };
                if f != 0 {
                    local.push((pos, f));
                }
            }
        }
        None => {
            let n = (t.hi - t.lo) as usize;
            let c = chunk(n, w, threads);
            for pos in t.lo + c.start as u32..t.lo + c.end as u32 {
                // SAFETY: as above.
                let f = unsafe { view.eval_shared(ctx, pos as usize) };
                if f != 0 {
                    local.push((pos, f));
                }
            }
        }
    }
    drop(local);
    // Commit this worker's shadow-access log before the end barrier, so
    // the coordinator's barrier-time check sees the whole level batch.
    crate::audit::commit_chunk();
}

/// Spin up `threads - 1` workers for the duration of `body` and hand
/// the coordinator a [`Driver`]. The `&mut FwdView` guarantees the
/// caller holds the only view; it is reborrowed shared across the pool.
///
/// A panic in `body` (an assertion in an inline eval, an injected
/// fault) is contained, not propagated: the workers are released via
/// the shutdown flag and the panic payload is returned as `Err`, with
/// the slabs in an unspecified partially-written state. The caller owns
/// recovery — it must discard the partial state and fall back to a
/// sequential full sweep ([`crate::incremental`] does exactly that).
pub(crate) fn run_parallel<R>(
    ctx: &EvalCtx<'_>,
    view: &mut FwdView<'_>,
    threads: usize,
    body: impl FnOnce(&mut Driver<'_, '_, '_>) -> R,
) -> std::thread::Result<R> {
    assert!(threads >= 2, "run_parallel needs a pool");
    let task = RwLock::new(Task::default());
    let start = Barrier::new(threads);
    let end = Barrier::new(threads);
    let outs: Vec<Mutex<Vec<(u32, u8)>>> = (0..threads).map(|_| Mutex::new(Vec::new())).collect();
    let view: &FwdView = view;
    std::thread::scope(|s| {
        for (w, out) in outs.iter().enumerate().skip(1) {
            let (task, start, end) = (&task, &start, &end);
            s.spawn(move || {
                let _sect = crate::faultinject::ParallelSection::enter();
                let _aud = crate::audit::WorkerGuard::enter(w);
                loop {
                    start.wait();
                    if task.read().expect("pool lock").done {
                        return;
                    }
                    run_chunk(ctx, view, task, w, threads, out);
                    end.wait();
                }
            });
        }
        let mut driver = Driver {
            ctx,
            view,
            threads,
            task: &task,
            start: &start,
            end: &end,
            outs: &outs,
            merged: Vec::new(),
        };
        // Release the workers even when the body panics — otherwise
        // they stay parked at the start barrier and the scope deadlocks
        // instead of handing the panic back.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _sect = crate::faultinject::ParallelSection::enter();
            let _aud = crate::audit::WorkerGuard::enter(0);
            body(&mut driver)
        }));
        driver.shutdown();
        r
    })
}

/// Which backward kernel a dispatched batch runs.
#[derive(Default, Clone, Copy, PartialEq, Eq)]
enum BwdOp {
    /// Required-time drain: evaluate the nets driven at the listed
    /// positions; a worker reports `(pos, slack key)` for changed nets.
    #[default]
    Required,
    /// Gate-centric required sweep: emit `(slot·edge, candidate)` pairs
    /// into the worker's buffer for the coordinator's barrier fold.
    SweepGate,
    /// Completion drain: report `(pos, 0.0)` for changed gates (the
    /// caller re-marks their fanin drivers).
    Completion,
    /// Completion full sweep: evaluate, report nothing (descending
    /// dependency order makes re-marking unnecessary).
    CompletionSweep,
}

/// One dispatched backward batch (see [`Task`] for the range/list
/// duality; `op` selects the kernel).
#[derive(Default)]
struct BwdTask {
    lo: u32,
    hi: u32,
    list: Option<Vec<u32>>,
    op: BwdOp,
    done: bool,
}

/// The coordinator's handle inside [`run_parallel_bwd`] — the backward
/// mirror of [`Driver`]: dispatch descending levels to the pool (or
/// evaluate stragglers inline) while keeping exclusive ownership of all
/// non-slab state (dirty bitsets, PI sink list, the worst-slack tree).
pub(crate) struct BwdDriver<'p, 'v, 'a> {
    ctx: &'p EvalCtx<'a>,
    view: &'p BwdView<'v>,
    threads: usize,
    task: &'p RwLock<BwdTask>,
    start: &'p Barrier,
    end: &'p Barrier,
    outs: &'p [Mutex<Vec<(u32, f64)>>],
    merged: Vec<(u32, f64)>,
}

impl BwdDriver<'_, '_, '_> {
    /// Evaluate the net driven at `pos` inline; returns `(changed,
    /// slack key)`. Sound: every worker is parked at the start barrier
    /// whenever the coordinator runs.
    pub(crate) fn eval_required_one(&mut self, pos: usize) -> (bool, f64) {
        let net = self.ctx.out_net[self.ctx.topo[pos].index()].index();
        // SAFETY: workers are parked between dispatches (module docs).
        unsafe {
            self.view
                .eval_required_shared(self.ctx, net, self.ctx.n_src + pos)
        }
    }

    /// Evaluate an explicit ascending position list (one level's
    /// required-dirty net drivers) across the pool; returns `(pos,
    /// slack key)` for every changed net, in ascending position order.
    /// The list is borrowed into the task and returned to `positions`.
    pub(crate) fn eval_required_list(&mut self, positions: &mut Vec<u32>) -> &[(u32, f64)] {
        self.dispatch_list(BwdOp::Required, positions);
        &self.merged
    }

    /// One gate of the required sweep inline, folding its candidates
    /// immediately (coordinator-exclusive slab access).
    pub(crate) fn sweep_gate_one(&mut self, pos: usize) {
        let view = self.view;
        // SAFETY: workers are parked between dispatches; the emit
        // closure is lexically inside this unsafe block.
        unsafe { view.sweep_gate_shared(self.ctx, pos, |se, v| view.fold_candidate_shared(se, v)) }
    }

    /// One whole level of the required sweep across the pool: workers
    /// emit candidates into their buffers, then the coordinator
    /// min-folds the merged buffers here, between the end barrier and
    /// the next dispatch (workers parked — exclusive slab access). The
    /// fold is order-independent, so worker chunking never shows in the
    /// bits.
    pub(crate) fn sweep_gate_range(&mut self, lo: u32, hi: u32) {
        self.dispatch_range(BwdOp::SweepGate, lo, hi);
        for i in 0..self.merged.len() {
            let (se, v) = self.merged[i];
            // SAFETY: workers are parked between dispatches.
            unsafe { self.view.fold_candidate_shared(se, v) };
        }
    }

    /// Evaluate the completion bound of the gate at `pos` inline;
    /// returns whether it changed.
    pub(crate) fn eval_completion_one(&mut self, pos: usize) -> bool {
        // SAFETY: workers are parked between dispatches.
        unsafe { self.view.eval_completion_shared(self.ctx, pos) }
    }

    /// Evaluate an explicit ascending position list (one level's
    /// completion-dirty gates) across the pool; returns `(pos, 0.0)`
    /// for every changed gate, in ascending position order.
    pub(crate) fn eval_completion_list(&mut self, positions: &mut Vec<u32>) -> &[(u32, f64)] {
        self.dispatch_list(BwdOp::Completion, positions);
        &self.merged
    }

    /// Evaluate every completion bound in `[lo, hi)` (one full level)
    /// across the pool, reporting nothing — the full-sweep case.
    pub(crate) fn sweep_completion_range(&mut self, lo: u32, hi: u32) {
        self.dispatch_range(BwdOp::CompletionSweep, lo, hi);
    }

    fn dispatch_list(&mut self, op: BwdOp, positions: &mut Vec<u32>) {
        debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
        self.dispatch(BwdTask {
            lo: 0,
            hi: 0,
            list: Some(std::mem::take(positions)),
            op,
            done: false,
        });
        *positions = self
            .task
            .write()
            .expect("pool lock")
            .list
            .take()
            .expect("dispatched list comes back");
    }

    fn dispatch_range(&mut self, op: BwdOp, lo: u32, hi: u32) {
        self.dispatch(BwdTask {
            lo,
            hi,
            list: None,
            op,
            done: false,
        });
    }

    fn dispatch(&mut self, t: BwdTask) {
        *self.task.write().expect("pool lock") = t;
        self.start.wait();
        // The coordinator is worker 0.
        run_bwd_chunk(
            self.ctx,
            self.view,
            self.task,
            0,
            self.threads,
            &self.outs[0],
        );
        self.end.wait();
        self.merged.clear();
        for out in self.outs {
            self.merged.append(&mut out.lock().expect("pool lock"));
        }
    }

    fn shutdown(&mut self) {
        self.task.write().expect("pool lock").done = true;
        self.start.wait();
    }
}

fn run_bwd_chunk(
    ctx: &EvalCtx<'_>,
    view: &BwdView<'_>,
    task: &RwLock<BwdTask>,
    w: usize,
    threads: usize,
    out: &Mutex<Vec<(u32, f64)>>,
) {
    let t = task.read().expect("pool lock");
    let mut local = out.lock().expect("pool lock");
    let run_pos = |pos: u32, local: &mut Vec<(u32, f64)>| match t.op {
        BwdOp::Required => {
            let net = ctx.out_net[ctx.topo[pos as usize].index()].index();
            // SAFETY: `pos` is in this worker's chunk of the current
            // level (module-docs discipline).
            let (changed, key) =
                unsafe { view.eval_required_shared(ctx, net, ctx.n_src + pos as usize) };
            if changed {
                local.push((pos, key));
            }
        }
        // SAFETY: the sweep kernel reads only the gate's own settled
        // slot; candidates go to this worker's buffer, not the slabs.
        BwdOp::SweepGate => unsafe {
            view.sweep_gate_shared(ctx, pos as usize, |se, v| local.push((se, v)))
        },
        BwdOp::Completion => {
            // SAFETY: as `Required`.
            if unsafe { view.eval_completion_shared(ctx, pos as usize) } {
                local.push((pos, 0.0));
            }
        }
        BwdOp::CompletionSweep => {
            // SAFETY: as `Required`.
            unsafe { view.eval_completion_shared(ctx, pos as usize) };
        }
    };
    match &t.list {
        Some(list) => {
            for &pos in &list[chunk(list.len(), w, threads)] {
                run_pos(pos, &mut local);
            }
        }
        None => {
            let n = (t.hi - t.lo) as usize;
            let c = chunk(n, w, threads);
            for pos in t.lo + c.start as u32..t.lo + c.end as u32 {
                run_pos(pos, &mut local);
            }
        }
    }
    drop(local);
    // Commit this worker's shadow-access log before the end barrier (see
    // `run_chunk`).
    crate::audit::commit_chunk();
}

/// Backward mirror of [`run_parallel`]: spin up `threads - 1` workers
/// for the duration of `body` and hand the coordinator a [`BwdDriver`].
/// Panics in `body` come back as `Err` with the backward slabs
/// partially written — the caller falls back to a sequential full
/// sweep, exactly as in the forward direction.
pub(crate) fn run_parallel_bwd<R>(
    ctx: &EvalCtx<'_>,
    view: &mut BwdView<'_>,
    threads: usize,
    body: impl FnOnce(&mut BwdDriver<'_, '_, '_>) -> R,
) -> std::thread::Result<R> {
    assert!(threads >= 2, "run_parallel_bwd needs a pool");
    let task = RwLock::new(BwdTask::default());
    let start = Barrier::new(threads);
    let end = Barrier::new(threads);
    let outs: Vec<Mutex<Vec<(u32, f64)>>> = (0..threads).map(|_| Mutex::new(Vec::new())).collect();
    let view: &BwdView = view;
    std::thread::scope(|s| {
        for (w, out) in outs.iter().enumerate().skip(1) {
            let (task, start, end) = (&task, &start, &end);
            s.spawn(move || {
                let _sect = crate::faultinject::ParallelSection::enter();
                let _aud = crate::audit::WorkerGuard::enter(w);
                loop {
                    start.wait();
                    if task.read().expect("pool lock").done {
                        return;
                    }
                    run_bwd_chunk(ctx, view, task, w, threads, out);
                    end.wait();
                }
            });
        }
        let mut driver = BwdDriver {
            ctx,
            view,
            threads,
            task: &task,
            start: &start,
            end: &end,
            outs: &outs,
            merged: Vec::new(),
        };
        // Release the workers even when the body panics — otherwise
        // they stay parked at the start barrier and the scope deadlocks
        // instead of handing the panic back.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _sect = crate::faultinject::ParallelSection::enter();
            let _aud = crate::audit::WorkerGuard::enter(0);
            body(&mut driver)
        }));
        driver.shutdown();
        r
    })
}

/// Whether any bit of `bits` in `[lo, hi)` is set — the adaptive sweep
/// cut-over's per-level dirty probe (no clearing, no collection).
pub(crate) fn range_any(bits: &[u64], lo: u32, hi: u32) -> bool {
    if lo >= hi {
        return false;
    }
    let (lo, hi) = (lo as usize, hi as usize);
    let mut word = lo / 64;
    let last = (hi - 1) / 64;
    while word <= last {
        let mut mask = u64::MAX;
        if word == lo / 64 {
            mask &= u64::MAX << (lo % 64);
        }
        if word == last && hi % 64 != 0 {
            mask &= u64::MAX >> (64 - hi % 64);
        }
        if bits[word] & mask != 0 {
            return true;
        }
        word += 1;
    }
    false
}

/// Collect (and clear) every set bit of `bits` whose index lies in
/// `[lo, hi)`, pushing the indices in ascending order. The drain's
/// per-level dirty gather.
pub(crate) fn gather_range(bits: &mut [u64], lo: u32, hi: u32, out: &mut Vec<u32>) {
    if lo >= hi {
        return;
    }
    let (lo, hi) = (lo as usize, hi as usize);
    let mut word = lo / 64;
    let last = (hi - 1) / 64;
    while word <= last {
        let mut mask = u64::MAX;
        if word == lo / 64 {
            mask &= u64::MAX << (lo % 64);
        }
        if word == last && hi % 64 != 0 {
            mask &= u64::MAX >> (64 - hi % 64);
        }
        let mut hits = bits[word] & mask;
        bits[word] &= !hits;
        while hits != 0 {
            let bit = hits.trailing_zeros();
            out.push((word * 64) as u32 + bit);
            hits &= hits - 1;
        }
        word += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_range_respects_bounds_and_clears() {
        let mut bits = vec![0u64; 3];
        for i in [0usize, 5, 63, 64, 70, 127, 128, 150] {
            bits[i / 64] |= 1 << (i % 64);
        }
        let mut out = Vec::new();
        gather_range(&mut bits, 5, 128, &mut out);
        assert_eq!(out, [5, 63, 64, 70, 127]);
        // Cleared inside the range, untouched outside (0, 128, 150).
        assert_eq!(bits[0], 1);
        assert_eq!(bits[1], 0);
        assert_eq!(bits[2], (1 << (150 - 128)) | 1);
        out.clear();
        gather_range(&mut bits, 128, 151, &mut out);
        assert_eq!(out, [128, 150]);
    }

    #[test]
    fn range_any_respects_bounds() {
        let mut bits = vec![0u64; 3];
        for i in [0usize, 70, 150] {
            bits[i / 64] |= 1 << (i % 64);
        }
        assert!(range_any(&bits, 0, 1));
        assert!(!range_any(&bits, 1, 70));
        assert!(range_any(&bits, 70, 71));
        assert!(range_any(&bits, 5, 192));
        assert!(!range_any(&bits, 71, 150));
        assert!(range_any(&bits, 71, 151));
        assert!(!range_any(&bits, 151, 192));
        assert!(!range_any(&bits, 10, 10));
    }

    #[test]
    fn chunks_partition_exactly() {
        for n in [0usize, 1, 7, 64, 1000] {
            for t in 1..6 {
                let mut covered = 0;
                for w in 0..t {
                    let c = chunk(n, w, t);
                    assert_eq!(c.start, covered);
                    covered = c.end;
                }
                assert_eq!(covered, n);
            }
        }
    }
}
