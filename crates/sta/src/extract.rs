//! Netlist path → bounded [`TimedPath`] extraction.
//!
//! The optimizer works on bounded paths (fixed source drive, fixed
//! terminal load, per-stage off-path loading). This module computes those
//! boundary conditions from the netlist context of a [`NetlistPath`]:
//! every fanout pin hanging off the path contributes off-path load, and
//! the last stage's full fanout plus the latch load becomes the terminal
//! load.

use pops_delay::{Library, PathStage, TimedPath};
use pops_netlist::{Circuit, GateId};

use crate::analysis::{AnalyzeOptions, NetlistPath};
use crate::sizing::Sizing;

/// Options controlling path extraction.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractOptions {
    /// Latch input capacitance added at primary outputs (fF). Keep equal
    /// to [`AnalyzeOptions::po_load_ff`] for consistency with STA.
    pub po_load_ff: f64,
    /// Transition time at the path input (ps).
    pub input_transition_ps: f64,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        let a = AnalyzeOptions::default();
        ExtractOptions {
            po_load_ff: a.po_load_ff,
            input_transition_ps: a.input_transition_ps,
        }
    }
}

/// A bounded timed path plus its mapping back to netlist gates.
#[derive(Debug, Clone)]
pub struct ExtractedPath {
    /// The bounded path handed to the optimizers.
    pub timed: TimedPath,
    /// `gates[i]` is the netlist gate realizing stage `i`.
    pub gates: Vec<GateId>,
}

impl ExtractedPath {
    /// Write a per-stage sizing solution back into a netlist [`Sizing`].
    ///
    /// # Panics
    ///
    /// Panics if `sizes.len()` differs from the number of stages.
    pub fn apply_sizes(&self, sizing: &mut Sizing, sizes: &[f64]) {
        assert_eq!(sizes.len(), self.gates.len(), "one size per stage");
        for (&g, &cin) in self.gates.iter().zip(sizes) {
            sizing.set(g, cin);
        }
    }
}

/// Extract the bounded [`TimedPath`] corresponding to `path`.
///
/// Boundary conditions:
/// * **source drive** — the current size of the first path gate (fixed by
///   the latch that feeds the path, per the paper's bounded-path rule);
/// * **off-path load of stage i** — the summed input capacitance (under
///   `sizing`) of every pin on stage i's output net that is *not* the
///   next path gate's on-path pin, plus the latch load if that net is
///   also a primary output;
/// * **terminal load** — all of the last stage's fanout plus the latch
///   load.
///
/// # Panics
///
/// Panics if `path` is empty or consecutive gates are not connected.
///
/// # Example
///
/// ```
/// use pops_netlist::builders::ripple_carry_adder;
/// use pops_delay::Library;
/// use pops_sta::{analysis::analyze, extract_timed_path, ExtractOptions, Sizing};
///
/// # fn main() -> Result<(), pops_netlist::NetlistError> {
/// let c = ripple_carry_adder(4);
/// let lib = Library::cmos025();
/// let sizing = Sizing::minimum(&c, &lib);
/// let report = analyze(&c, &lib, &sizing)?;
/// let path = report.critical_path();
/// let extracted = extract_timed_path(&c, &lib, &sizing, &path, &ExtractOptions::default());
/// assert_eq!(extracted.timed.len(), path.gates.len());
/// # Ok(())
/// # }
/// ```
pub fn extract_timed_path(
    circuit: &Circuit,
    lib: &Library,
    sizing: &Sizing,
    path: &NetlistPath,
    options: &ExtractOptions,
) -> ExtractedPath {
    assert!(!path.gates.is_empty(), "cannot extract an empty path");
    let n = path.gates.len();
    let mut stages = Vec::with_capacity(n);

    for (i, &gid) in path.gates.iter().enumerate() {
        let gate = circuit.gate(gid);
        let out_net = gate.output();
        let net = circuit.net(out_net);
        let mut off_path = 0.0;
        if i + 1 < n {
            let next = path.gates[i + 1];
            debug_assert!(
                net.loads().iter().any(|&(g, _)| g == next),
                "path gates {gid} -> {next} are not connected"
            );
            // Every load pin except ONE pin of the next path gate is
            // off-path load (the next gate may legitimately tap the net on
            // several pins; only one of them is the on-path input).
            let mut skipped_on_path_pin = false;
            for &(g, _pin) in net.loads() {
                if g == next && !skipped_on_path_pin {
                    skipped_on_path_pin = true;
                    continue;
                }
                off_path += sizing.cin_ff(g);
            }
            if net.is_output() {
                off_path += options.po_load_ff;
            }
            stages.push(PathStage::with_load(gate.kind(), off_path));
        } else {
            // Last stage: its entire fanout is the terminal load.
            stages.push(PathStage::new(gate.kind()));
        }
    }

    // `n >= 1` by the non-emptiness assertion above.
    let last_net = circuit.net(circuit.gate(path.gates[n - 1]).output());
    let mut terminal = last_net
        .loads()
        .iter()
        .map(|&(g, _)| sizing.cin_ff(g))
        .sum::<f64>();
    if last_net.is_output() {
        terminal += options.po_load_ff;
    }
    if terminal <= 0.0 {
        // A dangling endpoint (should not occur on validated circuits):
        // assume one latch load.
        terminal = options.po_load_ff.max(lib.min_drive_ff());
    }

    let source_drive = sizing.cin_ff(path.gates[0]);
    let timed = TimedPath::new(stages, source_drive, terminal)
        .with_input_conditions(pops_delay::Edge::Rising, options.input_transition_ps);

    ExtractedPath {
        timed,
        gates: path.gates.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use pops_netlist::builders::{inverter_chain, ripple_carry_adder};
    use pops_netlist::suite;

    fn extract(name: &str) -> (ExtractedPath, Library) {
        let c = suite::circuit(name).unwrap();
        let lib = Library::cmos025();
        let sizing = Sizing::minimum(&c, &lib);
        let report = analyze(&c, &lib, &sizing).unwrap();
        let path = report.critical_path();
        let e = extract_timed_path(&c, &lib, &sizing, &path, &ExtractOptions::default());
        (e, lib)
    }

    #[test]
    fn stage_count_matches_path() {
        let (e, _) = extract("c432");
        assert_eq!(e.timed.len(), e.gates.len());
        assert!(e.timed.len() >= 28, "c432 path should be ~29 gates");
    }

    #[test]
    fn chain_has_no_off_path_load() {
        let c = inverter_chain(5);
        let lib = Library::cmos025();
        let sizing = Sizing::minimum(&c, &lib);
        let report = analyze(&c, &lib, &sizing).unwrap();
        let path = report.critical_path();
        let e = extract_timed_path(&c, &lib, &sizing, &path, &ExtractOptions::default());
        for s in &e.timed.stages()[..4] {
            assert_eq!(s.off_path_load_ff, 0.0);
        }
        // Terminal = PO latch load.
        assert!((e.timed.terminal_load_ff() - ExtractOptions::default().po_load_ff).abs() < 1e-9);
    }

    #[test]
    fn off_path_load_appears_on_shared_nets() {
        let (e, _) = extract("c7552");
        let any_loaded = e.timed.stages().iter().any(|s| s.off_path_load_ff > 0.0);
        assert!(any_loaded, "suite spines carry off-path fanout");
    }

    #[test]
    fn timed_delay_close_to_sta_arrival_on_single_path_circuit() {
        // On an inverter chain the bounded path IS the whole circuit, so
        // the TimedPath delay must match the STA critical delay closely
        // (same model, same slopes).
        let c = inverter_chain(6);
        let lib = Library::cmos025();
        let sizing = Sizing::minimum(&c, &lib);
        let report = analyze(&c, &lib, &sizing).unwrap();
        let path = report.critical_path();
        let e = extract_timed_path(&c, &lib, &sizing, &path, &ExtractOptions::default());
        let sizes = e.timed.min_sizes(&lib);
        let d = e.timed.delay(&lib, &sizes);
        let sta = report.critical_delay_ps();
        let rel = (d.total_ps - sta).abs() / sta;
        assert!(rel < 0.05, "timed {} vs sta {sta}", d.total_ps);
    }

    #[test]
    fn apply_sizes_round_trips() {
        let c = ripple_carry_adder(3);
        let lib = Library::cmos025();
        let mut sizing = Sizing::minimum(&c, &lib);
        let report = analyze(&c, &lib, &sizing).unwrap();
        let path = report.critical_path();
        let e = extract_timed_path(&c, &lib, &sizing, &path, &ExtractOptions::default());
        let sizes: Vec<f64> = (0..e.timed.len()).map(|i| 3.0 + i as f64).collect();
        e.apply_sizes(&mut sizing, &sizes);
        for (i, &g) in e.gates.iter().enumerate() {
            assert_eq!(sizing.cin_ff(g), 3.0 + i as f64);
        }
    }

    #[test]
    fn source_drive_is_first_gate_size() {
        let (e, _) = extract("fpd");
        assert!(e.timed.source_drive_ff() > 0.0);
    }
}
