//! Shadow-access race auditor for the level-synchronized parallel flush.
//!
//! The parallel flush ([`parallel`](crate::parallel) + the six flush
//! bodies in [`incremental`](crate::incremental)) rests on a hand-written
//! disjoint-slot argument: inside one level batch every worker writes only
//! its own output slots, and every read lands either on a slot finalized
//! at a strictly lower level (forward), on a slot at the current or a
//! higher level (backward), or on the worker's own slot. This module makes
//! that argument *mechanically checked*: when armed, every `SyncCell`
//! access in the shared kernels records `(worker, slab, widened index,
//! access kind)` into a per-worker thread-local log, workers commit their
//! logs at the end of each dispatched chunk (before the end barrier), and
//! the coordinator verifies the whole batch at each barrier:
//!
//! 1. **Write-write** — same-level write-sets are pairwise disjoint
//!    across workers ([`RaceKind::WriteWrite`]).
//! 2. **Read-write** — no read aliases another worker's same-level write
//!    ([`RaceKind::ReadWrite`]); a worker reading a slot it wrote itself
//!    (the old-value reads of the forward kernel) is legal.
//! 3. **Cross-level** — forward reads only touch source slots or slots
//!    at strictly lower levels; backward reads only touch slots at the
//!    current or higher levels ([`RaceKind::CrossLevel`]). The check
//!    decodes the corner stride (`slot·C + c`), so an index computed with
//!    the wrong stride surfaces as an out-of-bounds or wrong-level read.
//!
//! Violations become typed [`StaError::RaceHazard`] values naming worker,
//! level and slot, collected via [`take_hazards`] and counted in
//! [`UpdateStats`](crate::incremental::UpdateStats). The auditor only
//! observes — it never alters timing state, so armed runs stay
//! bit-identical to disarmed ones (proved by `tests/race_audit.rs`).
//!
//! # Arming
//!
//! Mirrors [`faultinject`](crate::faultinject): a process-global master
//! switch ([`arm`]/[`disarm`], or `STA_AUDIT=1` consumed once at graph
//! build), plus a per-graph builder flag
//! ([`TimingGraph::set_audit`](crate::TimingGraph::set_audit)). Disarmed,
//! every hook is a single relaxed atomic load (hoisted once per kernel
//! call), so the instrumented kernels stay on the benchmarked fast path.
//!
//! At most one parallel flush is audited at a time: the session state is
//! process-global (like `faultinject`'s), so a second graph flushing
//! concurrently from another thread is skipped by [`begin_scope`] rather
//! than cross-contaminating the logs. Armed suites therefore run with
//! `--test-threads=1` (CI does) or serialize behind a lock.
//!
//! # Proving the negative
//!
//! Real overlapping writes would be undefined behaviour, so the negative
//! case is driven by a seeded [`OverlapPlan`] (same SplitMix64 plumbing as
//! [`FaultPlan`](crate::FaultPlan)): every Nth recorded access synthesizes
//! a *phantom* log record — a duplicate write attributed to a phantom
//! worker (write-write), a phantom peer write at a just-read index
//! (read-write), or a phantom read of a deliberately wrong-level slot
//! (cross-level) — and the barrier check must catch it. The phantom
//! records never touch the slabs, so even the negative tests stay
//! bit-identical to clean runs.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, Once};

use crate::error::{RaceKind, StaError};
use crate::faultinject::mix;

/// Sentinel worker id: this thread is not inside a parallel flush, so its
/// accesses (sequential twins, recovery retries, PI-sink folds) are never
/// recorded.
const NO_WORKER: u32 = u32::MAX;

/// Offset added to a real worker id to mint the phantom peer that seeded
/// overlap injection attributes its synthetic records to. Real pools are
/// capped at 8 workers, so phantoms are unmistakable in hazard reports.
const PHANTOM_OFFSET: u32 = 1000;

/// Hazards retained verbatim per session; everything past the cap is
/// counted ([`hazards_recorded`]) but not materialized, so a pathological
/// run cannot balloon memory.
const HAZARD_CAP: usize = 64;

/// Process-global master switch ([`arm`]/[`disarm`]/`STA_AUDIT=1`).
static ARMED: AtomicBool = AtomicBool::new(false);
/// True while an audited flush scope is open — the only load on the
/// disarmed fast path.
static ACTIVE: AtomicBool = AtomicBool::new(false);
/// Seeded overlap injection switch + parameters (see [`OverlapPlan`]).
static OVERLAP_ON: AtomicBool = AtomicBool::new(false);
static OVERLAP_PERIOD: AtomicU64 = AtomicU64::new(0);
/// `RaceKind` of the armed overlap plan, stored as its discriminant.
static OVERLAP_KIND: AtomicU64 = AtomicU64::new(0);
/// Accesses of the plan-relevant kind seen since arming.
static OVERLAP_COUNT: AtomicU64 = AtomicU64::new(0);
static OVERLAPS_INJECTED: AtomicU64 = AtomicU64::new(0);
/// Monotonic process-wide hazard count (uncapped).
static HAZARDS_TOTAL: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Worker id of the current thread inside a parallel flush, or
    /// [`NO_WORKER`]. Installed by [`WorkerGuard`].
    static WORKER: Cell<u32> = const { Cell::new(NO_WORKER) };
    /// Uncommitted access records of the current worker; drained into the
    /// session by [`commit_chunk`].
    static LOCAL: RefCell<Vec<Rec>> = const { RefCell::new(Vec::new()) };
}

/// Which shared slab an access touched. Forward slabs and `Required` are
/// net-slot indexed (`slot·C + c`); `GateDelay` and `Completion` are gate
/// position indexed (`pos·C + c`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) enum Slab {
    /// Forward arrival times, net-slot indexed.
    Arrival,
    /// Forward slopes, net-slot indexed.
    Slope,
    /// Forward critical-predecessor ids, net-slot indexed.
    Pred,
    /// Per-gate stage delays, gate-position indexed.
    GateDelay,
    /// Backward required times, net-slot indexed.
    Required,
    /// Backward completion times, gate-position indexed.
    Completion,
}

impl Slab {
    fn name(self) -> &'static str {
        match self {
            Slab::Arrival => "arrival",
            Slab::Slope => "slope",
            Slab::Pred => "pred",
            Slab::GateDelay => "gate_delay",
            Slab::Required => "required",
            Slab::Completion => "completion",
        }
    }

    /// Pos-indexed slabs are private to the gate that owns the position,
    /// so cross-level reads of them are judged by the gate's own level.
    fn pos_indexed(self) -> bool {
        matches!(self, Slab::GateDelay | Slab::Completion)
    }
}

/// One recorded shadow access: 12 bytes, so a million-gate level batch
/// logs tens of megabytes at worst while armed, and nothing disarmed.
#[derive(Clone, Copy, Debug)]
struct Rec {
    worker: u32,
    index: u32,
    slab: Slab,
    write: bool,
}

/// Geometry of the flush being audited — everything the barrier check
/// needs to map a widened slab index back to a topological level.
#[derive(Clone, Debug)]
pub(crate) struct Scope {
    /// Gate positions partitioned by level: level `l` spans positions
    /// `level_start[l] .. level_start[l+1]`.
    pub(crate) level_start: Vec<u32>,
    /// Net slots `0..n_src` are driverless source nets (primary inputs
    /// and constants) — always finalized, at no gate level.
    pub(crate) n_src: u32,
    /// Corner count `C` of the `slot·C + c` stride.
    pub(crate) nc: u32,
    /// Total net slots (sources + gate outputs).
    pub(crate) n_slots: u32,
    /// Total gate positions.
    pub(crate) n_pos: u32,
    /// Backward flush: reads must land at the current level or higher and
    /// never on source slots; forward flush: strictly lower or source.
    pub(crate) backward: bool,
}

/// Process-global audit session: the open scope, committed-but-unchecked
/// records, and the hazards found so far.
struct Session {
    scope: Option<Scope>,
    log: Vec<Rec>,
    hazards: Vec<StaError>,
    scope_levels: usize,
    scope_hazards: usize,
}

static SESSION: Mutex<Session> = Mutex::new(Session {
    scope: None,
    log: Vec::new(),
    hazards: Vec::new(),
    scope_levels: 0,
    scope_hazards: 0,
});

/// Poison-tolerant session lock: a worker panicking mid-flush (e.g. under
/// fault injection) must not wedge the auditor for the rest of the
/// process.
fn session() -> MutexGuard<'static, Session> {
    SESSION.lock().unwrap_or_else(|e| e.into_inner())
}

/// Arm the auditor process-wide: every subsequent parallel flush of every
/// graph opens an audit scope.
pub fn arm() {
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarm the process-wide switch and any seeded overlap plan. A scope
/// already open finishes its own checks; graphs with the builder flag set
/// stay audited.
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
    OVERLAP_ON.store(false, Ordering::SeqCst);
}

/// Is the process-wide switch armed?
pub fn armed() -> bool {
    ARMED.load(Ordering::SeqCst)
}

/// Arm from `STA_AUDIT=1` once per process — called from
/// [`TimingGraph::build`](crate::TimingGraph::build) so CI can audit the
/// stock equivalence suites without code changes.
pub(crate) fn arm_from_env_once() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        if let Ok(v) = std::env::var("STA_AUDIT") {
            match v.trim() {
                "1" | "true" | "on" => arm(),
                "" | "0" | "false" | "off" => {}
                other => eprintln!("STA_AUDIT `{other}` not understood; audit stays off"),
            }
        }
    });
}

/// Seeded phantom-overlap plan for the negative tests: every
/// `every_accesses`-th recorded access of the kind the plan targets
/// synthesizes a phantom log record the barrier check must flag.
///
/// Same seed-derivation plumbing as [`FaultPlan`](crate::FaultPlan); the
/// phantoms live only in the shadow log, so the audited run's timing
/// state stays bit-identical to a clean run.
#[derive(Clone, Copy, Debug)]
pub struct OverlapPlan {
    /// Seed the period was derived from (reporting only).
    pub seed: u64,
    /// Which hazard class the phantoms provoke.
    pub kind: RaceKind,
    /// Injection period over plan-relevant accesses (writes for
    /// write-write, reads otherwise).
    pub every_accesses: u64,
}

impl OverlapPlan {
    /// Derive an injection period in `8..64` from `seed` — dense enough
    /// to fire many times per flush on the suite circuits, sparse enough
    /// to keep the hazard log readable.
    pub fn from_seed(seed: u64, kind: RaceKind) -> Self {
        let mut s = seed ^ 0xA0D1_7A2D_5EED_0001;
        let every = 8 + mix(&mut s) % 56;
        OverlapPlan {
            seed,
            kind,
            every_accesses: every,
        }
    }

    /// Arm this plan process-wide. Effective only while the auditor
    /// itself is armed and a scope is open.
    pub fn arm(&self) {
        OVERLAP_PERIOD.store(self.every_accesses.max(1), Ordering::SeqCst);
        OVERLAP_KIND.store(
            match self.kind {
                RaceKind::WriteWrite => 0,
                RaceKind::ReadWrite => 1,
                RaceKind::CrossLevel => 2,
            },
            Ordering::SeqCst,
        );
        OVERLAP_COUNT.store(0, Ordering::SeqCst);
        OVERLAP_ON.store(true, Ordering::SeqCst);
    }
}

/// Phantom records synthesized so far (test observability).
pub fn overlaps_injected() -> u64 {
    OVERLAPS_INJECTED.load(Ordering::SeqCst)
}

/// Monotonic count of hazards detected process-wide, including those past
/// the per-session retention cap.
pub fn hazards_recorded() -> u64 {
    HAZARDS_TOTAL.load(Ordering::SeqCst)
}

/// Drain the retained hazards (at most [`HAZARD_CAP`] per session).
pub fn take_hazards() -> Vec<StaError> {
    std::mem::take(&mut session().hazards)
}

/// The one load on the kernel fast path: true while an audited flush
/// scope is open. Kernels hoist this once per call and guard every
/// recording hook on the result.
#[inline(always)]
pub(crate) fn on() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Record a shared-slab read at widened index `index` (armed path only —
/// callers guard on [`on`]).
pub(crate) fn read(slab: Slab, index: usize) {
    record(slab, index, false);
}

/// Record a shared-slab write at widened index `index` (armed path only).
pub(crate) fn write(slab: Slab, index: usize) {
    record(slab, index, true);
}

#[cold]
fn record(slab: Slab, index: usize, write: bool) {
    let w = WORKER.with(|c| c.get());
    if w == NO_WORKER {
        return;
    }
    LOCAL.with(|l| {
        l.borrow_mut().push(Rec {
            worker: w,
            index: index as u32,
            slab,
            write,
        });
    });
    if OVERLAP_ON.load(Ordering::Relaxed) {
        maybe_overlap(w, slab, index as u32, write);
    }
}

/// Seeded phantom injection: on every Nth plan-relevant access, append a
/// synthetic record the barrier check must flag. Locks the session only
/// on the (rare) firing path, and only for the cross-level geometry.
#[cold]
fn maybe_overlap(w: u32, slab: Slab, index: u32, write: bool) {
    let kind = OVERLAP_KIND.load(Ordering::Relaxed);
    let relevant = if kind == 0 { write } else { !write };
    if !relevant {
        return;
    }
    let n = OVERLAP_COUNT.fetch_add(1, Ordering::Relaxed) + 1;
    let period = OVERLAP_PERIOD.load(Ordering::Relaxed).max(1);
    if !n.is_multiple_of(period) {
        return;
    }
    let phantom = match kind {
        // Write-write: a phantom peer writes the exact index this worker
        // just wrote.
        0 => Rec {
            worker: w + PHANTOM_OFFSET,
            index,
            slab,
            write: true,
        },
        // Read-write: a phantom peer writes the index this worker just
        // read.
        1 => Rec {
            worker: w + PHANTOM_OFFSET,
            index,
            slab,
            write: true,
        },
        // Cross-level: this worker "reads" a slot that cannot be
        // finalized — forward: the topmost gate's output slot (level
        // max); backward: the first gate's slot (level 0) which is
        // illegal whenever the current level is > 0, plus the fallback
        // of a source slot which is illegal backward at any level.
        _ => {
            let s = session();
            match s.scope.as_ref() {
                Some(scope) if scope.backward => Rec {
                    worker: w,
                    index: scope.n_src * scope.nc,
                    slab: Slab::Required,
                    write: false,
                },
                Some(scope) => Rec {
                    worker: w,
                    index: (scope.n_slots - 1) * scope.nc,
                    slab: Slab::Arrival,
                    write: false,
                },
                None => return,
            }
        }
    };
    LOCAL.with(|l| l.borrow_mut().push(phantom));
    OVERLAPS_INJECTED.fetch_add(1, Ordering::Relaxed);
}

/// RAII worker-id installer for threads inside a parallel flush. The
/// coordinator enters as worker 0; spawned workers as `1..threads`.
pub(crate) struct WorkerGuard {
    prev: u32,
}

impl WorkerGuard {
    pub(crate) fn enter(worker: usize) -> Self {
        let prev = WORKER.with(|c| c.replace(worker as u32));
        WorkerGuard { prev }
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        WORKER.with(|c| c.set(self.prev));
    }
}

/// Commit this thread's local records to the session. Workers call this
/// at the end of every dispatched chunk — i.e. *before* the end barrier —
/// so the coordinator's barrier-time check sees the whole level batch.
pub(crate) fn commit_chunk() {
    if !on() {
        return;
    }
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        if l.is_empty() {
            return;
        }
        session().log.extend(l.drain(..));
    });
}

/// Open an audit scope for one parallel flush. Returns `false` (scope not
/// opened, nothing recorded or checked) if another flush is already being
/// audited — the session is process-global.
pub(crate) fn begin_scope(scope: Scope) -> bool {
    let mut s = session();
    if s.scope.is_some() {
        return false;
    }
    s.log.clear();
    s.scope_levels = 0;
    s.scope_hazards = 0;
    s.scope = Some(scope);
    ACTIVE.store(true, Ordering::SeqCst);
    true
}

/// Close the scope opened by a `true` return of [`begin_scope`]; returns
/// `(levels checked, hazards found)` for the flush's `UpdateStats`.
/// Leftover uncommitted/unchecked records (e.g. a level abandoned to a
/// recovered worker panic) are discarded.
pub(crate) fn end_scope() -> (usize, usize) {
    ACTIVE.store(false, Ordering::SeqCst);
    LOCAL.with(|l| l.borrow_mut().clear());
    let mut s = session();
    s.scope = None;
    s.log.clear();
    (s.scope_levels, s.scope_hazards)
}

/// Barrier-time verification of one level batch. The coordinator calls
/// this after each level's end barrier (workers have committed their
/// chunks); it drains the session log, checks the three invariants and
/// retains any hazards.
pub(crate) fn check_level(level: usize) {
    if !on() {
        return;
    }
    commit_chunk();
    let s = &mut *session();
    let Some(scope) = s.scope.as_ref() else {
        return;
    };
    let found = verify_level(scope, level, &s.log);
    s.log.clear();
    s.scope_levels += 1;
    s.scope_hazards += found.len();
    HAZARDS_TOTAL.fetch_add(found.len() as u64, Ordering::SeqCst);
    for h in found {
        if s.hazards.len() < HAZARD_CAP {
            s.hazards.push(h);
        }
    }
}

/// Map a widened slab index to the gate level that owns it.
///
/// `Ok(None)` — a source slot (no owning gate). `Err(())` — the index
/// does not decode to any slot/position, i.e. the stride math itself is
/// broken.
fn slab_level(scope: &Scope, slab: Slab, index: u32) -> Result<Option<usize>, ()> {
    let i = index / scope.nc.max(1);
    let pos = if slab.pos_indexed() {
        if i >= scope.n_pos {
            return Err(());
        }
        i
    } else {
        if i >= scope.n_slots {
            return Err(());
        }
        if i < scope.n_src {
            return Ok(None);
        }
        i - scope.n_src
    };
    // level_start is ascending; level of `pos` is the last entry ≤ pos.
    let lvl = scope.level_start.partition_point(|&s| s <= pos) - 1;
    Ok(Some(lvl))
}

fn hazard(scope: &Scope, kind: RaceKind, level: usize, rec: Rec, extra: String) -> StaError {
    StaError::RaceHazard {
        worker: rec.worker as usize,
        level,
        slot: (rec.index / scope.nc.max(1)) as usize,
        kind,
        detail: format!(
            "{} slab, widened index {} (corner {}), {} access; {}",
            rec.slab.name(),
            rec.index,
            rec.index % scope.nc.max(1),
            if rec.write { "write" } else { "read" },
            extra
        ),
    }
}

/// The three invariants over one level batch's records.
fn verify_level(scope: &Scope, level: usize, log: &[Rec]) -> Vec<StaError> {
    let mut hazards = Vec::new();
    // 1. Write-write: every written (slab, index) has exactly one owner.
    let mut writes: HashMap<(Slab, u32), u32> = HashMap::with_capacity(log.len());
    for r in log.iter().filter(|r| r.write) {
        match writes.entry((r.slab, r.index)) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(r.worker);
            }
            std::collections::hash_map::Entry::Occupied(o) => {
                let owner = *o.get();
                if owner != r.worker {
                    hazards.push(hazard(
                        scope,
                        RaceKind::WriteWrite,
                        level,
                        *r,
                        format!("also written by worker {owner} in the same level batch"),
                    ));
                }
            }
        }
    }
    for r in log.iter().filter(|r| !r.write) {
        // 2. Read-write: a read of another worker's same-level write.
        if let Some(&owner) = writes.get(&(r.slab, r.index)) {
            if owner != r.worker {
                hazards.push(hazard(
                    scope,
                    RaceKind::ReadWrite,
                    level,
                    *r,
                    format!("worker {owner} writes this index in the same level batch"),
                ));
            }
            // Own old-value read of a slot this worker writes: legal in
            // both directions.
            continue;
        }
        // 3. Cross-level: the read must land on a finalized slot.
        match slab_level(scope, r.slab, r.index) {
            Err(()) => hazards.push(hazard(
                scope,
                RaceKind::CrossLevel,
                level,
                *r,
                "index decodes outside the slab (stride corruption)".into(),
            )),
            Ok(None) => {
                // Source slots: always finalized forward; never part of
                // the backward required tree mid-flush (they are folded
                // sequentially after the parallel drain).
                if scope.backward {
                    hazards.push(hazard(
                        scope,
                        RaceKind::CrossLevel,
                        level,
                        *r,
                        "source slot read inside the backward parallel flush".into(),
                    ));
                }
            }
            Ok(Some(sl)) => {
                let bad = if scope.backward {
                    // Backward: levels above the current one were
                    // finalized by earlier (descending) batches; the
                    // current level's slots were written before its
                    // batch began only via the worker's own slot, which
                    // the write-map membership above already legalized —
                    // remaining same-level reads are the gate-centric
                    // sweep's own-slot reads, finalized at batch start.
                    sl < level
                } else {
                    // Forward: strictly lower levels only (same-level
                    // unowned reads race the batch's writes).
                    sl >= level
                };
                if bad {
                    hazards.push(hazard(
                        scope,
                        RaceKind::CrossLevel,
                        level,
                        *r,
                        format!("slot belongs to level {sl}, not finalized at level {level}"),
                    ));
                }
            }
        }
    }
    hazards
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The session/ACTIVE flag are process-global; tests that touch them
    /// serialize here so the pure `verify_level` tests can stay parallel.
    static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

    fn global_lock() -> MutexGuard<'static, ()> {
        GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn scope(backward: bool) -> Scope {
        // 1 source slot, 4 gates in two levels of two, 1 corner.
        Scope {
            level_start: vec![0, 2, 4],
            n_src: 1,
            nc: 1,
            n_slots: 5,
            n_pos: 4,
            backward,
        }
    }

    fn rec(worker: u32, slab: Slab, index: u32, write: bool) -> Rec {
        Rec {
            worker,
            index,
            slab,
            write,
        }
    }

    #[test]
    fn disarmed_hooks_are_inert() {
        let _g = global_lock();
        assert!(!on());
        read(Slab::Arrival, 0);
        write(Slab::Arrival, 0);
        commit_chunk();
        check_level(0);
        assert!(take_hazards().is_empty());
    }

    #[test]
    fn plan_period_is_seeded_and_bounded() {
        let a = OverlapPlan::from_seed(7, RaceKind::WriteWrite);
        let b = OverlapPlan::from_seed(7, RaceKind::WriteWrite);
        assert_eq!(a.every_accesses, b.every_accesses);
        assert!((8..64).contains(&a.every_accesses));
        assert!(
            (0..32).any(|s| {
                OverlapPlan::from_seed(s, RaceKind::ReadWrite).every_accesses != a.every_accesses
            }),
            "period must actually depend on the seed"
        );
    }

    #[test]
    fn disjoint_level_batch_is_clean() {
        let sc = scope(false);
        // Level 0: workers 0 and 1 each write their own slot (1+pos) and
        // read the source slot + their own old values.
        let log = vec![
            rec(0, Slab::Arrival, 0, false),
            rec(0, Slab::Arrival, 1, true),
            rec(0, Slab::Arrival, 1, false),
            rec(0, Slab::Pred, 1, true),
            rec(0, Slab::GateDelay, 0, true),
            rec(1, Slab::Arrival, 0, false),
            rec(1, Slab::Arrival, 2, true),
            rec(1, Slab::Slope, 2, true),
            rec(1, Slab::GateDelay, 1, true),
        ];
        assert!(verify_level(&sc, 0, &log).is_empty());
    }

    #[test]
    fn write_write_overlap_is_flagged() {
        let sc = scope(false);
        let log = vec![
            rec(0, Slab::Arrival, 1, true),
            rec(1, Slab::Arrival, 1, true),
        ];
        let h = verify_level(&sc, 0, &log);
        assert_eq!(h.len(), 1);
        assert!(matches!(
            &h[0],
            StaError::RaceHazard {
                kind: RaceKind::WriteWrite,
                slot: 1,
                level: 0,
                ..
            }
        ));
    }

    #[test]
    fn read_of_peer_write_is_flagged_but_own_read_is_not() {
        let sc = scope(false);
        let log = vec![
            rec(0, Slab::Slope, 1, true),
            rec(0, Slab::Slope, 1, false),
            rec(1, Slab::Slope, 1, false),
        ];
        let h = verify_level(&sc, 0, &log);
        assert_eq!(h.len(), 1);
        assert!(matches!(
            &h[0],
            StaError::RaceHazard {
                kind: RaceKind::ReadWrite,
                worker: 1,
                ..
            }
        ));
    }

    #[test]
    fn forward_cross_level_and_oob_reads_are_flagged() {
        let sc = scope(false);
        // At level 0: reading slot 3 (level 1) is illegal; reading the
        // source slot 0 is fine; index 99 decodes nowhere.
        let log = vec![
            rec(0, Slab::Arrival, 0, false),
            rec(0, Slab::Arrival, 3, false),
            rec(0, Slab::Arrival, 99, false),
        ];
        let h = verify_level(&sc, 0, &log);
        assert_eq!(h.len(), 2);
        assert!(h.iter().all(|e| matches!(
            e,
            StaError::RaceHazard {
                kind: RaceKind::CrossLevel,
                ..
            }
        )));
    }

    #[test]
    fn backward_levels_invert_and_sources_are_illegal() {
        let sc = scope(true);
        // At level 1: reading slot 3 (level 1, own) and slot 4 (level 1)
        // is legal backward; at level 1 reading slot 1 (level 0) or the
        // source slot 0 is not.
        let log = vec![
            rec(0, Slab::Required, 3, false),
            rec(0, Slab::Required, 4, false),
            rec(0, Slab::Required, 1, false),
            rec(0, Slab::Required, 0, false),
        ];
        let h = verify_level(&sc, 1, &log);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn corner_stride_decodes_before_level_lookup() {
        let sc = Scope {
            nc: 3,
            n_slots: 5,
            ..scope(false)
        };
        // Widened index 3·3+2 = slot 3 corner 2 → level 1: illegal at
        // level 0, legal at level 1 is a write target not a read… check
        // the read at its own level 1 passes.
        let bad = vec![rec(0, Slab::Arrival, 11, false)];
        assert_eq!(verify_level(&sc, 0, &bad).len(), 1);
        let ok = vec![
            rec(0, Slab::Arrival, 11, false),
            rec(0, Slab::Arrival, 11, true),
        ];
        assert!(verify_level(&sc, 1, &ok).is_empty());
    }

    #[test]
    fn scope_lifecycle_counts_levels() {
        let _l = global_lock();
        let _g = WorkerGuard::enter(0);
        assert!(begin_scope(scope(false)));
        // A second scope must be refused while the first is open.
        assert!(!begin_scope(scope(true)));
        write(Slab::Arrival, 1);
        read(Slab::Arrival, 0);
        check_level(0);
        let (levels, hazards) = end_scope();
        assert_eq!(levels, 1);
        assert_eq!(hazards, 0);
        assert!(!on());
    }
}
