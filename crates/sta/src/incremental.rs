//! Incremental static timing analysis: dirty-cone re-propagation.
//!
//! The optimization protocol is an iterative loop — classify, resize,
//! re-time, repeat — and a single gate resize only perturbs its fanin
//! nets' loads and its downstream fanout cone. A [`TimingGraph`] is
//! built once per circuit (caching the topological order, per-gate topo
//! rank and per-net loads) and then kept consistent through
//! [`TimingGraph::resize_gate`] / [`TimingGraph::set_options`] mutators
//! that re-evaluate only the affected cone, in rank order, stopping as
//! soon as re-propagated arrivals and slopes converge onto their cached
//! values.
//!
//! # Equivalence contract
//!
//! After any sequence of mutations the queryable state is **bit-identical**
//! to a from-scratch [`analyze_with`](crate::analysis::analyze_with) under
//! the same sizing and options:
//!
//! * a re-evaluated gate runs exactly the per-gate step of the full pass
//!   (same arc order, same comparison, same floating-point operations);
//! * net loads are recomputed by the same summation in the same order,
//!   never by error-accumulating deltas;
//! * gates are re-evaluated in topological-rank order, so every gate sees
//!   final fanin values, and a gate whose fanin arrivals/slopes are
//!   bit-unchanged is provably unaffected and cut off (its stored state
//!   *is* what the full pass would recompute).
//!
//! The randomized equivalence suite (`tests/incremental_equivalence.rs`)
//! asserts this against `analyze()` after every step of random resize
//! sequences.
//!
//! # Backward state: required times, slack and k-paths bounds
//!
//! Slack — not just arrival — is what a constraint-driven sizing loop
//! consults on every probe. After [`TimingGraph::set_constraint`] the
//! graph additionally maintains the *backward* quantities under that
//! constraint: per-net required times (the
//! [`required_times`](crate::required_times) state) and per-gate
//! frozen-weight completion bounds (the
//! [`k_most_critical_paths`](crate::k_most_critical_paths) search
//! bounds). Both are kept consistent by the same dirty-cone machinery
//! running in *reverse* rank order — a resize dirties the fanin cone
//! (arc delays through the gate and through the drivers of its fanin
//! nets changed) while the forward propagation reports every net whose
//! slope moved and every gate whose worst delay moved, seeding the
//! backward cones on the fanout side. The same bitwise convergence rule
//! applies: a net whose recomputed required times (or a gate whose
//! recomputed completion bound) is bit-identical to the cached value
//! cuts its backward cone. [`TimingGraph::set_options`] and constraint
//! changes invalidate the backward state wholesale — required times are
//! subtract-chains from `tc`, not `tc`-offsets — so their next flush is
//! one full backward pass. `tests/backward_equivalence.rs` and
//! `tests/lazy_equivalence.rs` assert bit-identity against a fresh
//! [`crate::required_times`] after every step of random mutation
//! sequences.
//!
//! # Lazy, query-driven flushing
//!
//! The sizing loop's workload is *many mutations, occasional slack
//! reads*: a sensitivity sweep resizes, probes, reverts; the flow
//! writes back a whole path before looking at slack again. Backward
//! state is therefore **never** brought up to date by a mutation.
//! Mutations only accumulate their seeds into the backward dirty sets
//! under a **generation counter**, and the first backward query —
//! slack, required time, design-worst slack, k-paths bounds — flushes
//! the merged cone once:
//!
//! ```text
//!           mutation (seeds ∪= cone, gen += 1)
//!        ┌──────────────────────────────────────┐
//!        ▼                                      │
//!   clean ──mutation──▶ dirty(gen) ──backward query──▶ flushed(gen) = clean
//! ```
//!
//! N resizes followed by one slack read pay **one** merged backward
//! propagation instead of N eager ones; the seeds deduplicate in the
//! rank bitsets, and the bitwise convergence cut still confines the
//! flush to the union cone.
//!
//! The **forward** state is lazy under the same generation counter.
//! Mutations append id-keyed forward seed logs — resized gates, gates a
//! structural edit touched or created, pending load/slope rescans — and
//! the first *forward* query (`critical_delay_ps`, `arrival_ps`,
//! `slope_ps`, `net_load_ff`, `gate_delay_worst_ps`, `critical_path`,
//! `path_to`, and every [`TimingView`] read) materializes them into the
//! rank bitset and drains one merged forward cone, with the same
//! budgeted cut-over to a straight full topo sweep when the cone
//! saturates. Backward queries are **two-phase**: they flush forward
//! first (required times and completion bounds re-derive from final
//! slopes, loads and worst delays), then drain the backward seeds the
//! forward flush just deposited. The eager/lazy distinction is
//! invisible to every consumer — `tests/lazy_equivalence.rs` and
//! `tests/forward_lazy_equivalence.rs` prove any interleaving of
//! mutations and queries bit-identical to the eager semantics, and
//! [`UpdateStats::forward_flushes`] / [`UpdateStats::backward_flushes`]
//! prove mutations alone never flush either direction.
//!
//! # The worst-slack tournament tree
//!
//! `worst_slack_overall_ps` used to fold over all nets per query —
//! O(nets) even when nothing moved, which is exactly what broke even on
//! the small-circuit probes. The backward flush already knows every net
//! whose required time or arrival moved, so the graph maintains a
//! [`WorstSlackIndex`]: per-net worst finite slacks at the leaves of a
//! tournament tree of partial minima. Each moved slack is an O(log
//! nets) leaf update folded in at flush time; the design-worst slack
//! query is then O(1) at the root, bit-identical to the full fold.
//!
//! # Rank-major slabs and the level-synchronized parallel flush
//!
//! At 100k–1M gates the budgeted full sweeps are memory-bound, so the
//! floating-point state lives in **rank-major struct-of-arrays slabs**
//! instead of id-keyed records. The cached topo order is *level-major*:
//! gates are counting-sorted by logic level (stable by topo order
//! within a level), `rank[g]` is the gate's position in that order and
//! `level_start[l] .. level_start[l+1]` delimits level `l`. A
//! level-major order is still a topological order, so every ascending /
//! descending bitset cursor works unchanged. Net state is indexed by
//! **slot**: the driverless nets (primary inputs and any undriven nets)
//! occupy slots `0..n_src` in net-id order, and the net driven by the
//! gate at position `p` occupies slot `n_src + p` — a full sweep
//! therefore *streams* the arrival/slope/pred/load/required slabs in
//! memory order instead of pointer-chasing the netlist.
//!
//! Same-level gates are mutually independent and write level-contiguous
//! slots, so each dirty level is a natural parallel batch: above
//! [`TimingGraph::parallel_threshold`] the flush evaluates levels
//! across an in-tree scoped-thread pool with per-level barriers (see
//! [`crate::parallel`]), falling back to the sequential single-cursor
//! drain below it so small-circuit latency is untouched. Both paths run
//! the *same* per-gate kernel, and per-gate results are independent of
//! evaluation order within a level — parallel state is bit-identical to
//! sequential by construction (`tests/parallel_flush_equivalence.rs`
//! proves it differentially anyway).

use std::borrow::Cow;
use std::cell::{Cell, Ref, RefCell};

use pops_delay::model::{gate_delay_with_output_edge_vt, Edge};
use pops_delay::{CornerSet, Library, VtTiming};
use pops_netlist::surgery::{AppliedEdit, EditPlan};
use pops_netlist::{CellKind, Circuit, GateId, NetId, NetlistError, VtClass};

use crate::analysis::{
    compatible_input_edges, eidx, AnalyzeOptions, EdgeDir, NetlistPath, TimingView, EDGES,
};
use crate::error::StaError;
use crate::parallel::{
    gather_range, range_any, run_parallel, run_parallel_bwd, BwdView, EvalCtx, FwdView, PredPair,
    F_ARRIVAL, F_DELAY, F_OUT_CHANGED, F_SLOPE,
};
use crate::sizing::Sizing;
use crate::slack::{min2, SlackReport, SlackView, WorstSlackIndex};

/// Default gate count below which flushes stay sequential: at small
/// sizes the per-level barrier crossings cost more than the arc work
/// they spread out ([`TimingGraph::set_parallel_threshold`] overrides).
const PAR_MIN_GATES: usize = 10_000;

/// Levels (or dirty-level batches) smaller than this are evaluated
/// inline by the coordinator — two barrier crossings to spread a
/// handful of gates over the pool is a loss.
const PAR_LEVEL_MIN: usize = 128;

/// Marker returned by the flush internals when a worker-pool panic was
/// caught and the pool drained: the slabs the panicked pass touched are
/// suspect, so the caller discards them and rebuilds with a sequential
/// full pass (the recovery state machine in the module docs). Never
/// escapes the crate — queries always return the bit-exact answer.
struct RecoveredPanic;

/// Cumulative work counters, for benchmarks and cone-size assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Gate re-evaluations performed since construction (the full
    /// initial pass is not counted).
    pub gates_reevaluated: usize,
    /// Re-evaluations whose output was bit-unchanged, cutting the cone.
    pub converged_early: usize,
    /// Mutator calls (resize / option changes) processed.
    pub updates: usize,
    /// Per-net required-time re-evaluations (backward cone walks; the
    /// constraint-setting full pass is counted too).
    pub required_reevaluated: usize,
    /// Required-time re-evaluations that were bit-unchanged, cutting
    /// the backward cone.
    pub required_converged_early: usize,
    /// K-paths completion-bound re-evaluations.
    pub completion_reevaluated: usize,
    /// Structural edits applied through [`TimingGraph::apply_edits`].
    pub structural_edits: usize,
    /// Lazy forward flushes actually performed — one per *query* that
    /// found arrivals behind the mutation generation with forward work
    /// pending, never one per mutation (see the module docs' state
    /// machine). A generation bump with no forward seeds (e.g. a
    /// constraint change) is settled without counting a flush.
    pub forward_flushes: usize,
    /// Lazy backward flushes actually performed — one per *query* that
    /// found the backward state behind the mutation generation, never
    /// one per mutation (see the module docs' state machine).
    pub backward_flushes: usize,
    /// Worst-slack tournament-tree leaf refreshes folded in by flushes
    /// (each O(log nets); a wholesale refold counts one per net).
    pub slack_index_updates: usize,
    /// [`TimingGraph::net_load_ff`] queries answered by the loads-only
    /// settle while forward seeds were pending — no arc evaluation, no
    /// flush (loads derive from fanout pins, sizing and options, all of
    /// which mutators keep current eagerly).
    pub load_only_settles: usize,
    /// [`TimingGraph::gate_delay_worst_ps`] queries answered by the
    /// O(fanins) flushless settle while only resize seeds were pending
    /// — the whole merged forward union stays unflushed (the K=1 probe
    /// fast path).
    pub gate_delay_settles: usize,
    /// Worker-pool panics caught and recovered from: the flush
    /// discarded the partially written slabs, rebuilt the state with a
    /// sequential full sweep, and the query answered bit-exactly (see
    /// the module docs' recovery state machine).
    pub panic_recoveries: usize,
    /// Flushes that abandoned the parallel path for a sequential full
    /// rebuild — every panic recovery counts one, as does a poisoned
    /// slab detected while fault injection is armed.
    pub sequential_fallbacks: usize,
    /// Level batches verified by the shadow-access race auditor
    /// ([`crate::audit`]) across this graph's parallel flushes. Zero
    /// unless the auditor is armed (env `STA_AUDIT=1` or
    /// [`TimingGraph::set_audit`]).
    pub audit_levels_checked: usize,
    /// Race hazards the auditor attributed to this graph's flushes (see
    /// [`crate::audit::take_hazards`] for the typed reports).
    pub audit_hazards: usize,
}

/// Per-(gate, corner) model constants, flattened out of the corner
/// libraries at build time.
///
/// `Library::cell()` is a by-kind lookup and the symmetry factors are
/// re-derived on every call; one cone re-evaluation makes thousands of
/// arc evaluations, so the graph caches the resolved constants per gate
/// and corner. Every cached value is produced by the *same*
/// floating-point expression the model uses, so arc delays stay
/// bit-identical to [`gate_delay_with_output_edge_vt`] — and, for SVT
/// gates on the typical corner, to the plain single-corner model (the
/// `× 1.0` Vt factors are bit-neutral).
#[derive(Debug, Clone, Copy)]
pub(crate) struct GateParams {
    /// `C_par = cpar_factor · C_IN`.
    cpar_factor: f64,
    /// P/N configuration ratio `k` (Miller coupling split).
    k: f64,
    /// `(τ · S(out_edge)) · drive_factor`, indexed by [`eidx`] of the
    /// output edge (the Vt variant's drive derate folds in here).
    tau_s: [f64; 2],
    /// Reduced thresholds `v_T · vt_scale` of this gate's corner and Vt
    /// variant, indexed by [`eidx`] of the *input* edge.
    pub(crate) vt: [f64; 2],
}

/// Fanin-independent arc terms of one gate under its current drive and
/// load, hoisted out of the per-arc loops of the forward gate kernel
/// ([`crate::parallel`]) *and* the backward `eval_required`.
pub(crate) struct ArcTerms {
    /// τ_out per *output* edge: `(τ·S) · C_L / C_IN`.
    pub(crate) tau_out_by_edge: [f64; 2],
    /// Miller amplification per *input* edge (C_M couples through the
    /// P device on a rising input, the N device on a falling one).
    pub(crate) miller: [f64; 2],
}

impl GateParams {
    /// Compute the hoisted arc terms. This is the single home of the
    /// delay-model arithmetic shared by the forward and backward
    /// evaluators: every expression reproduces the exact operation
    /// order of `gate_delay_with_output_edge`, so arc delays (and
    /// therefore the whole timing state, both directions) stay
    /// bit-identical to the full passes.
    pub(crate) fn arc_terms(&self, cin: f64, load: f64) -> ArcTerms {
        let cl_total = self.cpar_factor * cin + load;
        let tau_out_by_edge = [
            self.tau_s[0] * cl_total / cin,
            self.tau_s[1] * cl_total / cin,
        ];
        let cm = [
            0.5 * cin * self.k / (1.0 + self.k),
            0.5 * cin / (1.0 + self.k),
        ];
        let miller = [
            1.0 + 2.0 * cm[0] / (cm[0] + cl_total),
            1.0 + 2.0 * cm[1] / (cm[1] + cl_total),
        ];
        ArcTerms {
            tau_out_by_edge,
            miller,
        }
    }
}

/// Incrementally maintained timing state of one circuit.
///
/// Holds the circuit and library by reference; all sizing state lives
/// inside the graph (query it with [`TimingGraph::sizing`]).
///
/// # Example
///
/// ```
/// use pops_netlist::builders::ripple_carry_adder;
/// use pops_delay::Library;
/// use pops_sta::analysis::analyze;
/// use pops_sta::incremental::TimingGraph;
/// use pops_sta::Sizing;
///
/// # fn main() -> Result<(), pops_netlist::NetlistError> {
/// let c = ripple_carry_adder(8);
/// let lib = Library::cmos025();
/// let sizing = Sizing::minimum(&c, &lib);
/// let mut graph = TimingGraph::new(&c, &lib, &sizing)?;
/// let before = graph.critical_delay_ps();
///
/// // Resize one gate: only its cone is re-timed.
/// let g = graph.critical_path().gates[0];
/// graph.resize_gate(g, 4.0 * lib.min_drive_ff());
/// let after = graph.critical_delay_ps();
/// assert_ne!(before, after);
///
/// // The state matches a fresh full analysis bit-for-bit.
/// let fresh = analyze(&c, &lib, graph.sizing())?;
/// assert_eq!(fresh.critical_delay_ps(), after);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TimingGraph<'c> {
    /// The circuit being timed. Starts borrowed; the first
    /// [`TimingGraph::apply_edits`] clones it into an owned netlist the
    /// graph can mutate (structural write-back), after which
    /// [`TimingGraph::circuit`] is the authoritative netlist.
    circuit: Cow<'c, Circuit>,
    lib: &'c Library,
    options: AnalyzeOptions,
    sizing: Sizing,

    /// Gates in the cached topological order. The order is
    /// **level-major**: counting-sorted by logic level, stable by the
    /// circuit's base topo order within a level — still a topological
    /// order, but with every level contiguous (the parallel batches).
    topo: Vec<GateId>,
    /// `rank[gate] = position in `topo`` — the propagation priority.
    rank: Vec<u32>,
    /// Positions `level_start[l] .. level_start[l+1]` form logic level
    /// `l` (0-based here; the netlist's levels are 1-based).
    level_start: Vec<u32>,
    /// Slab slot of each net's timing state: driverless nets take slots
    /// `0..n_src` in net-id order, the net driven by the gate at
    /// position `p` takes slot `n_src + p`.
    slot_of: Vec<u32>,
    /// Number of driverless nets (= the first gate-driven slot).
    n_src: usize,
    /// Driver gate of each net (`None` for primary inputs).
    net_driver: Vec<Option<GateId>>,

    /// Flattened model constants per (gate, corner), corner-innermost:
    /// gate `gi` at corner `c` is `gate_params[gi * n_corners + c]`
    /// (see [`GateParams`]).
    gate_params: Vec<GateParams>,
    /// One characterized library per process corner. Corner 0 is the
    /// *primary* corner — the one every plain (non-`_corner`) query
    /// reads; a single-corner graph holds exactly `[lib.clone()]`, so
    /// every stride-1 slab index is an identity and the state is
    /// bit-identical to the pre-corner engine.
    corner_libs: Vec<Library>,
    /// Vt variant per gate (id-indexed, like [`Sizing`]); gates created
    /// by surgery enter as the default [`VtClass::Svt`].
    vt_class: Vec<VtClass>,

    /// Cell kind per gate (flat copy: avoids chasing `circuit.gate()`
    /// in the hot loop).
    cell: Vec<CellKind>,
    /// Output net per gate.
    out_net: Vec<NetId>,
    /// Fanin nets of all gates, flattened; gate `g`'s inputs are
    /// `fanin[fanin_off[g] .. fanin_off[g+1]]`.
    fanin: Vec<NetId>,
    fanin_off: Vec<u32>,
    /// Slab slot of each flattened fanin net (parallel to `fanin`), so
    /// the per-gate kernel never round-trips through net ids.
    fanin_slots: Vec<u32>,
    /// Fanout gates of all nets, flattened; net `n`'s loads are
    /// `fanout[fanout_off[n] .. fanout_off[n+1]]` (one entry per pin).
    fanout: Vec<GateId>,
    fanout_off: Vec<u32>,

    /// Primary-output flag per net (flat copy for the backward hot loop).
    is_po: Vec<bool>,
    /// Primary-input nets (flat copy: the hot loops must not chase the
    /// circuit while the graph is being mutated).
    pis: Vec<NetId>,
    /// Primary-output nets, in declaration order (critical scan order).
    pos: Vec<NetId>,
    /// Mutation generation: bumped by every state-changing mutator
    /// (resize batches, option/constraint changes, structural edits).
    /// The forward and backward states each record the generation they
    /// last flushed at; the pairs implement the lazy clean →
    /// dirty(gen) → flushed cycle in both directions.
    gen: u64,
    /// Worker threads the parallel flush may use (coordinator
    /// included); 1 keeps every flush sequential. `None` (the default)
    /// resolves to the host's available parallelism, capped at 8, *at
    /// flush time* — not construction time — so a graph built on one
    /// host and driven on another (or inside a shrunken cgroup) never
    /// runs a pool wider than the cores actually present.
    threads: Option<usize>,
    /// Gate count below which flushes stay sequential regardless of
    /// `threads`.
    par_min_gates: usize,
    /// Forward sweep cut-over budget as a rational fraction
    /// `(num, den)` of the gate count: the flush abandons the drain for
    /// a full sweep once `dirty_count >= n·num/den + 1`.
    fwd_budget: (u32, u32),
    /// Backward (required/completion) sweep cut-over budget, same
    /// encoding.
    bwd_budget: (u32, u32),
    /// Per-graph race-audit flag ([`TimingGraph::set_audit`]): audit
    /// this graph's parallel flushes even when the process-wide
    /// [`crate::audit::arm`] switch is off.
    audit: bool,
    /// Maintained forward state (arrivals, slopes, loads, worst gate
    /// delays) plus its lazy seed logs. Interior-mutable so `&self`
    /// queries can perform the lazy flush — mutators go through
    /// `get_mut` (no runtime borrow), queries borrow-check at runtime
    /// but never nest a mutable borrow under a shared one.
    fwd: RefCell<ForwardState>,
    /// Maintained backward state; `None` until
    /// [`TimingGraph::set_constraint`]. Interior-mutable as `fwd`.
    backward: RefCell<Option<BackwardState>>,
    stats: Cell<UpdateStats>,
}

/// Incrementally maintained forward timing state of a [`TimingGraph`]:
/// the floating-point arrays plus the lazy-flush bookkeeping. Lives in
/// a [`RefCell`] so forward queries on `&self` can drain pending seeds.
#[derive(Debug, Clone)]
struct ForwardState {
    /// Arrival time per edge (ps), **slot- and corner-indexed**: net
    /// slot `s` at corner `c` is entry `s * n_corners + c` (see
    /// [`TimingGraph::slot_of`]); `-inf` where unreachable. Slabs
    /// instead of per-net records: a full sweep writes slots in memory
    /// order (gate `p` owns slot `n_src + p`), so the budgeted cut-over
    /// streams memory-bandwidth-bound, and same-level gates write
    /// disjoint contiguous slots — the parallel batches. The corner
    /// lanes ride in the same stride-`n_corners` layout, propagated
    /// together in one pass.
    arrival: Vec<[f64; 2]>,
    /// Transition time per edge (ps), slot- and corner-indexed.
    slope: Vec<[f64; 2]>,
    /// Predecessor `(net, input edge)` of the worst arrival, slot- and
    /// corner-indexed.
    pred: Vec<PredPair>,
    /// Capacitive load (fF) under the current sizing, slot-indexed —
    /// corner-*invariant* (corners derate only electrical parameters,
    /// never geometry), so this slab keeps stride 1.
    load: Vec<f64>,
    /// Worst-case delay of each gate under the current slopes,
    /// **position- and corner-indexed** (`pos * n_corners + c`).
    gate_delay_worst: Vec<f64>,
    /// Worst primary output `(net, edge)` per corner (corner-indexed).
    critical_net: Vec<Option<(NetId, Edge)>>,

    /// Dirty set as a bitset over topo *ranks* (bit `r` of word `r/64`).
    /// Populated only *inside* a flush (mutators append to the id-keyed
    /// seed logs instead, so graph surgery can re-rank freely without
    /// orphaning pending marks) and walked with a forward cursor +
    /// `trailing_zeros` — marks always target strictly higher ranks, so
    /// no priority queue is needed to process gates in rank order.
    dirty_bits: Vec<u64>,
    /// Dirty gates not yet re-evaluated.
    dirty_count: usize,
    /// Lowest rank marked since the last drain.
    min_dirty_rank: u32,

    /// Generation ([`TimingGraph::gen`]) the forward state last flushed
    /// at; a mismatch means seeds are pending and the next forward
    /// query drains them (and deposits the backward seeds the drained
    /// cone produces — backward flushes therefore run *after* this).
    flushed_gen: u64,

    /// Seed logs: the mutation-side half of the forward lazy contract.
    /// Mutators only *append* ids here — no rank lookups, no bitset
    /// read-modify-writes — and the flush materializes them into the
    /// rank-keyed dirty set (or discards them when it saturates to the
    /// full sweep). Entries may repeat; ids are stable across
    /// append-only surgery, so no translation is needed when ranks are
    /// reassigned.
    ///
    /// Gates whose drive changed: their fanin nets' loads recompute,
    /// those nets' drivers re-time, and the gate itself re-evaluates.
    resized_log: Vec<GateId>,
    /// Gates a structural edit touched or created: re-evaluate outright
    /// (cell, wiring or environment may have changed).
    gate_log: Vec<GateId>,
    /// A structural edit changed connectivity: recompare every net's
    /// load under the edited structure at flush time (the cached values
    /// are the pre-edit loads) and re-time the drivers of the ones that
    /// moved, seeding their backward cones alongside.
    scan_loads: bool,
    /// The primary-output latch load changed ([`AnalyzeOptions`]):
    /// recompute every primary-output net's load and re-time its driver.
    reload_pos: bool,
    /// The primary-input transition changed: rewrite every primary
    /// input's slopes and re-evaluate its fanout gates.
    reslope_pis: bool,
}

/// The circuit-derived arrays of a [`TimingGraph`]: topology, adjacency
/// and flattened model constants — everything except the floating-point
/// timing state. Rebuilt wholesale by [`TimingGraph::apply_edits`]
/// (graph surgery changes ranks and adjacency arbitrarily, and this
/// rebuild is pure pointer/arena work — the expensive part, arc
/// re-evaluation, stays confined to the seeded dirty cones).
struct Structure {
    topo: Vec<GateId>,
    rank: Vec<u32>,
    level_start: Vec<u32>,
    slot_of: Vec<u32>,
    n_src: usize,
    net_driver: Vec<Option<GateId>>,
    cell: Vec<CellKind>,
    out_net: Vec<NetId>,
    fanin: Vec<NetId>,
    fanin_off: Vec<u32>,
    fanin_slots: Vec<u32>,
    fanout: Vec<GateId>,
    fanout_off: Vec<u32>,
    is_po: Vec<bool>,
    pis: Vec<NetId>,
    pos: Vec<NetId>,
}

fn build_structure(circuit: &Circuit) -> Result<Structure, NetlistError> {
    // Level-major topo order: counting-sort the base topo order by
    // logic level (stable within a level). Every fanin of a gate sits
    // at a strictly lower level, so this is still a topological order —
    // the ascending/descending cursor drains work unchanged — and each
    // level is a contiguous run of mutually independent gates.
    let base_topo = circuit.topo_order()?;
    let levels = circuit.logic_levels()?;
    let n_gates = circuit.gate_count();
    let n_levels = levels.iter().copied().max().unwrap_or(0);
    let mut level_start = vec![0u32; n_levels + 1];
    for &g in &base_topo {
        level_start[levels[g.index()]] += 1;
    }
    for l in 1..level_start.len() {
        level_start[l] += level_start[l - 1];
    }
    debug_assert_eq!(level_start[n_levels] as usize, n_gates);
    // `cursor[l]` = next free position of 1-based level `l + 1`;
    // `level_start` is already the prefix-summed offset table.
    let mut cursor: Vec<u32> = level_start[..n_levels].to_vec();
    let mut topo = base_topo.clone();
    let mut rank = vec![0u32; n_gates];
    for &g in &base_topo {
        let l = levels[g.index()] - 1;
        let r = cursor[l];
        cursor[l] += 1;
        topo[r as usize] = g;
        rank[g.index()] = r;
    }

    let n_nets = circuit.net_count();
    let net_driver: Vec<Option<GateId>> =
        circuit.net_ids().map(|n| circuit.driver_gate(n)).collect();

    // Slab slots: driverless nets first (net-id order), then one slot
    // per gate at `n_src + rank[driver]` — a bijection onto
    // `0..n_nets`, since every gate drives exactly one net.
    let mut slot_of = vec![0u32; n_nets];
    let mut n_src = 0usize;
    for (i, d) in net_driver.iter().enumerate() {
        if d.is_none() {
            slot_of[i] = n_src as u32;
            n_src += 1;
        }
    }
    for (i, d) in net_driver.iter().enumerate() {
        if let Some(g) = d {
            slot_of[i] = (n_src + rank[g.index()] as usize) as u32;
        }
    }
    debug_assert_eq!(n_src + n_gates, n_nets, "slots must cover every net");

    // Flatten the netlist adjacency into contiguous arrays: the cone
    // walk is memory-bound, and per-gate/per-net `Vec`s would cost a
    // pointer chase per visit.
    let cell: Vec<CellKind> = circuit.gate_ids().map(|g| circuit.gate(g).kind()).collect();
    let out_net: Vec<NetId> = circuit
        .gate_ids()
        .map(|g| circuit.gate(g).output())
        .collect();
    let mut fanin = Vec::with_capacity(circuit.pin_count());
    let mut fanin_off = Vec::with_capacity(circuit.gate_count() + 1);
    fanin_off.push(0u32);
    for g in circuit.gate_ids() {
        fanin.extend_from_slice(circuit.gate(g).inputs());
        fanin_off.push(fanin.len() as u32);
    }
    let mut fanout = Vec::with_capacity(circuit.pin_count());
    let mut fanout_off = Vec::with_capacity(n_nets + 1);
    fanout_off.push(0u32);
    for n in circuit.net_ids() {
        fanout.extend(circuit.fanout_gates(n));
        fanout_off.push(fanout.len() as u32);
    }
    let fanin_slots: Vec<u32> = fanin.iter().map(|n| slot_of[n.index()]).collect();

    Ok(Structure {
        topo,
        rank,
        level_start,
        slot_of,
        n_src,
        net_driver,
        cell,
        out_net,
        fanin,
        fanin_off,
        fanin_slots,
        fanout,
        fanout_off,
        is_po: circuit
            .net_ids()
            .map(|n| circuit.net(n).is_output())
            .collect(),
        pis: circuit.primary_inputs().to_vec(),
        pos: circuit.primary_outputs().to_vec(),
    })
}

/// Resolve the flattened model constants of one `(cell, Vt variant)`
/// pair under one corner's library. This is the single home of the
/// constant-folding arithmetic: `tau_s` caches `(τ·S) · drive_factor`
/// in the exact association order of
/// [`gate_delay_with_output_edge_vt`]'s
/// `process.tau_ps * s * drive_factor * C_L / C_IN`, and `vt` caches
/// `v_T · vt_scale` — so for an SVT gate (both factors `1.0`,
/// bit-neutral) the constants reproduce the plain single-corner model
/// bit for bit.
fn gate_params_for(lib: &Library, kind: CellKind, class: VtClass) -> GateParams {
    let process = lib.process();
    let cell = lib.cell(kind);
    let vtt = VtTiming::of(class);
    let mut tau_s = [0.0f64; 2];
    for e in EDGES {
        tau_s[eidx(e)] = process.tau_ps * cell.s_factor(process, e) * vtt.drive_factor;
    }
    GateParams {
        cpar_factor: cell.cpar_factor,
        k: cell.k,
        tau_s,
        vt: [
            process.vtn_reduced() * vtt.vt_scale,
            process.vtp_reduced() * vtt.vt_scale,
        ],
    }
}

/// Flatten the model constants of every gate under every corner,
/// corner-innermost (`gi * n_corners + c`). Called at construction and
/// again after surgery (the created gates need constants too).
fn build_gate_params(
    circuit: &Circuit,
    corner_libs: &[Library],
    vt_class: &[VtClass],
) -> Vec<GateParams> {
    let mut out = Vec::with_capacity(circuit.gate_count() * corner_libs.len());
    for g in circuit.gate_ids() {
        let kind = circuit.gate(g).kind();
        for lib in corner_libs {
            out.push(gate_params_for(lib, kind, vt_class[g.index()]));
        }
    }
    out
}

/// Permute a slot-indexed slab into a new slot layout after surgery:
/// net ids are stable across append-only edits, so each surviving net
/// carries its value from its old slot to its new one; created ids
/// (slots no old net maps to) get `default`. `stride` is the per-slot
/// entry count (the corner count for the per-corner slabs, 1 for the
/// corner-invariant ones); a slot's corner lanes move together.
fn remap_slots<T: Copy>(
    old: &[T],
    old_slot_of: &[u32],
    new_slot_of: &[u32],
    default: T,
    stride: usize,
) -> Vec<T> {
    let mut out = vec![default; new_slot_of.len() * stride];
    for net in 0..old_slot_of.len() {
        let o = old_slot_of[net] as usize * stride;
        let n = new_slot_of[net] as usize * stride;
        out[n..n + stride].copy_from_slice(&old[o..o + stride]);
    }
    out
}

/// Permute a position-indexed (rank-major) slab into a new rank layout
/// after surgery, as [`remap_slots`] but keyed by gate id.
fn remap_ranks<T: Copy>(
    old: &[T],
    old_rank: &[u32],
    new_rank: &[u32],
    default: T,
    stride: usize,
) -> Vec<T> {
    let mut out = vec![default; new_rank.len() * stride];
    for g in 0..old_rank.len() {
        let o = old_rank[g] as usize * stride;
        let n = new_rank[g] as usize * stride;
        out[n..n + stride].copy_from_slice(&old[o..o + stride]);
    }
    out
}

/// Incrementally maintained backward timing state (see the module
/// docs): per-net required times under a fixed constraint plus the
/// per-gate frozen-weight k-paths completion bounds, both kept
/// consistent by reverse-rank dirty-cone propagation.
#[derive(Debug, Clone)]
struct BackwardState {
    /// The cycle constraint applied at every primary output (ps).
    tc_ps: f64,
    /// `required[net][edge]` (ps); `+inf` where unconstrained.
    required: Vec<[f64; 2]>,
    /// Frozen-weight completion bound per gate (the k-paths search
    /// bound; `-inf` off every PI→PO path).
    completion: Vec<f64>,

    /// Required-dirty set over the topo ranks of net *drivers* (each
    /// gate drives exactly one net, so driven nets map 1:1 onto ranks).
    /// Walked with a descending cursor + `leading_zeros`: backward
    /// marks always target strictly lower ranks.
    req_bits: Vec<u64>,
    req_count: usize,
    /// Highest rank marked since the last backward propagation.
    req_max_rank: u32,
    /// Required-dirty primary-input nets: sinks of the backward walk
    /// (no driver to propagate through), evaluated after the rank loop
    /// drains. The bitset dedupes, the vec preserves O(dirty) drain.
    pi_bits: Vec<u64>,
    pi_dirty: Vec<NetId>,

    /// Completion-dirty set over topo ranks, same walk as `req_bits`.
    comp_bits: Vec<u64>,
    comp_count: usize,
    comp_max_rank: u32,

    /// Generation ([`TimingGraph::gen`]) the required-time state (and
    /// the worst-slack index) last flushed at; a mismatch means seeds
    /// are pending and the next slack/required query drains them.
    req_flushed_gen: u64,
    /// Generation the k-paths completion bounds last flushed at. Kept
    /// separately — completion bounds depend only on forward state
    /// (frozen gate delays), so a slack query never pays for them and
    /// a k-paths query never pays for required times.
    comp_flushed_gen: u64,

    /// Seed logs: the mutation-side half of the lazy contract. Hot
    /// paths (resize batches, forward cone evaluation) only *append*
    /// ids here — no rank lookups, no bitset read-modify-writes — and
    /// the flush materializes them into the rank-keyed dirty sets (or
    /// discards them wholesale when it saturates to a full sweep).
    /// Entries may repeat; ids are stable across append-only surgery,
    /// so no translation is needed when ranks are reassigned.
    ///
    /// Gates whose drive changed: their fanin nets' required times and
    /// their fanin drivers' fanin required times re-derive.
    resized_log: Vec<GateId>,
    /// Nets whose slope moved: their required times re-derive.
    req_net_log: Vec<NetId>,
    /// Gates whose worst delay moved: their completion bounds re-derive.
    comp_gate_log: Vec<GateId>,
    /// Nets whose arrival moved: their worst-slack leaves re-fold.
    slack_net_log: Vec<NetId>,

    /// Tournament tree over per-net worst finite slacks (root = design
    /// worst); see [`WorstSlackIndex`].
    worst: WorstSlackIndex,
    /// Every slack may have moved (constraint/option invalidation,
    /// graph surgery): rebuild the index wholesale at the next flush
    /// instead of per-leaf updates.
    refold_all: bool,
}

impl<'c> TimingGraph<'c> {
    /// Build the graph and run the initial full timing pass under
    /// default [`AnalyzeOptions`].
    ///
    /// # Errors
    ///
    /// Propagates netlist structural errors (cycles, undriven nets) from
    /// [`Circuit::topo_order`].
    pub fn new(
        circuit: &'c Circuit,
        lib: &'c Library,
        sizing: &Sizing,
    ) -> Result<Self, NetlistError> {
        Self::with_options(circuit, lib, sizing, &AnalyzeOptions::default())
    }

    /// [`TimingGraph::new`] with explicit options.
    ///
    /// # Errors
    ///
    /// As [`TimingGraph::new`].
    pub fn with_options(
        circuit: &'c Circuit,
        lib: &'c Library,
        sizing: &Sizing,
        options: &AnalyzeOptions,
    ) -> Result<Self, NetlistError> {
        Self::build(circuit, lib, vec![lib.clone()], sizing, options)
    }

    /// Build a **multi-corner** graph: one characterized library per
    /// [`CornerSet`] corner, with every forward/backward slab widened to
    /// a fixed-stride per-corner array propagated together in one pass —
    /// same dirty-cone drain, same lazy generation-counted flush, same
    /// parallel barrier model. Corner 0 (the set's primary corner) is
    /// what every plain query reads; the `*_corner` query variants view
    /// the rest, and [`TimingGraph::worst_slack_overall_ps`] becomes the
    /// worst **over all corners**. Every per-corner lane is bit-identical
    /// to an independent single-corner graph built on that corner's
    /// library (`tests/corner_equivalence.rs` proves it differentially).
    ///
    /// `lib` remains the geometry reference (drive floors); corners
    /// derate only electrical parameters, so it agrees with every
    /// corner's geometry.
    ///
    /// # Errors
    ///
    /// As [`TimingGraph::new`].
    pub fn with_corners(
        circuit: &'c Circuit,
        lib: &'c Library,
        sizing: &Sizing,
        options: &AnalyzeOptions,
        corners: &CornerSet,
    ) -> Result<Self, NetlistError> {
        let corner_libs = corners.iter().map(|p| Library::new(p.clone())).collect();
        Self::build(circuit, lib, corner_libs, sizing, options)
    }

    fn build(
        circuit: &'c Circuit,
        lib: &'c Library,
        corner_libs: Vec<Library>,
        sizing: &Sizing,
        options: &AnalyzeOptions,
    ) -> Result<Self, NetlistError> {
        // CI's armed runs inject faults via `STA_FAULT_SEED`; a no-op
        // unless the variable is set (and parses).
        crate::faultinject::arm_from_env_once();
        // Likewise the race auditor via `STA_AUDIT=1`.
        crate::audit::arm_from_env_once();
        let s = build_structure(circuit)?;
        let n_nets = circuit.net_count();
        let n_gates = circuit.gate_count();
        let nc = corner_libs.len();
        // The backward sweep's emit keys pack `slot * nc + corner` into
        // 31 bits (bit 31 carries the edge).
        assert!(
            n_nets.saturating_mul(nc) < (1usize << 31),
            "net-slot × corner space must fit in 31 bits"
        );
        let vt_class = vec![VtClass::Svt; n_gates];
        let gate_params = build_gate_params(circuit, &corner_libs, &vt_class);

        let graph = TimingGraph {
            circuit: Cow::Borrowed(circuit),
            lib,
            options: options.clone(),
            sizing: sizing.clone(),
            topo: s.topo,
            rank: s.rank,
            level_start: s.level_start,
            slot_of: s.slot_of,
            n_src: s.n_src,
            net_driver: s.net_driver,
            gate_params,
            corner_libs,
            vt_class,
            cell: s.cell,
            out_net: s.out_net,
            fanin: s.fanin,
            fanin_off: s.fanin_off,
            fanin_slots: s.fanin_slots,
            fanout: s.fanout,
            fanout_off: s.fanout_off,
            is_po: s.is_po,
            pis: s.pis,
            pos: s.pos,
            gen: 0,
            threads: None,
            par_min_gates: PAR_MIN_GATES,
            fwd_budget: (3, 4),
            bwd_budget: (1, 3),
            audit: false,
            fwd: RefCell::new(ForwardState {
                arrival: vec![[f64::NEG_INFINITY; 2]; n_nets * nc],
                slope: vec![[0.0; 2]; n_nets * nc],
                pred: vec![[None, None]; n_nets * nc],
                load: vec![0.0; n_nets],
                gate_delay_worst: vec![0.0f64; n_gates * nc],
                critical_net: vec![None; nc],
                dirty_bits: vec![0u64; n_gates.div_ceil(64)],
                dirty_count: 0,
                min_dirty_rank: u32::MAX,
                flushed_gen: 0,
                resized_log: Vec::new(),
                gate_log: Vec::new(),
                scan_loads: false,
                reload_pos: false,
                reslope_pis: false,
            }),
            backward: RefCell::new(None),
            stats: Cell::new(UpdateStats::default()),
        };
        // Initial timing: evaluate every gate once in topological order
        // — exactly the full pass of `analyze_with`. Construction
        // precedes any constraint (no backward state to seed) and is
        // not counted in the incremental-work stats.
        {
            let mut fwd = graph.fwd.borrow_mut();
            for i in 0..n_nets {
                graph.recompute_net_load(&mut fwd, i);
            }
            for i in 0..graph.pis.len() {
                let pi = graph.pis[i];
                let slot = graph.slot_of[pi.index()] as usize;
                // Source conditions are corner-invariant (options, not
                // process): every corner lane starts identically.
                for c in 0..nc {
                    for e in EDGES {
                        fwd.arrival[slot * nc + c][eidx(e)] = 0.0;
                        fwd.slope[slot * nc + c][eidx(e)] = graph.options.input_transition_ps;
                    }
                }
            }
            // A worker panic or an injected NaN mid-construction (fault
            // injection armed) rebuilds with the infallible sequential
            // pass — same recovery as the flush-time path.
            let recovered =
                match graph.full_forward_sweep(&mut fwd, None, graph.use_parallel(n_gates)) {
                    Ok(_) => crate::faultinject::armed() && Self::forward_slabs_poisoned(&fwd),
                    Err(RecoveredPanic) => {
                        graph.stat(|s| s.panic_recoveries += 1);
                        true
                    }
                };
            if recovered {
                graph.stat(|s| s.sequential_fallbacks += 1);
                graph.recover_forward(&mut fwd, None);
            }
            graph.recompute_critical(&mut fwd);
        }
        Ok(graph)
    }

    /// The circuit this graph times. After [`TimingGraph::apply_edits`]
    /// this is the graph's own edited copy — the authoritative netlist
    /// for every id the graph hands out.
    pub fn circuit(&self) -> &Circuit {
        self.circuit.as_ref()
    }

    /// The current sizing (the graph owns its copy; mutate it through
    /// [`TimingGraph::resize_gate`]).
    pub fn sizing(&self) -> &Sizing {
        &self.sizing
    }

    /// The options the timing state currently reflects.
    pub fn options(&self) -> &AnalyzeOptions {
        &self.options
    }

    /// Cumulative incremental-work counters.
    pub fn stats(&self) -> UpdateStats {
        self.stats.get()
    }

    /// Deep-consistency audit of the engine's internal state — the
    /// post-recovery oracle of the fault-containment story and a cheap
    /// health check for long-lived service processes. Pending lazy
    /// seeds are flushed first (the invariants hold over settled
    /// state); the audit then checks, in order:
    ///
    /// * **slot/rank bijection** — driverless nets occupy slots
    ///   `0..n_src` in net-id order, the net driven by the gate at topo
    ///   position `p` occupies slot `n_src + p`, and `rank` inverts the
    ///   topo order;
    /// * **level monotonicity** — `level_start` partitions the topo
    ///   positions and every gate's fanin drivers sit in strictly lower
    ///   levels (the independence property the parallel barriers rely
    ///   on);
    /// * **dirty-bitset vs generation agreement** — bitset popcounts
    ///   bit-match the maintained counts, and state flushed to the
    ///   current mutation generation holds no pending marks, seed-log
    ///   entries or rescan flags;
    /// * **worst-slack tree agreement** — every leaf bit-matches an
    ///   independent refold of the required/arrival slabs and every
    ///   internal node (the root included) the min of its children;
    /// * **per-corner finiteness policy** — loads finite and
    ///   non-negative, slopes and worst gate delays finite, arrivals
    ///   `-inf` or finite, required times `+inf` or finite, completion
    ///   bounds `-inf` or finite; NaN nowhere.
    ///
    /// # Errors
    ///
    /// [`StaError::StateCorrupt`] naming the first violated invariant
    /// and the offending values.
    pub fn verify_state(&self) -> Result<(), StaError> {
        self.flush_forward();
        self.flush_required();
        self.flush_completion();
        let corrupt = |detail: String| Err(StaError::StateCorrupt { detail });

        let n_nets = self.slot_of.len();
        let n_gates = self.topo.len();
        let nc = self.corner_libs.len();

        // Slot/rank bijection.
        let mut slot_seen = vec![false; n_nets];
        let mut next_src = 0usize;
        for net in 0..n_nets {
            let slot = self.slot_of[net] as usize;
            if slot >= n_nets {
                return corrupt(format!(
                    "net {net}: slot {slot} out of range ({n_nets} nets)"
                ));
            }
            if slot_seen[slot] {
                return corrupt(format!("net {net}: slot {slot} assigned twice"));
            }
            slot_seen[slot] = true;
            match self.net_driver[net] {
                None => {
                    if slot != next_src {
                        return corrupt(format!(
                            "driverless net {net} at slot {slot}, expected source slot {next_src}"
                        ));
                    }
                    next_src += 1;
                }
                Some(driver) => {
                    let pos = self.rank[driver.index()] as usize;
                    if slot != self.n_src + pos {
                        return corrupt(format!(
                            "net {net} driven by topo position {pos} occupies slot {slot}, \
                             expected {}",
                            self.n_src + pos
                        ));
                    }
                }
            }
        }
        if next_src != self.n_src {
            return corrupt(format!(
                "{next_src} driverless nets but n_src = {}",
                self.n_src
            ));
        }
        for (pos, &gate) in self.topo.iter().enumerate() {
            if self.rank[gate.index()] as usize != pos {
                return corrupt(format!(
                    "rank[{}] = {} does not invert topo position {pos}",
                    gate.index(),
                    self.rank[gate.index()]
                ));
            }
        }

        // Level monotonicity.
        if self.level_start.first() != Some(&0)
            || self.level_start.last() != Some(&(n_gates as u32))
            || self.level_start.windows(2).any(|w| w[0] >= w[1])
        {
            return corrupt(format!(
                "level_start {:?} is not a strictly increasing partition of {n_gates} positions",
                self.level_start
            ));
        }
        for pos in 0..n_gates {
            let gate = self.topo[pos];
            let level = self.level_of(pos as u32);
            let (lo, hi) = (
                self.fanin_off[gate.index()] as usize,
                self.fanin_off[gate.index() + 1] as usize,
            );
            for &in_net in &self.fanin[lo..hi] {
                if let Some(driver) = self.net_driver[in_net.index()] {
                    let dpos = self.rank[driver.index()] as usize;
                    if dpos >= pos || self.level_of(dpos as u32) >= level {
                        return corrupt(format!(
                            "gate at position {pos} (level {level}) has a fanin driver at \
                             position {dpos} (level {}) — not strictly lower",
                            self.level_of(dpos as u32)
                        ));
                    }
                }
            }
        }

        let fwd = self.fwd.borrow();

        // Dirty bookkeeping vs generation agreement. The flushes above
        // settled everything to the current generation, so every mark,
        // seed log and rescan flag must now be clear.
        let pop: usize = fwd.dirty_bits.iter().map(|w| w.count_ones() as usize).sum();
        if pop != fwd.dirty_count {
            return corrupt(format!(
                "forward dirty popcount {pop} != dirty_count {}",
                fwd.dirty_count
            ));
        }
        if fwd.flushed_gen != self.gen {
            return corrupt(format!(
                "forward state at generation {} behind mutation generation {} after a flush",
                fwd.flushed_gen, self.gen
            ));
        }
        if fwd.dirty_count != 0
            || !fwd.resized_log.is_empty()
            || !fwd.gate_log.is_empty()
            || fwd.scan_loads
            || fwd.reload_pos
            || fwd.reslope_pis
        {
            return corrupt(format!(
                "flushed forward state still dirty: {} marks, {} resize seeds, {} gate seeds, \
                 flags {}/{}/{}",
                fwd.dirty_count,
                fwd.resized_log.len(),
                fwd.gate_log.len(),
                fwd.scan_loads,
                fwd.reload_pos,
                fwd.reslope_pis
            ));
        }

        // Forward finiteness policy.
        for (slot, &load) in fwd.load.iter().enumerate() {
            if !load.is_finite() || load < 0.0 {
                return corrupt(format!(
                    "load at slot {slot} is {load} (finite ≥ 0 required)"
                ));
            }
        }
        for (i, a) in fwd.arrival.iter().enumerate() {
            for &v in a {
                if v.is_nan() || v == f64::INFINITY {
                    return corrupt(format!(
                        "arrival at slot {}/corner {} is {v} (-inf or finite required)",
                        i / nc,
                        i % nc
                    ));
                }
            }
        }
        for (i, s) in fwd.slope.iter().enumerate() {
            for &v in s {
                if !v.is_finite() {
                    return corrupt(format!(
                        "slope at slot {}/corner {} is {v} (finite required)",
                        i / nc,
                        i % nc
                    ));
                }
            }
        }
        for (i, &d) in fwd.gate_delay_worst.iter().enumerate() {
            if !d.is_finite() {
                return corrupt(format!(
                    "worst gate delay at position {}/corner {} is {d} (finite required)",
                    i / nc,
                    i % nc
                ));
            }
        }

        let guard = self.backward.borrow();
        if let Some(bw) = guard.as_ref() {
            let req_pop: usize = bw.req_bits.iter().map(|w| w.count_ones() as usize).sum();
            let comp_pop: usize = bw.comp_bits.iter().map(|w| w.count_ones() as usize).sum();
            let pi_pop: usize = bw.pi_bits.iter().map(|w| w.count_ones() as usize).sum();
            if req_pop != bw.req_count || comp_pop != bw.comp_count || pi_pop != bw.pi_dirty.len() {
                return corrupt(format!(
                    "backward dirty popcounts {req_pop}/{comp_pop}/{pi_pop} disagree with \
                     counts {}/{}/{}",
                    bw.req_count,
                    bw.comp_count,
                    bw.pi_dirty.len()
                ));
            }
            if bw.req_flushed_gen != self.gen || bw.comp_flushed_gen != self.gen {
                return corrupt(format!(
                    "backward state at generations {}/{} behind mutation generation {} after \
                     a flush",
                    bw.req_flushed_gen, bw.comp_flushed_gen, self.gen
                ));
            }
            if bw.req_count != 0
                || bw.comp_count != 0
                || !bw.pi_dirty.is_empty()
                || !bw.resized_log.is_empty()
                || !bw.req_net_log.is_empty()
                || !bw.comp_gate_log.is_empty()
                || !bw.slack_net_log.is_empty()
                || bw.refold_all
            {
                return corrupt(format!(
                    "flushed backward state still dirty: {}/{} marks, {} PI sinks, \
                     {}+{}+{}+{} seeds, refold_all {}",
                    bw.req_count,
                    bw.comp_count,
                    bw.pi_dirty.len(),
                    bw.resized_log.len(),
                    bw.req_net_log.len(),
                    bw.comp_gate_log.len(),
                    bw.slack_net_log.len(),
                    bw.refold_all
                ));
            }

            // Backward finiteness policy.
            for (i, r) in bw.required.iter().enumerate() {
                for &v in r {
                    if v.is_nan() || v == f64::NEG_INFINITY {
                        return corrupt(format!(
                            "required at slot {}/corner {} is {v} (+inf or finite required)",
                            i / nc,
                            i % nc
                        ));
                    }
                }
            }
            for (i, &v) in bw.completion.iter().enumerate() {
                if v.is_nan() || v == f64::INFINITY {
                    return corrupt(format!(
                        "completion at position {}/corner {} is {v} (-inf or finite required)",
                        i / nc,
                        i % nc
                    ));
                }
            }

            // Worst-slack tree: leaves against an independent refold of
            // the slabs, internal nodes (root included) against their
            // children.
            let keys: Vec<f64> = (0..n_nets)
                .map(|slot| {
                    WorstSlackIndex::key_over(
                        &bw.required[slot * nc..(slot + 1) * nc],
                        &fwd.arrival[slot * nc..(slot + 1) * nc],
                    )
                })
                .collect();
            if let Err(detail) = bw.worst.audit_against(&keys) {
                return corrupt(detail);
            }
        }
        Ok(())
    }

    /// Read-modify-write one or more stat counters (the counters sit in
    /// a [`Cell`] so the `&self` lazy flush can account its work too).
    fn stat(&self, f: impl FnOnce(&mut UpdateStats)) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }

    // ---- execution knobs ----
    //
    // Performance-only: none of these change what any query returns
    // (parallel and sequential flushes are bit-identical, and drain vs
    // sweep converge to the same bits), so none bumps the mutation
    // generation.

    /// Worker threads the parallel flush may use, coordinator included.
    /// Until [`TimingGraph::set_threads`] pins a count, this resolves
    /// the host's *current* available parallelism (capped at 8) on
    /// every call — the default is clamped at flush time, so a pool
    /// never runs wider than the cores present when it actually spins
    /// up.
    pub fn threads(&self) -> usize {
        self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8)
        })
    }

    /// Pin the worker-thread count; `1` (or `0`, clamped) keeps every
    /// flush sequential. An explicit count is honored as given — never
    /// clamped to the host's core count, so differential tests can
    /// force a real pool on a single-core host. Purely a performance
    /// knob — the parallel flush is bit-identical to the sequential
    /// drain at any count.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = Some(threads.max(1));
    }

    /// Gate count below which flushes stay sequential regardless of
    /// [`TimingGraph::threads`] (default 10 000: below that, per-level
    /// barrier crossings outweigh the arc work they distribute).
    pub fn parallel_threshold(&self) -> usize {
        self.par_min_gates
    }

    /// Override the sequential-fallback threshold. `0` forces the
    /// parallel path on any circuit when `threads >= 2` (differential
    /// tests use this to exercise the pool on small suites).
    pub fn set_parallel_threshold(&mut self, min_gates: usize) {
        self.par_min_gates = min_gates;
    }

    /// Whether this graph's parallel flushes are race-audited — the
    /// per-graph flag OR the process-wide [`crate::audit::arm`] /
    /// `STA_AUDIT=1` switch.
    pub fn audit_enabled(&self) -> bool {
        self.audit || crate::audit::armed()
    }

    /// Audit this graph's parallel flushes with the shadow-access race
    /// detector ([`crate::audit`]) regardless of the process-wide
    /// switch. Purely an observation knob: armed flushes stay
    /// bit-identical to disarmed ones; hazards surface through
    /// [`crate::audit::take_hazards`] and the
    /// [`UpdateStats::audit_hazards`] counter.
    pub fn set_audit(&mut self, on: bool) {
        self.audit = on;
    }

    /// The sweep cut-over budgets as `(forward, backward)` rational
    /// fractions `(num, den)` of the gate count: a flush abandons the
    /// dirty-cone drain for a straight full sweep once the dirty count
    /// reaches `n·num/den + 1`. Defaults `(3, 4)` forward, `(1, 3)`
    /// backward.
    pub fn sweep_budgets(&self) -> ((u32, u32), (u32, u32)) {
        (self.fwd_budget, self.bwd_budget)
    }

    /// Override the sweep cut-over budgets (see
    /// [`TimingGraph::sweep_budgets`]). `(0, 1)` forces the sweep on
    /// any dirty flush; `(1, 1)` disables the count-based cut-over
    /// (pure drain) — the calibration rows of the `sta_scaling` bench
    /// measure both extremes to locate the real crossover. Integer
    /// rationals, not floats: the defaults must reproduce the historic
    /// `3n/4 + 1` and `n/3 + 1` budgets exactly.
    ///
    /// # Panics
    ///
    /// Panics if a denominator is zero.
    pub fn set_sweep_budgets(&mut self, forward: (u32, u32), backward: (u32, u32)) {
        assert!(
            forward.1 > 0 && backward.1 > 0,
            "budget denominators must be nonzero"
        );
        self.fwd_budget = forward;
        self.bwd_budget = backward;
    }

    /// `n·num/den + 1` in integer arithmetic (no float rounding: the
    /// default budgets must match the historic integer expressions bit
    /// for bit).
    fn budget(n: usize, (num, den): (u32, u32)) -> usize {
        n * num as usize / den as usize + 1
    }

    /// Open a race-audit scope for one parallel flush (the scope carries
    /// the level geometry the barrier checks decode slab indices
    /// against). Returns whether a scope was actually opened — `false`
    /// when auditing is off *or* another flush is already being audited
    /// (the session is process-global).
    fn audit_begin(&self, backward: bool) -> bool {
        if !self.audit_enabled() {
            return false;
        }
        crate::audit::begin_scope(crate::audit::Scope {
            level_start: self.level_start.clone(),
            n_src: self.n_src as u32,
            nc: self.corner_libs.len() as u32,
            n_slots: self.slot_of.len() as u32,
            n_pos: self.topo.len() as u32,
            backward,
        })
    }

    /// Close a scope opened by [`TimingGraph::audit_begin`] and fold its
    /// counters into this graph's stats.
    fn audit_end(&self, opened: bool) {
        if opened {
            let (levels, hazards) = crate::audit::end_scope();
            self.stat(|s| {
                s.audit_levels_checked += levels;
                s.audit_hazards += hazards;
            });
        }
    }

    /// Slab slot of a net's timing state.
    #[inline]
    fn slot(&self, net: NetId) -> usize {
        self.slot_of[net.index()] as usize
    }

    /// Number of process corners the graph maintains (the stride of
    /// every per-corner slab; 1 for [`TimingGraph::new`] graphs).
    #[inline]
    pub fn n_corners(&self) -> usize {
        self.corner_libs.len()
    }

    /// The characterized library of one corner (corner 0 is the primary
    /// corner every plain query reads).
    ///
    /// # Panics
    ///
    /// Panics if `corner >= n_corners()`.
    pub fn corner_lib(&self, corner: usize) -> &Library {
        &self.corner_libs[corner]
    }

    /// The Vt variant a gate is currently implemented in.
    pub fn vt_class(&self, gate: GateId) -> VtClass {
        self.vt_class[gate.index()]
    }

    /// Whether a flush over `n_gates` takes the parallel path. The
    /// size check comes first: small circuits must not pay the default
    /// thread count's host probe on every flush.
    fn use_parallel(&self, n_gates: usize) -> bool {
        n_gates >= self.par_min_gates && self.threads() >= 2
    }

    /// 0-based level of a topo position (`level_start` is sorted; empty
    /// levels cannot occur, but repeated starts would resolve correctly
    /// anyway).
    fn level_of(&self, pos: u32) -> usize {
        self.level_start.partition_point(|&s| s <= pos) - 1
    }

    /// Set one gate's input capacitance. The affected cone — the gate
    /// itself, the drivers of its fanin nets (their loads changed) and
    /// every downstream gate whose arrival or slope actually moves — is
    /// re-timed *lazily* by the first timing query.
    ///
    /// # Panics
    ///
    /// Panics if the gate id is out of range or `cin_ff` is not finite
    /// and positive (the [`TimingGraph::try_resize_gate`] rejections).
    pub fn resize_gate(&mut self, gate: GateId, cin_ff: f64) {
        self.resize_gates([(gate, cin_ff)]);
    }

    /// Fallible form of [`TimingGraph::resize_gate`].
    ///
    /// # Errors
    ///
    /// As [`TimingGraph::try_resize_gates`].
    pub fn try_resize_gate(&mut self, gate: GateId, cin_ff: f64) -> Result<(), StaError> {
        self.try_resize_gates([(gate, cin_ff)])
    }

    /// Apply a batch of resizes. Nothing re-times here: each change is
    /// one append to the forward (and, under a constraint, backward)
    /// seed log, and the first timing query drains every batch since
    /// the last query in one merged rank-ordered propagation — cheaper
    /// than per-mutation flushes whenever the cones overlap (writing
    /// back a whole optimized path, a sensitivity round's probes).
    ///
    /// # Panics
    ///
    /// As [`TimingGraph::resize_gate`].
    pub fn resize_gates(&mut self, changes: impl IntoIterator<Item = (GateId, f64)>) {
        self.try_resize_gates(changes)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible form of [`TimingGraph::resize_gates`]: the whole batch
    /// is validated *before* any entry is applied, so a rejected batch
    /// leaves the graph bit-identical to the state before the call —
    /// no half-applied mutation, no seed-log entry, no generation bump.
    ///
    /// # Errors
    ///
    /// [`StaError::GateOutOfRange`] for a gate id past the graph's gate
    /// count; [`StaError::InvalidDrive`] for a capacitance that is NaN,
    /// infinite, zero or negative — values that would poison the corner
    /// slabs where the bitwise convergence cuts never fire.
    pub fn try_resize_gates(
        &mut self,
        changes: impl IntoIterator<Item = (GateId, f64)>,
    ) -> Result<(), StaError> {
        let mut changes: Vec<(GateId, f64)> = changes.into_iter().collect();
        // Fault injection (no-op unless a `FaultPlan` armed batch
        // corruption): the boundary below must catch what it plants.
        crate::faultinject::corrupt_resizes(&mut changes);
        let n_gates = self.rank.len();
        for &(gate, cin_ff) in &changes {
            if gate.index() >= n_gates {
                return Err(StaError::GateOutOfRange {
                    gate: gate.index(),
                    n_gates,
                });
            }
            if !cin_ff.is_finite() || cin_ff <= 0.0 {
                return Err(StaError::InvalidDrive {
                    gate: gate.index(),
                    cin_ff,
                });
            }
        }
        let mut any = false;
        for (gate, cin_ff) in changes {
            // Re-assigning an identical size is a no-op (and must not
            // dirty anything); `replace` folds the compare and the set
            // into one bounds-checked access.
            if self.sizing.replace(gate, cin_ff) == cin_ff {
                continue;
            }
            any = true;
            // Forward (lazy): the flush recomputes the fanin nets'
            // loads, re-times their drivers and re-evaluates the gate.
            self.fwd.get_mut().resized_log.push(gate);
            // Backward (lazy): arcs through this gate and through its
            // fanin drivers moved with its C_IN — one log append; the
            // flush expands it into the affected required-time marks.
            if let Some(bw) = self.backward.get_mut().as_mut() {
                bw.resized_log.push(gate);
            }
        }
        if any {
            self.gen = self.gen.wrapping_add(1);
            self.stat(|s| s.updates += 1);
        }
        Ok(())
    }

    /// Re-implement one gate in a different Vt variant (LVT/SVT/HVT).
    /// Electrically this rescales the gate's drive and thresholds on
    /// every corner (leakage rescales with it — see
    /// [`pops_delay::power::leakage_nw`]); geometry and loads are
    /// untouched, so only the gate's own arcs move. Like a resize, the
    /// affected cones re-time *lazily* at the next query.
    ///
    /// # Panics
    ///
    /// Panics if the gate id is out of range.
    pub fn set_vt_class(&mut self, gate: GateId, class: VtClass) {
        self.try_set_vt_class(gate, class)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible form of [`TimingGraph::set_vt_class`].
    ///
    /// # Errors
    ///
    /// [`StaError::GateOutOfRange`] for a gate id past the graph's gate
    /// count; the graph is untouched on error.
    pub fn try_set_vt_class(&mut self, gate: GateId, class: VtClass) -> Result<(), StaError> {
        let gi = gate.index();
        if gi >= self.vt_class.len() {
            return Err(StaError::GateOutOfRange {
                gate: gi,
                n_gates: self.vt_class.len(),
            });
        }
        if self.vt_class[gi] == class {
            return Ok(());
        }
        self.vt_class[gi] = class;
        let nc = self.corner_libs.len();
        for (c, lib) in self.corner_libs.iter().enumerate() {
            self.gate_params[gi * nc + c] = gate_params_for(lib, self.cell[gi], class);
        }
        // Forward: the gate's delay, slope and arrival all re-derive
        // (loads are untouched — no fanin-driver re-time needed, but
        // over-seeding would be bit-safe anyway).
        self.fwd.get_mut().gate_log.push(gate);
        if let Some(bw) = self.backward.get_mut().as_mut() {
            // Backward: arcs *through* the gate moved, so its fanin
            // required times re-derive (the resized-log expansion
            // covers exactly that cone) and its completion bound moves
            // with its worst delay.
            bw.resized_log.push(gate);
            bw.comp_gate_log.push(gate);
        }
        self.gen = self.gen.wrapping_add(1);
        self.stat(|s| s.updates += 1);
        Ok(())
    }

    /// Switch to new analysis options. What they touch (all
    /// primary-output loads and/or all primary-input slopes) re-times
    /// lazily at the next forward query; any maintained backward state
    /// is invalidated wholesale — a latch load shifts every
    /// primary-output arc, an input slope every source arc — and the
    /// next backward query pays one full backward pass.
    pub fn set_options(&mut self, options: &AnalyzeOptions) {
        if self.options == *options {
            return;
        }
        self.gen = self.gen.wrapping_add(1);
        let po_changed = self.options.po_load_ff != options.po_load_ff;
        let slope_changed = self.options.input_transition_ps != options.input_transition_ps;
        self.options = options.clone();

        let fwd = self.fwd.get_mut();
        if po_changed {
            fwd.reload_pos = true;
        }
        if slope_changed {
            fwd.reslope_pis = true;
        }
        self.stat(|s| s.updates += 1);
        self.invalidate_backward();
    }

    /// Apply a batch of structural edits — buffer insertions, gate
    /// replacements, De Morgan rewrites — to the circuit *and* patch the
    /// timing state around them, instead of rebuilding from scratch.
    ///
    /// On the first call the graph clones the borrowed circuit into an
    /// owned copy (the caller's original netlist is never mutated);
    /// from then on [`TimingGraph::circuit`] is the authoritative,
    /// edited netlist. The graph then
    ///
    /// 1. applies the plan through the [`Circuit`] surgery primitives
    ///    (append-only: every pre-existing id stays valid),
    /// 2. rebuilds its structural arrays — topological ranks, flattened
    ///    adjacency, per-gate model constants — pure arena work with no
    ///    arc evaluations,
    /// 3. extends the per-gate/per-net timing state for the created ids
    ///    (new gates enter at their planned sizes, clamped to the
    ///    library minimum; new nets start unreached),
    /// 4. seeds the forward and backward dirty cones from the edit log:
    ///    every net whose load moved re-times its driver, every gate
    ///    whose cell/wiring changed re-evaluates, new gates evaluate for
    ///    the first time — and the usual bitwise-convergence propagation
    ///    confines the floating-point work to the affected cones.
    ///
    /// After the call every queryable value — arrivals, slopes, loads,
    /// required times, slacks, k-paths completion bounds — is
    /// **bit-identical** to a from-scratch [`TimingGraph`] built on the
    /// edited circuit under the same sizing, options and constraint
    /// (`tests/surgery_equivalence.rs` asserts this after every edit of
    /// random surgery/resize mixes).
    ///
    /// Returns the per-op [`AppliedEdit`] log (created gate/net ids).
    ///
    /// # Errors
    ///
    /// A malformed plan — out-of-range ids, non-finite or non-positive
    /// stage capacitances — is rejected by [`EditPlan::validate`]
    /// *before* anything is applied, so it cannot abort a long flow run
    /// or leave the graph half-edited. Past validation, the first
    /// failing op's [`NetlistError`] propagates; ops before it stay
    /// applied — the graph re-synchronizes its state to the partially
    /// edited circuit before returning, so it remains consistent and
    /// usable even on error.
    pub fn apply_edits(&mut self, plan: &EditPlan) -> Result<Vec<AppliedEdit>, NetlistError> {
        if plan.is_empty() {
            return Ok(Vec::new());
        }
        plan.validate(self.circuit.as_ref())?;
        let mut applied = Vec::with_capacity(plan.len());
        let mut first_err = None;
        {
            let circuit = self.circuit.to_mut();
            for op in plan.ops() {
                match op.apply_to(circuit) {
                    Ok(a) => applied.push(a),
                    Err(e) => {
                        // Resync to the applied prefix below so the
                        // graph stays consistent with its circuit.
                        first_err = Some(e);
                        break;
                    }
                }
            }
        }
        self.resync_after_surgery(&applied)?;
        match first_err {
            Some(e) => Err(e),
            None => Ok(applied),
        }
    }

    /// [`TimingGraph::apply_edits`] behind the typed [`StaError`]
    /// boundary: netlist failures arrive as [`StaError::InvalidEdit`],
    /// with the same validate-first / partial-application semantics.
    ///
    /// # Errors
    ///
    /// As [`TimingGraph::apply_edits`], wrapped in
    /// [`StaError::InvalidEdit`].
    pub fn try_apply_edits(&mut self, plan: &EditPlan) -> Result<Vec<AppliedEdit>, StaError> {
        self.apply_edits(plan).map_err(StaError::from)
    }

    /// Rebuild structure, extend state and seed the lazy re-time after
    /// the circuit was surgically edited. `applied` carries the created
    /// ids and suggested sizes; conservative seeding beyond it (the
    /// flush-time load-change scan over all nets) covers any edit the
    /// log understates. No arc is evaluated here — the whole cone
    /// re-time is deferred to the first timing query.
    fn resync_after_surgery(&mut self, applied: &[AppliedEdit]) -> Result<(), NetlistError> {
        let s = build_structure(self.circuit.as_ref())?;
        let n_gates = s.topo.len();
        let n_nets = s.net_driver.len();
        let nc = self.corner_libs.len();
        assert!(
            n_nets.saturating_mul(nc) < (1usize << 31),
            "net-slot × corner space must fit in 31 bits"
        );

        // Pending lazy seeds live in the id-keyed logs, which survive
        // append-only surgery untouched. The rank-keyed backward
        // bitsets are populated outside a flush only by a wholesale
        // invalidation (constraint/option change with no query since):
        // remember that and re-invalidate under the new ranks below.
        let (req_invalidated, comp_invalidated) = match self.backward.get_mut().as_ref() {
            Some(bw) => (bw.req_count > 0, bw.comp_count > 0),
            None => (false, false),
        };

        // Surgery re-levels and re-ranks arbitrarily, and the slabs are
        // keyed by slot/position — keep the old keys to permute the
        // surviving state into the new layout below.
        let old_slot_of = std::mem::replace(&mut self.slot_of, s.slot_of);
        let old_rank = std::mem::replace(&mut self.rank, s.rank);
        self.topo = s.topo;
        self.level_start = s.level_start;
        self.n_src = s.n_src;
        self.net_driver = s.net_driver;
        self.cell = s.cell;
        // Created gates enter in the default Vt variant; surviving
        // gates keep theirs (ids are stable across append-only
        // surgery, so no remap is needed). The constants rebuild
        // wholesale — pure arithmetic over the corner libraries, no
        // arc evaluations.
        self.vt_class.resize(n_gates, VtClass::Svt);
        self.gate_params =
            build_gate_params(self.circuit.as_ref(), &self.corner_libs, &self.vt_class);
        self.out_net = s.out_net;
        self.fanin = s.fanin;
        self.fanin_off = s.fanin_off;
        self.fanin_slots = s.fanin_slots;
        self.fanout = s.fanout;
        self.fanout_off = s.fanout_off;
        self.is_po = s.is_po;
        self.pis = s.pis;
        self.pos = s.pos;

        // Per-gate / per-net timing state: existing entries keep their
        // values (they are still bit-correct wherever the edits did not
        // reach) — permuted into the new slot/rank layout — and new ids
        // get neutral initial state. The forward dirty bitset is
        // populated only inside a flush and every flush drains it
        // before returning, so re-ranking cannot orphan a pending mark;
        // the id-keyed seed logs survive as they are.
        {
            let fwd = self.fwd.get_mut();
            debug_assert_eq!(fwd.dirty_count, 0, "surgery over a drained queue");
            fwd.arrival = remap_slots(
                &fwd.arrival,
                &old_slot_of,
                &self.slot_of,
                [f64::NEG_INFINITY; 2],
                nc,
            );
            fwd.slope = remap_slots(&fwd.slope, &old_slot_of, &self.slot_of, [0.0; 2], nc);
            fwd.pred = remap_slots(&fwd.pred, &old_slot_of, &self.slot_of, [None, None], nc);
            fwd.load = remap_slots(&fwd.load, &old_slot_of, &self.slot_of, 0.0, 1);
            fwd.gate_delay_worst =
                remap_ranks(&fwd.gate_delay_worst, &old_rank, &self.rank, 0.0, nc);
            fwd.dirty_bits = vec![0u64; n_gates.div_ceil(64)];
            fwd.min_dirty_rank = u32::MAX;
            // Load deltas are detected lazily: the cached loads are
            // still the pre-edit values, so the flush recompares every
            // net under the edited structure and seeds the drivers of
            // the ones that moved (forward *and* backward).
            fwd.scan_loads = true;
        }
        // Extend the sizing for the created gates, keyed by id — the
        // edit log lists each op's gates in creation order, but keying
        // (instead of trusting the traversal order) pins every size to
        // its gate regardless of log order, and makes a gapped or
        // duplicated id set a typed error rather than mis-sized gates.
        let min_drive = self.lib.min_drive_ff();
        self.sizing
            .try_extend_dense(applied.iter().flat_map(|edit| {
                edit.new_gates
                    .iter()
                    .zip(&edit.new_gate_cin_ff)
                    .map(|(&g, &cin)| (g, cin.max(min_drive)))
            }))
            .map_err(|e| NetlistError::InvalidId(e.to_string()))?;
        assert_eq!(self.sizing.len(), n_gates, "one size per gate");
        {
            let pis = &self.pis;
            let (new_slot_of, new_rank) = (&self.slot_of, &self.rank);
            if let Some(bw) = self.backward.get_mut().as_mut() {
                bw.required = remap_slots(
                    &bw.required,
                    &old_slot_of,
                    new_slot_of,
                    [f64::INFINITY; 2],
                    nc,
                );
                bw.completion =
                    remap_ranks(&bw.completion, &old_rank, new_rank, f64::NEG_INFINITY, nc);
                // Rank-keyed bitsets restart empty at the new gate
                // count; a pending invalidation re-marks everything
                // under the new ranks. The id-keyed seed logs survive
                // as they are.
                bw.req_bits = vec![0u64; n_gates.div_ceil(64)];
                bw.req_count = 0;
                bw.req_max_rank = 0;
                bw.comp_bits = vec![0u64; n_gates.div_ceil(64)];
                bw.comp_count = 0;
                bw.comp_max_rank = 0;
                bw.pi_bits = vec![0u64; n_nets.div_ceil(64)];
                bw.pi_dirty.clear();
                if req_invalidated {
                    Self::mark_all_required(bw, n_gates, pis);
                }
                if comp_invalidated {
                    Self::mark_all_completion(bw, n_gates);
                }
                // The edit moved loads/drivers arbitrarily: refold the
                // worst-slack index wholesale at the next flush (its
                // leaf space just grew, and the O(nets) refold is noise
                // next to this rebuild's own O(V+E)).
                bw.refold_all = true;
            }
        }

        // Seed the connectivity deltas from the edit log: nets whose
        // fanout set or driver changed, gates whose cell/wiring changed
        // and every created gate. (Load deltas are the flush-time scan
        // scheduled above.) Over-seeding is safe (the bitwise
        // convergence cut discards no-op re-evaluations); the goal is
        // only to never under-seed.
        for edit in applied {
            for &net in edit.touched_nets.iter().chain(&edit.new_nets) {
                self.log_required_net(net);
                if let Some(driver) = self.net_driver[net.index()] {
                    self.seed_edited_gate(driver);
                }
                let (lo, hi) = (
                    self.fanout_off[net.index()] as usize,
                    self.fanout_off[net.index() + 1] as usize,
                );
                for i in lo..hi {
                    let g = self.fanout[i];
                    self.seed_edited_gate(g);
                }
            }
            for &g in edit.touched_gates.iter().chain(&edit.new_gates) {
                self.seed_edited_gate(g);
            }
        }

        self.gen = self.gen.wrapping_add(1);
        self.stat(|s| {
            s.updates += 1;
            s.structural_edits += applied.len();
        });
        Ok(())
    }

    /// Log one gate whose cell, wiring, drive or environment a
    /// structural edit may have changed: re-evaluate it forward at the
    /// next flush, and re-derive its completion bound and its fanin
    /// required times at the next backward flush (the resized-log
    /// expansion covers the fanins).
    fn seed_edited_gate(&mut self, g: GateId) {
        self.fwd.get_mut().gate_log.push(g);
        if let Some(bw) = self.backward.get_mut().as_mut() {
            bw.comp_gate_log.push(g);
            bw.resized_log.push(g);
        }
    }

    // ---- query surface (mirrors `TimingReport`) ----
    //
    // Every forward query is a flushing query: it first drains the
    // pending lazy seeds (one merged forward cone for everything since
    // the last query), then answers from the settled state.

    /// Worst arrival time over all primary outputs (ps), on the primary
    /// corner.
    pub fn critical_delay_ps(&self) -> f64 {
        self.critical_delay_ps_corner(0)
    }

    /// [`TimingGraph::critical_delay_ps`] on one corner.
    ///
    /// # Panics
    ///
    /// Panics if `corner >= n_corners()`.
    pub fn critical_delay_ps_corner(&self, corner: usize) -> f64 {
        self.flush_forward();
        let nc = self.corner_libs.len();
        let fwd = self.fwd.borrow();
        fwd.critical_net[corner]
            .map(|(n, e)| fwd.arrival[self.slot(n) * nc + corner][eidx(e)])
            .unwrap_or(0.0)
    }

    /// Arrival time of a net for a given edge (ps), `-inf` if
    /// unreachable; primary corner.
    pub fn arrival_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        self.arrival_ps_corner(net, edge, 0)
    }

    /// [`TimingGraph::arrival_ps`] on one corner.
    ///
    /// # Panics
    ///
    /// Panics if `corner >= n_corners()`.
    pub fn arrival_ps_corner(&self, net: NetId, edge: EdgeDir, corner: usize) -> f64 {
        assert!(corner < self.corner_libs.len(), "corner out of range");
        self.flush_forward();
        let nc = self.corner_libs.len();
        self.fwd.borrow().arrival[self.slot(net) * nc + corner][eidx(edge.into())]
    }

    /// Transition time of a net for a given edge (ps); primary corner.
    pub fn slope_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        self.slope_ps_corner(net, edge, 0)
    }

    /// [`TimingGraph::slope_ps`] on one corner.
    ///
    /// # Panics
    ///
    /// Panics if `corner >= n_corners()`.
    pub fn slope_ps_corner(&self, net: NetId, edge: EdgeDir, corner: usize) -> f64 {
        assert!(corner < self.corner_libs.len(), "corner out of range");
        self.flush_forward();
        let nc = self.corner_libs.len();
        self.fwd.borrow().slope[self.slot(net) * nc + corner][eidx(edge.into())]
    }

    /// Capacitive load on a net (fF) under the current sizing, including
    /// the primary-output latch load where applicable.
    ///
    /// Loads derive from fanout pins, sizing and options — all of which
    /// the mutators keep eagerly current — so this query never pays the
    /// arc flush: with the forward state settled it reads the slab, and
    /// with seeds pending it sums the load fresh (same pin order and
    /// summation as the flush) *without* storing it — the cached value
    /// must stay the pre-mutation baseline the flush-time load scans
    /// compare against. [`UpdateStats::load_only_settles`] counts the
    /// latter path.
    pub fn net_load_ff(&self, net: NetId) -> f64 {
        {
            let fwd = self.fwd.borrow();
            if fwd.flushed_gen == self.gen {
                return fwd.load[self.slot(net)];
            }
        }
        let load = self.fresh_net_load(net);
        self.stat(|s| s.load_only_settles += 1);
        load
    }

    /// Exact load of one net under the current sizing and options,
    /// computed without touching the cached slab — same pin order and
    /// summation as [`TimingGraph::recompute_net_load`], so it
    /// reproduces the flushed value bit for bit.
    fn fresh_net_load(&self, net: NetId) -> f64 {
        let i = net.index();
        let (lo, hi) = (self.fanout_off[i] as usize, self.fanout_off[i + 1] as usize);
        let mut load = 0.0;
        for &g in &self.fanout[lo..hi] {
            load += self.sizing.cin_ff(g);
        }
        if self.is_po[i] {
            load += self.options.po_load_ff;
        }
        load
    }

    /// Worst-case delay of a gate (ps) under the current slopes.
    ///
    /// When only *resize* seeds are pending, the answer settles without
    /// flushing the merged forward union: a gate's worst delay depends
    /// only on its own drive, its fresh output load, and its fanin
    /// slopes — and each driven fanin's slope is its driver's `τ_out`
    /// under the driver's *current* drive and load (one `arc_terms`
    /// evaluation, no recursion), while per-edge reachability (`-inf`
    /// arrivals) is structural and resize-invariant. The settle runs
    /// the kernel's exact arc order and expressions over those fresh
    /// inputs, so it is bit-identical to the post-flush slab read; it
    /// writes nothing (the cached slabs stay the pre-mutation baseline
    /// the flush's load scans compare against). A K=1 probe loop goes
    /// from paying the whole union's drain per probe to O(fanins);
    /// [`UpdateStats::gate_delay_settles`] counts this path.
    pub fn gate_delay_worst_ps(&self, gate: GateId) -> f64 {
        let nc = self.corner_libs.len();
        {
            let fwd = self.fwd.borrow();
            if fwd.flushed_gen == self.gen {
                return fwd.gate_delay_worst[self.rank[gate.index()] as usize * nc];
            }
            if !fwd.scan_loads && !fwd.reload_pos && !fwd.reslope_pis && fwd.gate_log.is_empty() {
                let d = self.settle_gate_delay(&fwd, gate);
                self.stat(|s| s.gate_delay_settles += 1);
                return d;
            }
        }
        self.flush_forward();
        self.fwd.borrow().gate_delay_worst[self.rank[gate.index()] as usize * nc]
    }

    /// [`TimingGraph::gate_delay_worst_ps`] on one corner (always
    /// flushes — the flushless settle is a primary-corner fast path).
    ///
    /// # Panics
    ///
    /// Panics if `corner >= n_corners()`.
    pub fn gate_delay_worst_ps_corner(&self, gate: GateId, corner: usize) -> f64 {
        assert!(corner < self.corner_libs.len(), "corner out of range");
        self.flush_forward();
        let nc = self.corner_libs.len();
        self.fwd.borrow().gate_delay_worst[self.rank[gate.index()] as usize * nc + corner]
    }

    /// The flushless worst-delay settle (see
    /// [`TimingGraph::gate_delay_worst_ps`] for why it is sound only
    /// under pure-resize seeds). Fold order and expressions replicate
    /// [`crate::parallel::FwdView::eval_shared`] exactly.
    fn settle_gate_delay(&self, fwd: &ForwardState, gate: GateId) -> f64 {
        let gi = gate.index();
        let nc = self.corner_libs.len();
        let cell = self.cell[gi];
        let cin = self.sizing.cin_ff(gate);
        let load = self.fresh_net_load(self.out_net[gi]);
        let params = &self.gate_params[gi * nc];
        let ArcTerms {
            tau_out_by_edge,
            miller,
        } = params.arc_terms(cin, load);
        let fanin_range = self.fanin_off[gi] as usize..self.fanin_off[gi + 1] as usize;
        // Fresh per-fanin slopes: a primary input's cached slope is
        // current (no reslope pending on this path); a driven net's
        // slope re-derives as its driver's τ_out — which the pending
        // flush will write wherever the edge is reachable, and which
        // the fold below reads only where the edge is reachable. All on
        // the primary corner (`* nc` selects its lane).
        let fresh_slope: Vec<[f64; 2]> = fanin_range
            .clone()
            .map(|idx| {
                let in_net = self.fanin[idx];
                match self.net_driver[in_net.index()] {
                    None => fwd.slope[self.fanin_slots[idx] as usize * nc],
                    Some(d) => {
                        self.gate_params[d.index() * nc]
                            .arc_terms(self.sizing.cin_ff(d), self.fresh_net_load(in_net))
                            .tau_out_by_edge
                    }
                }
            })
            .collect();
        let mut worst = 0.0f64;
        for out_edge in EDGES {
            let tau_out = tau_out_by_edge[eidx(out_edge)];
            for (k, idx) in fanin_range.clone().enumerate() {
                let in_arrival = fwd.arrival[self.fanin_slots[idx] as usize * nc];
                for &in_edge in compatible_input_edges(cell, out_edge) {
                    let i = eidx(in_edge);
                    if in_arrival[i] == f64::NEG_INFINITY {
                        continue;
                    }
                    let delay_ps =
                        0.5 * params.vt[i] * fresh_slope[k][i] + 0.5 * miller[i] * tau_out;
                    debug_assert_eq!(
                        delay_ps.to_bits(),
                        gate_delay_with_output_edge_vt(
                            &self.corner_libs[0],
                            cell,
                            VtTiming::of(self.vt_class[gi]),
                            cin,
                            load,
                            fresh_slope[k][i],
                            in_edge,
                            out_edge,
                        )
                        .delay_ps
                        .to_bits(),
                        "settled arc delay must match the model"
                    );
                    worst = worst.max(delay_ps);
                }
            }
        }
        worst
    }

    /// The most critical path: traceback from the worst primary output.
    ///
    /// Returns an empty path only for circuits without gates.
    pub fn critical_path(&self) -> NetlistPath {
        self.flush_forward();
        let fwd = self.fwd.borrow();
        let Some((net, edge)) = fwd.critical_net[0] else {
            return NetlistPath {
                gates: Vec::new(),
                end_edge: EdgeDir::Rising,
            };
        };
        self.trace_path(&fwd, net, edge)
    }

    /// Traceback the worst path ending at `net` with `edge`.
    pub fn path_to(&self, net: NetId, edge: Edge) -> NetlistPath {
        self.flush_forward();
        let fwd = self.fwd.borrow();
        self.trace_path(&fwd, net, edge)
    }

    fn trace_path(&self, fwd: &ForwardState, net: NetId, edge: Edge) -> NetlistPath {
        let nc = self.corner_libs.len();
        let mut gates = Vec::new();
        let mut cur = Some((net, edge));
        while let Some((n, e)) = cur {
            if let Some(gid) = self.net_driver[n.index()] {
                gates.push(gid);
            }
            // Traceback follows the primary corner's predecessors.
            cur = fwd.pred[self.slot(n) * nc][eidx(e)];
        }
        gates.reverse();
        NetlistPath {
            gates,
            end_edge: edge.into(),
        }
    }

    /// Primary output nets.
    pub fn outputs(&self) -> &[NetId] {
        self.circuit.primary_outputs()
    }

    // ---- backward query surface (mirrors `SlackReport`) ----

    /// Set the cycle constraint and start maintaining the backward
    /// state (required times, slacks, k-paths completion bounds) under
    /// it. The first call — and every call with a *different* `tc_ps`,
    /// since required times are subtract-chains from the constraint,
    /// not offsets of it — schedules one full backward pass, paid by
    /// the first backward query (the lazy flush); from then on
    /// mutations only accumulate dirty seeds and each query drains
    /// whatever accumulated in one merged O(backward cone) pass.
    ///
    /// An infinite `tc_ps` is accepted and behaves like the full pass:
    /// `+inf` leaves every net unconstrained (no finite slack anywhere),
    /// which a constraint-driven loop reads as "nothing to do".
    ///
    /// # Panics
    ///
    /// Panics if `tc_ps` is NaN or negative (the
    /// [`TimingGraph::try_set_constraint`] rejections), with a message
    /// naming the offending value.
    pub fn set_constraint(&mut self, tc_ps: f64) {
        self.try_set_constraint(tc_ps)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible form of [`TimingGraph::set_constraint`].
    ///
    /// # Errors
    ///
    /// [`StaError::InvalidConstraint`] if `tc_ps` is NaN or negative
    /// (including `-inf` — a required time below every arrival is not a
    /// constraint, it is a contradiction); `+inf` stays accepted as the
    /// documented "nothing is critical" constraint. The graph is
    /// untouched on error.
    pub fn try_set_constraint(&mut self, tc_ps: f64) -> Result<(), StaError> {
        if tc_ps.is_nan() || tc_ps < 0.0 {
            return Err(StaError::InvalidConstraint { tc_ps });
        }
        if let Some(bw) = self.backward.get_mut().as_ref() {
            if bw.tc_ps.to_bits() == tc_ps.to_bits() {
                return Ok(());
            }
        }
        let n_nets = self.circuit.net_count();
        let n_gates = self.circuit.gate_count();
        let nc = self.corner_libs.len();
        self.gen = self.gen.wrapping_add(1);
        *self.backward.get_mut() = Some(BackwardState {
            tc_ps,
            required: vec![[f64::INFINITY; 2]; n_nets * nc],
            completion: vec![f64::NEG_INFINITY; n_gates * nc],
            req_bits: vec![0u64; n_gates.div_ceil(64)],
            req_count: 0,
            req_max_rank: 0,
            pi_bits: vec![0u64; n_nets.div_ceil(64)],
            pi_dirty: Vec::new(),
            comp_bits: vec![0u64; n_gates.div_ceil(64)],
            comp_count: 0,
            comp_max_rank: 0,
            // One behind: the first backward query performs the flush
            // that doubles as the initial full backward pass.
            req_flushed_gen: self.gen.wrapping_sub(1),
            comp_flushed_gen: self.gen.wrapping_sub(1),
            resized_log: Vec::new(),
            req_net_log: Vec::new(),
            comp_gate_log: Vec::new(),
            slack_net_log: Vec::new(),
            worst: WorstSlackIndex::new(n_nets),
            refold_all: false,
        });
        self.invalidate_backward();
        Ok(())
    }

    /// Stop maintaining the backward state (forward-only mutations get
    /// cheaper again).
    pub fn clear_constraint(&mut self) {
        *self.backward.get_mut() = None;
    }

    /// The constraint the backward state is maintained under, if any.
    pub fn constraint_ps(&self) -> Option<f64> {
        self.backward.borrow().as_ref().map(|bw| bw.tc_ps)
    }

    fn backward(&self) -> Ref<'_, BackwardState> {
        Ref::map(self.backward.borrow(), |b| {
            b.as_ref()
                .expect("no backward state: call TimingGraph::set_constraint before querying slack")
        })
    }

    /// Required time of a net for an edge (ps); `+inf` where
    /// unconstrained. Bit-identical to a fresh
    /// [`required_times`](crate::required_times) under the same
    /// constraint. Like every backward query, flushes pending lazy
    /// seeds first (one merged cone for everything since the last
    /// query).
    ///
    /// # Panics
    ///
    /// Panics unless [`TimingGraph::set_constraint`] was called.
    pub fn required_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        self.required_ps_corner(net, edge, 0)
    }

    /// [`TimingGraph::required_ps`] on one corner.
    ///
    /// # Panics
    ///
    /// As [`TimingGraph::required_ps`]; also if `corner >= n_corners()`.
    pub fn required_ps_corner(&self, net: NetId, edge: EdgeDir, corner: usize) -> f64 {
        assert!(corner < self.corner_libs.len(), "corner out of range");
        self.flush_required();
        let nc = self.corner_libs.len();
        self.backward().required[self.slot(net) * nc + corner][eidx(edge.into())]
    }

    /// Slack of a net for an edge (ps): `required − arrival`, on the
    /// primary corner. Finite or `+inf`, never NaN (see
    /// [`crate::slack`]'s module docs).
    ///
    /// # Panics
    ///
    /// As [`TimingGraph::required_ps`].
    pub fn slack_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        self.slack_ps_corner(net, edge, 0)
    }

    /// [`TimingGraph::slack_ps`] on one corner.
    ///
    /// # Panics
    ///
    /// As [`TimingGraph::required_ps`]; also if `corner >= n_corners()`.
    pub fn slack_ps_corner(&self, net: NetId, edge: EdgeDir, corner: usize) -> f64 {
        assert!(corner < self.corner_libs.len(), "corner out of range");
        self.flush_required();
        let nc = self.corner_libs.len();
        let i = eidx(edge.into());
        let entry = self.slot(net) * nc + corner;
        let fwd = self.fwd.borrow();
        self.backward().required[entry][i] - fwd.arrival[entry][i]
    }

    /// Worst (most negative) slack over both edges of a net, on the
    /// primary corner.
    ///
    /// # Panics
    ///
    /// As [`TimingGraph::required_ps`].
    pub fn worst_slack_ps(&self, net: NetId) -> f64 {
        self.slack_ps(net, EdgeDir::Rising)
            .min(self.slack_ps(net, EdgeDir::Falling))
    }

    /// Worst (most negative) slack over both edges of a net, on one
    /// corner.
    ///
    /// # Panics
    ///
    /// As [`TimingGraph::required_ps`]; also if `corner >= n_corners()`.
    pub fn worst_slack_ps_corner(&self, net: NetId, corner: usize) -> f64 {
        self.slack_ps_corner(net, EdgeDir::Rising, corner)
            .min(self.slack_ps_corner(net, EdgeDir::Falling, corner))
    }

    /// Worst finite slack over the whole design **and all corners**;
    /// `None` when no net carries a finite slack (e.g. zero primary
    /// outputs). Read off the maintained tournament tree: O(1) after
    /// the flush, bit-identical to the full fold over all nets (each
    /// leaf is its net's min over corners). On a single-corner graph
    /// this is exactly the pre-corner design-worst slack.
    ///
    /// # Panics
    ///
    /// As [`TimingGraph::required_ps`].
    pub fn worst_slack_overall_ps(&self) -> Option<f64> {
        self.flush_required();
        self.backward().worst.worst()
    }

    /// Worst finite slack over the whole design on **one** corner;
    /// `None` when no net carries a finite slack there. O(nets) per
    /// call — the maintained tournament tree folds corners into its
    /// leaves, so a single corner's view re-folds the slabs (same `min`
    /// semantics, bit-identical to an independent single-corner graph's
    /// [`TimingGraph::worst_slack_overall_ps`]).
    ///
    /// # Panics
    ///
    /// As [`TimingGraph::required_ps`]; also if `corner >= n_corners()`.
    pub fn worst_slack_overall_ps_corner(&self, corner: usize) -> Option<f64> {
        assert!(corner < self.corner_libs.len(), "corner out of range");
        self.flush_required();
        let nc = self.corner_libs.len();
        let fwd = self.fwd.borrow();
        let bw = self.backward();
        let mut worst = f64::INFINITY;
        for slot in 0..self.slot_of.len() {
            let entry = slot * nc + corner;
            worst = min2(
                worst,
                WorstSlackIndex::key(bw.required[entry], fwd.arrival[entry]),
            );
        }
        (worst != f64::INFINITY).then_some(worst)
    }

    /// Frozen-weight k-paths completion bound of a gate (ps); `-inf`
    /// off every PI→PO path. Bit-identical to
    /// [`completion_bounds`](crate::kpaths::completion_bounds).
    ///
    /// # Panics
    ///
    /// As [`TimingGraph::required_ps`].
    pub fn completion_ps(&self, gate: GateId) -> f64 {
        self.flush_completion();
        let nc = self.corner_libs.len();
        self.backward().completion[self.rank[gate.index()] as usize * nc]
    }

    /// Materialize the maintained backward state as a [`SlackReport`],
    /// bit-identical to a fresh [`required_times`](crate::required_times)
    /// under the same constraint — but O(nets) with no arc evaluations
    /// beyond the pending flush.
    ///
    /// # Panics
    ///
    /// As [`TimingGraph::required_ps`].
    pub fn slack_report(&self) -> SlackReport {
        self.flush_required();
        let nc = self.corner_libs.len();
        let fwd = self.fwd.borrow();
        let bw = self.backward();
        // The report is net-id-indexed (and single-corner: the primary
        // lane); permute the slot-major slabs back through `slot_of`.
        let required: Vec<[f64; 2]> = (0..self.slot_of.len())
            .map(|net| bw.required[self.slot_of[net] as usize * nc])
            .collect();
        let arrival: Vec<[f64; 2]> = (0..self.slot_of.len())
            .map(|net| fwd.arrival[self.slot_of[net] as usize * nc])
            .collect();
        SlackReport::from_parts(bw.tc_ps, required, arrival)
    }

    // ---- forward internals ----

    /// Exact per-net load under the current sizing; identical summation
    /// order to the full pass for bit-equality (the flattened fanout
    /// array preserves the circuit's load-pin order). Takes the raw net
    /// index so whole-array sweeps need no id round-trip.
    fn recompute_net_load(&self, fwd: &mut ForwardState, net: usize) {
        let mut load = 0.0;
        let (lo, hi) = (
            self.fanout_off[net] as usize,
            self.fanout_off[net + 1] as usize,
        );
        for &g in &self.fanout[lo..hi] {
            load += self.sizing.cin_ff(g);
        }
        if self.is_po[net] {
            load += self.options.po_load_ff;
        }
        fwd.load[self.slot_of[net] as usize] = load;
    }

    /// Rank-keyed forward mark, used only while a flush materializes
    /// the seed logs and while its drain expands cones.
    fn mark_dirty(&self, fwd: &mut ForwardState, gate: GateId) {
        let rank = self.rank[gate.index()];
        let (word, bit) = (rank as usize / 64, rank % 64);
        if fwd.dirty_bits[word] & (1u64 << bit) == 0 {
            fwd.dirty_bits[word] |= 1u64 << bit;
            fwd.dirty_count += 1;
            if rank < fwd.min_dirty_rank {
                fwd.min_dirty_rank = rank;
            }
        }
    }

    /// The forward side of the lazy flush: a no-op when the forward
    /// state already reflects the current mutation generation;
    /// otherwise one merged propagation covers every mutation since the
    /// last forward query. A generation bump with no forward seeds
    /// (e.g. a constraint change) is settled without flushing.
    fn flush_forward(&self) {
        let mut fwd = self.fwd.borrow_mut();
        if fwd.flushed_gen == self.gen {
            return;
        }
        fwd.flushed_gen = self.gen;
        if !fwd.scan_loads
            && !fwd.reload_pos
            && !fwd.reslope_pis
            && fwd.resized_log.is_empty()
            && fwd.gate_log.is_empty()
        {
            return;
        }
        let mut guard = self.backward.borrow_mut();
        self.run_forward_flush(&mut fwd, guard.as_mut());
    }

    /// Materialize the forward seed logs into the rank bitset, then
    /// drain it in ascending rank order; propagation stops where a
    /// gate's re-evaluated output is bit-identical to its cached state.
    /// Mirrors the backward flush's budgeted cut-over: once the cone
    /// covers most of the ranks, a straight full topo sweep (no bitset
    /// bookkeeping, no fanout marking) finishes cheaper than the drain
    /// — and is bit-identical, because a topo-order pass gives every
    /// gate final fanin values and unchanged gates reproduce their
    /// cached bits exactly. Backward cones are *not*
    /// drained here — the seeds the walk deposits into `bw` (slope,
    /// delay and arrival changes) stay pending until the next backward
    /// query's lazy flush.
    fn run_forward_flush(&self, fwd: &mut ForwardState, mut bw: Option<&mut BackwardState>) {
        let n_gates = self.topo.len();
        let n_nets = self.net_driver.len();

        // Materialize the pending seeds. Loads are recomputed exactly
        // (same summation order as the full pass — no delta
        // accumulation); marking is unconditional where the eager
        // engine marked unconditionally, so the convergence cut — not
        // the seeding — decides what actually re-evaluates.
        if fwd.scan_loads {
            fwd.scan_loads = false;
            // Surgery changed connectivity: recompare every net's load
            // against its cached (pre-edit) value and treat a changed
            // net like a resized fanin net — its driver re-times and
            // its backward state re-derives (arcs through the driver
            // moved with its output load).
            for net in 0..n_nets {
                let slot = self.slot_of[net] as usize;
                let old = fwd.load[slot];
                self.recompute_net_load(fwd, net);
                if old.to_bits() == fwd.load[slot].to_bits() {
                    continue;
                }
                if let Some(driver) = self.net_driver[net] {
                    self.mark_dirty(fwd, driver);
                    if let Some(bw) = bw.as_deref_mut() {
                        bw.resized_log.push(driver);
                        bw.comp_gate_log.push(driver);
                    }
                }
            }
        }
        if fwd.reload_pos {
            fwd.reload_pos = false;
            for i in 0..self.pos.len() {
                let net = self.pos[i];
                self.recompute_net_load(fwd, net.index());
                if let Some(driver) = self.net_driver[net.index()] {
                    self.mark_dirty(fwd, driver);
                }
            }
        }
        if fwd.reslope_pis {
            fwd.reslope_pis = false;
            let nc = self.corner_libs.len();
            for i in 0..self.pis.len() {
                let pi = self.pis[i];
                let slot = self.slot(pi);
                for c in 0..nc {
                    for e in EDGES {
                        fwd.slope[slot * nc + c][eidx(e)] = self.options.input_transition_ps;
                    }
                }
                let (lo, hi) = (self.fanout_off[pi.index()], self.fanout_off[pi.index() + 1]);
                for j in lo..hi {
                    self.mark_dirty(fwd, self.fanout[j as usize]);
                }
            }
        }
        let mut resized = std::mem::take(&mut fwd.resized_log);
        for gate in resized.drain(..) {
            // The fanin nets' loads moved with the gate's C_IN: their
            // drivers re-time, and the gate's own drive changed.
            let (lo, hi) = (
                self.fanin_off[gate.index()] as usize,
                self.fanin_off[gate.index() + 1] as usize,
            );
            for i in lo..hi {
                let in_net = self.fanin[i];
                self.recompute_net_load(fwd, in_net.index());
                if let Some(driver) = self.net_driver[in_net.index()] {
                    self.mark_dirty(fwd, driver);
                }
            }
            self.mark_dirty(fwd, gate);
        }
        fwd.resized_log = resized;
        let mut gate_log = std::mem::take(&mut fwd.gate_log);
        for gate in gate_log.drain(..) {
            self.mark_dirty(fwd, gate);
        }
        fwd.gate_log = gate_log;

        // Budgeted drain (see the doc comment). The forward budget sits
        // at ¾ of the ranks — far looser than the backward flush's ⅓ —
        // because `eval_gate` already hoists its arc terms once per
        // *gate*: the sweep saves only the bitset bookkeeping and
        // fanout marking, so it wins only when nearly every rank is
        // dirty (option rescans, post-surgery load scans, wide batch
        // unions), never on merged probe cones. For the same reason the
        // cut-over is decided *only* here, at materialization time —
        // every gate drains at most once, so finishing a started drain
        // is always ≤ n evaluations plus marking, while bailing
        // mid-drain would re-pay the drained prefix on top of the full
        // sweep. (The backward drain pays its hoisting once per *pin*,
        // which is why its sweep breaks even a third of the way in and
        // is still worth bailing to mid-drain.)
        let budget = Self::budget(n_gates, self.fwd_budget);
        let mut reevals = 0usize;
        let mut cuts = 0usize;
        let mut any_changed = false;
        let mut sweep = fwd.dirty_count >= budget;
        if !sweep && fwd.dirty_count > 0 {
            // Adaptive cut-over: sweep when the seed set's level-span
            // closure estimate alone blows the budget (spread seeds on
            // the synthetic fabrics; see `forward_closure_estimate`).
            sweep = self.forward_closure_estimate(fwd) >= budget;
        }
        let mut recovered_panic = false;
        if !sweep && fwd.dirty_count > 0 {
            match self.drain_forward(fwd, bw.as_deref_mut()) {
                Ok((r, c, a)) => {
                    reevals = r;
                    cuts = c;
                    any_changed = a;
                }
                Err(RecoveredPanic) => recovered_panic = true,
            }
        }
        fwd.min_dirty_rank = u32::MAX;
        if sweep && !recovered_panic {
            match self.full_forward_sweep(fwd, bw.as_deref_mut(), self.use_parallel(n_gates)) {
                Ok(a) => {
                    any_changed = a;
                    fwd.dirty_bits.iter_mut().for_each(|w| *w = 0);
                    fwd.dirty_count = 0;
                    reevals += n_gates;
                }
                Err(RecoveredPanic) => recovered_panic = true,
            }
        }
        // Post-flush audit, armed only (zero cost otherwise): a NaN the
        // fault layer injected into an eval's load lands in the slope
        // slab at minimum (`arc_terms` propagates it into `tau_out`),
        // so one scan over the forward slabs catches every poisoned
        // pass even when it completed without panicking.
        let poisoned =
            !recovered_panic && crate::faultinject::armed() && Self::forward_slabs_poisoned(fwd);
        if recovered_panic || poisoned {
            // Recovery: the partially written (or poisoned) slabs are
            // unusable and the seed bookkeeping consumed mid-pass no
            // longer describes what is stale — discard wholesale and
            // rebuild from the ground truth with the infallible
            // sequential pass, then invalidate the backward state (its
            // partial seeds under-report relative to the rebuilt
            // forward slabs).
            self.recover_forward(fwd, bw);
            reevals += n_gates;
            any_changed = true;
            self.stat(|s| {
                if recovered_panic {
                    s.panic_recoveries += 1;
                }
                s.sequential_fallbacks += 1;
            });
        }
        self.stat(|s| {
            s.forward_flushes += 1;
            s.gates_reevaluated += reevals;
            s.converged_early += cuts;
        });
        if any_changed {
            self.recompute_critical(fwd);
        }
    }

    /// Whether any forward slab holds a NaN — the armed-only poison
    /// audit ([`crate::faultinject`] injects NaN loads; the policy slabs
    /// never hold NaN legitimately, see the finiteness rules
    /// [`TimingGraph::verify_state`] enforces).
    fn forward_slabs_poisoned(fwd: &ForwardState) -> bool {
        fwd.load.iter().any(|l| l.is_nan())
            || fwd.gate_delay_worst.iter().any(|d| d.is_nan())
            || fwd.slope.iter().any(|s| s[0].is_nan() || s[1].is_nan())
            || fwd.arrival.iter().any(|a| a[0].is_nan() || a[1].is_nan())
    }

    /// Rebuild the forward state from the ground truth (circuit,
    /// sizing, options) after a caught worker panic or a detected
    /// poison: discard every pending mark and seed, recompute all net
    /// loads, re-initialize the source slots and run the sequential
    /// full sweep — the same pass construction runs, so the result is
    /// bit-identical to a fresh build. Any maintained backward state is
    /// invalidated wholesale: the change flags of the rebuild are
    /// relative to corrupted values, so per-cone seeds would
    /// under-report.
    fn recover_forward(&self, fwd: &mut ForwardState, bw: Option<&mut BackwardState>) {
        let n_gates = self.topo.len();
        let n_nets = self.net_driver.len();
        let nc = self.corner_libs.len();
        fwd.dirty_bits.iter_mut().for_each(|w| *w = 0);
        fwd.dirty_count = 0;
        fwd.min_dirty_rank = u32::MAX;
        fwd.resized_log.clear();
        fwd.gate_log.clear();
        fwd.scan_loads = false;
        fwd.reload_pos = false;
        fwd.reslope_pis = false;
        for net in 0..n_nets {
            self.recompute_net_load(fwd, net);
        }
        for i in 0..self.pis.len() {
            let pi = self.pis[i];
            let slot = self.slot_of[pi.index()] as usize;
            for c in 0..nc {
                for e in EDGES {
                    fwd.arrival[slot * nc + c][eidx(e)] = 0.0;
                    fwd.slope[slot * nc + c][eidx(e)] = self.options.input_transition_ps;
                }
            }
        }
        let swept = self.full_forward_sweep(fwd, None, false);
        debug_assert!(swept.is_ok(), "the sequential sweep is infallible");
        if let Some(bw) = bw {
            // `mark_all_*` subsume and discard the pending seed logs
            // and schedule the wholesale index refold.
            Self::mark_all_required(bw, n_gates, &self.pis);
            Self::mark_all_completion(bw, n_gates);
        }
    }

    /// Assemble the read-only circuit-array view the per-gate kernel
    /// ([`crate::parallel`]) consumes. Borrows only `Sync` arrays — the
    /// `RefCell`s stay behind on the graph.
    fn eval_ctx(&self) -> EvalCtx<'_> {
        EvalCtx {
            topo: &self.topo,
            cell: &self.cell,
            gate_params: &self.gate_params,
            n_corners: self.corner_libs.len(),
            vt_class: &self.vt_class,
            fanin: &self.fanin,
            fanin_slots: &self.fanin_slots,
            fanin_off: &self.fanin_off,
            cins: self.sizing.as_slice(),
            n_src: self.n_src,
            out_net: &self.out_net,
            fanout: &self.fanout,
            fanout_off: &self.fanout_off,
            rank: &self.rank,
            is_po: &self.is_po,
            libs: &self.corner_libs,
        }
    }

    /// Deposit the lazy backward seeds the kernel's change flags call
    /// for — plain log appends, exactly the old eager engine's: arcs
    /// *from* the output net move with its slope; the gate's completion
    /// bound with its worst delay; the net's worst-slack leaf with its
    /// arrival. Called by the coordinator only (workers return flags).
    fn push_bw_seeds(&self, bw: &mut BackwardState, pos: usize, flags: u8) {
        let gid = self.topo[pos];
        if flags & F_SLOPE != 0 {
            bw.req_net_log.push(self.out_net[gid.index()]);
        }
        if flags & F_DELAY != 0 {
            bw.comp_gate_log.push(gid);
        }
        if flags & F_ARRIVAL != 0 {
            bw.slack_net_log.push(self.out_net[gid.index()]);
        }
    }

    /// Mark the fanout ranks of the gate at `pos` into a raw dirty
    /// bitset (the drain's cone expansion; `min_dirty_rank` needs no
    /// update — fanouts rank strictly above the cursor, and the drain
    /// resets the minimum when it finishes).
    fn mark_fanouts_raw(&self, bits: &mut [u64], count: &mut usize, pos: usize) {
        let out = self.out_net[self.topo[pos].index()].index();
        let (lo, hi) = (
            self.fanout_off[out] as usize,
            self.fanout_off[out + 1] as usize,
        );
        for &g in &self.fanout[lo..hi] {
            let r = self.rank[g.index()] as usize;
            let (word, bit) = (r / 64, r % 64);
            if bits[word] & (1u64 << bit) == 0 {
                bits[word] |= 1u64 << bit;
                *count += 1;
            }
        }
    }

    /// Drain the forward dirty bitset in ascending rank order; returns
    /// `(reevals, cuts, any_changed)`. Above the parallel threshold the
    /// drain walks dirty *levels*: gather one level's dirty positions,
    /// evaluate them across the pool (inline when the batch is tiny),
    /// expand cones into strictly higher levels, barrier, repeat — the
    /// cone never re-marks at or below the level being evaluated, so
    /// level order is rank order. Below the threshold (or with one
    /// thread) the classic single-cursor `trailing_zeros` walk runs the
    /// same kernel; the two paths are bit-identical by construction.
    ///
    /// # Errors
    ///
    /// [`RecoveredPanic`] when the worker pool panicked mid-drain (the
    /// pool is already drained); the slabs and dirty bookkeeping are
    /// then partially written and the caller must rebuild through
    /// [`TimingGraph::recover_forward`]. The sequential path is
    /// infallible.
    fn drain_forward(
        &self,
        fwd: &mut ForwardState,
        mut bw: Option<&mut BackwardState>,
    ) -> Result<(usize, usize, bool), RecoveredPanic> {
        let ForwardState {
            arrival,
            slope,
            pred,
            load,
            gate_delay_worst,
            dirty_bits,
            dirty_count,
            min_dirty_rank,
            ..
        } = fwd;
        let ctx = self.eval_ctx();
        let mut view = FwdView::new(arrival, slope, pred, load, gate_delay_worst);
        let mut reevals = 0usize;
        let mut changed = 0usize;
        if self.use_parallel(self.topo.len()) {
            let n_levels = self.level_start.len() - 1;
            let mut positions: Vec<u32> = Vec::new();
            let audited = self.audit_begin(false);
            let run = run_parallel(&ctx, &mut view, self.threads(), |d| {
                let mut level = self.level_of(*min_dirty_rank);
                while *dirty_count > 0 && level < n_levels {
                    // Fault-injection point: between level barriers every
                    // worker is parked at the start barrier, so an
                    // injected panic unwinds through `run_parallel`'s
                    // `catch_unwind` and its shutdown releases the pool
                    // cleanly — no barrier deadlock.
                    crate::faultinject::on_dispatch();
                    let lvl = level;
                    let (lo, hi) = (self.level_start[level], self.level_start[level + 1]);
                    level += 1;
                    positions.clear();
                    gather_range(dirty_bits, lo, hi, &mut positions);
                    if positions.is_empty() {
                        continue;
                    }
                    *dirty_count -= positions.len();
                    reevals += positions.len();
                    if positions.len() < PAR_LEVEL_MIN {
                        for &p in &positions {
                            let pos = p as usize;
                            let f = d.eval_one(pos);
                            if f & F_OUT_CHANGED != 0 {
                                changed += 1;
                                self.mark_fanouts_raw(dirty_bits, dirty_count, pos);
                            }
                            if f != 0 {
                                if let Some(bw) = bw.as_deref_mut() {
                                    self.push_bw_seeds(bw, pos, f);
                                }
                            }
                        }
                    } else {
                        for &(pos, f) in d.eval_list(&mut positions) {
                            if f & F_OUT_CHANGED != 0 {
                                changed += 1;
                                self.mark_fanouts_raw(dirty_bits, dirty_count, pos as usize);
                            }
                            if let Some(bw) = bw.as_deref_mut() {
                                self.push_bw_seeds(bw, pos as usize, f);
                            }
                        }
                    }
                    // Workers are parked again: verify this level's
                    // shadow-access batch at the barrier.
                    crate::audit::check_level(lvl);
                }
            });
            self.audit_end(audited);
            if run.is_err() {
                return Err(RecoveredPanic);
            }
        } else {
            let mut word = *min_dirty_rank as usize / 64;
            while *dirty_count > 0 {
                // Re-read each round: processing a gate may mark ranks
                // within the current word (always above the bit just
                // cleared).
                let bits = dirty_bits[word];
                if bits == 0 {
                    word += 1;
                    continue;
                }
                let bit = bits.trailing_zeros();
                dirty_bits[word] &= !(1u64 << bit);
                *dirty_count -= 1;
                let pos = word * 64 + bit as usize;
                reevals += 1;
                let f = view.eval_gate(&ctx, pos);
                if f & F_OUT_CHANGED != 0 {
                    changed += 1;
                    self.mark_fanouts_raw(dirty_bits, dirty_count, pos);
                }
                if f != 0 {
                    if let Some(bw) = bw.as_deref_mut() {
                        self.push_bw_seeds(bw, pos, f);
                    }
                }
            }
        }
        Ok((reevals, reevals - changed, changed > 0))
    }

    /// Evaluate every gate once in topological order — exactly the full
    /// pass of `analyze_with` — streaming the slabs in memory order.
    /// With `parallel` set each level is one pool dispatch (tiny levels
    /// evaluate inline between barriers); the recovery path passes
    /// `false` to force the infallible sequential pass. Returns whether
    /// any output moved. The caller clears the dirty bitset: a full
    /// sweep subsumes every pending mark.
    ///
    /// # Errors
    ///
    /// [`RecoveredPanic`] as [`TimingGraph::drain_forward`] (parallel
    /// path only).
    fn full_forward_sweep(
        &self,
        fwd: &mut ForwardState,
        mut bw: Option<&mut BackwardState>,
        parallel: bool,
    ) -> Result<bool, RecoveredPanic> {
        let ForwardState {
            arrival,
            slope,
            pred,
            load,
            gate_delay_worst,
            ..
        } = fwd;
        let ctx = self.eval_ctx();
        let mut view = FwdView::new(arrival, slope, pred, load, gate_delay_worst);
        let n_gates = self.topo.len();
        let mut any_changed = false;
        if parallel {
            let n_levels = self.level_start.len() - 1;
            let audited = self.audit_begin(false);
            let run = run_parallel(&ctx, &mut view, self.threads(), |d| {
                for level in 0..n_levels {
                    // Injected-panic point: workers parked, deadlock-free.
                    crate::faultinject::on_dispatch();
                    let (lo, hi) = (self.level_start[level], self.level_start[level + 1]);
                    if (hi - lo) < PAR_LEVEL_MIN as u32 {
                        for pos in lo as usize..hi as usize {
                            let f = d.eval_one(pos);
                            any_changed |= f & F_OUT_CHANGED != 0;
                            if f != 0 {
                                if let Some(bw) = bw.as_deref_mut() {
                                    self.push_bw_seeds(bw, pos, f);
                                }
                            }
                        }
                    } else {
                        for &(pos, f) in d.eval_range(lo, hi) {
                            any_changed |= f & F_OUT_CHANGED != 0;
                            if let Some(bw) = bw.as_deref_mut() {
                                self.push_bw_seeds(bw, pos as usize, f);
                            }
                        }
                    }
                    // Workers parked again: verify this level's batch.
                    crate::audit::check_level(level);
                }
            });
            self.audit_end(audited);
            if run.is_err() {
                return Err(RecoveredPanic);
            }
        } else {
            for pos in 0..n_gates {
                let f = view.eval_gate(&ctx, pos);
                any_changed |= f & F_OUT_CHANGED != 0;
                if f != 0 {
                    if let Some(bw) = bw.as_deref_mut() {
                        self.push_bw_seeds(bw, pos, f);
                    }
                }
            }
        }
        Ok(any_changed)
    }

    /// Same worst-output scan (and tie-breaking order) as the full
    /// pass, run independently per corner.
    fn recompute_critical(&self, fwd: &mut ForwardState) {
        let nc = self.corner_libs.len();
        for c in 0..nc {
            let mut critical: Option<(NetId, Edge, f64)> = None;
            for &po in &self.pos {
                for e in EDGES {
                    let t = fwd.arrival[self.slot(po) * nc + c][eidx(e)];
                    if t > critical.map(|(_, _, cr)| cr).unwrap_or(f64::NEG_INFINITY) {
                        critical = Some((po, e, t));
                    }
                }
            }
            fwd.critical_net[c] = critical.map(|(n, e, _)| (n, e));
        }
    }

    // ---- backward internals ----

    /// Log a net whose required times must re-derive at the next flush
    /// (no-op without backward state).
    fn log_required_net(&mut self, net: NetId) {
        if let Some(bw) = self.backward.get_mut().as_mut() {
            bw.req_net_log.push(net);
        }
    }

    /// Rank-keyed required-mark, used by the flush when it materializes
    /// the seed logs and while its drain expands cones. Driven nets key
    /// on their driver's rank; primary-input nets go to the sink list.
    fn mark_required_in(
        bw: &mut BackwardState,
        rank: &[u32],
        net_driver: &[Option<GateId>],
        net: NetId,
    ) {
        match net_driver[net.index()] {
            Some(driver) => {
                let r = rank[driver.index()];
                let (word, bit) = (r as usize / 64, r % 64);
                if bw.req_bits[word] & (1u64 << bit) == 0 {
                    bw.req_bits[word] |= 1u64 << bit;
                    bw.req_count += 1;
                    if r > bw.req_max_rank {
                        bw.req_max_rank = r;
                    }
                }
            }
            None => {
                let i = net.index();
                let (word, bit) = (i / 64, i % 64);
                if bw.pi_bits[word] & (1u64 << bit) == 0 {
                    bw.pi_bits[word] |= 1u64 << bit;
                    bw.pi_dirty.push(net);
                }
            }
        }
    }

    /// Rank-keyed completion-mark (flush-internal, as
    /// [`TimingGraph::mark_required_in`]).
    fn mark_completion_in(bw: &mut BackwardState, rank: &[u32], gate: GateId) {
        let r = rank[gate.index()];
        let (word, bit) = (r as usize / 64, r % 64);
        if bw.comp_bits[word] & (1u64 << bit) == 0 {
            bw.comp_bits[word] |= 1u64 << bit;
            bw.comp_count += 1;
            if r > bw.comp_max_rank {
                bw.comp_max_rank = r;
            }
        }
    }

    /// Invalidate the whole backward state *lazily*: mark every driven
    /// net, primary input and gate dirty and schedule a wholesale
    /// worst-slack refold, without draining — the next backward query
    /// pays one full backward pass. Used where incremental seeding is
    /// unsound: constraint changes (required times are subtract-chains
    /// from `tc`, not offsets) and option changes (every primary-output
    /// arc and/or source arc moves).
    fn invalidate_backward(&mut self) {
        let n_gates = self.topo.len();
        let pis = &self.pis;
        let Some(bw) = self.backward.get_mut().as_mut() else {
            return;
        };
        Self::mark_all_required(bw, n_gates, pis);
        Self::mark_all_completion(bw, n_gates);
    }

    /// Mark every driven net and primary input required-dirty and
    /// schedule the wholesale index refold; pending required seed logs
    /// are subsumed and discarded. The flush recognizes the saturated
    /// count and runs the gate-centric full sweep directly.
    fn mark_all_required(bw: &mut BackwardState, n_gates: usize, pis: &[NetId]) {
        for r in 0..n_gates {
            bw.req_bits[r / 64] |= 1u64 << (r % 64);
        }
        bw.req_count = n_gates;
        if n_gates > 0 {
            bw.req_max_rank = (n_gates - 1) as u32;
        }
        for &pi in pis {
            let i = pi.index();
            if bw.pi_bits[i / 64] & (1u64 << (i % 64)) == 0 {
                bw.pi_bits[i / 64] |= 1u64 << (i % 64);
                bw.pi_dirty.push(pi);
            }
        }
        bw.resized_log.clear();
        bw.req_net_log.clear();
        bw.slack_net_log.clear();
        bw.refold_all = true;
    }

    /// Mark every gate completion-dirty; pending completion seed logs
    /// are subsumed and discarded.
    fn mark_all_completion(bw: &mut BackwardState, n_gates: usize) {
        for r in 0..n_gates {
            bw.comp_bits[r / 64] |= 1u64 << (r % 64);
        }
        bw.comp_count = n_gates;
        if n_gates > 0 {
            bw.comp_max_rank = (n_gates - 1) as u32;
        }
        bw.comp_gate_log.clear();
    }

    /// The required-time side of the lazy flush: drain the accumulated
    /// required seeds in *descending* rank order, then fold the moved
    /// slacks into the worst-slack index. A no-op when that state
    /// already reflects the current mutation generation; otherwise one
    /// merged reverse propagation covers every mutation since the last
    /// slack/required query. **Two-phase**: the forward state flushes
    /// first — required times derive from final slopes and loads, and
    /// the forward drain is what deposits this flush's arrival/slope
    /// seeds. Propagation stops where a recomputed required time is
    /// bit-identical to its cached value; marks always target strictly
    /// lower ranks (a driver's fanins rank below it), so one descending
    /// cursor visits every dirty entry in dependency order.
    fn flush_required(&self) {
        self.flush_forward();
        let fwd = self.fwd.borrow();
        let mut guard = self.backward.borrow_mut();
        let Some(bw) = guard.as_mut() else {
            return;
        };
        if bw.req_flushed_gen == self.gen {
            return;
        }
        bw.req_flushed_gen = self.gen;

        let mut req_reevals = 0usize;
        let mut req_cuts = 0usize;
        let mut index_updates = 0usize;

        // Cut-over budget. The per-net drain pays each fanout gate's
        // hoisted arc terms once per *pin* plus the change-marking; the
        // gate-centric full sweep pays them once per *gate* with no
        // marking at all — so once the drain has walked about a third
        // of the ranks (seeds keep expanding toward the primary
        // inputs), finishing with the full sweep is cheaper than
        // letting the bookkeeping run. Seed counts far past the budget
        // skip the drain attempt entirely.
        let n_gates_total = self.topo.len();
        let budget = Self::budget(n_gates_total, self.bwd_budget);

        // Materialize the seed logs into the rank-keyed dirty set —
        // unless the counts already guarantee the sweep, in which case
        // the marks would be discarded unread (the skip bound scales
        // with the configured budget: 1.5× covers the log's duplicate
        // slack). A resized gate expands to its fanin nets (arcs
        // through it moved with its C_IN) and its fanin drivers' fanin
        // nets (their output loads moved).
        let log_bound = bw.req_net_log.len() + 6 * bw.resized_log.len();
        let mut req_sweep = bw.req_count >= budget || log_bound > budget.saturating_mul(3) / 2;
        if req_sweep {
            bw.req_net_log.clear();
            bw.resized_log.clear();
        } else if !bw.req_net_log.is_empty() || !bw.resized_log.is_empty() {
            let mut req_log = std::mem::take(&mut bw.req_net_log);
            for net in req_log.drain(..) {
                Self::mark_required_in(bw, &self.rank, &self.net_driver, net);
            }
            bw.req_net_log = req_log;
            let mut resized = std::mem::take(&mut bw.resized_log);
            for gate in resized.drain(..) {
                let (lo, hi) = (
                    self.fanin_off[gate.index()] as usize,
                    self.fanin_off[gate.index() + 1] as usize,
                );
                for &in_net in &self.fanin[lo..hi] {
                    Self::mark_required_in(bw, &self.rank, &self.net_driver, in_net);
                    if let Some(driver) = self.net_driver[in_net.index()] {
                        let (dlo, dhi) = (
                            self.fanin_off[driver.index()] as usize,
                            self.fanin_off[driver.index() + 1] as usize,
                        );
                        for &d_net in &self.fanin[dlo..dhi] {
                            Self::mark_required_in(bw, &self.rank, &self.net_driver, d_net);
                        }
                    }
                }
            }
            bw.resized_log = resized;
            req_sweep = bw.req_count >= budget;
        }

        // Adaptive cut-over: the static budget only sees the seed
        // *count*, which wildly underestimates the drain on spread seed
        // sets whose fanin closure is nearly the whole circuit (the
        // synthetic fabrics' 0.25-fraction calibration regime).
        // Estimate the closure from the seed set's level span and go
        // straight to the sweep when it alone would blow the budget.
        if !req_sweep && bw.req_count > 0 {
            req_sweep = self.backward_closure_estimate(&bw.req_bits, bw.req_count) >= budget;
        }

        // Required times over driven nets, highest driver rank first.
        // The parallel drain reports changed nets' refreshed
        // worst-slack leaf keys here (computed by the workers) instead
        // of the slack log; a bail to the sweep drops the batch —
        // `refold_all` subsumes it.
        let mut leaf_updates: Vec<(usize, f64)> = Vec::new();
        if !req_sweep && bw.req_count > 0 {
            if self.use_parallel(n_gates_total) {
                req_sweep = match self.drain_required_parallel(
                    &fwd,
                    bw,
                    budget,
                    &mut req_reevals,
                    &mut req_cuts,
                    &mut leaf_updates,
                ) {
                    Ok(bailed) => bailed,
                    // A caught worker panic: the required slab and the
                    // dirty bookkeeping are partial — the full sweep
                    // below reinitializes and rebuilds all of it (and
                    // `refold_all` discards the partial leaf batch).
                    Err(RecoveredPanic) => {
                        self.stat(|s| {
                            s.panic_recoveries += 1;
                            s.sequential_fallbacks += 1;
                        });
                        true
                    }
                };
            } else {
                // Hoist the kernel context and view once: rebuilding
                // the slice bundle per net dominates the small probe
                // cones this path exists for.
                let BackwardState {
                    tc_ps,
                    required,
                    completion,
                    req_bits,
                    req_count,
                    req_max_rank,
                    pi_bits,
                    pi_dirty,
                    slack_net_log,
                    ..
                } = &mut *bw;
                let ctx = self.eval_ctx();
                let mut view = BwdView::new(
                    required,
                    completion,
                    &fwd.arrival,
                    &fwd.slope,
                    &fwd.load,
                    &fwd.gate_delay_worst,
                    *tc_ps,
                );
                let mut word = *req_max_rank as usize / 64;
                loop {
                    // Re-read each round: processing a net may mark
                    // ranks within the current word (always below the
                    // bit just cleared).
                    let bits = req_bits[word];
                    if bits == 0 {
                        if word == 0 {
                            break;
                        }
                        word -= 1;
                        continue;
                    }
                    let bit = 63 - bits.leading_zeros();
                    req_bits[word] &= !(1u64 << bit);
                    *req_count -= 1;
                    let pos = word * 64 + bit as usize;
                    let net = self.out_net[self.topo[pos].index()];
                    req_reevals += 1;
                    let (changed, _key) = view.eval_required_net(&ctx, net.index(), self.slot(net));
                    if changed {
                        slack_net_log.push(net);
                        self.mark_required_fanins_raw(req_bits, req_count, pi_bits, pi_dirty, pos);
                    } else {
                        req_cuts += 1;
                    }
                    if *req_count == 0 {
                        break;
                    }
                    if req_reevals >= budget {
                        // The cone saturated mid-drain: bail to the
                        // sweep.
                        req_sweep = true;
                        break;
                    }
                }
            }
            bw.req_max_rank = 0;
        }

        if req_sweep {
            // Gate-centric full backward pass: same candidate multiset
            // per net as the drain would deliver (a min over one
            // multiset is order-independent — bit-identical), at
            // once-per-gate hoisting cost. Subsumes the PI sinks and
            // every pending mark.
            if self.sweep_required_full(&fwd, bw) {
                self.stat(|s| {
                    s.panic_recoveries += 1;
                    s.sequential_fallbacks += 1;
                });
            }
            bw.req_bits.iter_mut().for_each(|w| *w = 0);
            bw.req_count = 0;
            bw.req_max_rank = 0;
            bw.pi_bits.iter_mut().for_each(|w| *w = 0);
            bw.pi_dirty.clear();
            // The sweep bypasses per-net change detection, so the moved
            // slacks are unknown: refold the index wholesale below.
            bw.refold_all = true;
            req_reevals += self.slot_of.len();
        } else if !bw.pi_dirty.is_empty() {
            // Primary-input nets: backward sinks, nothing propagates
            // further.
            let BackwardState {
                tc_ps,
                required,
                completion,
                pi_bits,
                pi_dirty,
                slack_net_log,
                ..
            } = &mut *bw;
            let ctx = self.eval_ctx();
            let mut view = BwdView::new(
                required,
                completion,
                &fwd.arrival,
                &fwd.slope,
                &fwd.load,
                &fwd.gate_delay_worst,
                *tc_ps,
            );
            for net in pi_dirty.drain(..) {
                let i = net.index();
                pi_bits[i / 64] &= !(1u64 << (i % 64));
                req_reevals += 1;
                let (changed, _key) = view.eval_required_net(&ctx, i, self.slot(net));
                if changed {
                    slack_net_log.push(net);
                } else {
                    req_cuts += 1;
                }
            }
        }

        // Fold the moved slacks into the tournament tree, now that the
        // required times are final for this generation. The log may
        // repeat a net; the repeat hits the leaf's bit-unchanged early
        // return. Past a quarter of the nets the per-leaf root walks
        // (random access × log n) lose to one linear wholesale refold —
        // which is the old O(nets) fold, paid once per flush instead of
        // once per query.
        // Leaves are keyed by *slot* — a bijection of the nets, so the
        // root min folds the same value multiset as a net-keyed tree
        // (bit-identical worst; surgery re-keys under `refold_all`).
        let n_nets = self.slot_of.len();
        let nc = self.corner_libs.len();
        if bw.refold_all || bw.slack_net_log.len() + leaf_updates.len() > n_nets / 4 {
            bw.refold_all = false;
            bw.slack_net_log.clear();
            let keys: Vec<f64> = (0..n_nets)
                .map(|slot| {
                    WorstSlackIndex::key_over(
                        &bw.required[slot * nc..(slot + 1) * nc],
                        &fwd.arrival[slot * nc..(slot + 1) * nc],
                    )
                })
                .collect();
            bw.worst.rebuild(&keys);
            index_updates += n_nets;
        } else {
            // The parallel drain's worker-folded batch first, then the
            // seed-log stragglers (forward-flush arrival moves, PI
            // sinks). A net may appear in both — same slot, same final
            // key, so the repeat hits the leaf's bit-unchanged early
            // return.
            index_updates += bw.worst.update_batch(&leaf_updates);
            if !bw.slack_net_log.is_empty() {
                let mut log = std::mem::take(&mut bw.slack_net_log);
                for net in log.drain(..) {
                    let slot = self.slot(net);
                    bw.worst.update(
                        slot,
                        WorstSlackIndex::key_over(
                            &bw.required[slot * nc..(slot + 1) * nc],
                            &fwd.arrival[slot * nc..(slot + 1) * nc],
                        ),
                    );
                    index_updates += 1;
                }
                bw.slack_net_log = log;
            }
        }

        self.stat(|s| {
            s.backward_flushes += 1;
            s.required_reevaluated += req_reevals;
            s.required_converged_early += req_cuts;
            s.slack_index_updates += index_updates;
        });
    }

    /// The completion-bound side of the lazy flush (k-paths queries):
    /// drain the accumulated completion seeds in descending rank order,
    /// with the same budgeted cut-over to a straight descending sweep
    /// (dependency order makes re-marking unnecessary there).
    /// Completion bounds depend only on forward state (which this
    /// flush settles first — the two-phase contract), so this flush is
    /// independent of [`TimingGraph::flush_required`] — a slack-only
    /// workload never pays it.
    fn flush_completion(&self) {
        self.flush_forward();
        let fwd = self.fwd.borrow();
        let mut guard = self.backward.borrow_mut();
        let Some(bw) = guard.as_mut() else {
            return;
        };
        if bw.comp_flushed_gen == self.gen {
            return;
        }
        bw.comp_flushed_gen = self.gen;

        let mut comp_reevals = 0usize;
        let n_gates_total = self.topo.len();
        let budget = Self::budget(n_gates_total, self.bwd_budget);

        // Materialize the completion seed log (see `flush_required`).
        let mut comp_sweep =
            bw.comp_count >= budget || bw.comp_gate_log.len() > budget.saturating_mul(3) / 2;
        if comp_sweep {
            bw.comp_gate_log.clear();
        } else if !bw.comp_gate_log.is_empty() {
            let mut log = std::mem::take(&mut bw.comp_gate_log);
            for gate in log.drain(..) {
                Self::mark_completion_in(bw, &self.rank, gate);
            }
            bw.comp_gate_log = log;
            comp_sweep = bw.comp_count >= budget;
        }

        // Adaptive cut-over (see `flush_required`).
        if !comp_sweep && bw.comp_count > 0 {
            comp_sweep = self.backward_closure_estimate(&bw.comp_bits, bw.comp_count) >= budget;
        }

        if !comp_sweep && bw.comp_count > 0 {
            if self.use_parallel(n_gates_total) {
                comp_sweep =
                    match self.drain_completion_parallel(&fwd, bw, budget, &mut comp_reevals) {
                        Ok(bailed) => bailed,
                        // Caught worker panic: the full sweep below
                        // overwrites every completion slot in
                        // dependency order, erasing the partial drain.
                        Err(RecoveredPanic) => {
                            self.stat(|s| {
                                s.panic_recoveries += 1;
                                s.sequential_fallbacks += 1;
                            });
                            true
                        }
                    };
            } else {
                // Hoisted kernel context, as in the required drain.
                let BackwardState {
                    tc_ps,
                    required,
                    completion,
                    comp_bits,
                    comp_count,
                    comp_max_rank,
                    ..
                } = &mut *bw;
                let ctx = self.eval_ctx();
                let mut view = BwdView::new(
                    required,
                    completion,
                    &fwd.arrival,
                    &fwd.slope,
                    &fwd.load,
                    &fwd.gate_delay_worst,
                    *tc_ps,
                );
                let mut word = *comp_max_rank as usize / 64;
                loop {
                    let bits = comp_bits[word];
                    if bits == 0 {
                        if word == 0 {
                            break;
                        }
                        word -= 1;
                        continue;
                    }
                    let bit = 63 - bits.leading_zeros();
                    comp_bits[word] &= !(1u64 << bit);
                    *comp_count -= 1;
                    let pos = word * 64 + bit as usize;
                    comp_reevals += 1;
                    if view.eval_completion_gate(&ctx, pos) {
                        self.mark_completion_fanin_drivers_raw(
                            comp_bits,
                            comp_count,
                            comp_max_rank,
                            pos,
                        );
                    }
                    if *comp_count == 0 {
                        break;
                    }
                    if comp_reevals >= budget {
                        comp_sweep = true;
                        break;
                    }
                }
            }
            bw.comp_max_rank = 0;
        }
        if comp_sweep {
            if self.sweep_completion_full(&fwd, bw) {
                self.stat(|s| {
                    s.panic_recoveries += 1;
                    s.sequential_fallbacks += 1;
                });
            }
            bw.comp_bits.iter_mut().for_each(|w| *w = 0);
            bw.comp_count = 0;
            bw.comp_max_rank = 0;
            comp_reevals += n_gates_total;
        }

        self.stat(|s| {
            s.backward_flushes += 1;
            s.completion_reevaluated += comp_reevals;
        });
    }

    /// Raw-parts form of [`TimingGraph::mark_required_in`] for the
    /// drains that hold a [`BwdView`] over the rest of the backward
    /// state: mark the fanin nets of the gate at topo position `pos`.
    /// Marks target strictly lower levels than `pos`, so `req_max_rank`
    /// needs no maintenance mid-drain.
    fn mark_required_fanins_raw(
        &self,
        req_bits: &mut [u64],
        req_count: &mut usize,
        pi_bits: &mut [u64],
        pi_dirty: &mut Vec<NetId>,
        pos: usize,
    ) {
        let gate = self.topo[pos];
        let (lo, hi) = (
            self.fanin_off[gate.index()] as usize,
            self.fanin_off[gate.index() + 1] as usize,
        );
        for &in_net in &self.fanin[lo..hi] {
            match self.net_driver[in_net.index()] {
                Some(driver) => {
                    let r = self.rank[driver.index()] as usize;
                    if req_bits[r / 64] & (1u64 << (r % 64)) == 0 {
                        req_bits[r / 64] |= 1u64 << (r % 64);
                        *req_count += 1;
                    }
                }
                None => {
                    let i = in_net.index();
                    if pi_bits[i / 64] & (1u64 << (i % 64)) == 0 {
                        pi_bits[i / 64] |= 1u64 << (i % 64);
                        pi_dirty.push(in_net);
                    }
                }
            }
        }
    }

    /// Mark the fanin *drivers* of the gate at topo position `pos`
    /// completion-dirty (raw parts, as
    /// [`TimingGraph::mark_required_fanins_raw`]).
    fn mark_completion_fanin_drivers_raw(
        &self,
        comp_bits: &mut [u64],
        comp_count: &mut usize,
        comp_max_rank: &mut u32,
        pos: usize,
    ) {
        let gate = self.topo[pos];
        let (lo, hi) = (
            self.fanin_off[gate.index()] as usize,
            self.fanin_off[gate.index() + 1] as usize,
        );
        for &in_net in &self.fanin[lo..hi] {
            if let Some(driver) = self.net_driver[in_net.index()] {
                let r = self.rank[driver.index()];
                let (word, bit) = (r as usize / 64, r % 64);
                if comp_bits[word] & (1u64 << bit) == 0 {
                    comp_bits[word] |= 1u64 << bit;
                    *comp_count += 1;
                    if r > *comp_max_rank {
                        *comp_max_rank = r;
                    }
                }
            }
        }
    }

    /// Level-synchronized parallel form of the required drain: gather
    /// one level's dirty driver positions (descending level order),
    /// evaluate them across the pool, mark changed nets' fanins into
    /// strictly lower levels, barrier, repeat — the backward mirror of
    /// [`TimingGraph::drain_forward`]'s parallel path, bit-identical to
    /// the sequential cursor because same-level nets are independent
    /// (their fanout gates live in strictly higher, already-settled
    /// levels) and the evaluated set is schedule-invariant. Changed
    /// nets' refreshed worst-slack keys (computed inside the kernel, on
    /// the workers) accumulate into `leaf_updates` for the caller's
    /// batched index fold. Returns whether the drain bailed to the full
    /// sweep — the caller then discards `leaf_updates` under
    /// `refold_all`.
    ///
    /// # Errors
    ///
    /// [`RecoveredPanic`] when the pool panicked mid-drain (already
    /// drained); the caller must fall back to the full sweep, which
    /// rebuilds everything the partial drain touched.
    fn drain_required_parallel(
        &self,
        fwd: &ForwardState,
        bw: &mut BackwardState,
        budget: usize,
        reevals: &mut usize,
        cuts: &mut usize,
        leaf_updates: &mut Vec<(usize, f64)>,
    ) -> Result<bool, RecoveredPanic> {
        let BackwardState {
            tc_ps,
            required,
            completion,
            req_bits,
            req_count,
            req_max_rank,
            pi_bits,
            pi_dirty,
            ..
        } = bw;
        let ctx = self.eval_ctx();
        let mut view = BwdView::new(
            required,
            completion,
            &fwd.arrival,
            &fwd.slope,
            &fwd.load,
            &fwd.gate_delay_worst,
            *tc_ps,
        );
        let mut bailed = false;
        let mut positions: Vec<u32> = Vec::new();
        let audited = self.audit_begin(true);
        let run = run_parallel_bwd(&ctx, &mut view, self.threads(), |d| {
            let mut level = self.level_of(*req_max_rank) as isize;
            while *req_count > 0 && level >= 0 {
                // Injected-panic point: workers parked, deadlock-free.
                crate::faultinject::on_dispatch();
                let lvl = level as usize;
                let (lo, hi) = (
                    self.level_start[level as usize],
                    self.level_start[level as usize + 1],
                );
                level -= 1;
                positions.clear();
                gather_range(req_bits, lo, hi, &mut positions);
                if positions.is_empty() {
                    continue;
                }
                *req_count -= positions.len();
                *reevals += positions.len();
                if positions.len() < PAR_LEVEL_MIN {
                    for &p in &positions {
                        let pos = p as usize;
                        let (changed, key) = d.eval_required_one(pos);
                        if changed {
                            leaf_updates.push((self.n_src + pos, key));
                            self.mark_required_fanins_raw(
                                req_bits, req_count, pi_bits, pi_dirty, pos,
                            );
                        } else {
                            *cuts += 1;
                        }
                    }
                } else {
                    let dispatched = positions.len();
                    let changed = d.eval_required_list(&mut positions);
                    *cuts += dispatched - changed.len();
                    for &(pos, key) in changed {
                        leaf_updates.push((self.n_src + pos as usize, key));
                        self.mark_required_fanins_raw(
                            req_bits,
                            req_count,
                            pi_bits,
                            pi_dirty,
                            pos as usize,
                        );
                    }
                }
                // Workers parked again: verify this level's batch.
                crate::audit::check_level(lvl);
                if *reevals >= budget && *req_count > 0 {
                    // The cone saturated mid-drain: bail to the sweep.
                    bailed = true;
                    break;
                }
            }
        });
        self.audit_end(audited);
        if run.is_err() {
            return Err(RecoveredPanic);
        }
        Ok(bailed)
    }

    /// Parallel completion drain — the completion mirror of
    /// [`TimingGraph::drain_required_parallel`] (no leaf updates: the
    /// worst-slack index is a required/arrival structure).
    ///
    /// # Errors
    ///
    /// [`RecoveredPanic`] as [`TimingGraph::drain_required_parallel`].
    fn drain_completion_parallel(
        &self,
        fwd: &ForwardState,
        bw: &mut BackwardState,
        budget: usize,
        reevals: &mut usize,
    ) -> Result<bool, RecoveredPanic> {
        let BackwardState {
            tc_ps,
            required,
            completion,
            comp_bits,
            comp_count,
            comp_max_rank,
            ..
        } = bw;
        let ctx = self.eval_ctx();
        let mut view = BwdView::new(
            required,
            completion,
            &fwd.arrival,
            &fwd.slope,
            &fwd.load,
            &fwd.gate_delay_worst,
            *tc_ps,
        );
        let mut bailed = false;
        let mut positions: Vec<u32> = Vec::new();
        let audited = self.audit_begin(true);
        let run = run_parallel_bwd(&ctx, &mut view, self.threads(), |d| {
            let mut level = self.level_of(*comp_max_rank) as isize;
            while *comp_count > 0 && level >= 0 {
                // Injected-panic point: workers parked, deadlock-free.
                crate::faultinject::on_dispatch();
                let lvl = level as usize;
                let (lo, hi) = (
                    self.level_start[level as usize],
                    self.level_start[level as usize + 1],
                );
                level -= 1;
                positions.clear();
                gather_range(comp_bits, lo, hi, &mut positions);
                if positions.is_empty() {
                    continue;
                }
                *comp_count -= positions.len();
                *reevals += positions.len();
                if positions.len() < PAR_LEVEL_MIN {
                    for &p in &positions {
                        let pos = p as usize;
                        if d.eval_completion_one(pos) {
                            self.mark_completion_fanin_drivers_raw(
                                comp_bits,
                                comp_count,
                                comp_max_rank,
                                pos,
                            );
                        }
                    }
                } else {
                    for &(pos, _) in d.eval_completion_list(&mut positions) {
                        self.mark_completion_fanin_drivers_raw(
                            comp_bits,
                            comp_count,
                            comp_max_rank,
                            pos as usize,
                        );
                    }
                }
                // Workers parked again: verify this level's batch.
                crate::audit::check_level(lvl);
                if *reevals >= budget && *comp_count > 0 {
                    bailed = true;
                    break;
                }
            }
        });
        self.audit_end(audited);
        if run.is_err() {
            return Err(RecoveredPanic);
        }
        Ok(bailed)
    }

    /// Gate-centric full backward pass into `bw.required`: reinitialize
    /// every net (`tc` at primary outputs, `+inf` elsewhere) and push
    /// min candidates down the descending topo order, hoisting each
    /// gate's arc terms once — exactly [`crate::required_times`]'s walk
    /// run over the cached constants. Produces the same candidate
    /// multiset per net as the per-net [`TimingGraph::eval_required`],
    /// so the same min and the same bits; used by the flush when every
    /// rank is marked, where the per-pin re-hoisting of the drain would
    /// cost more than this per-gate pass.
    ///
    /// Returns whether a caught worker panic forced the sequential
    /// retry (the caller accounts the recovery): the retry
    /// reinitializes the slab first, so the partially written parallel
    /// pass is erased and the result is bit-identical regardless.
    fn sweep_required_full(&self, fwd: &ForwardState, bw: &mut BackwardState) -> bool {
        let n_gates = self.topo.len();
        let mut recovered = false;
        self.reinit_required_slab(bw);
        {
            let BackwardState {
                tc_ps,
                required,
                completion,
                ..
            } = bw;
            let ctx = self.eval_ctx();
            let mut view = BwdView::new(
                required,
                completion,
                &fwd.arrival,
                &fwd.slope,
                &fwd.load,
                &fwd.gate_delay_worst,
                *tc_ps,
            );
            if self.use_parallel(n_gates) {
                // Descending level barriers: every candidate *into* a level
                // comes from a gate in a strictly higher level (the gate's
                // out-net fans out upward only), so each level's own
                // required slots are settled before its workers read them;
                // workers emit candidates into per-worker buffers and the
                // coordinator min-folds at the barrier — order-independent,
                // so bit-identical to the sequential scatter.
                let n_levels = self.level_start.len() - 1;
                let audited = self.audit_begin(true);
                let run = run_parallel_bwd(&ctx, &mut view, self.threads(), |d| {
                    for level in (0..n_levels).rev() {
                        // Injected-panic point: workers parked,
                        // deadlock-free.
                        crate::faultinject::on_dispatch();
                        let (lo, hi) = (self.level_start[level], self.level_start[level + 1]);
                        if (hi - lo) < PAR_LEVEL_MIN as u32 {
                            for pos in (lo as usize..hi as usize).rev() {
                                d.sweep_gate_one(pos);
                            }
                        } else {
                            d.sweep_gate_range(lo, hi);
                        }
                        // Workers parked and the coordinator's barrier
                        // fold is done: verify this level's batch (own
                        // settled-slot reads plus coordinator-only fold
                        // writes into lower levels).
                        crate::audit::check_level(level);
                    }
                });
                self.audit_end(audited);
                recovered = run.is_err();
            } else {
                for pos in (0..n_gates).rev() {
                    view.sweep_gate_fold(&ctx, pos);
                }
            }
        }
        if recovered {
            // Sequential retry over a fresh slab — infallible, and the
            // min-fold recomputes every slot from the (untouched)
            // forward state.
            self.reinit_required_slab(bw);
            let BackwardState {
                tc_ps,
                required,
                completion,
                ..
            } = bw;
            let ctx = self.eval_ctx();
            let mut view = BwdView::new(
                required,
                completion,
                &fwd.arrival,
                &fwd.slope,
                &fwd.load,
                &fwd.gate_delay_worst,
                *tc_ps,
            );
            for pos in (0..n_gates).rev() {
                view.sweep_gate_fold(&ctx, pos);
            }
        }
        recovered
    }

    /// Reinitialize every net's required slots (`tc` at primary
    /// outputs, `+inf` elsewhere) — the full required sweep's base
    /// case.
    fn reinit_required_slab(&self, bw: &mut BackwardState) {
        let tc = bw.tc_ps;
        let nc = self.corner_libs.len();
        for net in 0..self.slot_of.len() {
            let base = self.slot_of[net] as usize * nc;
            let init = if self.is_po[net] {
                [tc; 2]
            } else {
                [f64::INFINITY; 2]
            };
            bw.required[base..base + nc].fill(init);
        }
    }

    /// Full completion pass into `bw.completion` — one descending
    /// evaluation per gate (dependency order makes re-marking
    /// unnecessary); parallel above the threshold with the same
    /// descending level barriers as [`TimingGraph::sweep_required_full`].
    ///
    /// Returns whether a caught worker panic forced the sequential
    /// retry (as [`TimingGraph::sweep_required_full`]; the retry
    /// overwrites every slot in dependency order, so no reinit is
    /// needed).
    fn sweep_completion_full(&self, fwd: &ForwardState, bw: &mut BackwardState) -> bool {
        let BackwardState {
            tc_ps,
            required,
            completion,
            ..
        } = bw;
        let ctx = self.eval_ctx();
        let mut view = BwdView::new(
            required,
            completion,
            &fwd.arrival,
            &fwd.slope,
            &fwd.load,
            &fwd.gate_delay_worst,
            *tc_ps,
        );
        let n_gates = self.topo.len();
        let mut recovered = false;
        if self.use_parallel(n_gates) {
            let n_levels = self.level_start.len() - 1;
            let audited = self.audit_begin(true);
            let run = run_parallel_bwd(&ctx, &mut view, self.threads(), |d| {
                for level in (0..n_levels).rev() {
                    // Injected-panic point: workers parked, deadlock-free.
                    crate::faultinject::on_dispatch();
                    let (lo, hi) = (self.level_start[level], self.level_start[level + 1]);
                    if (hi - lo) < PAR_LEVEL_MIN as u32 {
                        for pos in (lo as usize..hi as usize).rev() {
                            d.eval_completion_one(pos);
                        }
                    } else {
                        d.sweep_completion_range(lo, hi);
                    }
                    // Workers parked again: verify this level's batch.
                    crate::audit::check_level(level);
                }
            });
            self.audit_end(audited);
            recovered = run.is_err();
        }
        if !self.use_parallel(n_gates) || recovered {
            for pos in (0..n_gates).rev() {
                view.eval_completion_gate(&ctx, pos);
            }
        }
        recovered
    }

    /// `(lowest dirty level, highest, levels hit)` of a rank-keyed
    /// dirty bitset — the adaptive cut-over's seed profile. One
    /// [`range_any`] probe per level: O(levels + words), no clearing.
    fn dirty_level_profile(&self, bits: &[u64]) -> Option<(usize, usize, usize)> {
        let n_levels = self.level_start.len() - 1;
        let mut lo = None;
        let mut hi = 0usize;
        let mut hit = 0usize;
        for level in 0..n_levels {
            if range_any(bits, self.level_start[level], self.level_start[level + 1]) {
                if lo.is_none() {
                    lo = Some(level);
                }
                hi = level;
                hit += 1;
            }
        }
        lo.map(|lo| (lo, hi, hit))
    }

    /// Estimated forward-drain size from the seed set's level span. The
    /// static budget only sees the seed *count*; a spread seed set on a
    /// shallow high-fanout fabric closes over nearly every downstream
    /// rank while counting far below it. When the seeds hit at least
    /// half the levels from their lowest up (the closure keeps
    /// expanding level over level) *and* are dense enough that the
    /// cones must overlap (≥ ¼ of the span — the calibration fabrics'
    /// losing regime, and comfortably above a merged probe union on the
    /// suite circuits, whose bitwise convergence cut keeps true
    /// closures far below the span), the whole remaining rank span is
    /// the expected drain — return it for the caller's `>= budget`
    /// comparison. Anything sparser or shallower returns 0 and leaves
    /// the static budget in charge.
    fn forward_closure_estimate(&self, fwd: &ForwardState) -> usize {
        if fwd.dirty_count < 32 {
            return 0;
        }
        let Some((lo, _hi, hit)) = self.dirty_level_profile(&fwd.dirty_bits) else {
            return 0;
        };
        let n_levels = self.level_start.len() - 1;
        let span = self.topo.len() - self.level_start[lo] as usize;
        if hit * 2 >= n_levels - lo && fwd.dirty_count * 4 >= span {
            span
        } else {
            0
        }
    }

    /// Backward mirror of [`TimingGraph::forward_closure_estimate`]:
    /// the closure expands *downward*, so the span runs from rank 0 to
    /// the end of the highest dirty level.
    fn backward_closure_estimate(&self, bits: &[u64], count: usize) -> usize {
        if count < 32 {
            return 0;
        }
        let Some((_lo, hi, hit)) = self.dirty_level_profile(bits) else {
            return 0;
        };
        let span = self.level_start[hi + 1] as usize;
        if hit * 2 > hi && count * 4 >= span {
            span
        } else {
            0
        }
    }
}

impl TimingView for TimingGraph<'_> {
    fn critical_delay_ps(&self) -> f64 {
        TimingGraph::critical_delay_ps(self)
    }
    fn arrival_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        TimingGraph::arrival_ps(self, net, edge)
    }
    fn slope_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        TimingGraph::slope_ps(self, net, edge)
    }
    fn net_load_ff(&self, net: NetId) -> f64 {
        TimingGraph::net_load_ff(self, net)
    }
    fn gate_delay_worst_ps(&self, gate: GateId) -> f64 {
        TimingGraph::gate_delay_worst_ps(self, gate)
    }
    fn cached_completion_ps(&self) -> Option<Vec<f64>> {
        self.flush_completion();
        // The consumer expects gate-id indexing; permute the rank-major
        // slab back through `rank`.
        let nc = self.corner_libs.len();
        self.backward.borrow().as_ref().map(|bw| {
            (0..self.rank.len())
                .map(|g| bw.completion[self.rank[g] as usize * nc])
                .collect()
        })
    }
    fn cached_required_times(&self, tc_ps: f64, sizing: &Sizing) -> Option<SlackReport> {
        let hit = matches!(
            self.backward.borrow().as_ref(),
            Some(bw) if bw.tc_ps.to_bits() == tc_ps.to_bits() && *sizing == self.sizing
        );
        // `slack_report` flushes the pending lazy seeds itself.
        hit.then(|| self.slack_report())
    }
}

/// Slack queries against the maintained backward state.
///
/// # Panics
///
/// Every method panics unless [`TimingGraph::set_constraint`] was
/// called (the inherent methods carry the same contract).
impl SlackView for TimingGraph<'_> {
    fn constraint_ps(&self) -> f64 {
        self.backward().tc_ps
    }
    fn required_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        TimingGraph::required_ps(self, net, edge)
    }
    fn slack_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        TimingGraph::slack_ps(self, net, edge)
    }
    fn worst_slack_ps(&self, net: NetId) -> f64 {
        TimingGraph::worst_slack_ps(self, net)
    }
    fn worst_slack_overall_ps(&self) -> Option<f64> {
        TimingGraph::worst_slack_overall_ps(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, analyze_with};
    use pops_netlist::builders::{inverter_chain, ripple_carry_adder};
    use pops_netlist::suite;

    fn assert_matches_fresh(graph: &TimingGraph, circuit: &Circuit, lib: &Library) {
        let fresh = analyze_with(circuit, lib, graph.sizing(), graph.options()).unwrap();
        assert_eq!(
            graph.critical_delay_ps().to_bits(),
            fresh.critical_delay_ps().to_bits(),
            "critical delay diverged"
        );
        for net in circuit.net_ids() {
            for dir in [EdgeDir::Rising, EdgeDir::Falling] {
                assert_eq!(
                    graph.arrival_ps(net, dir).to_bits(),
                    fresh.arrival_ps(net, dir).to_bits(),
                    "arrival {net} {dir:?}"
                );
                assert_eq!(
                    graph.slope_ps(net, dir).to_bits(),
                    fresh.slope_ps(net, dir).to_bits(),
                    "slope {net} {dir:?}"
                );
            }
            assert_eq!(
                graph.net_load_ff(net).to_bits(),
                fresh.net_load_ff(net).to_bits(),
                "load {net}"
            );
        }
        for g in circuit.gate_ids() {
            assert_eq!(
                graph.gate_delay_worst_ps(g).to_bits(),
                fresh.gate_delay_worst_ps(g).to_bits(),
                "gate delay {g}"
            );
        }
        assert_eq!(graph.critical_path().gates, fresh.critical_path().gates);
    }

    #[test]
    fn initial_state_matches_full_analysis() {
        let lib = Library::cmos025();
        for c in [inverter_chain(6), ripple_carry_adder(8)] {
            let s = Sizing::minimum(&c, &lib);
            let graph = TimingGraph::new(&c, &lib, &s).unwrap();
            assert_matches_fresh(&graph, &c, &lib);
        }
    }

    #[test]
    fn single_resize_matches_full_analysis() {
        let lib = Library::cmos025();
        let c = ripple_carry_adder(8);
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let mid = c.gate_ids().nth(c.gate_count() / 2).unwrap();
        graph.resize_gate(mid, 5.0 * lib.min_drive_ff());
        assert_matches_fresh(&graph, &c, &lib);
    }

    #[test]
    fn resize_then_revert_restores_the_original_state() {
        let lib = Library::cmos025();
        let c = suite::circuit("fpd").unwrap();
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let before = graph.critical_delay_ps();
        let g = graph.critical_path().gates[2];
        let original = graph.sizing().cin_ff(g);
        graph.resize_gate(g, 8.0 * original);
        assert_ne!(graph.critical_delay_ps().to_bits(), before.to_bits());
        graph.resize_gate(g, original);
        assert_eq!(graph.critical_delay_ps().to_bits(), before.to_bits());
        assert_matches_fresh(&graph, &c, &lib);
    }

    #[test]
    fn batch_resize_matches_full_analysis() {
        let lib = Library::cmos025();
        let c = suite::circuit("c432").unwrap();
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let path = graph.critical_path();
        let changes: Vec<(GateId, f64)> = path
            .gates
            .iter()
            .enumerate()
            .map(|(i, &g)| (g, (2.0 + i as f64 * 0.1) * lib.min_drive_ff()))
            .collect();
        graph.resize_gates(changes);
        assert_matches_fresh(&graph, &c, &lib);
    }

    #[test]
    fn resize_touches_only_a_cone() {
        let lib = Library::cmos025();
        let c = suite::circuit("c880").unwrap();
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        // A deep gate (late topological rank): its fanout cone is a
        // genuine fraction of the circuit, so the flush drains it
        // instead of cutting over to the budgeted full sweep (which a
        // near-input gate on c880 — cone ≈ a third of the netlist —
        // would correctly trigger).
        let topo = c.topo_order().unwrap();
        let g = topo[3 * topo.len() / 4];
        graph.resize_gate(g, 3.0 * lib.min_drive_ff());
        // The resize alone does no arc work; the query flushes the cone.
        assert_eq!(graph.stats().gates_reevaluated, 0);
        assert_eq!(graph.stats().forward_flushes, 0);
        let _ = graph.critical_delay_ps();
        let stats = graph.stats();
        assert_eq!(stats.forward_flushes, 1);
        assert!(
            stats.gates_reevaluated > 0 && stats.gates_reevaluated < c.gate_count(),
            "cone {} must be smaller than the circuit {}",
            stats.gates_reevaluated,
            c.gate_count()
        );
        // A second read on the clean generation is free.
        let _ = graph.critical_delay_ps();
        assert_eq!(graph.stats(), stats);
    }

    #[test]
    fn noop_resize_does_no_work() {
        let lib = Library::cmos025();
        let c = inverter_chain(5);
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let g = c.gate_ids().next().unwrap();
        graph.resize_gate(g, lib.min_drive_ff());
        assert_eq!(graph.stats().gates_reevaluated, 0);
        assert_eq!(graph.stats().updates, 0);
    }

    #[test]
    fn set_options_matches_full_analysis_under_new_options() {
        let lib = Library::cmos025();
        let c = ripple_carry_adder(6);
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let new = AnalyzeOptions {
            po_load_ff: 42.0,
            input_transition_ps: 120.0,
        };
        graph.set_options(&new);
        assert_matches_fresh(&graph, &c, &lib);
        let fresh = analyze_with(&c, &lib, graph.sizing(), &new).unwrap();
        assert_eq!(
            graph.critical_delay_ps().to_bits(),
            fresh.critical_delay_ps().to_bits()
        );
    }

    fn assert_backward_matches_fresh(graph: &TimingGraph, circuit: &Circuit, lib: &Library) {
        use crate::kpaths::completion_bounds;
        use crate::slack::required_times;
        let tc = graph.constraint_ps().expect("constraint set");
        let fresh = analyze_with(circuit, lib, graph.sizing(), graph.options()).unwrap();
        let slacks = required_times(circuit, lib, graph.sizing(), &fresh, tc).unwrap();
        for net in circuit.net_ids() {
            for dir in [EdgeDir::Rising, EdgeDir::Falling] {
                assert_eq!(
                    graph.required_ps(net, dir).to_bits(),
                    slacks.required_ps(net, dir).to_bits(),
                    "required {net} {dir:?}"
                );
                assert_eq!(
                    graph.slack_ps(net, dir).to_bits(),
                    slacks.slack_ps(net, dir).to_bits(),
                    "slack {net} {dir:?}"
                );
            }
        }
        assert_eq!(
            graph.worst_slack_overall_ps().map(f64::to_bits),
            slacks.worst_slack_overall_ps().map(f64::to_bits),
            "worst slack overall"
        );
        let bounds = completion_bounds(circuit, &fresh);
        for g in circuit.gate_ids() {
            assert_eq!(
                graph.completion_ps(g).to_bits(),
                bounds[g.index()].to_bits(),
                "completion {g}"
            );
        }
    }

    #[test]
    fn initial_backward_state_matches_full_backward_pass() {
        let lib = Library::cmos025();
        for c in [inverter_chain(6), ripple_carry_adder(8)] {
            let s = Sizing::minimum(&c, &lib);
            let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
            graph.set_constraint(0.9 * graph.critical_delay_ps());
            assert_backward_matches_fresh(&graph, &c, &lib);
        }
    }

    #[test]
    fn resize_keeps_backward_state_identical_to_fresh_pass() {
        let lib = Library::cmos025();
        let c = suite::circuit("c432").unwrap();
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        graph.set_constraint(0.85 * graph.critical_delay_ps());
        let path = graph.critical_path();
        for (i, &g) in path.gates.iter().enumerate().take(6) {
            graph.resize_gate(g, (2.0 + i as f64 * 0.7) * lib.min_drive_ff());
            assert_backward_matches_fresh(&graph, &c, &lib);
        }
    }

    #[test]
    fn changing_the_constraint_rebuilds_required_times() {
        let lib = Library::cmos025();
        let c = suite::circuit("fpd").unwrap();
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let t0 = graph.critical_delay_ps();
        graph.set_constraint(t0);
        assert_backward_matches_fresh(&graph, &c, &lib);
        graph.set_constraint(1.4 * t0);
        assert_backward_matches_fresh(&graph, &c, &lib);
        // Worst slack at the exact constraint is 0 at the critical PO.
        graph.set_constraint(t0);
        let worst = graph.worst_slack_overall_ps().unwrap();
        assert!(worst.abs() < 1e-9, "worst slack {worst}");
    }

    #[test]
    fn set_options_invalidates_and_rebuilds_backward_state() {
        let lib = Library::cmos025();
        let c = ripple_carry_adder(6);
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        graph.set_constraint(1.1 * graph.critical_delay_ps());
        graph.set_options(&AnalyzeOptions {
            po_load_ff: 35.0,
            input_transition_ps: 90.0,
        });
        assert_matches_fresh(&graph, &c, &lib);
        assert_backward_matches_fresh(&graph, &c, &lib);
    }

    #[test]
    fn backward_update_touches_only_a_cone() {
        let lib = Library::cmos025();
        let c = suite::circuit("c880").unwrap();
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        graph.set_constraint(0.9 * graph.critical_delay_ps());
        // Settle the initial (lazy) full backward pass.
        let _ = graph.worst_slack_overall_ps();
        let after_build = graph.stats();
        let g = c.gate_ids().nth(c.gate_count() / 2).unwrap();
        graph.resize_gate(g, 3.0 * lib.min_drive_ff());
        // The flush is query-driven: read slack to drain the seeds.
        let _ = graph.worst_slack_overall_ps();
        let stats = graph.stats();
        let reevals = stats.required_reevaluated - after_build.required_reevaluated;
        assert!(
            reevals < c.net_count(),
            "backward cone {} must be smaller than the circuit {}",
            reevals,
            c.net_count()
        );
    }

    #[test]
    fn mutations_alone_never_trigger_a_flush() {
        let lib = Library::cmos025();
        let c = suite::circuit("c432").unwrap();
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        graph.set_constraint(0.9 * graph.critical_delay_ps());
        // Even the initial full backward pass is lazy: nothing has been
        // flushed until the first query.
        assert_eq!(graph.stats().backward_flushes, 0);
        assert_eq!(graph.stats().required_reevaluated, 0);
        let _ = graph.worst_slack_overall_ps();
        let settled = graph.stats();
        assert_eq!(settled.backward_flushes, 1);
        assert_eq!(settled.required_reevaluated, c.net_count());

        let gates: Vec<GateId> = c.gate_ids().collect();
        for (i, &g) in gates.iter().enumerate().take(32) {
            graph.resize_gate(g, (1.5 + i as f64 * 0.1) * lib.min_drive_ff());
        }
        let after = graph.stats();
        assert_eq!(after.backward_flushes, settled.backward_flushes);
        assert_eq!(after.required_reevaluated, settled.required_reevaluated);
        assert_eq!(after.completion_reevaluated, settled.completion_reevaluated);
        // Forward is lazy too: the resizes did no arc work either.
        assert_eq!(after.forward_flushes, settled.forward_flushes);
        assert_eq!(after.gates_reevaluated, settled.gates_reevaluated);
        // One query drains the merged cone of all 32 resizes at once…
        let _ = graph.worst_slack_overall_ps();
        assert_eq!(graph.stats().backward_flushes, settled.backward_flushes + 1);
        // …and a second read without mutations does no further work.
        let _ = graph.worst_slack_overall_ps();
        assert_eq!(graph.stats().backward_flushes, settled.backward_flushes + 1);
        assert_backward_matches_fresh(&graph, &c, &lib);
    }

    #[test]
    fn worst_slack_index_matches_the_full_fold() {
        let lib = Library::cmos025();
        let c = suite::circuit("c880").unwrap();
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        graph.set_constraint(0.95 * graph.critical_delay_ps());
        let gates: Vec<GateId> = c.gate_ids().collect();
        for (i, &g) in gates.iter().enumerate().step_by(7) {
            graph.resize_gate(g, (1.0 + (i % 9) as f64 * 0.4) * lib.min_drive_ff());
            // Tournament-tree root vs the O(nets) fold over the
            // materialized report: bit-identical at every step.
            assert_eq!(
                graph.worst_slack_overall_ps().map(f64::to_bits),
                graph
                    .slack_report()
                    .worst_slack_overall_ps()
                    .map(f64::to_bits),
            );
        }
    }

    #[test]
    fn slack_queries_panic_without_a_constraint() {
        let lib = Library::cmos025();
        let c = inverter_chain(3);
        let s = Sizing::minimum(&c, &lib);
        let graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            graph.worst_slack_overall_ps()
        }));
        assert!(result.is_err(), "querying slack without a constraint");
    }

    #[test]
    fn cached_required_times_short_circuits_only_on_matching_tc() {
        let lib = Library::cmos025();
        let c = inverter_chain(5);
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let tc = 1.2 * graph.critical_delay_ps();
        graph.set_constraint(tc);
        let sizing = graph.sizing().clone();
        assert!(TimingView::cached_required_times(&graph, tc, &sizing).is_some());
        assert!(TimingView::cached_required_times(&graph, tc + 1.0, &sizing).is_none());
        // A probe sizing that differs from the graph's own must miss the
        // cache — the answer would be for the wrong sizes.
        let mut probe = sizing.clone();
        let g0 = c.gate_ids().next().unwrap();
        probe.set(g0, 2.0 * probe.cin_ff(g0));
        assert!(TimingView::cached_required_times(&graph, tc, &probe).is_none());
        // And the materialized report agrees with the full pass.
        let via_cache = crate::slack::required_times(&c, &lib, graph.sizing(), &graph, tc).unwrap();
        let fresh = analyze(&c, &lib, graph.sizing()).unwrap();
        let via_pass = crate::slack::required_times(&c, &lib, graph.sizing(), &fresh, tc).unwrap();
        for net in c.net_ids() {
            for dir in [EdgeDir::Rising, EdgeDir::Falling] {
                assert_eq!(
                    via_cache.required_ps(net, dir).to_bits(),
                    via_pass.required_ps(net, dir).to_bits()
                );
            }
        }
    }

    #[test]
    fn clear_constraint_disables_the_caches() {
        let lib = Library::cmos025();
        let c = inverter_chain(4);
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        graph.set_constraint(100.0);
        assert!(graph.cached_completion_ps().is_some());
        graph.clear_constraint();
        assert!(graph.cached_completion_ps().is_none());
        assert_eq!(graph.constraint_ps(), None);
    }

    fn assert_surgery_matches_fresh(graph: &TimingGraph) {
        // The authoritative netlist after surgery is the graph's own.
        let circuit = graph.circuit();
        let fresh =
            TimingGraph::with_options(circuit, graph.lib, graph.sizing(), graph.options()).unwrap();
        for net in circuit.net_ids() {
            for dir in [EdgeDir::Rising, EdgeDir::Falling] {
                assert_eq!(
                    graph.arrival_ps(net, dir).to_bits(),
                    fresh.arrival_ps(net, dir).to_bits(),
                    "arrival {net} {dir:?}"
                );
                assert_eq!(
                    graph.slope_ps(net, dir).to_bits(),
                    fresh.slope_ps(net, dir).to_bits(),
                    "slope {net} {dir:?}"
                );
            }
            assert_eq!(
                graph.net_load_ff(net).to_bits(),
                fresh.net_load_ff(net).to_bits(),
                "load {net}"
            );
        }
        for g in circuit.gate_ids() {
            assert_eq!(
                graph.gate_delay_worst_ps(g).to_bits(),
                fresh.gate_delay_worst_ps(g).to_bits(),
                "gate delay {g}"
            );
        }
        assert_eq!(
            graph.critical_delay_ps().to_bits(),
            fresh.critical_delay_ps().to_bits()
        );
    }

    #[test]
    fn buffer_insertion_patches_state_bit_identically() {
        use pops_netlist::surgery::{EditOp, EditPlan};
        let lib = Library::cmos025();
        let c = suite::circuit("c432").unwrap();
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        graph.set_constraint(0.9 * graph.critical_delay_ps());

        // Buffer the widest net: move all but the first load pin.
        let net = c
            .net_ids()
            .max_by_key(|&n| c.net(n).fanout())
            .expect("nonempty circuit");
        let moved: Vec<(GateId, usize)> = c.net(net).loads()[1..].to_vec();
        assert!(!moved.is_empty());
        let plan: EditPlan = vec![EditOp::InsertBuffer {
            net,
            loads: moved,
            stage_cin_ff: [2.0 * lib.min_drive_ff(), 8.0 * lib.min_drive_ff()],
        }]
        .into();
        let before_gates = c.gate_count();
        let applied = graph.apply_edits(&plan).unwrap();
        assert_eq!(applied.len(), 1);
        assert_eq!(graph.circuit().gate_count(), before_gates + 2);
        assert_eq!(graph.sizing().len(), before_gates + 2);
        // The caller's circuit is untouched (copy-on-write).
        assert_eq!(c.gate_count(), before_gates);
        assert_surgery_matches_fresh(&graph);
        // Backward state rides along bit-identically.
        let fresh =
            TimingGraph::with_options(graph.circuit(), &lib, graph.sizing(), graph.options())
                .map(|mut g| {
                    g.set_constraint(graph.constraint_ps().unwrap());
                    g
                })
                .unwrap();
        for net in graph.circuit().net_ids() {
            for dir in [EdgeDir::Rising, EdgeDir::Falling] {
                assert_eq!(
                    graph.required_ps(net, dir).to_bits(),
                    fresh.required_ps(net, dir).to_bits(),
                    "required {net} {dir:?}"
                );
            }
        }
        for g in graph.circuit().gate_ids() {
            assert_eq!(
                graph.completion_ps(g).to_bits(),
                fresh.completion_ps(g).to_bits(),
                "completion {g}"
            );
        }
    }

    #[test]
    fn demorgan_patches_state_and_preserves_logic() {
        use pops_netlist::surgery::{EditOp, EditPlan};
        let lib = Library::cmos025();
        let c = suite::circuit("fpd").unwrap();
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        graph.set_constraint(graph.critical_delay_ps());
        let nor = c
            .gate_ids()
            .find(|&g| c.gate(g).kind() == CellKind::Nor2)
            .expect("fpd is NOR-rich");
        let plan: EditPlan = vec![EditOp::DeMorgan {
            gate: nor,
            inv_cin_ff: lib.min_drive_ff(),
        }]
        .into();
        graph.apply_edits(&plan).unwrap();
        assert_eq!(graph.circuit().gate(nor).kind(), CellKind::Nand2);
        assert_surgery_matches_fresh(&graph);
        graph.circuit().validate().unwrap();
    }

    #[test]
    fn surgery_composes_with_resizes_and_reverts() {
        use pops_netlist::surgery::{EditOp, EditPlan};
        let lib = Library::cmos025();
        let c = ripple_carry_adder(6);
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        graph.set_constraint(0.95 * graph.critical_delay_ps());
        let net = c
            .net_ids()
            .filter(|&n| c.driver_gate(n).is_some() && c.net(n).fanout() >= 2)
            .max_by_key(|&n| c.net(n).fanout())
            .unwrap();
        let plan: EditPlan = vec![EditOp::InsertBuffer {
            net,
            loads: c.net(net).loads()[1..].to_vec(),
            stage_cin_ff: [lib.min_drive_ff(), 4.0 * lib.min_drive_ff()],
        }]
        .into();
        let applied = graph.apply_edits(&plan).unwrap();
        // Resize the new buffer and a random old gate, then revert.
        let buf = applied[0].new_gates[1];
        let old = graph.circuit().gate_ids().next().unwrap();
        for g in [buf, old] {
            let orig = graph.sizing().cin_ff(g);
            graph.resize_gate(g, 3.0 * orig);
            graph.resize_gate(g, orig);
        }
        assert_surgery_matches_fresh(&graph);
        assert_eq!(graph.stats().structural_edits, 1);
    }

    #[test]
    fn failing_plan_leaves_a_consistent_graph() {
        use pops_netlist::surgery::{EditOp, EditPlan};
        let lib = Library::cmos025();
        let c = ripple_carry_adder(4);
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let net = c
            .net_ids()
            .find(|&n| c.driver_gate(n).is_some() && c.net(n).fanout() >= 2)
            .unwrap();
        let good = EditOp::InsertBuffer {
            net,
            loads: c.net(net).loads().to_vec(),
            stage_cin_ff: [lib.min_drive_ff(), lib.min_drive_ff()],
        };
        // Second op names a pin that no longer loads `net` (the first op
        // moved it): application stops there.
        let bad = EditOp::InsertBuffer {
            net,
            loads: c.net(net).loads().to_vec(),
            stage_cin_ff: [lib.min_drive_ff(), lib.min_drive_ff()],
        };
        let plan: EditPlan = vec![good, bad].into();
        let err = graph.apply_edits(&plan).unwrap_err();
        assert!(matches!(err, NetlistError::UnsupportedEdit(_)));
        // The applied prefix is in, and the graph still agrees with a
        // from-scratch build on its (partially edited) circuit.
        assert_eq!(graph.circuit().gate_count(), c.gate_count() + 2);
        assert_surgery_matches_fresh(&graph);
    }

    #[test]
    fn empty_plan_is_a_noop() {
        use pops_netlist::surgery::EditPlan;
        let lib = Library::cmos025();
        let c = inverter_chain(4);
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let before = graph.stats();
        assert!(graph.apply_edits(&EditPlan::new()).unwrap().is_empty());
        assert_eq!(graph.stats(), before);
    }

    #[test]
    fn timing_view_is_object_safe_over_both_backends() {
        let lib = Library::cmos025();
        let c = inverter_chain(4);
        let s = Sizing::minimum(&c, &lib);
        let report = analyze(&c, &lib, &s).unwrap();
        let graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let views: Vec<&dyn TimingView> = vec![&report, &graph];
        let delays: Vec<f64> = views.iter().map(|v| v.critical_delay_ps()).collect();
        assert_eq!(delays[0].to_bits(), delays[1].to_bits());
    }
}
