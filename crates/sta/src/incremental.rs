//! Incremental static timing analysis: dirty-cone re-propagation.
//!
//! The optimization protocol is an iterative loop — classify, resize,
//! re-time, repeat — and a single gate resize only perturbs its fanin
//! nets' loads and its downstream fanout cone. A [`TimingGraph`] is
//! built once per circuit (caching the topological order, per-gate topo
//! rank and per-net loads) and then kept consistent through
//! [`TimingGraph::resize_gate`] / [`TimingGraph::set_options`] mutators
//! that re-evaluate only the affected cone, in rank order, stopping as
//! soon as re-propagated arrivals and slopes converge onto their cached
//! values.
//!
//! # Equivalence contract
//!
//! After any sequence of mutations the queryable state is **bit-identical**
//! to a from-scratch [`analyze_with`](crate::analysis::analyze_with) under
//! the same sizing and options:
//!
//! * a re-evaluated gate runs exactly the per-gate step of the full pass
//!   (same arc order, same comparison, same floating-point operations);
//! * net loads are recomputed by the same summation in the same order,
//!   never by error-accumulating deltas;
//! * gates are re-evaluated in topological-rank order, so every gate sees
//!   final fanin values, and a gate whose fanin arrivals/slopes are
//!   bit-unchanged is provably unaffected and cut off (its stored state
//!   *is* what the full pass would recompute).
//!
//! The randomized equivalence suite (`tests/incremental_equivalence.rs`)
//! asserts this against `analyze()` after every step of random resize
//! sequences.
//!
//! # Backward state: required times, slack and k-paths bounds
//!
//! Slack — not just arrival — is what a constraint-driven sizing loop
//! consults on every probe. After [`TimingGraph::set_constraint`] the
//! graph additionally maintains the *backward* quantities under that
//! constraint: per-net required times (the
//! [`required_times`](crate::required_times) state) and per-gate
//! frozen-weight completion bounds (the
//! [`k_most_critical_paths`](crate::k_most_critical_paths) search
//! bounds). Both are kept consistent by the same dirty-cone machinery
//! running in *reverse* rank order — a resize dirties the fanin cone
//! (arc delays through the gate and through the drivers of its fanin
//! nets changed) while the forward propagation reports every net whose
//! slope moved and every gate whose worst delay moved, seeding the
//! backward cones on the fanout side. The same bitwise convergence rule
//! applies: a net whose recomputed required times (or a gate whose
//! recomputed completion bound) is bit-identical to the cached value
//! cuts its backward cone. [`TimingGraph::set_options`] and constraint
//! changes invalidate the backward state wholesale — required times are
//! subtract-chains from `tc`, not `tc`-offsets — and rebuild it with
//! one full backward pass. `tests/backward_equivalence.rs` asserts
//! bit-identity against a fresh [`crate::required_times`] after every
//! step of random resize sequences.

use pops_delay::model::{gate_delay_with_output_edge, Edge};
use pops_delay::Library;
use pops_netlist::{CellKind, Circuit, GateId, NetId, NetlistError};

use crate::analysis::{
    compatible_input_edges, eidx, AnalyzeOptions, EdgeDir, NetlistPath, TimingView, EDGES,
};
use crate::sizing::Sizing;
use crate::slack::{worst_finite_slack, SlackReport, SlackView};

/// Cumulative work counters, for benchmarks and cone-size assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Gate re-evaluations performed since construction (the full
    /// initial pass is not counted).
    pub gates_reevaluated: usize,
    /// Re-evaluations whose output was bit-unchanged, cutting the cone.
    pub converged_early: usize,
    /// Mutator calls (resize / option changes) processed.
    pub updates: usize,
    /// Per-net required-time re-evaluations (backward cone walks; the
    /// constraint-setting full pass is counted too).
    pub required_reevaluated: usize,
    /// Required-time re-evaluations that were bit-unchanged, cutting
    /// the backward cone.
    pub required_converged_early: usize,
    /// K-paths completion-bound re-evaluations.
    pub completion_reevaluated: usize,
}

/// Per-gate model constants, flattened out of the library at build time.
///
/// `Library::cell()` is a by-kind lookup and the symmetry factors are
/// re-derived on every call; one cone re-evaluation makes thousands of
/// arc evaluations, so the graph caches the resolved constants per gate.
/// Every cached value is produced by the *same* floating-point expression
/// the model uses, so arc delays stay bit-identical to
/// [`gate_delay_with_output_edge`].
#[derive(Debug, Clone, Copy)]
struct GateParams {
    /// `C_par = cpar_factor · C_IN`.
    cpar_factor: f64,
    /// P/N configuration ratio `k` (Miller coupling split).
    k: f64,
    /// `τ · S(out_edge)`, indexed by [`eidx`] of the output edge.
    tau_s: [f64; 2],
}

/// Fanin-independent arc terms of one gate under its current drive and
/// load, hoisted out of the per-arc loops of the forward `eval_gate`
/// *and* the backward `eval_required`.
struct ArcTerms {
    /// τ_out per *output* edge: `(τ·S) · C_L / C_IN`.
    tau_out_by_edge: [f64; 2],
    /// Miller amplification per *input* edge (C_M couples through the
    /// P device on a rising input, the N device on a falling one).
    miller: [f64; 2],
}

impl GateParams {
    /// Compute the hoisted arc terms. This is the single home of the
    /// delay-model arithmetic shared by the forward and backward
    /// evaluators: every expression reproduces the exact operation
    /// order of `gate_delay_with_output_edge`, so arc delays (and
    /// therefore the whole timing state, both directions) stay
    /// bit-identical to the full passes.
    fn arc_terms(&self, cin: f64, load: f64) -> ArcTerms {
        let cl_total = self.cpar_factor * cin + load;
        let tau_out_by_edge = [
            self.tau_s[0] * cl_total / cin,
            self.tau_s[1] * cl_total / cin,
        ];
        let cm = [
            0.5 * cin * self.k / (1.0 + self.k),
            0.5 * cin / (1.0 + self.k),
        ];
        let miller = [
            1.0 + 2.0 * cm[0] / (cm[0] + cl_total),
            1.0 + 2.0 * cm[1] / (cm[1] + cl_total),
        ];
        ArcTerms {
            tau_out_by_edge,
            miller,
        }
    }
}

/// Per-net timing state, kept as one record for cache locality.
#[derive(Debug, Clone, Copy)]
struct NetTiming {
    /// Arrival time per edge (ps); `-inf` where unreachable.
    arrival: [f64; 2],
    /// Transition time per edge (ps).
    slope: [f64; 2],
    /// Predecessor `(net, input edge)` of the worst arrival.
    pred: [Option<(NetId, Edge)>; 2],
    /// Capacitive load (fF) under the current sizing.
    load: f64,
}

impl NetTiming {
    const UNREACHED: NetTiming = NetTiming {
        arrival: [f64::NEG_INFINITY; 2],
        slope: [0.0; 2],
        pred: [None, None],
        load: 0.0,
    };
}

/// Incrementally maintained timing state of one circuit.
///
/// Holds the circuit and library by reference; all sizing state lives
/// inside the graph (query it with [`TimingGraph::sizing`]).
///
/// # Example
///
/// ```
/// use pops_netlist::builders::ripple_carry_adder;
/// use pops_delay::Library;
/// use pops_sta::analysis::analyze;
/// use pops_sta::incremental::TimingGraph;
/// use pops_sta::Sizing;
///
/// # fn main() -> Result<(), pops_netlist::NetlistError> {
/// let c = ripple_carry_adder(8);
/// let lib = Library::cmos025();
/// let sizing = Sizing::minimum(&c, &lib);
/// let mut graph = TimingGraph::new(&c, &lib, &sizing)?;
/// let before = graph.critical_delay_ps();
///
/// // Resize one gate: only its cone is re-timed.
/// let g = graph.critical_path().gates[0];
/// graph.resize_gate(g, 4.0 * lib.min_drive_ff());
/// let after = graph.critical_delay_ps();
/// assert_ne!(before, after);
///
/// // The state matches a fresh full analysis bit-for-bit.
/// let fresh = analyze(&c, &lib, graph.sizing())?;
/// assert_eq!(fresh.critical_delay_ps(), after);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TimingGraph<'c> {
    circuit: &'c Circuit,
    lib: &'c Library,
    options: AnalyzeOptions,
    sizing: Sizing,

    /// Gates in the cached topological order.
    topo: Vec<GateId>,
    /// `rank[gate] = position in `topo`` — the propagation priority.
    rank: Vec<u32>,
    /// Driver gate of each net (`None` for primary inputs).
    net_driver: Vec<Option<GateId>>,

    /// Per-net timing record. One contiguous struct per net (instead of
    /// parallel arrays) so a gate re-evaluation touches one cache line
    /// per fanin net — cone updates jump around the netlist, and their
    /// cost is dominated by memory traffic, not arithmetic.
    nets: Vec<NetTiming>,
    /// Worst-case delay of each gate under the current slopes.
    gate_delay_worst: Vec<f64>,
    critical_net: Option<(NetId, Edge)>,

    /// Flattened model constants per gate (see [`GateParams`]).
    gate_params: Vec<GateParams>,
    /// Reduced thresholds `v_T`, indexed by [`eidx`] of the *input* edge.
    vt: [f64; 2],

    /// Cell kind per gate (flat copy: avoids chasing `circuit.gate()`
    /// in the hot loop).
    cell: Vec<CellKind>,
    /// Output net per gate.
    out_net: Vec<NetId>,
    /// Fanin nets of all gates, flattened; gate `g`'s inputs are
    /// `fanin[fanin_off[g] .. fanin_off[g+1]]`.
    fanin: Vec<NetId>,
    fanin_off: Vec<u32>,
    /// Fanout gates of all nets, flattened; net `n`'s loads are
    /// `fanout[fanout_off[n] .. fanout_off[n+1]]` (one entry per pin).
    fanout: Vec<GateId>,
    fanout_off: Vec<u32>,

    /// Dirty set as a bitset over topo *ranks* (bit `r` of word `r/64`).
    /// Propagation walks it with a forward cursor + `trailing_zeros` —
    /// marks always target strictly higher ranks, so no priority queue
    /// is needed to process gates in rank order.
    dirty_bits: Vec<u64>,
    /// Dirty gates not yet re-evaluated.
    dirty_count: usize,
    /// Lowest rank marked since the last propagation.
    min_dirty_rank: u32,

    /// Primary-output flag per net (flat copy for the backward hot loop).
    is_po: Vec<bool>,
    /// Maintained backward state; `None` until
    /// [`TimingGraph::set_constraint`].
    backward: Option<BackwardState>,
    stats: UpdateStats,
}

/// Incrementally maintained backward timing state (see the module
/// docs): per-net required times under a fixed constraint plus the
/// per-gate frozen-weight k-paths completion bounds, both kept
/// consistent by reverse-rank dirty-cone propagation.
#[derive(Debug, Clone)]
struct BackwardState {
    /// The cycle constraint applied at every primary output (ps).
    tc_ps: f64,
    /// `required[net][edge]` (ps); `+inf` where unconstrained.
    required: Vec<[f64; 2]>,
    /// Frozen-weight completion bound per gate (the k-paths search
    /// bound; `-inf` off every PI→PO path).
    completion: Vec<f64>,

    /// Required-dirty set over the topo ranks of net *drivers* (each
    /// gate drives exactly one net, so driven nets map 1:1 onto ranks).
    /// Walked with a descending cursor + `leading_zeros`: backward
    /// marks always target strictly lower ranks.
    req_bits: Vec<u64>,
    req_count: usize,
    /// Highest rank marked since the last backward propagation.
    req_max_rank: u32,
    /// Required-dirty primary-input nets: sinks of the backward walk
    /// (no driver to propagate through), evaluated after the rank loop
    /// drains. The bitset dedupes, the vec preserves O(dirty) drain.
    pi_bits: Vec<u64>,
    pi_dirty: Vec<NetId>,

    /// Completion-dirty set over topo ranks, same walk as `req_bits`.
    comp_bits: Vec<u64>,
    comp_count: usize,
    comp_max_rank: u32,
}

impl<'c> TimingGraph<'c> {
    /// Build the graph and run the initial full timing pass under
    /// default [`AnalyzeOptions`].
    ///
    /// # Errors
    ///
    /// Propagates netlist structural errors (cycles, undriven nets) from
    /// [`Circuit::topo_order`].
    pub fn new(
        circuit: &'c Circuit,
        lib: &'c Library,
        sizing: &Sizing,
    ) -> Result<Self, NetlistError> {
        Self::with_options(circuit, lib, sizing, &AnalyzeOptions::default())
    }

    /// [`TimingGraph::new`] with explicit options.
    ///
    /// # Errors
    ///
    /// As [`TimingGraph::new`].
    pub fn with_options(
        circuit: &'c Circuit,
        lib: &'c Library,
        sizing: &Sizing,
        options: &AnalyzeOptions,
    ) -> Result<Self, NetlistError> {
        let topo = circuit.topo_order()?;
        let mut rank = vec![0u32; circuit.gate_count()];
        for (i, &g) in topo.iter().enumerate() {
            rank[g.index()] = i as u32;
        }
        let n_nets = circuit.net_count();
        let net_driver = circuit.net_ids().map(|n| circuit.driver_gate(n)).collect();

        let process = lib.process();
        let gate_params = circuit
            .gate_ids()
            .map(|g| {
                let cell = lib.cell(circuit.gate(g).kind());
                let mut tau_s = [0.0f64; 2];
                for e in EDGES {
                    // Same product order as the model's
                    // `process.tau_ps * s * cl_total / cin`: caching
                    // `tau_ps * s` keeps the remaining ops bit-identical.
                    tau_s[eidx(e)] = process.tau_ps * cell.s_factor(process, e);
                }
                GateParams {
                    cpar_factor: cell.cpar_factor,
                    k: cell.k,
                    tau_s,
                }
            })
            .collect();
        let vt = [process.vtn_reduced(), process.vtp_reduced()];

        // Flatten the netlist adjacency into contiguous arrays: the cone
        // walk is memory-bound, and per-gate/per-net `Vec`s would cost a
        // pointer chase per visit.
        let cell: Vec<CellKind> = circuit.gate_ids().map(|g| circuit.gate(g).kind()).collect();
        let out_net: Vec<NetId> = circuit
            .gate_ids()
            .map(|g| circuit.gate(g).output())
            .collect();
        let mut fanin = Vec::with_capacity(circuit.pin_count());
        let mut fanin_off = Vec::with_capacity(circuit.gate_count() + 1);
        fanin_off.push(0u32);
        for g in circuit.gate_ids() {
            fanin.extend_from_slice(circuit.gate(g).inputs());
            fanin_off.push(fanin.len() as u32);
        }
        let mut fanout = Vec::with_capacity(circuit.pin_count());
        let mut fanout_off = Vec::with_capacity(n_nets + 1);
        fanout_off.push(0u32);
        for n in circuit.net_ids() {
            fanout.extend(circuit.fanout_gates(n));
            fanout_off.push(fanout.len() as u32);
        }

        let mut graph = TimingGraph {
            circuit,
            lib,
            options: options.clone(),
            sizing: sizing.clone(),
            topo,
            rank,
            net_driver,
            nets: vec![NetTiming::UNREACHED; n_nets],
            gate_delay_worst: vec![0.0f64; circuit.gate_count()],
            critical_net: None,
            gate_params,
            vt,
            cell,
            out_net,
            fanin,
            fanin_off,
            fanout,
            fanout_off,
            dirty_bits: vec![0u64; circuit.gate_count().div_ceil(64)],
            dirty_count: 0,
            min_dirty_rank: u32::MAX,
            is_po: circuit
                .net_ids()
                .map(|n| circuit.net(n).is_output())
                .collect(),
            backward: None,
            stats: UpdateStats::default(),
        };
        graph.full_pass();
        Ok(graph)
    }

    /// The circuit this graph times.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// The current sizing (the graph owns its copy; mutate it through
    /// [`TimingGraph::resize_gate`]).
    pub fn sizing(&self) -> &Sizing {
        &self.sizing
    }

    /// The options the timing state currently reflects.
    pub fn options(&self) -> &AnalyzeOptions {
        &self.options
    }

    /// Cumulative incremental-work counters.
    pub fn stats(&self) -> UpdateStats {
        self.stats
    }

    /// Set one gate's input capacitance and re-time its affected cone.
    ///
    /// Cost is O(cone): the gate itself, the drivers of its fanin nets
    /// (their loads changed) and every downstream gate whose arrival or
    /// slope actually moves.
    ///
    /// # Panics
    ///
    /// Panics if the gate id is out of range or `cin_ff <= 0` (as
    /// [`Sizing::set`]).
    pub fn resize_gate(&mut self, gate: GateId, cin_ff: f64) {
        self.resize_gates([(gate, cin_ff)]);
    }

    /// Apply a batch of resizes, then re-time all affected cones in one
    /// rank-ordered propagation (cheaper than per-gate flushes when the
    /// changes overlap, e.g. writing back a whole optimized path).
    ///
    /// # Panics
    ///
    /// As [`TimingGraph::resize_gate`].
    pub fn resize_gates(&mut self, changes: impl IntoIterator<Item = (GateId, f64)>) {
        let mut any = false;
        for (gate, cin_ff) in changes {
            if self.sizing.cin_ff(gate) == cin_ff {
                continue;
            }
            self.sizing.set(gate, cin_ff);
            any = true;
            // The fanin nets' loads changed: recompute them exactly (same
            // summation order as the full pass — no delta accumulation)
            // and re-evaluate their driver gates.
            for &in_net in self.circuit.gate(gate).inputs() {
                self.recompute_net_load(in_net);
                // Backward: arcs *through this gate* moved with its
                // C_IN, so its fanin nets' required times must be
                // re-derived.
                self.mark_required_net(in_net);
                if let Some(driver) = self.net_driver[in_net.index()] {
                    self.mark_dirty(driver);
                    // Backward: arcs through `driver` moved too (the
                    // load on its output net changed), touching the
                    // required times of *its* fanin nets.
                    for &dn in self.circuit.gate(driver).inputs() {
                        self.mark_required_net(dn);
                    }
                }
            }
            // The gate's own drive changed.
            self.mark_dirty(gate);
        }
        if any {
            self.stats.updates += 1;
            self.propagate();
        }
    }

    /// Switch to new analysis options and re-time what they touch (all
    /// primary-output loads and/or all primary-input slopes).
    ///
    /// Any maintained backward state is invalidated wholesale — a latch
    /// load shifts every primary-output arc, an input slope every
    /// source arc — and rebuilt with one full backward pass.
    pub fn set_options(&mut self, options: &AnalyzeOptions) {
        if self.options == *options {
            return;
        }
        // Detach the backward state so the forward propagation does not
        // drag a partially stale backward cone along.
        let backward = self.backward.take();
        let po_changed = self.options.po_load_ff != options.po_load_ff;
        let slope_changed = self.options.input_transition_ps != options.input_transition_ps;
        self.options = options.clone();

        if po_changed {
            for net in self.circuit.net_ids() {
                if self.circuit.net(net).is_output() {
                    self.recompute_net_load(net);
                    if let Some(driver) = self.net_driver[net.index()] {
                        self.mark_dirty(driver);
                    }
                }
            }
        }
        if slope_changed {
            let circuit = self.circuit;
            for &pi in circuit.primary_inputs() {
                for e in EDGES {
                    self.nets[pi.index()].slope[eidx(e)] = self.options.input_transition_ps;
                }
                for g in circuit.fanout_gates(pi) {
                    self.mark_dirty(g);
                }
            }
        }
        self.stats.updates += 1;
        self.propagate();
        if backward.is_some() {
            self.backward = backward;
            self.rebuild_backward();
        }
    }

    // ---- query surface (mirrors `TimingReport`) ----

    /// Worst arrival time over all primary outputs (ps).
    pub fn critical_delay_ps(&self) -> f64 {
        self.critical_net
            .map(|(n, e)| self.nets[n.index()].arrival[eidx(e)])
            .unwrap_or(0.0)
    }

    /// Arrival time of a net for a given edge (ps), `-inf` if unreachable.
    pub fn arrival_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        self.nets[net.index()].arrival[eidx(edge.into())]
    }

    /// Transition time of a net for a given edge (ps).
    pub fn slope_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        self.nets[net.index()].slope[eidx(edge.into())]
    }

    /// Capacitive load on a net (fF) under the current sizing, including
    /// the primary-output latch load where applicable.
    pub fn net_load_ff(&self, net: NetId) -> f64 {
        self.nets[net.index()].load
    }

    /// Worst-case delay of a gate (ps) under the current slopes.
    pub fn gate_delay_worst_ps(&self, gate: GateId) -> f64 {
        self.gate_delay_worst[gate.index()]
    }

    /// The most critical path: traceback from the worst primary output.
    ///
    /// Returns an empty path only for circuits without gates.
    pub fn critical_path(&self) -> NetlistPath {
        let Some((net, edge)) = self.critical_net else {
            return NetlistPath {
                gates: Vec::new(),
                end_edge: EdgeDir::Rising,
            };
        };
        self.path_to(net, edge)
    }

    /// Traceback the worst path ending at `net` with `edge`.
    pub fn path_to(&self, net: NetId, edge: Edge) -> NetlistPath {
        let mut gates = Vec::new();
        let mut cur = Some((net, edge));
        while let Some((n, e)) = cur {
            if let Some(gid) = self.net_driver[n.index()] {
                gates.push(gid);
            }
            cur = self.nets[n.index()].pred[eidx(e)];
        }
        gates.reverse();
        NetlistPath {
            gates,
            end_edge: edge.into(),
        }
    }

    /// Primary output nets.
    pub fn outputs(&self) -> &[NetId] {
        self.circuit.primary_outputs()
    }

    // ---- backward query surface (mirrors `SlackReport`) ----

    /// Set the cycle constraint and start maintaining the backward
    /// state (required times, slacks, k-paths completion bounds) under
    /// it. The first call — and every call with a *different* `tc_ps`,
    /// since required times are subtract-chains from the constraint,
    /// not offsets of it — runs one full backward pass; subsequent
    /// mutations keep the state current at O(backward cone) cost.
    ///
    /// An infinite `tc_ps` is accepted and behaves like the full pass:
    /// `+inf` leaves every net unconstrained (no finite slack anywhere),
    /// which a constraint-driven loop reads as "nothing to do".
    ///
    /// # Panics
    ///
    /// Panics if `tc_ps` is NaN.
    pub fn set_constraint(&mut self, tc_ps: f64) {
        assert!(!tc_ps.is_nan(), "constraint must not be NaN");
        if let Some(bw) = &self.backward {
            if bw.tc_ps.to_bits() == tc_ps.to_bits() {
                return;
            }
        }
        let n_nets = self.circuit.net_count();
        let n_gates = self.circuit.gate_count();
        self.backward = Some(BackwardState {
            tc_ps,
            required: vec![[f64::INFINITY; 2]; n_nets],
            completion: vec![f64::NEG_INFINITY; n_gates],
            req_bits: vec![0u64; n_gates.div_ceil(64)],
            req_count: 0,
            req_max_rank: 0,
            pi_bits: vec![0u64; n_nets.div_ceil(64)],
            pi_dirty: Vec::new(),
            comp_bits: vec![0u64; n_gates.div_ceil(64)],
            comp_count: 0,
            comp_max_rank: 0,
        });
        self.rebuild_backward();
    }

    /// Stop maintaining the backward state (forward-only mutations get
    /// cheaper again).
    pub fn clear_constraint(&mut self) {
        self.backward = None;
    }

    /// The constraint the backward state is maintained under, if any.
    pub fn constraint_ps(&self) -> Option<f64> {
        self.backward.as_ref().map(|bw| bw.tc_ps)
    }

    fn backward(&self) -> &BackwardState {
        self.backward
            .as_ref()
            .expect("no backward state: call TimingGraph::set_constraint before querying slack")
    }

    /// Required time of a net for an edge (ps); `+inf` where
    /// unconstrained. Bit-identical to a fresh
    /// [`required_times`](crate::required_times) under the same
    /// constraint.
    ///
    /// # Panics
    ///
    /// Panics unless [`TimingGraph::set_constraint`] was called.
    pub fn required_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        self.backward().required[net.index()][eidx(edge.into())]
    }

    /// Slack of a net for an edge (ps): `required − arrival`. Finite or
    /// `+inf`, never NaN (see [`crate::slack`]'s module docs).
    ///
    /// # Panics
    ///
    /// As [`TimingGraph::required_ps`].
    pub fn slack_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        let i = eidx(edge.into());
        self.backward().required[net.index()][i] - self.nets[net.index()].arrival[i]
    }

    /// Worst (most negative) slack over both edges of a net.
    ///
    /// # Panics
    ///
    /// As [`TimingGraph::required_ps`].
    pub fn worst_slack_ps(&self, net: NetId) -> f64 {
        self.slack_ps(net, EdgeDir::Rising)
            .min(self.slack_ps(net, EdgeDir::Falling))
    }

    /// Worst finite slack over the whole design; `None` when no net
    /// carries a finite slack (e.g. zero primary outputs).
    ///
    /// # Panics
    ///
    /// As [`TimingGraph::required_ps`].
    pub fn worst_slack_overall_ps(&self) -> Option<f64> {
        let bw = self.backward();
        worst_finite_slack(
            bw.required
                .iter()
                .copied()
                .zip(self.nets.iter().map(|n| n.arrival)),
        )
    }

    /// Frozen-weight k-paths completion bound of a gate (ps); `-inf`
    /// off every PI→PO path. Bit-identical to
    /// [`completion_bounds`](crate::kpaths::completion_bounds).
    ///
    /// # Panics
    ///
    /// As [`TimingGraph::required_ps`].
    pub fn completion_ps(&self, gate: GateId) -> f64 {
        self.backward().completion[gate.index()]
    }

    /// Materialize the maintained backward state as a [`SlackReport`],
    /// bit-identical to a fresh [`required_times`](crate::required_times)
    /// under the same constraint — but O(nets) with no arc evaluations.
    ///
    /// # Panics
    ///
    /// As [`TimingGraph::required_ps`].
    pub fn slack_report(&self) -> SlackReport {
        let bw = self.backward();
        let arrival: Vec<[f64; 2]> = self.nets.iter().map(|n| n.arrival).collect();
        SlackReport::from_parts(bw.tc_ps, bw.required.clone(), arrival)
    }

    // ---- internals ----

    /// Exact per-net load under the current sizing; identical summation
    /// order to the full pass for bit-equality.
    fn recompute_net_load(&mut self, net: NetId) {
        let mut load = 0.0;
        for &(g, _pin) in self.circuit.net(net).loads() {
            load += self.sizing.cin_ff(g);
        }
        if self.circuit.net(net).is_output() {
            load += self.options.po_load_ff;
        }
        self.nets[net.index()].load = load;
    }

    fn mark_dirty(&mut self, gate: GateId) {
        let rank = self.rank[gate.index()];
        let (word, bit) = (rank as usize / 64, rank % 64);
        if self.dirty_bits[word] & (1u64 << bit) == 0 {
            self.dirty_bits[word] |= 1u64 << bit;
            self.dirty_count += 1;
            if rank < self.min_dirty_rank {
                self.min_dirty_rank = rank;
            }
        }
    }

    /// Drain the dirty queue in rank order; propagation stops where a
    /// gate's re-evaluated output is bit-identical to its cached state.
    fn propagate(&mut self) {
        let mut any_changed = false;
        let mut word = self.min_dirty_rank as usize / 64;
        while self.dirty_count > 0 {
            // Re-read each round: processing a gate may mark ranks within
            // the current word (always above the bit just cleared).
            let bits = self.dirty_bits[word];
            if bits == 0 {
                word += 1;
                continue;
            }
            let bit = bits.trailing_zeros();
            self.dirty_bits[word] &= !(1u64 << bit);
            self.dirty_count -= 1;
            let gate = self.topo[word * 64 + bit as usize];
            self.stats.gates_reevaluated += 1;
            if self.eval_gate(gate) {
                any_changed = true;
                let out = self.out_net[gate.index()].index();
                let (lo, hi) = (self.fanout_off[out], self.fanout_off[out + 1]);
                for i in lo..hi {
                    self.mark_dirty(self.fanout[i as usize]);
                }
            } else {
                self.stats.converged_early += 1;
            }
        }
        self.min_dirty_rank = u32::MAX;
        if any_changed {
            self.recompute_critical();
        }
        self.propagate_backward();
    }

    /// Re-run the full pass's per-gate step for `gate`; returns whether
    /// the output net's arrival or slope changed (bitwise).
    fn eval_gate(&mut self, gid: GateId) -> bool {
        let cell = self.cell[gid.index()];
        let out = self.out_net[gid.index()];
        let cin = self.sizing.cin_ff(gid);
        let load = self.nets[out.index()].load;

        // The arc terms that do not depend on the fanin are hoisted out
        // of the loop (shared with the backward `eval_required`).
        let ArcTerms {
            tau_out_by_edge,
            miller,
        } = self.gate_params[gid.index()].arc_terms(cin, load);

        let mut new_arrival = [f64::NEG_INFINITY; 2];
        let mut new_slope = [0.0f64; 2];
        let mut new_pred: [Option<(NetId, Edge)>; 2] = [None, None];
        let mut worst_gate_delay = 0.0f64;

        let fanin_range =
            self.fanin_off[gid.index()] as usize..self.fanin_off[gid.index() + 1] as usize;
        for out_edge in EDGES {
            let tau_out = tau_out_by_edge[eidx(out_edge)];
            let mut best: Option<(f64, NetId, Edge)> = None;
            for &in_net in &self.fanin[fanin_range.clone()] {
                let fanin = &self.nets[in_net.index()];
                for &in_edge in compatible_input_edges(cell, out_edge) {
                    let t_in = fanin.arrival[eidx(in_edge)];
                    if t_in == f64::NEG_INFINITY {
                        continue;
                    }
                    let s_in = fanin.slope[eidx(in_edge)];
                    let i = eidx(in_edge);
                    let delay_ps = 0.5 * self.vt[i] * s_in + 0.5 * miller[i] * tau_out;
                    debug_assert_eq!(
                        delay_ps.to_bits(),
                        gate_delay_with_output_edge(
                            self.lib, cell, cin, load, s_in, in_edge, out_edge,
                        )
                        .delay_ps
                        .to_bits(),
                        "cached-constant arc delay must match the model"
                    );
                    worst_gate_delay = worst_gate_delay.max(delay_ps);
                    let t_out = t_in + delay_ps;
                    if best.map(|(t, ..)| t_out > t).unwrap_or(true) {
                        best = Some((t_out, in_net, in_edge));
                    }
                }
            }
            if let Some((t, n, e)) = best {
                let i = eidx(out_edge);
                new_arrival[i] = t;
                new_slope[i] = tau_out;
                new_pred[i] = Some((n, e));
            }
        }

        let delay_changed =
            self.gate_delay_worst[gid.index()].to_bits() != worst_gate_delay.to_bits();
        self.gate_delay_worst[gid.index()] = worst_gate_delay;
        let o = &mut self.nets[out.index()];
        let slope_changed = new_slope[0].to_bits() != o.slope[0].to_bits()
            || new_slope[1].to_bits() != o.slope[1].to_bits();
        let changed = slope_changed
            || new_arrival[0].to_bits() != o.arrival[0].to_bits()
            || new_arrival[1].to_bits() != o.arrival[1].to_bits();
        o.arrival = new_arrival;
        o.slope = new_slope;
        o.pred = new_pred;
        if self.backward.is_some() {
            // Seed the backward cones: arcs *from* `out` move with its
            // slope; the completion bound of `gid` moves with its worst
            // delay. (Arrival-only changes touch slack, which is read
            // directly from the forward state, but never required times.)
            if slope_changed {
                self.mark_required_net(out);
            }
            if delay_changed {
                self.mark_completion_gate(gid);
            }
        }
        changed
    }

    /// Initial timing: evaluate every gate once in topological order —
    /// exactly the full pass of `analyze_with`.
    fn full_pass(&mut self) {
        for net in self.circuit.net_ids() {
            self.recompute_net_load(net);
        }
        for &pi in self.circuit.primary_inputs() {
            let n = &mut self.nets[pi.index()];
            for e in EDGES {
                n.arrival[eidx(e)] = 0.0;
                n.slope[eidx(e)] = self.options.input_transition_ps;
            }
        }
        for i in 0..self.topo.len() {
            let gate = self.topo[i];
            self.eval_gate(gate);
        }
        self.recompute_critical();
    }

    /// Same worst-output scan (and tie-breaking order) as the full pass.
    fn recompute_critical(&mut self) {
        let mut critical: Option<(NetId, Edge, f64)> = None;
        for &po in self.circuit.primary_outputs() {
            for e in EDGES {
                let t = self.nets[po.index()].arrival[eidx(e)];
                if t > critical.map(|(_, _, c)| c).unwrap_or(f64::NEG_INFINITY) {
                    critical = Some((po, e, t));
                }
            }
        }
        self.critical_net = critical.map(|(n, e, _)| (n, e));
    }

    // ---- backward internals ----

    /// Mark a net's required times dirty (no-op without backward state).
    fn mark_required_net(&mut self, net: NetId) {
        let Some(bw) = self.backward.as_mut() else {
            return;
        };
        Self::mark_required_in(bw, &self.rank, &self.net_driver, net);
    }

    /// Mark a gate's completion bound dirty (no-op without backward
    /// state).
    fn mark_completion_gate(&mut self, gate: GateId) {
        let Some(bw) = self.backward.as_mut() else {
            return;
        };
        Self::mark_completion_in(bw, &self.rank, gate);
    }

    /// Non-`self`-borrowing required-mark, usable while the backward
    /// state is detached during propagation. Driven nets key on their
    /// driver's rank; primary-input nets go to the sink list.
    fn mark_required_in(
        bw: &mut BackwardState,
        rank: &[u32],
        net_driver: &[Option<GateId>],
        net: NetId,
    ) {
        match net_driver[net.index()] {
            Some(driver) => {
                let r = rank[driver.index()];
                let (word, bit) = (r as usize / 64, r % 64);
                if bw.req_bits[word] & (1u64 << bit) == 0 {
                    bw.req_bits[word] |= 1u64 << bit;
                    bw.req_count += 1;
                    if r > bw.req_max_rank {
                        bw.req_max_rank = r;
                    }
                }
            }
            None => {
                let i = net.index();
                let (word, bit) = (i / 64, i % 64);
                if bw.pi_bits[word] & (1u64 << bit) == 0 {
                    bw.pi_bits[word] |= 1u64 << bit;
                    bw.pi_dirty.push(net);
                }
            }
        }
    }

    /// Non-`self`-borrowing completion-mark.
    fn mark_completion_in(bw: &mut BackwardState, rank: &[u32], gate: GateId) {
        let r = rank[gate.index()];
        let (word, bit) = (r as usize / 64, r % 64);
        if bw.comp_bits[word] & (1u64 << bit) == 0 {
            bw.comp_bits[word] |= 1u64 << bit;
            bw.comp_count += 1;
            if r > bw.comp_max_rank {
                bw.comp_max_rank = r;
            }
        }
    }

    /// Full backward refresh: mark every net and gate dirty, then drain.
    /// One descending sweep evaluates each exactly once — the full
    /// backward pass, used on constraint set/changes and option changes.
    fn rebuild_backward(&mut self) {
        let n_gates = self.circuit.gate_count();
        {
            let Some(bw) = self.backward.as_mut() else {
                return;
            };
            for r in 0..n_gates {
                bw.req_bits[r / 64] |= 1u64 << (r % 64);
                bw.comp_bits[r / 64] |= 1u64 << (r % 64);
            }
            bw.req_count = n_gates;
            bw.comp_count = n_gates;
            if n_gates > 0 {
                bw.req_max_rank = (n_gates - 1) as u32;
                bw.comp_max_rank = (n_gates - 1) as u32;
            }
            for &pi in self.circuit.primary_inputs() {
                let i = pi.index();
                if bw.pi_bits[i / 64] & (1u64 << (i % 64)) == 0 {
                    bw.pi_bits[i / 64] |= 1u64 << (i % 64);
                    bw.pi_dirty.push(pi);
                }
            }
        }
        self.propagate_backward();
    }

    /// Drain the backward dirty sets in *descending* rank order;
    /// propagation stops where a recomputed required time / completion
    /// bound is bit-identical to its cached value. Marks always target
    /// strictly lower ranks (a driver's fanins rank below it), so one
    /// descending cursor visits every dirty entry in dependency order.
    fn propagate_backward(&mut self) {
        let Some(mut bw) = self.backward.take() else {
            return;
        };

        // Required times over driven nets, highest driver rank first.
        if bw.req_count > 0 {
            let mut word = bw.req_max_rank as usize / 64;
            loop {
                // Re-read each round: processing a net may mark ranks
                // within the current word (always below the bit just
                // cleared).
                let bits = bw.req_bits[word];
                if bits == 0 {
                    if word == 0 {
                        break;
                    }
                    word -= 1;
                    continue;
                }
                let bit = 63 - bits.leading_zeros();
                bw.req_bits[word] &= !(1u64 << bit);
                bw.req_count -= 1;
                let gate = self.topo[word * 64 + bit as usize];
                let net = self.out_net[gate.index()];
                self.stats.required_reevaluated += 1;
                if self.eval_required(&mut bw, net) {
                    for &in_net in self.circuit.gate(gate).inputs() {
                        Self::mark_required_in(&mut bw, &self.rank, &self.net_driver, in_net);
                    }
                } else {
                    self.stats.required_converged_early += 1;
                }
                if bw.req_count == 0 {
                    break;
                }
            }
            bw.req_max_rank = 0;
        }

        // Primary-input nets: backward sinks, nothing propagates further.
        if !bw.pi_dirty.is_empty() {
            let mut pi_dirty = std::mem::take(&mut bw.pi_dirty);
            for net in pi_dirty.drain(..) {
                let i = net.index();
                bw.pi_bits[i / 64] &= !(1u64 << (i % 64));
                self.stats.required_reevaluated += 1;
                if !self.eval_required(&mut bw, net) {
                    self.stats.required_converged_early += 1;
                }
            }
            bw.pi_dirty = pi_dirty;
        }

        // Completion bounds over gates, highest rank first.
        if bw.comp_count > 0 {
            let mut word = bw.comp_max_rank as usize / 64;
            loop {
                let bits = bw.comp_bits[word];
                if bits == 0 {
                    if word == 0 {
                        break;
                    }
                    word -= 1;
                    continue;
                }
                let bit = 63 - bits.leading_zeros();
                bw.comp_bits[word] &= !(1u64 << bit);
                bw.comp_count -= 1;
                let gate = self.topo[word * 64 + bit as usize];
                self.stats.completion_reevaluated += 1;
                if self.eval_completion(&mut bw, gate) {
                    for &in_net in self.circuit.gate(gate).inputs() {
                        if let Some(driver) = self.net_driver[in_net.index()] {
                            Self::mark_completion_in(&mut bw, &self.rank, driver);
                        }
                    }
                }
                if bw.comp_count == 0 {
                    break;
                }
            }
            bw.comp_max_rank = 0;
        }

        self.backward = Some(bw);
    }

    /// Recompute one net's required times from its fanout arcs; returns
    /// whether they changed (bitwise).
    ///
    /// Candidates are exactly the full backward pass's for this net —
    /// same arc delays (via the cached constants, asserted against the
    /// model), accumulated by the same `<` min — so the result is
    /// bit-identical to a fresh [`crate::required_times`]: a min over
    /// one multiset is order-independent.
    fn eval_required(&self, bw: &mut BackwardState, net: NetId) -> bool {
        let mut req = if self.is_po[net.index()] {
            [bw.tc_ps; 2]
        } else {
            [f64::INFINITY; 2]
        };
        let slope = self.nets[net.index()].slope;
        let (lo, hi) = (
            self.fanout_off[net.index()] as usize,
            self.fanout_off[net.index() + 1] as usize,
        );
        for &h in &self.fanout[lo..hi] {
            let cell = self.cell[h.index()];
            let h_out = self.out_net[h.index()];
            let cin = self.sizing.cin_ff(h);
            let load = self.nets[h_out.index()].load;
            // Same hoisted arc terms as `eval_gate` (bit-identical to
            // `gate_delay_with_output_edge`).
            let ArcTerms {
                tau_out_by_edge,
                miller,
            } = self.gate_params[h.index()].arc_terms(cin, load);
            for out_edge in EDGES {
                let req_out = bw.required[h_out.index()][eidx(out_edge)];
                if req_out == f64::INFINITY {
                    continue;
                }
                let tau_out = tau_out_by_edge[eidx(out_edge)];
                for &in_edge in compatible_input_edges(cell, out_edge) {
                    let i = eidx(in_edge);
                    let delay_ps = 0.5 * self.vt[i] * slope[i] + 0.5 * miller[i] * tau_out;
                    debug_assert_eq!(
                        delay_ps.to_bits(),
                        gate_delay_with_output_edge(
                            self.lib, cell, cin, load, slope[i], in_edge, out_edge,
                        )
                        .delay_ps
                        .to_bits(),
                        "cached-constant backward arc delay must match the model"
                    );
                    let candidate = req_out - delay_ps;
                    if candidate < req[i] {
                        req[i] = candidate;
                    }
                }
            }
        }
        let slot = &mut bw.required[net.index()];
        let changed =
            req[0].to_bits() != slot[0].to_bits() || req[1].to_bits() != slot[1].to_bits();
        *slot = req;
        changed
    }

    /// Recompute one gate's k-paths completion bound; returns whether it
    /// changed (bitwise). Same fold, in the same successor order, as
    /// [`crate::kpaths::completion_bounds`].
    fn eval_completion(&self, bw: &mut BackwardState, gid: GateId) -> bool {
        let out = self.out_net[gid.index()];
        let mut best = if self.is_po[out.index()] {
            0.0
        } else {
            f64::NEG_INFINITY
        };
        let (lo, hi) = (
            self.fanout_off[out.index()] as usize,
            self.fanout_off[out.index() + 1] as usize,
        );
        for &succ in &self.fanout[lo..hi] {
            let c = bw.completion[succ.index()];
            if c.is_finite() {
                best = best.max(c);
            }
        }
        let new = if best.is_finite() {
            self.gate_delay_worst[gid.index()] + best
        } else {
            f64::NEG_INFINITY
        };
        let slot = &mut bw.completion[gid.index()];
        let changed = new.to_bits() != slot.to_bits();
        *slot = new;
        changed
    }
}

impl TimingView for TimingGraph<'_> {
    fn critical_delay_ps(&self) -> f64 {
        TimingGraph::critical_delay_ps(self)
    }
    fn arrival_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        TimingGraph::arrival_ps(self, net, edge)
    }
    fn slope_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        TimingGraph::slope_ps(self, net, edge)
    }
    fn net_load_ff(&self, net: NetId) -> f64 {
        TimingGraph::net_load_ff(self, net)
    }
    fn gate_delay_worst_ps(&self, gate: GateId) -> f64 {
        TimingGraph::gate_delay_worst_ps(self, gate)
    }
    fn cached_completion_ps(&self) -> Option<&[f64]> {
        self.backward.as_ref().map(|bw| bw.completion.as_slice())
    }
    fn cached_required_times(&self, tc_ps: f64, sizing: &Sizing) -> Option<SlackReport> {
        match &self.backward {
            Some(bw) if bw.tc_ps.to_bits() == tc_ps.to_bits() && *sizing == self.sizing => {
                Some(self.slack_report())
            }
            _ => None,
        }
    }
}

/// Slack queries against the maintained backward state.
///
/// # Panics
///
/// Every method panics unless [`TimingGraph::set_constraint`] was
/// called (the inherent methods carry the same contract).
impl SlackView for TimingGraph<'_> {
    fn constraint_ps(&self) -> f64 {
        self.backward().tc_ps
    }
    fn required_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        TimingGraph::required_ps(self, net, edge)
    }
    fn slack_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        TimingGraph::slack_ps(self, net, edge)
    }
    fn worst_slack_ps(&self, net: NetId) -> f64 {
        TimingGraph::worst_slack_ps(self, net)
    }
    fn worst_slack_overall_ps(&self) -> Option<f64> {
        TimingGraph::worst_slack_overall_ps(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, analyze_with};
    use pops_netlist::builders::{inverter_chain, ripple_carry_adder};
    use pops_netlist::suite;

    fn assert_matches_fresh(graph: &TimingGraph, circuit: &Circuit, lib: &Library) {
        let fresh = analyze_with(circuit, lib, graph.sizing(), graph.options()).unwrap();
        assert_eq!(
            graph.critical_delay_ps().to_bits(),
            fresh.critical_delay_ps().to_bits(),
            "critical delay diverged"
        );
        for net in circuit.net_ids() {
            for dir in [EdgeDir::Rising, EdgeDir::Falling] {
                assert_eq!(
                    graph.arrival_ps(net, dir).to_bits(),
                    fresh.arrival_ps(net, dir).to_bits(),
                    "arrival {net} {dir:?}"
                );
                assert_eq!(
                    graph.slope_ps(net, dir).to_bits(),
                    fresh.slope_ps(net, dir).to_bits(),
                    "slope {net} {dir:?}"
                );
            }
            assert_eq!(
                graph.net_load_ff(net).to_bits(),
                fresh.net_load_ff(net).to_bits(),
                "load {net}"
            );
        }
        for g in circuit.gate_ids() {
            assert_eq!(
                graph.gate_delay_worst_ps(g).to_bits(),
                fresh.gate_delay_worst_ps(g).to_bits(),
                "gate delay {g}"
            );
        }
        assert_eq!(graph.critical_path().gates, fresh.critical_path().gates);
    }

    #[test]
    fn initial_state_matches_full_analysis() {
        let lib = Library::cmos025();
        for c in [inverter_chain(6), ripple_carry_adder(8)] {
            let s = Sizing::minimum(&c, &lib);
            let graph = TimingGraph::new(&c, &lib, &s).unwrap();
            assert_matches_fresh(&graph, &c, &lib);
        }
    }

    #[test]
    fn single_resize_matches_full_analysis() {
        let lib = Library::cmos025();
        let c = ripple_carry_adder(8);
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let mid = c.gate_ids().nth(c.gate_count() / 2).unwrap();
        graph.resize_gate(mid, 5.0 * lib.min_drive_ff());
        assert_matches_fresh(&graph, &c, &lib);
    }

    #[test]
    fn resize_then_revert_restores_the_original_state() {
        let lib = Library::cmos025();
        let c = suite::circuit("fpd").unwrap();
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let before = graph.critical_delay_ps();
        let g = graph.critical_path().gates[2];
        let original = graph.sizing().cin_ff(g);
        graph.resize_gate(g, 8.0 * original);
        assert_ne!(graph.critical_delay_ps().to_bits(), before.to_bits());
        graph.resize_gate(g, original);
        assert_eq!(graph.critical_delay_ps().to_bits(), before.to_bits());
        assert_matches_fresh(&graph, &c, &lib);
    }

    #[test]
    fn batch_resize_matches_full_analysis() {
        let lib = Library::cmos025();
        let c = suite::circuit("c432").unwrap();
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let path = graph.critical_path();
        let changes: Vec<(GateId, f64)> = path
            .gates
            .iter()
            .enumerate()
            .map(|(i, &g)| (g, (2.0 + i as f64 * 0.1) * lib.min_drive_ff()))
            .collect();
        graph.resize_gates(changes);
        assert_matches_fresh(&graph, &c, &lib);
    }

    #[test]
    fn resize_touches_only_a_cone() {
        let lib = Library::cmos025();
        let c = suite::circuit("c880").unwrap();
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let g = c.gate_ids().nth(c.gate_count() / 2).unwrap();
        graph.resize_gate(g, 3.0 * lib.min_drive_ff());
        let stats = graph.stats();
        assert!(
            stats.gates_reevaluated < c.gate_count(),
            "cone {} must be smaller than the circuit {}",
            stats.gates_reevaluated,
            c.gate_count()
        );
    }

    #[test]
    fn noop_resize_does_no_work() {
        let lib = Library::cmos025();
        let c = inverter_chain(5);
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let g = c.gate_ids().next().unwrap();
        graph.resize_gate(g, lib.min_drive_ff());
        assert_eq!(graph.stats().gates_reevaluated, 0);
        assert_eq!(graph.stats().updates, 0);
    }

    #[test]
    fn set_options_matches_full_analysis_under_new_options() {
        let lib = Library::cmos025();
        let c = ripple_carry_adder(6);
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let new = AnalyzeOptions {
            po_load_ff: 42.0,
            input_transition_ps: 120.0,
        };
        graph.set_options(&new);
        assert_matches_fresh(&graph, &c, &lib);
        let fresh = analyze_with(&c, &lib, graph.sizing(), &new).unwrap();
        assert_eq!(
            graph.critical_delay_ps().to_bits(),
            fresh.critical_delay_ps().to_bits()
        );
    }

    fn assert_backward_matches_fresh(graph: &TimingGraph, circuit: &Circuit, lib: &Library) {
        use crate::kpaths::completion_bounds;
        use crate::slack::required_times;
        let tc = graph.constraint_ps().expect("constraint set");
        let fresh = analyze_with(circuit, lib, graph.sizing(), graph.options()).unwrap();
        let slacks = required_times(circuit, lib, graph.sizing(), &fresh, tc).unwrap();
        for net in circuit.net_ids() {
            for dir in [EdgeDir::Rising, EdgeDir::Falling] {
                assert_eq!(
                    graph.required_ps(net, dir).to_bits(),
                    slacks.required_ps(net, dir).to_bits(),
                    "required {net} {dir:?}"
                );
                assert_eq!(
                    graph.slack_ps(net, dir).to_bits(),
                    slacks.slack_ps(net, dir).to_bits(),
                    "slack {net} {dir:?}"
                );
            }
        }
        assert_eq!(
            graph.worst_slack_overall_ps().map(f64::to_bits),
            slacks.worst_slack_overall_ps().map(f64::to_bits),
            "worst slack overall"
        );
        let bounds = completion_bounds(circuit, &fresh);
        for g in circuit.gate_ids() {
            assert_eq!(
                graph.completion_ps(g).to_bits(),
                bounds[g.index()].to_bits(),
                "completion {g}"
            );
        }
    }

    #[test]
    fn initial_backward_state_matches_full_backward_pass() {
        let lib = Library::cmos025();
        for c in [inverter_chain(6), ripple_carry_adder(8)] {
            let s = Sizing::minimum(&c, &lib);
            let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
            graph.set_constraint(0.9 * graph.critical_delay_ps());
            assert_backward_matches_fresh(&graph, &c, &lib);
        }
    }

    #[test]
    fn resize_keeps_backward_state_identical_to_fresh_pass() {
        let lib = Library::cmos025();
        let c = suite::circuit("c432").unwrap();
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        graph.set_constraint(0.85 * graph.critical_delay_ps());
        let path = graph.critical_path();
        for (i, &g) in path.gates.iter().enumerate().take(6) {
            graph.resize_gate(g, (2.0 + i as f64 * 0.7) * lib.min_drive_ff());
            assert_backward_matches_fresh(&graph, &c, &lib);
        }
    }

    #[test]
    fn changing_the_constraint_rebuilds_required_times() {
        let lib = Library::cmos025();
        let c = suite::circuit("fpd").unwrap();
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let t0 = graph.critical_delay_ps();
        graph.set_constraint(t0);
        assert_backward_matches_fresh(&graph, &c, &lib);
        graph.set_constraint(1.4 * t0);
        assert_backward_matches_fresh(&graph, &c, &lib);
        // Worst slack at the exact constraint is 0 at the critical PO.
        graph.set_constraint(t0);
        let worst = graph.worst_slack_overall_ps().unwrap();
        assert!(worst.abs() < 1e-9, "worst slack {worst}");
    }

    #[test]
    fn set_options_invalidates_and_rebuilds_backward_state() {
        let lib = Library::cmos025();
        let c = ripple_carry_adder(6);
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        graph.set_constraint(1.1 * graph.critical_delay_ps());
        graph.set_options(&AnalyzeOptions {
            po_load_ff: 35.0,
            input_transition_ps: 90.0,
        });
        assert_matches_fresh(&graph, &c, &lib);
        assert_backward_matches_fresh(&graph, &c, &lib);
    }

    #[test]
    fn backward_update_touches_only_a_cone() {
        let lib = Library::cmos025();
        let c = suite::circuit("c880").unwrap();
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        graph.set_constraint(0.9 * graph.critical_delay_ps());
        let after_build = graph.stats();
        let g = c.gate_ids().nth(c.gate_count() / 2).unwrap();
        graph.resize_gate(g, 3.0 * lib.min_drive_ff());
        let stats = graph.stats();
        let reevals = stats.required_reevaluated - after_build.required_reevaluated;
        assert!(
            reevals < c.net_count(),
            "backward cone {} must be smaller than the circuit {}",
            reevals,
            c.net_count()
        );
    }

    #[test]
    fn slack_queries_panic_without_a_constraint() {
        let lib = Library::cmos025();
        let c = inverter_chain(3);
        let s = Sizing::minimum(&c, &lib);
        let graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            graph.worst_slack_overall_ps()
        }));
        assert!(result.is_err(), "querying slack without a constraint");
    }

    #[test]
    fn cached_required_times_short_circuits_only_on_matching_tc() {
        let lib = Library::cmos025();
        let c = inverter_chain(5);
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let tc = 1.2 * graph.critical_delay_ps();
        graph.set_constraint(tc);
        let sizing = graph.sizing().clone();
        assert!(TimingView::cached_required_times(&graph, tc, &sizing).is_some());
        assert!(TimingView::cached_required_times(&graph, tc + 1.0, &sizing).is_none());
        // A probe sizing that differs from the graph's own must miss the
        // cache — the answer would be for the wrong sizes.
        let mut probe = sizing.clone();
        let g0 = c.gate_ids().next().unwrap();
        probe.set(g0, 2.0 * probe.cin_ff(g0));
        assert!(TimingView::cached_required_times(&graph, tc, &probe).is_none());
        // And the materialized report agrees with the full pass.
        let via_cache = crate::slack::required_times(&c, &lib, graph.sizing(), &graph, tc).unwrap();
        let fresh = analyze(&c, &lib, graph.sizing()).unwrap();
        let via_pass = crate::slack::required_times(&c, &lib, graph.sizing(), &fresh, tc).unwrap();
        for net in c.net_ids() {
            for dir in [EdgeDir::Rising, EdgeDir::Falling] {
                assert_eq!(
                    via_cache.required_ps(net, dir).to_bits(),
                    via_pass.required_ps(net, dir).to_bits()
                );
            }
        }
    }

    #[test]
    fn clear_constraint_disables_the_caches() {
        let lib = Library::cmos025();
        let c = inverter_chain(4);
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        graph.set_constraint(100.0);
        assert!(graph.cached_completion_ps().is_some());
        graph.clear_constraint();
        assert!(graph.cached_completion_ps().is_none());
        assert_eq!(graph.constraint_ps(), None);
    }

    #[test]
    fn timing_view_is_object_safe_over_both_backends() {
        let lib = Library::cmos025();
        let c = inverter_chain(4);
        let s = Sizing::minimum(&c, &lib);
        let report = analyze(&c, &lib, &s).unwrap();
        let graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let views: Vec<&dyn TimingView> = vec![&report, &graph];
        let delays: Vec<f64> = views.iter().map(|v| v.critical_delay_ps()).collect();
        assert_eq!(delays[0].to_bits(), delays[1].to_bits());
    }
}
