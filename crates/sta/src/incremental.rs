//! Incremental static timing analysis: dirty-cone re-propagation.
//!
//! The optimization protocol is an iterative loop — classify, resize,
//! re-time, repeat — and a single gate resize only perturbs its fanin
//! nets' loads and its downstream fanout cone. A [`TimingGraph`] is
//! built once per circuit (caching the topological order, per-gate topo
//! rank and per-net loads) and then kept consistent through
//! [`TimingGraph::resize_gate`] / [`TimingGraph::set_options`] mutators
//! that re-evaluate only the affected cone, in rank order, stopping as
//! soon as re-propagated arrivals and slopes converge onto their cached
//! values.
//!
//! # Equivalence contract
//!
//! After any sequence of mutations the queryable state is **bit-identical**
//! to a from-scratch [`analyze_with`](crate::analysis::analyze_with) under
//! the same sizing and options:
//!
//! * a re-evaluated gate runs exactly the per-gate step of the full pass
//!   (same arc order, same comparison, same floating-point operations);
//! * net loads are recomputed by the same summation in the same order,
//!   never by error-accumulating deltas;
//! * gates are re-evaluated in topological-rank order, so every gate sees
//!   final fanin values, and a gate whose fanin arrivals/slopes are
//!   bit-unchanged is provably unaffected and cut off (its stored state
//!   *is* what the full pass would recompute).
//!
//! The randomized equivalence suite (`tests/incremental_equivalence.rs`)
//! asserts this against `analyze()` after every step of random resize
//! sequences.

use pops_delay::model::{gate_delay_with_output_edge, Edge};
use pops_delay::Library;
use pops_netlist::{CellKind, Circuit, GateId, NetId, NetlistError};

use crate::analysis::{
    compatible_input_edges, eidx, AnalyzeOptions, EdgeDir, NetlistPath, TimingView, EDGES,
};
use crate::sizing::Sizing;

/// Cumulative work counters, for benchmarks and cone-size assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Gate re-evaluations performed since construction (the full
    /// initial pass is not counted).
    pub gates_reevaluated: usize,
    /// Re-evaluations whose output was bit-unchanged, cutting the cone.
    pub converged_early: usize,
    /// Mutator calls (resize / option changes) processed.
    pub updates: usize,
}

/// Per-gate model constants, flattened out of the library at build time.
///
/// `Library::cell()` is a by-kind lookup and the symmetry factors are
/// re-derived on every call; one cone re-evaluation makes thousands of
/// arc evaluations, so the graph caches the resolved constants per gate.
/// Every cached value is produced by the *same* floating-point expression
/// the model uses, so arc delays stay bit-identical to
/// [`gate_delay_with_output_edge`].
#[derive(Debug, Clone, Copy)]
struct GateParams {
    /// `C_par = cpar_factor · C_IN`.
    cpar_factor: f64,
    /// P/N configuration ratio `k` (Miller coupling split).
    k: f64,
    /// `τ · S(out_edge)`, indexed by [`eidx`] of the output edge.
    tau_s: [f64; 2],
}

/// Per-net timing state, kept as one record for cache locality.
#[derive(Debug, Clone, Copy)]
struct NetTiming {
    /// Arrival time per edge (ps); `-inf` where unreachable.
    arrival: [f64; 2],
    /// Transition time per edge (ps).
    slope: [f64; 2],
    /// Predecessor `(net, input edge)` of the worst arrival.
    pred: [Option<(NetId, Edge)>; 2],
    /// Capacitive load (fF) under the current sizing.
    load: f64,
}

impl NetTiming {
    const UNREACHED: NetTiming = NetTiming {
        arrival: [f64::NEG_INFINITY; 2],
        slope: [0.0; 2],
        pred: [None, None],
        load: 0.0,
    };
}

/// Incrementally maintained timing state of one circuit.
///
/// Holds the circuit and library by reference; all sizing state lives
/// inside the graph (query it with [`TimingGraph::sizing`]).
///
/// # Example
///
/// ```
/// use pops_netlist::builders::ripple_carry_adder;
/// use pops_delay::Library;
/// use pops_sta::analysis::analyze;
/// use pops_sta::incremental::TimingGraph;
/// use pops_sta::Sizing;
///
/// # fn main() -> Result<(), pops_netlist::NetlistError> {
/// let c = ripple_carry_adder(8);
/// let lib = Library::cmos025();
/// let sizing = Sizing::minimum(&c, &lib);
/// let mut graph = TimingGraph::new(&c, &lib, &sizing)?;
/// let before = graph.critical_delay_ps();
///
/// // Resize one gate: only its cone is re-timed.
/// let g = graph.critical_path().gates[0];
/// graph.resize_gate(g, 4.0 * lib.min_drive_ff());
/// let after = graph.critical_delay_ps();
/// assert_ne!(before, after);
///
/// // The state matches a fresh full analysis bit-for-bit.
/// let fresh = analyze(&c, &lib, graph.sizing())?;
/// assert_eq!(fresh.critical_delay_ps(), after);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TimingGraph<'c> {
    circuit: &'c Circuit,
    lib: &'c Library,
    options: AnalyzeOptions,
    sizing: Sizing,

    /// Gates in the cached topological order.
    topo: Vec<GateId>,
    /// `rank[gate] = position in `topo`` — the propagation priority.
    rank: Vec<u32>,
    /// Driver gate of each net (`None` for primary inputs).
    net_driver: Vec<Option<GateId>>,

    /// Per-net timing record. One contiguous struct per net (instead of
    /// parallel arrays) so a gate re-evaluation touches one cache line
    /// per fanin net — cone updates jump around the netlist, and their
    /// cost is dominated by memory traffic, not arithmetic.
    nets: Vec<NetTiming>,
    /// Worst-case delay of each gate under the current slopes.
    gate_delay_worst: Vec<f64>,
    critical_net: Option<(NetId, Edge)>,

    /// Flattened model constants per gate (see [`GateParams`]).
    gate_params: Vec<GateParams>,
    /// Reduced thresholds `v_T`, indexed by [`eidx`] of the *input* edge.
    vt: [f64; 2],

    /// Cell kind per gate (flat copy: avoids chasing `circuit.gate()`
    /// in the hot loop).
    cell: Vec<CellKind>,
    /// Output net per gate.
    out_net: Vec<NetId>,
    /// Fanin nets of all gates, flattened; gate `g`'s inputs are
    /// `fanin[fanin_off[g] .. fanin_off[g+1]]`.
    fanin: Vec<NetId>,
    fanin_off: Vec<u32>,
    /// Fanout gates of all nets, flattened; net `n`'s loads are
    /// `fanout[fanout_off[n] .. fanout_off[n+1]]` (one entry per pin).
    fanout: Vec<GateId>,
    fanout_off: Vec<u32>,

    /// Dirty set as a bitset over topo *ranks* (bit `r` of word `r/64`).
    /// Propagation walks it with a forward cursor + `trailing_zeros` —
    /// marks always target strictly higher ranks, so no priority queue
    /// is needed to process gates in rank order.
    dirty_bits: Vec<u64>,
    /// Dirty gates not yet re-evaluated.
    dirty_count: usize,
    /// Lowest rank marked since the last propagation.
    min_dirty_rank: u32,
    stats: UpdateStats,
}

impl<'c> TimingGraph<'c> {
    /// Build the graph and run the initial full timing pass under
    /// default [`AnalyzeOptions`].
    ///
    /// # Errors
    ///
    /// Propagates netlist structural errors (cycles, undriven nets) from
    /// [`Circuit::topo_order`].
    pub fn new(
        circuit: &'c Circuit,
        lib: &'c Library,
        sizing: &Sizing,
    ) -> Result<Self, NetlistError> {
        Self::with_options(circuit, lib, sizing, &AnalyzeOptions::default())
    }

    /// [`TimingGraph::new`] with explicit options.
    ///
    /// # Errors
    ///
    /// As [`TimingGraph::new`].
    pub fn with_options(
        circuit: &'c Circuit,
        lib: &'c Library,
        sizing: &Sizing,
        options: &AnalyzeOptions,
    ) -> Result<Self, NetlistError> {
        let topo = circuit.topo_order()?;
        let mut rank = vec![0u32; circuit.gate_count()];
        for (i, &g) in topo.iter().enumerate() {
            rank[g.index()] = i as u32;
        }
        let n_nets = circuit.net_count();
        let net_driver = circuit.net_ids().map(|n| circuit.driver_gate(n)).collect();

        let process = lib.process();
        let gate_params = circuit
            .gate_ids()
            .map(|g| {
                let cell = lib.cell(circuit.gate(g).kind());
                let mut tau_s = [0.0f64; 2];
                for e in EDGES {
                    // Same product order as the model's
                    // `process.tau_ps * s * cl_total / cin`: caching
                    // `tau_ps * s` keeps the remaining ops bit-identical.
                    tau_s[eidx(e)] = process.tau_ps * cell.s_factor(process, e);
                }
                GateParams {
                    cpar_factor: cell.cpar_factor,
                    k: cell.k,
                    tau_s,
                }
            })
            .collect();
        let vt = [process.vtn_reduced(), process.vtp_reduced()];

        // Flatten the netlist adjacency into contiguous arrays: the cone
        // walk is memory-bound, and per-gate/per-net `Vec`s would cost a
        // pointer chase per visit.
        let cell: Vec<CellKind> = circuit.gate_ids().map(|g| circuit.gate(g).kind()).collect();
        let out_net: Vec<NetId> = circuit
            .gate_ids()
            .map(|g| circuit.gate(g).output())
            .collect();
        let mut fanin = Vec::with_capacity(circuit.pin_count());
        let mut fanin_off = Vec::with_capacity(circuit.gate_count() + 1);
        fanin_off.push(0u32);
        for g in circuit.gate_ids() {
            fanin.extend_from_slice(circuit.gate(g).inputs());
            fanin_off.push(fanin.len() as u32);
        }
        let mut fanout = Vec::with_capacity(circuit.pin_count());
        let mut fanout_off = Vec::with_capacity(n_nets + 1);
        fanout_off.push(0u32);
        for n in circuit.net_ids() {
            fanout.extend(circuit.fanout_gates(n));
            fanout_off.push(fanout.len() as u32);
        }

        let mut graph = TimingGraph {
            circuit,
            lib,
            options: options.clone(),
            sizing: sizing.clone(),
            topo,
            rank,
            net_driver,
            nets: vec![NetTiming::UNREACHED; n_nets],
            gate_delay_worst: vec![0.0f64; circuit.gate_count()],
            critical_net: None,
            gate_params,
            vt,
            cell,
            out_net,
            fanin,
            fanin_off,
            fanout,
            fanout_off,
            dirty_bits: vec![0u64; circuit.gate_count().div_ceil(64)],
            dirty_count: 0,
            min_dirty_rank: u32::MAX,
            stats: UpdateStats::default(),
        };
        graph.full_pass();
        Ok(graph)
    }

    /// The circuit this graph times.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// The current sizing (the graph owns its copy; mutate it through
    /// [`TimingGraph::resize_gate`]).
    pub fn sizing(&self) -> &Sizing {
        &self.sizing
    }

    /// The options the timing state currently reflects.
    pub fn options(&self) -> &AnalyzeOptions {
        &self.options
    }

    /// Cumulative incremental-work counters.
    pub fn stats(&self) -> UpdateStats {
        self.stats
    }

    /// Set one gate's input capacitance and re-time its affected cone.
    ///
    /// Cost is O(cone): the gate itself, the drivers of its fanin nets
    /// (their loads changed) and every downstream gate whose arrival or
    /// slope actually moves.
    ///
    /// # Panics
    ///
    /// Panics if the gate id is out of range or `cin_ff <= 0` (as
    /// [`Sizing::set`]).
    pub fn resize_gate(&mut self, gate: GateId, cin_ff: f64) {
        self.resize_gates([(gate, cin_ff)]);
    }

    /// Apply a batch of resizes, then re-time all affected cones in one
    /// rank-ordered propagation (cheaper than per-gate flushes when the
    /// changes overlap, e.g. writing back a whole optimized path).
    ///
    /// # Panics
    ///
    /// As [`TimingGraph::resize_gate`].
    pub fn resize_gates(&mut self, changes: impl IntoIterator<Item = (GateId, f64)>) {
        let mut any = false;
        for (gate, cin_ff) in changes {
            if self.sizing.cin_ff(gate) == cin_ff {
                continue;
            }
            self.sizing.set(gate, cin_ff);
            any = true;
            // The fanin nets' loads changed: recompute them exactly (same
            // summation order as the full pass — no delta accumulation)
            // and re-evaluate their driver gates.
            for &in_net in self.circuit.gate(gate).inputs() {
                self.recompute_net_load(in_net);
                if let Some(driver) = self.net_driver[in_net.index()] {
                    self.mark_dirty(driver);
                }
            }
            // The gate's own drive changed.
            self.mark_dirty(gate);
        }
        if any {
            self.stats.updates += 1;
            self.propagate();
        }
    }

    /// Switch to new analysis options and re-time what they touch (all
    /// primary-output loads and/or all primary-input slopes).
    pub fn set_options(&mut self, options: &AnalyzeOptions) {
        if self.options == *options {
            return;
        }
        let po_changed = self.options.po_load_ff != options.po_load_ff;
        let slope_changed = self.options.input_transition_ps != options.input_transition_ps;
        self.options = options.clone();

        if po_changed {
            for net in self.circuit.net_ids() {
                if self.circuit.net(net).is_output() {
                    self.recompute_net_load(net);
                    if let Some(driver) = self.net_driver[net.index()] {
                        self.mark_dirty(driver);
                    }
                }
            }
        }
        if slope_changed {
            let circuit = self.circuit;
            for &pi in circuit.primary_inputs() {
                for e in EDGES {
                    self.nets[pi.index()].slope[eidx(e)] = self.options.input_transition_ps;
                }
                for g in circuit.fanout_gates(pi) {
                    self.mark_dirty(g);
                }
            }
        }
        self.stats.updates += 1;
        self.propagate();
    }

    // ---- query surface (mirrors `TimingReport`) ----

    /// Worst arrival time over all primary outputs (ps).
    pub fn critical_delay_ps(&self) -> f64 {
        self.critical_net
            .map(|(n, e)| self.nets[n.index()].arrival[eidx(e)])
            .unwrap_or(0.0)
    }

    /// Arrival time of a net for a given edge (ps), `-inf` if unreachable.
    pub fn arrival_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        self.nets[net.index()].arrival[eidx(edge.into())]
    }

    /// Transition time of a net for a given edge (ps).
    pub fn slope_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        self.nets[net.index()].slope[eidx(edge.into())]
    }

    /// Capacitive load on a net (fF) under the current sizing, including
    /// the primary-output latch load where applicable.
    pub fn net_load_ff(&self, net: NetId) -> f64 {
        self.nets[net.index()].load
    }

    /// Worst-case delay of a gate (ps) under the current slopes.
    pub fn gate_delay_worst_ps(&self, gate: GateId) -> f64 {
        self.gate_delay_worst[gate.index()]
    }

    /// The most critical path: traceback from the worst primary output.
    ///
    /// Returns an empty path only for circuits without gates.
    pub fn critical_path(&self) -> NetlistPath {
        let Some((net, edge)) = self.critical_net else {
            return NetlistPath {
                gates: Vec::new(),
                end_edge: EdgeDir::Rising,
            };
        };
        self.path_to(net, edge)
    }

    /// Traceback the worst path ending at `net` with `edge`.
    pub fn path_to(&self, net: NetId, edge: Edge) -> NetlistPath {
        let mut gates = Vec::new();
        let mut cur = Some((net, edge));
        while let Some((n, e)) = cur {
            if let Some(gid) = self.net_driver[n.index()] {
                gates.push(gid);
            }
            cur = self.nets[n.index()].pred[eidx(e)];
        }
        gates.reverse();
        NetlistPath {
            gates,
            end_edge: edge.into(),
        }
    }

    /// Primary output nets.
    pub fn outputs(&self) -> &[NetId] {
        self.circuit.primary_outputs()
    }

    // ---- internals ----

    /// Exact per-net load under the current sizing; identical summation
    /// order to the full pass for bit-equality.
    fn recompute_net_load(&mut self, net: NetId) {
        let mut load = 0.0;
        for &(g, _pin) in self.circuit.net(net).loads() {
            load += self.sizing.cin_ff(g);
        }
        if self.circuit.net(net).is_output() {
            load += self.options.po_load_ff;
        }
        self.nets[net.index()].load = load;
    }

    fn mark_dirty(&mut self, gate: GateId) {
        let rank = self.rank[gate.index()];
        let (word, bit) = (rank as usize / 64, rank % 64);
        if self.dirty_bits[word] & (1u64 << bit) == 0 {
            self.dirty_bits[word] |= 1u64 << bit;
            self.dirty_count += 1;
            if rank < self.min_dirty_rank {
                self.min_dirty_rank = rank;
            }
        }
    }

    /// Drain the dirty queue in rank order; propagation stops where a
    /// gate's re-evaluated output is bit-identical to its cached state.
    fn propagate(&mut self) {
        let mut any_changed = false;
        let mut word = self.min_dirty_rank as usize / 64;
        while self.dirty_count > 0 {
            // Re-read each round: processing a gate may mark ranks within
            // the current word (always above the bit just cleared).
            let bits = self.dirty_bits[word];
            if bits == 0 {
                word += 1;
                continue;
            }
            let bit = bits.trailing_zeros();
            self.dirty_bits[word] &= !(1u64 << bit);
            self.dirty_count -= 1;
            let gate = self.topo[word * 64 + bit as usize];
            self.stats.gates_reevaluated += 1;
            if self.eval_gate(gate) {
                any_changed = true;
                let out = self.out_net[gate.index()].index();
                let (lo, hi) = (self.fanout_off[out], self.fanout_off[out + 1]);
                for i in lo..hi {
                    self.mark_dirty(self.fanout[i as usize]);
                }
            } else {
                self.stats.converged_early += 1;
            }
        }
        self.min_dirty_rank = u32::MAX;
        if any_changed {
            self.recompute_critical();
        }
    }

    /// Re-run the full pass's per-gate step for `gate`; returns whether
    /// the output net's arrival or slope changed (bitwise).
    fn eval_gate(&mut self, gid: GateId) -> bool {
        let cell = self.cell[gid.index()];
        let out = self.out_net[gid.index()];
        let cin = self.sizing.cin_ff(gid);
        let load = self.nets[out.index()].load;

        // The arc terms that do not depend on the fanin are hoisted out of
        // the loop; every expression reproduces the exact operation order
        // of `gate_delay_with_output_edge`, so arc delays (and therefore
        // the whole timing state) stay bit-identical to the full pass.
        let p = self.gate_params[gid.index()];
        let cl_total = p.cpar_factor * cin + load;
        // τ_out per output edge: `(τ·S) · C_L / C_IN`.
        let tau_out_by_edge = [p.tau_s[0] * cl_total / cin, p.tau_s[1] * cl_total / cin];
        // Miller amplification per *input* edge (C_M couples through the
        // P device on a rising input, the N device on a falling one).
        let cm = [0.5 * cin * p.k / (1.0 + p.k), 0.5 * cin / (1.0 + p.k)];
        let miller = [
            1.0 + 2.0 * cm[0] / (cm[0] + cl_total),
            1.0 + 2.0 * cm[1] / (cm[1] + cl_total),
        ];

        let mut new_arrival = [f64::NEG_INFINITY; 2];
        let mut new_slope = [0.0f64; 2];
        let mut new_pred: [Option<(NetId, Edge)>; 2] = [None, None];
        let mut worst_gate_delay = 0.0f64;

        let fanin_range =
            self.fanin_off[gid.index()] as usize..self.fanin_off[gid.index() + 1] as usize;
        for out_edge in EDGES {
            let tau_out = tau_out_by_edge[eidx(out_edge)];
            let mut best: Option<(f64, NetId, Edge)> = None;
            for &in_net in &self.fanin[fanin_range.clone()] {
                let fanin = &self.nets[in_net.index()];
                for &in_edge in compatible_input_edges(cell, out_edge) {
                    let t_in = fanin.arrival[eidx(in_edge)];
                    if t_in == f64::NEG_INFINITY {
                        continue;
                    }
                    let s_in = fanin.slope[eidx(in_edge)];
                    let i = eidx(in_edge);
                    let delay_ps = 0.5 * self.vt[i] * s_in + 0.5 * miller[i] * tau_out;
                    debug_assert_eq!(
                        delay_ps.to_bits(),
                        gate_delay_with_output_edge(
                            self.lib, cell, cin, load, s_in, in_edge, out_edge,
                        )
                        .delay_ps
                        .to_bits(),
                        "cached-constant arc delay must match the model"
                    );
                    worst_gate_delay = worst_gate_delay.max(delay_ps);
                    let t_out = t_in + delay_ps;
                    if best.map(|(t, ..)| t_out > t).unwrap_or(true) {
                        best = Some((t_out, in_net, in_edge));
                    }
                }
            }
            if let Some((t, n, e)) = best {
                let i = eidx(out_edge);
                new_arrival[i] = t;
                new_slope[i] = tau_out;
                new_pred[i] = Some((n, e));
            }
        }

        self.gate_delay_worst[gid.index()] = worst_gate_delay;
        let o = &mut self.nets[out.index()];
        let changed = new_arrival[0].to_bits() != o.arrival[0].to_bits()
            || new_arrival[1].to_bits() != o.arrival[1].to_bits()
            || new_slope[0].to_bits() != o.slope[0].to_bits()
            || new_slope[1].to_bits() != o.slope[1].to_bits();
        o.arrival = new_arrival;
        o.slope = new_slope;
        o.pred = new_pred;
        changed
    }

    /// Initial timing: evaluate every gate once in topological order —
    /// exactly the full pass of `analyze_with`.
    fn full_pass(&mut self) {
        for net in self.circuit.net_ids() {
            self.recompute_net_load(net);
        }
        for &pi in self.circuit.primary_inputs() {
            let n = &mut self.nets[pi.index()];
            for e in EDGES {
                n.arrival[eidx(e)] = 0.0;
                n.slope[eidx(e)] = self.options.input_transition_ps;
            }
        }
        for i in 0..self.topo.len() {
            let gate = self.topo[i];
            self.eval_gate(gate);
        }
        self.recompute_critical();
    }

    /// Same worst-output scan (and tie-breaking order) as the full pass.
    fn recompute_critical(&mut self) {
        let mut critical: Option<(NetId, Edge, f64)> = None;
        for &po in self.circuit.primary_outputs() {
            for e in EDGES {
                let t = self.nets[po.index()].arrival[eidx(e)];
                if t > critical.map(|(_, _, c)| c).unwrap_or(f64::NEG_INFINITY) {
                    critical = Some((po, e, t));
                }
            }
        }
        self.critical_net = critical.map(|(n, e, _)| (n, e));
    }
}

impl TimingView for TimingGraph<'_> {
    fn critical_delay_ps(&self) -> f64 {
        TimingGraph::critical_delay_ps(self)
    }
    fn arrival_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        TimingGraph::arrival_ps(self, net, edge)
    }
    fn slope_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        TimingGraph::slope_ps(self, net, edge)
    }
    fn net_load_ff(&self, net: NetId) -> f64 {
        TimingGraph::net_load_ff(self, net)
    }
    fn gate_delay_worst_ps(&self, gate: GateId) -> f64 {
        TimingGraph::gate_delay_worst_ps(self, gate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, analyze_with};
    use pops_netlist::builders::{inverter_chain, ripple_carry_adder};
    use pops_netlist::suite;

    fn assert_matches_fresh(graph: &TimingGraph, circuit: &Circuit, lib: &Library) {
        let fresh = analyze_with(circuit, lib, graph.sizing(), graph.options()).unwrap();
        assert_eq!(
            graph.critical_delay_ps().to_bits(),
            fresh.critical_delay_ps().to_bits(),
            "critical delay diverged"
        );
        for net in circuit.net_ids() {
            for dir in [EdgeDir::Rising, EdgeDir::Falling] {
                assert_eq!(
                    graph.arrival_ps(net, dir).to_bits(),
                    fresh.arrival_ps(net, dir).to_bits(),
                    "arrival {net} {dir:?}"
                );
                assert_eq!(
                    graph.slope_ps(net, dir).to_bits(),
                    fresh.slope_ps(net, dir).to_bits(),
                    "slope {net} {dir:?}"
                );
            }
            assert_eq!(
                graph.net_load_ff(net).to_bits(),
                fresh.net_load_ff(net).to_bits(),
                "load {net}"
            );
        }
        for g in circuit.gate_ids() {
            assert_eq!(
                graph.gate_delay_worst_ps(g).to_bits(),
                fresh.gate_delay_worst_ps(g).to_bits(),
                "gate delay {g}"
            );
        }
        assert_eq!(graph.critical_path().gates, fresh.critical_path().gates);
    }

    #[test]
    fn initial_state_matches_full_analysis() {
        let lib = Library::cmos025();
        for c in [inverter_chain(6), ripple_carry_adder(8)] {
            let s = Sizing::minimum(&c, &lib);
            let graph = TimingGraph::new(&c, &lib, &s).unwrap();
            assert_matches_fresh(&graph, &c, &lib);
        }
    }

    #[test]
    fn single_resize_matches_full_analysis() {
        let lib = Library::cmos025();
        let c = ripple_carry_adder(8);
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let mid = c.gate_ids().nth(c.gate_count() / 2).unwrap();
        graph.resize_gate(mid, 5.0 * lib.min_drive_ff());
        assert_matches_fresh(&graph, &c, &lib);
    }

    #[test]
    fn resize_then_revert_restores_the_original_state() {
        let lib = Library::cmos025();
        let c = suite::circuit("fpd").unwrap();
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let before = graph.critical_delay_ps();
        let g = graph.critical_path().gates[2];
        let original = graph.sizing().cin_ff(g);
        graph.resize_gate(g, 8.0 * original);
        assert_ne!(graph.critical_delay_ps().to_bits(), before.to_bits());
        graph.resize_gate(g, original);
        assert_eq!(graph.critical_delay_ps().to_bits(), before.to_bits());
        assert_matches_fresh(&graph, &c, &lib);
    }

    #[test]
    fn batch_resize_matches_full_analysis() {
        let lib = Library::cmos025();
        let c = suite::circuit("c432").unwrap();
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let path = graph.critical_path();
        let changes: Vec<(GateId, f64)> = path
            .gates
            .iter()
            .enumerate()
            .map(|(i, &g)| (g, (2.0 + i as f64 * 0.1) * lib.min_drive_ff()))
            .collect();
        graph.resize_gates(changes);
        assert_matches_fresh(&graph, &c, &lib);
    }

    #[test]
    fn resize_touches_only_a_cone() {
        let lib = Library::cmos025();
        let c = suite::circuit("c880").unwrap();
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let g = c.gate_ids().nth(c.gate_count() / 2).unwrap();
        graph.resize_gate(g, 3.0 * lib.min_drive_ff());
        let stats = graph.stats();
        assert!(
            stats.gates_reevaluated < c.gate_count(),
            "cone {} must be smaller than the circuit {}",
            stats.gates_reevaluated,
            c.gate_count()
        );
    }

    #[test]
    fn noop_resize_does_no_work() {
        let lib = Library::cmos025();
        let c = inverter_chain(5);
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let g = c.gate_ids().next().unwrap();
        graph.resize_gate(g, lib.min_drive_ff());
        assert_eq!(graph.stats().gates_reevaluated, 0);
        assert_eq!(graph.stats().updates, 0);
    }

    #[test]
    fn set_options_matches_full_analysis_under_new_options() {
        let lib = Library::cmos025();
        let c = ripple_carry_adder(6);
        let s = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let new = AnalyzeOptions {
            po_load_ff: 42.0,
            input_transition_ps: 120.0,
        };
        graph.set_options(&new);
        assert_matches_fresh(&graph, &c, &lib);
        let fresh = analyze_with(&c, &lib, graph.sizing(), &new).unwrap();
        assert_eq!(
            graph.critical_delay_ps().to_bits(),
            fresh.critical_delay_ps().to_bits()
        );
    }

    #[test]
    fn timing_view_is_object_safe_over_both_backends() {
        let lib = Library::cmos025();
        let c = inverter_chain(4);
        let s = Sizing::minimum(&c, &lib);
        let report = analyze(&c, &lib, &s).unwrap();
        let graph = TimingGraph::new(&c, &lib, &s).unwrap();
        let views: Vec<&dyn TimingView> = vec![&report, &graph];
        let delays: Vec<f64> = views.iter().map(|v| v.critical_delay_ps()).collect();
        assert_eq!(delays[0].to_bits(), delays[1].to_bits());
    }
}
