//! K most critical paths (ref. [11] of the paper: Yen, Du, Ghanta, DAC'89).
//!
//! POPS deliberately optimizes a *limited set of paths* instead of the
//! whole circuit. This module enumerates the K longest gate paths of the
//! timing DAG in decreasing delay order.
//!
//! Gate delays are frozen at their worst-case value under the analyzed
//! slopes (the exact path delay depends on the slope history along the
//! path, which would make exact enumeration exponential; the frozen-weight
//! ranking is the standard block-based approximation and is re-timed
//! exactly when the path is handed to the optimizer).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use pops_netlist::{Circuit, GateId, NetDriver};

use crate::analysis::{EdgeDir, NetlistPath, TimingView};

/// A partial or complete path in the search heap, ordered by its
/// optimistic bound (current weight + best possible completion).
struct HeapEntry {
    bound: f64,
    gates: Vec<GateId>,
    complete: bool,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound
            .partial_cmp(&other.bound)
            .unwrap_or(Ordering::Equal)
    }
}

/// Enumerate the `k` most critical (longest) gate paths.
///
/// Paths run from a gate fed by a primary input to a gate driving a
/// primary output. Returned in non-increasing weight order; fewer than `k`
/// paths are returned if the circuit has fewer distinct paths.
///
/// The weight of a path is the sum of [`TimingView::gate_delay_worst_ps`]
/// over its gates. Accepts any timing backend — a one-shot
/// [`crate::TimingReport`] or an incremental [`crate::TimingGraph`].
///
/// # Example
///
/// ```
/// use pops_netlist::builders::ripple_carry_adder;
/// use pops_delay::Library;
/// use pops_sta::{analysis::analyze, k_most_critical_paths, Sizing};
///
/// # fn main() -> Result<(), pops_netlist::NetlistError> {
/// let c = ripple_carry_adder(4);
/// let lib = Library::cmos025();
/// let sizing = Sizing::minimum(&c, &lib);
/// let report = analyze(&c, &lib, &sizing)?;
/// let paths = k_most_critical_paths(&c, &report, 5);
/// assert!(paths.len() <= 5);
/// assert!(!paths.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn k_most_critical_paths<V: TimingView + ?Sized>(
    circuit: &Circuit,
    report: &V,
    k: usize,
) -> Vec<NetlistPath> {
    if k == 0 || circuit.gate_count() == 0 {
        return Vec::new();
    }
    let w = |g: GateId| report.gate_delay_worst_ps(g);

    // Best completion weight from each gate to any primary output. A
    // backend that maintains the bounds incrementally (a `TimingGraph`
    // with a constraint set) runs its two-phase lazy flush here —
    // forward first (the frozen gate delays the bounds fold over),
    // then the completion side only, never the required times — and
    // hands over its cached array, bit-identical to the from-scratch
    // derivation, making per-round path extraction O(cone) instead of
    // O(circuit). This call is therefore a flushing query: pending
    // mutations settle before the first bound is read.
    let completion: Vec<f64> = report
        .cached_completion_ps()
        .unwrap_or_else(|| completion_bounds(circuit, report));

    // Source gates: fed by at least one primary input.
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
    for gid in circuit.gate_ids() {
        let from_pi = circuit
            .gate(gid)
            .inputs()
            .iter()
            .any(|&n| matches!(circuit.net(n).driver(), Some(NetDriver::PrimaryInput)));
        if from_pi && completion[gid.index()].is_finite() {
            heap.push(HeapEntry {
                bound: completion[gid.index()],
                gates: vec![gid],
                complete: false,
            });
        }
    }

    let mut results = Vec::with_capacity(k);
    // Guard against pathological blowup: the heap never needs to expand
    // more than k * max_path_len * max_fanout entries to yield k paths.
    let mut expansions = 0usize;
    let expansion_limit = (k + 1) * circuit.gate_count().max(64) * 8;

    while let Some(entry) = heap.pop() {
        if entry.complete {
            results.push(NetlistPath {
                gates: entry.gates,
                end_edge: EdgeDir::Rising,
            });
            if results.len() == k {
                break;
            }
            continue;
        }
        expansions += 1;
        if expansions > expansion_limit {
            break;
        }
        let last = *entry.gates.last().expect("entries are non-empty");
        let weight_so_far: f64 = entry.gates.iter().map(|&g| w(g)).sum();
        let out = circuit.gate(last).output();
        if circuit.net(out).is_output() {
            heap.push(HeapEntry {
                bound: weight_so_far,
                gates: entry.gates.clone(),
                complete: true,
            });
        }
        for &(succ, _) in circuit.net(out).loads() {
            if completion[succ.index()].is_finite() {
                let mut gates = entry.gates.clone();
                gates.push(succ);
                heap.push(HeapEntry {
                    bound: weight_so_far + completion[succ.index()],
                    gates,
                    complete: false,
                });
            }
        }
    }
    results
}

/// Best completion weight from each gate to any primary output, over
/// the reverse topological order: `completion[g] = w(g) + max over
/// successors` (0 at a primary output, `-inf` off every PI→PO path).
///
/// This is the backward analogue of the forward arrival state with the
/// gate weights frozen at [`TimingView::gate_delay_worst_ps`]; it is
/// both the admissible bound driving the K-paths search heap and the
/// array [`crate::TimingGraph`] maintains incrementally (the
/// differential suites compare the two bit-for-bit).
pub fn completion_bounds<V: TimingView + ?Sized>(circuit: &Circuit, report: &V) -> Vec<f64> {
    let order = circuit
        .topo_order()
        .expect("timing report implies an acyclic circuit");
    let mut completion = vec![f64::NEG_INFINITY; circuit.gate_count()];
    for &gid in order.iter().rev() {
        let out = circuit.gate(gid).output();
        let mut best = if circuit.net(out).is_output() {
            0.0
        } else {
            f64::NEG_INFINITY
        };
        for &(succ, _) in circuit.net(out).loads() {
            if completion[succ.index()].is_finite() {
                best = best.max(completion[succ.index()]);
            }
        }
        completion[gid.index()] = if best.is_finite() {
            report.gate_delay_worst_ps(gid) + best
        } else {
            f64::NEG_INFINITY
        };
    }
    completion
}

/// Total frozen weight of a path under a report (useful for assertions
/// and ranking displays).
pub fn path_weight_ps<V: TimingView + ?Sized>(report: &V, path: &NetlistPath) -> f64 {
    path.gates
        .iter()
        .map(|&g| report.gate_delay_worst_ps(g))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, TimingReport};
    use crate::sizing::Sizing;
    use pops_delay::Library;
    use pops_netlist::builders::{inverter_chain, ripple_carry_adder};
    use pops_netlist::suite;

    fn paths_of(c: &Circuit, k: usize) -> (Vec<NetlistPath>, TimingReport) {
        let lib = Library::cmos025();
        let s = Sizing::minimum(c, &lib);
        let r = analyze(c, &lib, &s).unwrap();
        (k_most_critical_paths(c, &r, k), r)
    }

    #[test]
    fn chain_has_exactly_one_path() {
        let c = inverter_chain(5);
        let (paths, _) = paths_of(&c, 10);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].gates.len(), 5);
    }

    #[test]
    fn weights_are_non_increasing() {
        let c = ripple_carry_adder(4);
        let (paths, r) = paths_of(&c, 20);
        assert!(paths.len() > 1);
        let weights: Vec<f64> = paths.iter().map(|p| path_weight_ps(&r, p)).collect();
        for pair in weights.windows(2) {
            assert!(pair[0] >= pair[1] - 1e-9, "{pair:?}");
        }
    }

    #[test]
    fn top_path_matches_exhaustive_enumeration_on_small_circuit() {
        let c = ripple_carry_adder(2);
        let (paths, r) = paths_of(&c, 1);
        // Exhaustive DFS over all PI->PO gate paths.
        fn dfs(c: &Circuit, r: &TimingReport, g: GateId, weight: f64, best: &mut f64) {
            let weight = weight + r.gate_delay_worst_ps(g);
            let out = c.gate(g).output();
            if c.net(out).is_output() {
                *best = best.max(weight);
            }
            for &(succ, _) in c.net(out).loads() {
                dfs(c, r, succ, weight, best);
            }
        }
        let mut best = 0.0;
        for g in c.gate_ids() {
            let from_pi = c
                .gate(g)
                .inputs()
                .iter()
                .any(|&n| matches!(c.net(n).driver(), Some(NetDriver::PrimaryInput)));
            if from_pi {
                dfs(&c, &r, g, 0.0, &mut best);
            }
        }
        assert!((path_weight_ps(&r, &paths[0]) - best).abs() < 1e-9);
    }

    #[test]
    fn k_zero_returns_nothing() {
        let c = inverter_chain(3);
        let (paths, _) = paths_of(&c, 0);
        assert!(paths.is_empty());
    }

    #[test]
    fn paths_are_structurally_valid() {
        let c = suite::circuit("fpd").unwrap();
        let (paths, _) = paths_of(&c, 8);
        for p in &paths {
            for w in p.gates.windows(2) {
                let out = c.gate(w[0]).output();
                let feeds = c.net(out).loads().iter().any(|&(g, _)| g == w[1]);
                assert!(feeds, "consecutive gates must be connected");
            }
        }
    }

    #[test]
    fn paths_are_distinct() {
        let c = ripple_carry_adder(3);
        let (paths, _) = paths_of(&c, 15);
        for i in 0..paths.len() {
            for j in i + 1..paths.len() {
                assert_ne!(paths[i].gates, paths[j].gates);
            }
        }
    }

    #[test]
    fn top_path_agrees_with_sta_critical_path_weight() {
        // The STA critical path maximizes slope-aware arrival, the kpaths
        // ranking maximizes frozen weights; on an inverter chain they are
        // the same path.
        let c = inverter_chain(7);
        let lib = Library::cmos025();
        let s = Sizing::minimum(&c, &lib);
        let r = analyze(&c, &lib, &s).unwrap();
        let k = k_most_critical_paths(&c, &r, 1);
        assert_eq!(k[0].gates, r.critical_path().gates);
    }
}
