//! Deterministic fault injection for the incremental timing engine.
//!
//! The ROADMAP's service direction needs the engine to *prove* — not hope —
//! that a worker panic mid-parallel-flush or a non-finite value smuggled
//! into the slabs is either rejected at the boundary or recovered to a
//! bit-identical good state. This module is the proving harness: a
//! seed-driven [`FaultPlan`] that, once armed, makes the engine hurt
//! itself at deterministic points:
//!
//! * **worker panics** at chosen level barriers of the parallel flush
//!   (the top of the coordinator's per-level loop, where every worker is
//!   parked at the start barrier, so the existing `catch_unwind` +
//!   shutdown drains the scope cleanly),
//! * **non-finite poison** injected into chosen slab writes of the
//!   parallel forward sweep (a NaN arrival lands in the victim's output
//!   slot — exactly the corruption bitwise convergence cuts cannot wash
//!   out, and one only a slab audit can catch),
//! * **corrupted mutation batches**: a chosen `try_resize_gates` batch
//!   gets one entry's drive replaced by NaN before validation, proving
//!   the boundary rejects it atomically.
//!
//! Disarmed (the default, and the only state production code ever sees)
//! every hook is a single relaxed atomic load on a never-written cache
//! line — the `sta_forward`/`sta_backward` bench gates hold with the
//! hooks compiled in.
//!
//! The schedule is process-global: periods derived from the seed fire
//! every Nth dispatch / eval / batch. Which *gate* a poison lands on can
//! vary with thread interleaving (the eval counter is shared), but the
//! recovery contract doesn't care: any faulted query must still
//! bit-match a clean twin after the engine's sequential fallback.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Once;

use pops_netlist::GateId;

/// Master switch. Every hook gates on this single relaxed load.
static ARMED: AtomicBool = AtomicBool::new(false);

/// Fire a coordinator panic every Nth dispatch (0 = never).
static PANIC_PERIOD: AtomicU64 = AtomicU64::new(0);
/// Poison every Nth parallel slab write with NaN (0 = never).
static POISON_PERIOD: AtomicU64 = AtomicU64::new(0);
/// Corrupt every Nth resize batch (0 = never).
static CORRUPT_PERIOD: AtomicU64 = AtomicU64::new(0);
/// Seed the armed plan was derived from (for panic messages).
static SEED: AtomicU64 = AtomicU64::new(0);

static DISPATCHES: AtomicU64 = AtomicU64::new(0);
static EVALS: AtomicU64 = AtomicU64::new(0);
static BATCHES: AtomicU64 = AtomicU64::new(0);

static PANICS_FIRED: AtomicU64 = AtomicU64::new(0);
static POISONS_FIRED: AtomicU64 = AtomicU64::new(0);
static CORRUPTIONS_FIRED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Set while this thread is inside a parallel flush section —
    /// coordinator body or worker loop. Poison only fires here, so the
    /// sequential recovery sweep (and sequential reference twins running
    /// in the same armed process) always computes clean values.
    static IN_PARALLEL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A deterministic, seed-driven fault schedule.
///
/// Arm it with [`FaultPlan::arm`]; the engine then fires the configured
/// faults process-wide until [`disarm`] is called. `None` disables a
/// fault class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed the plan was derived from (echoed in injected panic text).
    pub seed: u64,
    /// Panic the flush coordinator every Nth level dispatch.
    pub panic_every_dispatches: Option<u64>,
    /// Replace every Nth parallel corner-lane arrival write with NaN.
    pub poison_every_evals: Option<u64>,
    /// Replace one drive of every Nth resize batch with NaN.
    pub corrupt_every_batches: Option<u64>,
}

/// One round of the SplitMix64 output function — the same generator the
/// differential suites use, inlined so this module stays dependency-free.
/// Shared with [`crate::audit`]'s overlap-plan derivation so both seeded
/// harnesses draw from the same stream family.
pub(crate) fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Derive a panic + poison schedule from `seed`.
    ///
    /// Panic periods are small (4–15 dispatches) so they fire within the
    /// level count of every suite circuit; poison periods span a few
    /// hundred to a couple thousand evals so whole-fabric sweeps take
    /// several hits. Batch corruption is **not** derived here: it makes
    /// `try_resize_gates` return errors, which the infallible wrappers
    /// escalate to panics, so it is only armed explicitly by tests that
    /// call the fallible API.
    pub fn from_seed(seed: u64) -> Self {
        let mut s = seed;
        FaultPlan {
            seed,
            panic_every_dispatches: Some(4 + mix(&mut s) % 12),
            poison_every_evals: Some(400 + mix(&mut s) % 1700),
            corrupt_every_batches: None,
        }
    }

    /// Arm this plan process-wide, resetting all trigger counters.
    pub fn arm(&self) {
        ARMED.store(false, Ordering::SeqCst);
        SEED.store(self.seed, Ordering::SeqCst);
        PANIC_PERIOD.store(self.panic_every_dispatches.unwrap_or(0), Ordering::SeqCst);
        POISON_PERIOD.store(self.poison_every_evals.unwrap_or(0), Ordering::SeqCst);
        CORRUPT_PERIOD.store(self.corrupt_every_batches.unwrap_or(0), Ordering::SeqCst);
        DISPATCHES.store(0, Ordering::SeqCst);
        EVALS.store(0, Ordering::SeqCst);
        BATCHES.store(0, Ordering::SeqCst);
        ARMED.store(true, Ordering::SeqCst);
    }
}

/// Disarm all fault injection. Idempotent.
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
}

/// Whether any fault plan is currently armed.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Injected coordinator panics fired since the last [`FaultPlan::arm`]
/// call with panics enabled (monotonic across arms otherwise).
pub fn panics_fired() -> u64 {
    PANICS_FIRED.load(Ordering::SeqCst)
}

/// NaN poisons fired.
pub fn poisons_fired() -> u64 {
    POISONS_FIRED.load(Ordering::SeqCst)
}

/// Resize batches corrupted.
pub fn corruptions_fired() -> u64 {
    CORRUPTIONS_FIRED.load(Ordering::SeqCst)
}

/// RAII marker for a thread participating in a parallel flush section.
pub(crate) struct ParallelSection {
    prev: bool,
}

impl ParallelSection {
    pub(crate) fn enter() -> Self {
        let prev = IN_PARALLEL.with(|f| f.replace(true));
        ParallelSection { prev }
    }
}

impl Drop for ParallelSection {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_PARALLEL.with(|f| f.set(prev));
    }
}

/// Hook: top of each level iteration of the coordinator's parallel
/// flush body — between level barriers every worker is parked at the
/// start barrier, so a panic here leaves the pool drainable by the
/// `catch_unwind` shutdown without deadlock.
#[inline]
pub(crate) fn on_dispatch() {
    if ARMED.load(Ordering::Relaxed) {
        on_dispatch_armed();
    }
}

#[cold]
fn on_dispatch_armed() {
    let period = PANIC_PERIOD.load(Ordering::Relaxed);
    if period == 0 {
        return;
    }
    let n = DISPATCHES.fetch_add(1, Ordering::Relaxed) + 1;
    if n.is_multiple_of(period) {
        PANICS_FIRED.fetch_add(1, Ordering::Relaxed);
        panic!(
            "injected fault: coordinator panic at dispatch {n} (seed {})",
            SEED.load(Ordering::Relaxed)
        );
    }
}

/// Hook: a slab value about to be written by a parallel gate
/// evaluation. Returns `v` untouched unless armed, in a parallel
/// section, and the eval counter hits the poison period — then NaN.
/// Sits on the *write* side so the injected NaN never feeds the delay
/// model's debug-asserted inputs, only the assert-free max/add folds
/// downstream reads run.
#[inline]
pub(crate) fn poison_write(v: f64) -> f64 {
    if ARMED.load(Ordering::Relaxed) {
        poison_write_armed(v)
    } else {
        v
    }
}

#[cold]
fn poison_write_armed(v: f64) -> f64 {
    let period = POISON_PERIOD.load(Ordering::Relaxed);
    if period == 0 || !IN_PARALLEL.with(|f| f.get()) {
        return v;
    }
    let n = EVALS.fetch_add(1, Ordering::Relaxed) + 1;
    if n.is_multiple_of(period) {
        POISONS_FIRED.fetch_add(1, Ordering::Relaxed);
        f64::NAN
    } else {
        v
    }
}

/// Hook: a materialized resize batch about to be validated. When the
/// batch trigger fires, one seed-chosen entry's drive becomes NaN — the
/// boundary must reject the whole batch and leave the graph untouched.
pub(crate) fn corrupt_resizes(changes: &mut [(GateId, f64)]) {
    if !ARMED.load(Ordering::Relaxed) || changes.is_empty() {
        return;
    }
    let period = CORRUPT_PERIOD.load(Ordering::Relaxed);
    if period == 0 {
        return;
    }
    let n = BATCHES.fetch_add(1, Ordering::Relaxed) + 1;
    if n.is_multiple_of(period) {
        CORRUPTIONS_FIRED.fetch_add(1, Ordering::Relaxed);
        let mut s = SEED.load(Ordering::Relaxed) ^ n;
        let victim = (mix(&mut s) % changes.len() as u64) as usize;
        changes[victim].1 = f64::NAN;
    }
}

/// Arm panics + poison from `STA_FAULT_SEED` once per process, so CI can
/// drive the recovery path through the stock equivalence suites without
/// code changes. Batch corruption is never armed from the environment —
/// it would turn the infallible mutation wrappers into panics inside
/// suites that have no business failing.
pub(crate) fn arm_from_env_once() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        if let Ok(v) = std::env::var("STA_FAULT_SEED") {
            match v.trim().parse::<u64>() {
                Ok(seed) => FaultPlan::from_seed(seed).arm(),
                Err(_) => eprintln!("STA_FAULT_SEED `{v}` is not a u64; fault injection stays off"),
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global state: these tests share the process with everything else in
    // the crate, so they only probe the disarmed fast path and the pure
    // derivation logic — arming is exercised end-to-end by
    // `tests/fault_injection.rs` under a serializing lock.

    #[test]
    fn disarmed_hooks_are_inert() {
        assert!(!armed());
        on_dispatch();
        assert_eq!(poison_write(42.5).to_bits(), 42.5f64.to_bits());
        let c = pops_netlist::builders::ripple_carry_adder(1);
        let g = c.gate_ids().next().unwrap();
        let mut batch = vec![(g, 3.0)];
        corrupt_resizes(&mut batch);
        assert_eq!(batch[0].1.to_bits(), 3.0f64.to_bits());
    }

    #[test]
    fn seeds_derive_nonzero_periods() {
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let plan = FaultPlan::from_seed(seed);
            let p = plan.panic_every_dispatches.unwrap();
            assert!((4..16).contains(&p), "panic period {p}");
            let q = plan.poison_every_evals.unwrap();
            assert!((400..2100).contains(&q), "poison period {q}");
            assert_eq!(plan.corrupt_every_batches, None);
            assert_eq!(plan, FaultPlan::from_seed(seed), "derivation is pure");
        }
    }

    #[test]
    fn parallel_section_nests_and_restores() {
        assert!(!IN_PARALLEL.with(|f| f.get()));
        {
            let _outer = ParallelSection::enter();
            assert!(IN_PARALLEL.with(|f| f.get()));
            {
                let _inner = ParallelSection::enter();
                assert!(IN_PARALLEL.with(|f| f.get()));
            }
            assert!(IN_PARALLEL.with(|f| f.get()));
        }
        assert!(!IN_PARALLEL.with(|f| f.get()));
    }
}
