//! Dual-edge block-based static timing analysis with slope propagation.
//!
//! Arrival times and transition times are propagated per net and per edge
//! direction (rise/fall). Unateness follows the cell polarity: inverting
//! cells propagate a falling input into a rising output, the XOR family is
//! binate (both input edges can cause either output edge).

use pops_delay::model::{gate_delay_with_output_edge, Edge};
use pops_delay::Library;
use pops_netlist::{CellKind, Circuit, GateId, NetDriver, NetId, NetlistError};

use crate::sizing::Sizing;
use crate::slack::SlackReport;

/// Options for an STA run.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeOptions {
    /// Load added to every primary-output net (fF): the input capacitance
    /// of the capturing latch. The paper's bounded-path terminal load.
    pub po_load_ff: f64,
    /// Transition time assumed at primary inputs (ps).
    pub input_transition_ps: f64,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            po_load_ff: 10.0,
            input_transition_ps: 50.0,
        }
    }
}

/// A simple (gate-disjoint) combinational path through a circuit, from a
/// primary-input-fed gate to a gate driving a primary output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistPath {
    /// Gates in path order (fanin first).
    pub gates: Vec<GateId>,
    /// Edge direction at the path's endpoint output.
    pub end_edge: EdgeDir,
}

/// Serializable mirror of [`Edge`] used in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeDir {
    /// Low-to-high.
    Rising,
    /// High-to-low.
    Falling,
}

impl From<Edge> for EdgeDir {
    fn from(e: Edge) -> Self {
        match e {
            Edge::Rising => EdgeDir::Rising,
            Edge::Falling => EdgeDir::Falling,
        }
    }
}

impl From<EdgeDir> for Edge {
    fn from(e: EdgeDir) -> Self {
        match e {
            EdgeDir::Rising => Edge::Rising,
            EdgeDir::Falling => Edge::Falling,
        }
    }
}

pub(crate) const EDGES: [Edge; 2] = [Edge::Rising, Edge::Falling];

pub(crate) fn eidx(e: Edge) -> usize {
    match e {
        Edge::Rising => 0,
        Edge::Falling => 1,
    }
}

/// Which input edges of `cell` can produce output edge `out`.
pub(crate) fn compatible_input_edges(cell: CellKind, out: Edge) -> &'static [Edge] {
    const BOTH: [Edge; 2] = [Edge::Rising, Edge::Falling];
    const RISE: [Edge; 1] = [Edge::Rising];
    const FALL: [Edge; 1] = [Edge::Falling];
    match cell {
        CellKind::Xor2 | CellKind::Xnor2 => &BOTH,
        c if c.is_inverting() => match out {
            Edge::Rising => &FALL,
            Edge::Falling => &RISE,
        },
        _ => match out {
            Edge::Rising => &RISE,
            Edge::Falling => &FALL,
        },
    }
}

/// Read-only view over a timing state: the query surface shared by the
/// one-shot [`TimingReport`] and the incremental
/// [`crate::incremental::TimingGraph`].
///
/// Consumers that only *read* timing (K-paths ranking, slack computation,
/// the circuit-level flow) are generic over this trait, so they work
/// unchanged whether the numbers came from a full `analyze` pass or from
/// dirty-cone re-propagation.
pub trait TimingView {
    /// Worst arrival time over all primary outputs (ps).
    fn critical_delay_ps(&self) -> f64;
    /// Arrival time of a net for a given edge (ps), `-inf` if unreachable.
    fn arrival_ps(&self, net: NetId, edge: EdgeDir) -> f64;
    /// Transition time of a net for a given edge (ps).
    fn slope_ps(&self, net: NetId, edge: EdgeDir) -> f64;
    /// Capacitive load on a net (fF), including the latch load at
    /// primary outputs.
    fn net_load_ff(&self, net: NetId) -> f64;
    /// Worst-case delay of a gate (ps) under the analyzed slopes.
    fn gate_delay_worst_ps(&self, gate: GateId) -> f64;

    /// K-most-critical-paths completion bounds maintained by this
    /// backend, if any: `completion[gate.index()]` is the frozen-weight
    /// longest completion from the gate to any primary output (ps;
    /// `-inf` off every PI→PO path). `None` makes
    /// [`crate::k_most_critical_paths`] derive the bounds from scratch;
    /// a [`crate::TimingGraph`] with a constraint set flushes its lazy
    /// backward state and returns a copy of its incrementally
    /// maintained (bit-identical) array instead. Owned rather than
    /// borrowed so an interior-mutable backend can bring the bounds up
    /// to date inside this `&self` call; the O(gates) copy is noise
    /// next to the heap search it feeds.
    fn cached_completion_ps(&self) -> Option<Vec<f64>> {
        None
    }

    /// A materialized backward state under exactly `tc_ps` *and*
    /// `sizing`, if this backend maintains one (see
    /// [`set_constraint`](crate::incremental::TimingGraph::set_constraint)).
    /// Lets [`crate::required_times`] skip the full backward pass; the
    /// returned report is bit-identical to what that pass computes. A
    /// sizing that differs from the backend's own must return `None` so
    /// a probe sizing is never silently answered from the cache.
    fn cached_required_times(&self, tc_ps: f64, sizing: &Sizing) -> Option<SlackReport> {
        let _ = (tc_ps, sizing);
        None
    }
}

impl TimingView for TimingReport {
    fn critical_delay_ps(&self) -> f64 {
        TimingReport::critical_delay_ps(self)
    }
    fn arrival_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        TimingReport::arrival_ps(self, net, edge)
    }
    fn slope_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        TimingReport::slope_ps(self, net, edge)
    }
    fn net_load_ff(&self, net: NetId) -> f64 {
        TimingReport::net_load_ff(self, net)
    }
    fn gate_delay_worst_ps(&self, gate: GateId) -> f64 {
        TimingReport::gate_delay_worst_ps(self, gate)
    }
}

/// Result of an STA run: per-net, per-edge arrival and slope data plus the
/// traceback needed to reconstruct critical paths.
#[derive(Debug, Clone)]
pub struct TimingReport {
    options: AnalyzeOptions,
    /// `arrival[net][edge]` in ps; `-inf` where unreachable.
    arrival: Vec<[f64; 2]>,
    /// `slope[net][edge]` in ps.
    slope: Vec<[f64; 2]>,
    /// Predecessor `(net, input edge)` of the worst arrival.
    pred: Vec<[Option<(NetId, Edge)>; 2]>,
    /// Load (fF) on each net under the analyzed sizing.
    net_load: Vec<f64>,
    /// Worst-case delay of each gate under the analyzed slopes (kpaths
    /// weight).
    gate_delay_worst: Vec<f64>,
    /// Driver gate of each net (`None` for primary inputs).
    net_driver: Vec<Option<GateId>>,
    critical_net: Option<(NetId, Edge)>,
    outputs: Vec<NetId>,
}

impl TimingReport {
    /// Worst arrival time over all primary outputs (ps).
    pub fn critical_delay_ps(&self) -> f64 {
        self.critical_net
            .map(|(n, e)| self.arrival[n.index()][eidx(e)])
            .unwrap_or(0.0)
    }

    /// Arrival time of a net for a given edge (ps), `-inf` if unreachable.
    pub fn arrival_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        self.arrival[net.index()][eidx(edge.into())]
    }

    /// Transition time of a net for a given edge (ps).
    pub fn slope_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        self.slope[net.index()][eidx(edge.into())]
    }

    /// Capacitive load on a net (fF) under the analyzed sizing, including
    /// the primary-output latch load where applicable.
    pub fn net_load_ff(&self, net: NetId) -> f64 {
        self.net_load[net.index()]
    }

    /// Worst-case delay of a gate (ps) under the analyzed slopes. Used as
    /// the node weight for K-most-critical-path search.
    pub fn gate_delay_worst_ps(&self, gate: GateId) -> f64 {
        self.gate_delay_worst[gate.index()]
    }

    /// The options the analysis ran with.
    pub fn options(&self) -> &AnalyzeOptions {
        &self.options
    }

    /// The most critical path: traceback from the worst primary output.
    ///
    /// Returns an empty path only for circuits without gates.
    pub fn critical_path(&self) -> NetlistPath {
        let Some((net, edge)) = self.critical_net else {
            return NetlistPath {
                gates: Vec::new(),
                end_edge: EdgeDir::Rising,
            };
        };
        self.path_to(net, edge)
    }

    /// Traceback the worst path ending at `net` with `edge`.
    pub fn path_to(&self, net: NetId, edge: Edge) -> NetlistPath {
        let mut gates = Vec::new();
        let mut cur = Some((net, edge));
        while let Some((n, e)) = cur {
            if let Some(gid) = self.net_driver[n.index()] {
                gates.push(gid);
            }
            cur = self.pred[n.index()][eidx(e)];
        }
        gates.reverse();
        NetlistPath {
            gates,
            end_edge: edge.into(),
        }
    }

    /// Primary output nets seen by the analysis.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }
}

/// Run STA and return a [`TimingReport`].
///
/// # Errors
///
/// Propagates netlist structural errors (cycles, undriven nets) from
/// [`Circuit::topo_order`].
pub fn analyze(
    circuit: &Circuit,
    lib: &Library,
    sizing: &Sizing,
) -> Result<TimingReport, NetlistError> {
    analyze_with(circuit, lib, sizing, &AnalyzeOptions::default())
}

/// [`analyze`] with explicit options.
///
/// # Errors
///
/// As [`analyze`].
pub fn analyze_with(
    circuit: &Circuit,
    lib: &Library,
    sizing: &Sizing,
    options: &AnalyzeOptions,
) -> Result<TimingReport, NetlistError> {
    let order = circuit.topo_order()?;
    let n_nets = circuit.net_count();

    let mut arrival = vec![[f64::NEG_INFINITY; 2]; n_nets];
    let mut slope = vec![[0.0f64; 2]; n_nets];
    let mut pred: Vec<[Option<(NetId, Edge)>; 2]> = vec![[None, None]; n_nets];

    // Net loads under this sizing.
    let mut net_load = vec![0.0f64; n_nets];
    for net in circuit.net_ids() {
        let mut load = 0.0;
        for &(g, _pin) in circuit.net(net).loads() {
            load += sizing.cin_ff(g);
        }
        if circuit.net(net).is_output() {
            load += options.po_load_ff;
        }
        net_load[net.index()] = load;
    }

    for &pi in circuit.primary_inputs() {
        for e in EDGES {
            arrival[pi.index()][eidx(e)] = 0.0;
            slope[pi.index()][eidx(e)] = options.input_transition_ps;
        }
    }

    let mut gate_delay_worst = vec![0.0f64; circuit.gate_count()];

    for gid in order {
        let gate = circuit.gate(gid);
        let cell = gate.kind();
        let out = gate.output();
        let cin = sizing.cin_ff(gid);
        let load = net_load[out.index()];
        let mut worst_gate_delay = 0.0f64;
        for out_edge in EDGES {
            let mut best: Option<(f64, f64, NetId, Edge)> = None;
            for &in_net in gate.inputs() {
                for &in_edge in compatible_input_edges(cell, out_edge) {
                    let t_in = arrival[in_net.index()][eidx(in_edge)];
                    if t_in == f64::NEG_INFINITY {
                        continue;
                    }
                    let s_in = slope[in_net.index()][eidx(in_edge)];
                    let d =
                        gate_delay_with_output_edge(lib, cell, cin, load, s_in, in_edge, out_edge);
                    worst_gate_delay = worst_gate_delay.max(d.delay_ps);
                    let t_out = t_in + d.delay_ps;
                    if best.map(|(t, ..)| t_out > t).unwrap_or(true) {
                        best = Some((t_out, d.output_transition_ps, in_net, in_edge));
                    }
                }
            }
            if let Some((t, s, n, e)) = best {
                if t > arrival[out.index()][eidx(out_edge)] {
                    arrival[out.index()][eidx(out_edge)] = t;
                    slope[out.index()][eidx(out_edge)] = s;
                    pred[out.index()][eidx(out_edge)] = Some((n, e));
                }
            }
        }
        gate_delay_worst[gid.index()] = worst_gate_delay;
    }

    let mut critical: Option<(NetId, Edge, f64)> = None;
    for &po in circuit.primary_outputs() {
        for e in EDGES {
            let t = arrival[po.index()][eidx(e)];
            if t > critical.map(|(_, _, c)| c).unwrap_or(f64::NEG_INFINITY) {
                critical = Some((po, e, t));
            }
        }
    }

    let net_driver = circuit
        .net_ids()
        .map(|n| match circuit.net(n).driver() {
            Some(NetDriver::Gate(g)) => Some(g),
            _ => None,
        })
        .collect();

    Ok(TimingReport {
        options: options.clone(),
        arrival,
        slope,
        pred,
        net_load,
        gate_delay_worst,
        net_driver,
        critical_net: critical.map(|(n, e, _)| (n, e)),
        outputs: circuit.primary_outputs().to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_netlist::builders::{inverter_chain, ripple_carry_adder};
    use pops_netlist::suite;

    fn setup(c: &Circuit) -> (Library, Sizing) {
        let lib = Library::cmos025();
        let s = Sizing::minimum(c, &lib);
        (lib, s)
    }

    #[test]
    fn chain_delay_grows_with_length() {
        let lib = Library::cmos025();
        let mut last = 0.0;
        for n in [2, 4, 8, 16] {
            let c = inverter_chain(n);
            let s = Sizing::minimum(&c, &lib);
            let r = analyze(&c, &lib, &s).unwrap();
            assert!(r.critical_delay_ps() > last, "n={n}");
            last = r.critical_delay_ps();
        }
    }

    #[test]
    fn critical_path_of_chain_is_the_chain() {
        let c = inverter_chain(6);
        let (lib, s) = setup(&c);
        let r = analyze(&c, &lib, &s).unwrap();
        let p = r.critical_path();
        assert_eq!(p.gates.len(), 6);
        // Gates must be in fanin-first order.
        let levels = c.logic_levels().unwrap();
        for w in p.gates.windows(2) {
            assert!(levels[w[0].index()] < levels[w[1].index()]);
        }
    }

    #[test]
    fn adder_critical_path_follows_the_carry_chain() {
        let c = ripple_carry_adder(8);
        let (lib, s) = setup(&c);
        let r = analyze(&c, &lib, &s).unwrap();
        let p = r.critical_path();
        // The carry ripple dominates: path length should be close to the
        // circuit depth.
        let depth = c.depth().unwrap();
        assert!(
            p.gates.len() >= depth - 2,
            "path {} vs depth {depth}",
            p.gates.len()
        );
    }

    #[test]
    fn critical_path_length_matches_suite_profile() {
        for name in ["c432", "c880", "fpd"] {
            let c = suite::circuit(name).unwrap();
            let (lib, s) = setup(&c);
            let r = analyze(&c, &lib, &s).unwrap();
            let p = r.critical_path();
            // The spine is the structurally longest path; with uniform
            // minimum sizing the timing-critical path should have the same
            // gate count (slope effects cannot shorten it below depth-1).
            let depth = c.depth().unwrap();
            assert!(
                p.gates.len() + 1 >= depth,
                "{name}: path {} vs depth {depth}",
                p.gates.len()
            );
        }
    }

    #[test]
    fn heavier_po_load_increases_delay() {
        let c = inverter_chain(3);
        let (lib, s) = setup(&c);
        let light = analyze_with(
            &c,
            &lib,
            &s,
            &AnalyzeOptions {
                po_load_ff: 5.0,
                ..Default::default()
            },
        )
        .unwrap();
        let heavy = analyze_with(
            &c,
            &lib,
            &s,
            &AnalyzeOptions {
                po_load_ff: 80.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(heavy.critical_delay_ps() > light.critical_delay_ps());
    }

    #[test]
    fn upsizing_critical_gate_reduces_delay() {
        let c = inverter_chain(5);
        let (lib, mut s) = setup(&c);
        let before = analyze(&c, &lib, &s).unwrap().critical_delay_ps();
        // Upsize a middle gate.
        let mid = c.gate_ids().nth(2).unwrap();
        s.set(mid, 3.0 * lib.min_drive_ff());
        // Middle gate of an inverter chain at min drive is overloaded by
        // its successor; upsizing changes delay; with successor still at
        // min drive the net effect on this chain is a faster stage 3 but a
        // heavier load on stage 2 — total should *drop* because stage 3's
        // drive improvement dominates at equal loads... verify empirically
        // that the delay at least changes and stays positive.
        let after = analyze(&c, &lib, &s).unwrap().critical_delay_ps();
        assert!(after > 0.0);
        assert_ne!(before, after);
    }

    #[test]
    fn arrivals_are_monotone_along_the_critical_path() {
        let c = suite::circuit("fpd").unwrap();
        let (lib, s) = setup(&c);
        let r = analyze(&c, &lib, &s).unwrap();
        let p = r.critical_path();
        let mut last = -1.0;
        for &g in &p.gates {
            let out = c.gate(g).output();
            let worst = r
                .arrival_ps(out, EdgeDir::Rising)
                .max(r.arrival_ps(out, EdgeDir::Falling));
            assert!(worst > last);
            last = worst;
        }
    }

    #[test]
    fn xor_paths_propagate_both_edges() {
        use pops_netlist::CellKind;
        let mut c = Circuit::new("x");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let y = c.add_gate(CellKind::Xor2, &[a, b], "y").unwrap();
        c.mark_output(y);
        let (lib, s) = setup(&c);
        let r = analyze(&c, &lib, &s).unwrap();
        // Both output edges must be reachable through the binate cell.
        assert!(r.arrival_ps(y, EdgeDir::Rising).is_finite());
        assert!(r.arrival_ps(y, EdgeDir::Falling).is_finite());
    }

    #[test]
    fn gate_worst_delays_are_positive() {
        let c = suite::circuit("fpd").unwrap();
        let (lib, s) = setup(&c);
        let r = analyze(&c, &lib, &s).unwrap();
        for g in c.gate_ids() {
            assert!(r.gate_delay_worst_ps(g) > 0.0);
        }
    }
}
