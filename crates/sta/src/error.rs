//! Typed errors for the incremental timing engine's mutation boundary.
//!
//! Every mutating entry point of [`TimingGraph`](crate::TimingGraph) has a
//! fallible `try_*` variant returning [`StaError`]: inputs that would poison
//! the corner slabs (NaN drives, infinite constraints) or index out of range
//! are rejected *before* any state changes, so a malformed batch can never
//! leave the graph half-mutated. The infallible legacy APIs route through
//! the `try_*` variants and panic with the error's `Display` text — the
//! remaining panics mark programmer error, not data-dependent failure.

use std::error::Error;
use std::fmt;

use pops_netlist::NetlistError;

/// Classification of a shadow-access race hazard reported by the
/// [`audit`](crate::audit) module's barrier-time verifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaceKind {
    /// Two workers wrote the same slab index inside one level batch —
    /// the disjoint-slot partition was violated.
    WriteWrite,
    /// A worker read a slab index another worker wrote inside the same
    /// level batch — the read raced an in-flight write.
    ReadWrite,
    /// A read touched a slot that is not finalized at the current level
    /// (forward: a slot at the current or a higher level the reader does
    /// not own; backward: a slot at a strictly lower level or a source
    /// slot), or an index outside the slab entirely.
    CrossLevel,
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RaceKind::WriteWrite => "write-write overlap",
            RaceKind::ReadWrite => "read aliases a concurrent write",
            RaceKind::CrossLevel => "cross-level read of an unfinalized slot",
        })
    }
}

/// Errors produced at the timing engine's validated mutation boundary and
/// by the [`verify_state`](crate::TimingGraph::verify_state) auditor.
#[derive(Debug, Clone, PartialEq)]
pub enum StaError {
    /// A gate drive (input capacitance) that is NaN, infinite, zero or
    /// negative — values the delay model cannot evaluate and the bitwise
    /// convergence cuts cannot wash out.
    InvalidDrive {
        /// Gate index the drive was destined for.
        gate: usize,
        /// The offending capacitance (fF).
        cin_ff: f64,
    },
    /// A gate id outside the graph's gate range.
    GateOutOfRange {
        /// The offending gate index.
        gate: usize,
        /// Number of gates in the graph.
        n_gates: usize,
    },
    /// A timing constraint the backward state cannot hold: NaN or
    /// negative (including `-inf`). `+inf` is accepted — it is the
    /// documented "nothing is critical" constraint.
    InvalidConstraint {
        /// The offending constraint (ps).
        tc_ps: f64,
    },
    /// A sizing log entry that does not extend the dense gate-indexed
    /// sizing vector contiguously.
    NonDenseSizing {
        /// Gate index carried by the log entry.
        gate: usize,
        /// The next index a dense extension must supply.
        expected: usize,
    },
    /// A structural edit plan rejected by validation or application.
    InvalidEdit(NetlistError),
    /// The deep-consistency audit found internal state that violates an
    /// invariant (slot bijection, level monotonicity, dirty-bit
    /// bookkeeping, slack-tree agreement or the finiteness policy).
    StateCorrupt {
        /// Which invariant failed, with the offending values.
        detail: String,
    },
    /// The shadow-access race auditor ([`crate::audit`]) caught a level
    /// batch whose recorded accesses violate the parallel flush's
    /// disjoint-slot contract.
    RaceHazard {
        /// Worker id that performed the offending access (ids ≥ 1000 are
        /// phantom workers synthesized by the seeded overlap planner).
        worker: usize,
        /// Topological level batch the hazard occurred in.
        level: usize,
        /// Net slot (forward slabs) or gate position (pos-indexed slabs)
        /// of the offending access, with the corner stride divided out.
        slot: usize,
        /// Which invariant the access pattern violated.
        kind: RaceKind,
        /// Slab name, raw widened index, corner and peer worker.
        detail: String,
    },
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaError::InvalidDrive { gate, cin_ff } => {
                write!(
                    f,
                    "invalid drive for gate {gate}: cin {cin_ff} fF must be finite and positive"
                )
            }
            StaError::GateOutOfRange { gate, n_gates } => {
                write!(f, "gate {gate} out of range for a {n_gates}-gate graph")
            }
            StaError::InvalidConstraint { tc_ps } => {
                write!(
                    f,
                    "invalid constraint {tc_ps} ps: must be non-negative and not NaN"
                )
            }
            StaError::NonDenseSizing { gate, expected } => {
                write!(
                    f,
                    "sizing log entry for gate {gate} does not extend the sizing densely \
                     (expected gate {expected} next)"
                )
            }
            StaError::InvalidEdit(e) => write!(f, "invalid edit plan: {e}"),
            StaError::StateCorrupt { detail } => {
                write!(f, "timing state corrupt: {detail}")
            }
            StaError::RaceHazard {
                worker,
                level,
                slot,
                kind,
                detail,
            } => {
                write!(
                    f,
                    "race hazard ({kind}): worker {worker} at level {level}, slot {slot}: {detail}"
                )
            }
        }
    }
}

impl Error for StaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StaError::InvalidEdit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for StaError {
    fn from(e: NetlistError) -> Self {
        StaError::InvalidEdit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offending_value() {
        let e = StaError::InvalidDrive {
            gate: 7,
            cin_ff: f64::NAN,
        };
        let s = e.to_string();
        assert!(s.contains("gate 7"), "{s}");
        assert!(s.contains("NaN"), "{s}");

        let e = StaError::InvalidConstraint {
            tc_ps: f64::NEG_INFINITY,
        };
        assert!(e.to_string().contains("-inf"), "{e}");

        let e = StaError::GateOutOfRange {
            gate: 99,
            n_gates: 10,
        };
        assert!(e.to_string().contains("99"), "{e}");
        assert!(e.to_string().contains("10"), "{e}");
    }

    #[test]
    fn netlist_errors_convert_and_chain() {
        let e: StaError = NetlistError::InvalidId("gate 3".into()).into();
        assert!(matches!(e, StaError::InvalidEdit(_)));
        assert!(e.source().is_some());
    }
}
