//! Static timing analysis over gate-level netlists.
//!
//! POPS (the paper's tool) "allows to consider a user specified limited
//! number of paths" (§2.1, refs. [11]–[12]): circuits are analyzed once,
//! the most critical paths are extracted, and optimization then operates
//! on those paths as bounded [`pops_delay::TimedPath`] objects. This crate
//! provides that front end:
//!
//! * [`analysis`] — dual-edge (rise/fall) block-based STA with slope
//!   propagation under the eqs. (1)–(3) model,
//! * [`incremental`] — the same timing state maintained incrementally:
//!   gate resizes re-propagate only their dirty fanout cone (the sizing
//!   loop's hot path),
//! * [`kpaths`] — the K most critical paths (ref. [11]),
//! * [`extract`] — turning a netlist path into a bounded `TimedPath`
//!   including the off-path loading every on-path gate sees.
//!
//! # Example
//!
//! ```
//! use pops_netlist::builders::ripple_carry_adder;
//! use pops_delay::Library;
//! use pops_sta::{analysis::analyze, Sizing};
//!
//! # fn main() -> Result<(), pops_netlist::NetlistError> {
//! let adder = ripple_carry_adder(8);
//! let lib = Library::cmos025();
//! let sizing = Sizing::minimum(&adder, &lib);
//! let report = analyze(&adder, &lib, &sizing)?;
//! assert!(report.critical_delay_ps() > 0.0);
//! let path = report.critical_path();
//! assert!(!path.gates.is_empty());
//! # Ok(())
//! # }
//! ```

// `deny`, not `forbid`: the level-synchronized parallel flush
// ([`incremental`]'s worker pool) shares the forward slabs across
// scoped threads through one audited module — `parallel.rs` carries a
// local `#![allow(unsafe_code)]` with the safety argument in its
// module docs. Everything else in the crate stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod audit;
pub mod error;
pub mod extract;
pub mod faultinject;
pub mod incremental;
pub mod kpaths;
mod parallel;
pub mod sizing;
pub mod slack;

pub use analysis::{analyze, NetlistPath, TimingReport, TimingView};
pub use audit::OverlapPlan;
pub use error::{RaceKind, StaError};
pub use extract::{extract_timed_path, ExtractOptions};
pub use faultinject::FaultPlan;
pub use incremental::TimingGraph;
pub use kpaths::{completion_bounds, k_most_critical_paths, path_weight_ps};
pub use sizing::Sizing;
pub use slack::{required_times, SlackReport, SlackView};
