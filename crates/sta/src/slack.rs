//! Required times and slacks — the backward STA pass.
//!
//! POPS decides *where* to spend optimization effort from path slacks:
//! a negative-slack net sits on a path that misses the constraint. The
//! backward pass propagates required times from the primary outputs
//! through the same arcs (and the same arc delays) the forward pass
//! used.

use pops_delay::model::{gate_delay_with_output_edge, Edge};
use pops_delay::Library;
use pops_netlist::{Circuit, NetId, NetlistError};

use crate::analysis::{compatible_input_edges, EdgeDir, TimingView};
use crate::sizing::Sizing;

/// Result of the backward (required-time) pass.
#[derive(Debug, Clone)]
pub struct SlackReport {
    /// `required[net][edge]` in ps; `+inf` where unconstrained.
    required: Vec<[f64; 2]>,
    /// Copy of the forward arrivals for slack computation.
    arrival: Vec<[f64; 2]>,
}

fn eidx(e: Edge) -> usize {
    match e {
        Edge::Rising => 0,
        Edge::Falling => 1,
    }
}

impl SlackReport {
    /// Required time of a net for an edge (ps).
    pub fn required_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        self.required[net.index()][eidx(edge.into())]
    }

    /// Slack of a net for an edge (ps): `required − arrival`. Negative
    /// means the net lies on a violating path.
    pub fn slack_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        let i = eidx(edge.into());
        self.required[net.index()][i] - self.arrival[net.index()][i]
    }

    /// Worst (most negative) slack over both edges of a net.
    pub fn worst_slack_ps(&self, net: NetId) -> f64 {
        self.slack_ps(net, EdgeDir::Rising)
            .min(self.slack_ps(net, EdgeDir::Falling))
    }

    /// Worst slack over the whole design.
    pub fn worst_slack_overall_ps(&self) -> f64 {
        (0..self.required.len())
            .map(|i| {
                (self.required[i][0] - self.arrival[i][0])
                    .min(self.required[i][1] - self.arrival[i][1])
            })
            .fold(f64::INFINITY, f64::min)
    }
}

/// Backward pass: compute required times against a cycle constraint
/// `tc_ps` applied at every primary output.
///
/// Must be called with the same circuit/sizing the `report` was computed
/// from (arc delays are re-derived with the report's slopes). Accepts any
/// timing backend — a one-shot [`crate::TimingReport`] or an incremental
/// [`crate::TimingGraph`] — so the sizing loop never forces a full
/// re-analysis just to read slacks.
///
/// # Errors
///
/// Propagates [`Circuit::topo_order`] errors.
pub fn required_times<V: TimingView + ?Sized>(
    circuit: &Circuit,
    lib: &Library,
    sizing: &Sizing,
    report: &V,
    tc_ps: f64,
) -> Result<SlackReport, NetlistError> {
    let order = circuit.topo_order()?;
    let n_nets = circuit.net_count();
    let mut required = vec![[f64::INFINITY; 2]; n_nets];
    let mut arrival = vec![[f64::NEG_INFINITY; 2]; n_nets];

    for net in circuit.net_ids() {
        for (i, dir) in [(0usize, EdgeDir::Rising), (1, EdgeDir::Falling)] {
            arrival[net.index()][i] = report.arrival_ps(net, dir);
        }
        if circuit.net(net).is_output() {
            required[net.index()] = [tc_ps; 2];
        }
    }

    const EDGES: [Edge; 2] = [Edge::Rising, Edge::Falling];
    for &gid in order.iter().rev() {
        let gate = circuit.gate(gid);
        let out = gate.output();
        let cin = sizing.cin_ff(gid);
        let load = report.net_load_ff(out);
        for out_edge in EDGES {
            let req_out = required[out.index()][eidx(out_edge)];
            if req_out == f64::INFINITY {
                continue;
            }
            for &in_net in gate.inputs() {
                for &in_edge in compatible_input_edges(gate.kind(), out_edge) {
                    let dir: EdgeDir = in_edge.into();
                    let slope = report.slope_ps(in_net, dir);
                    let d = gate_delay_with_output_edge(
                        lib,
                        gate.kind(),
                        cin,
                        load,
                        slope,
                        in_edge,
                        out_edge,
                    );
                    let candidate = req_out - d.delay_ps;
                    let slot = &mut required[in_net.index()][eidx(in_edge)];
                    if candidate < *slot {
                        *slot = candidate;
                    }
                }
            }
        }
    }

    Ok(SlackReport { required, arrival })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, TimingReport};
    use pops_netlist::builders::{inverter_chain, ripple_carry_adder};

    fn setup(c: &Circuit) -> (Library, Sizing, TimingReport) {
        let lib = Library::cmos025();
        let s = Sizing::minimum(c, &lib);
        let r = analyze(c, &lib, &s).unwrap();
        (lib, s, r)
    }

    #[test]
    fn slack_zero_at_exact_constraint_on_critical_output() {
        let c = inverter_chain(5);
        let (lib, s, r) = setup(&c);
        let tc = r.critical_delay_ps();
        let slacks = required_times(&c, &lib, &s, &r, tc).unwrap();
        // The critical output's slack is exactly zero.
        let worst = slacks.worst_slack_overall_ps();
        assert!(worst.abs() < 1e-6, "worst slack {worst}");
    }

    #[test]
    fn slack_is_negative_under_an_impossible_constraint() {
        let c = inverter_chain(4);
        let (lib, s, r) = setup(&c);
        let slacks = required_times(&c, &lib, &s, &r, 0.5 * r.critical_delay_ps()).unwrap();
        assert!(slacks.worst_slack_overall_ps() < 0.0);
    }

    #[test]
    fn slack_is_positive_under_a_loose_constraint() {
        let c = ripple_carry_adder(4);
        let (lib, s, r) = setup(&c);
        let slacks = required_times(&c, &lib, &s, &r, 2.0 * r.critical_delay_ps()).unwrap();
        assert!(slacks.worst_slack_overall_ps() > 0.0);
    }

    #[test]
    fn critical_path_nets_carry_the_worst_slack() {
        let c = ripple_carry_adder(4);
        let (lib, s, r) = setup(&c);
        let tc = r.critical_delay_ps();
        let slacks = required_times(&c, &lib, &s, &r, tc).unwrap();
        let worst = slacks.worst_slack_overall_ps();
        let path = r.critical_path();
        // Every gate output along the critical path carries (close to)
        // the design-worst slack.
        let last = *path.gates.last().unwrap();
        let out = c.gate(last).output();
        assert!(
            (slacks.worst_slack_ps(out) - worst).abs() < 1e-6,
            "endpoint slack {} vs worst {worst}",
            slacks.worst_slack_ps(out)
        );
    }

    #[test]
    fn moving_the_constraint_shifts_slack_linearly() {
        let c = inverter_chain(3);
        let (lib, s, r) = setup(&c);
        let t0 = r.critical_delay_ps();
        let s1 = required_times(&c, &lib, &s, &r, t0).unwrap();
        let s2 = required_times(&c, &lib, &s, &r, t0 + 100.0).unwrap();
        let d = s2.worst_slack_overall_ps() - s1.worst_slack_overall_ps();
        assert!((d - 100.0).abs() < 1e-6, "slack shift {d}");
    }
}
