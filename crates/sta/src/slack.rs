//! Required times and slacks — the backward STA pass.
//!
//! POPS decides *where* to spend optimization effort from path slacks:
//! a negative-slack net sits on a path that misses the constraint. The
//! backward pass propagates required times from the primary outputs
//! through the same arcs (and the same arc delays) the forward pass
//! used.
//!
//! # Value domains (the NaN policy)
//!
//! Required times are `+inf` on unconstrained nets (no path to a
//! primary output) and finite everywhere else; arrivals are `-inf` on
//! forward-unreachable nets and finite everywhere else. Slack
//! (`required − arrival`) is therefore **finite or `+inf`, never NaN**:
//! the only NaN-producing combination (`+inf − +inf` / `-inf − -inf`)
//! cannot occur. A `+inf` slack means "this net does not constrain the
//! design"; [`SlackView::worst_slack_overall_ps`] skips those and
//! returns `None` when *no* net carries a finite slack (e.g. a circuit
//! with zero primary outputs).

use pops_delay::model::{gate_delay_with_output_edge, Edge};
use pops_delay::Library;
use pops_netlist::{Circuit, NetId, NetlistError};

use crate::analysis::{compatible_input_edges, EdgeDir, TimingView};
use crate::sizing::Sizing;

/// Read-only view over a backward (required-time) state: the query
/// surface shared by the one-shot [`SlackReport`] and the incremental
/// [`crate::incremental::TimingGraph`] (after
/// [`set_constraint`](crate::incremental::TimingGraph::set_constraint)).
///
/// Slack-driven consumers — candidate ranking in the sizing loop,
/// endpoint budgets in the circuit flow — are generic over this trait,
/// so they work unchanged whether the required times came from a full
/// backward pass or from reverse dirty-cone propagation.
pub trait SlackView {
    /// The cycle constraint the required times were computed against
    /// (ps).
    fn constraint_ps(&self) -> f64;

    /// Required time of a net for an edge (ps); `+inf` where
    /// unconstrained.
    fn required_ps(&self, net: NetId, edge: EdgeDir) -> f64;

    /// Slack of a net for an edge (ps): `required − arrival`. Negative
    /// means the net lies on a violating path; `+inf` means the net does
    /// not constrain the design (see the module docs — never NaN).
    fn slack_ps(&self, net: NetId, edge: EdgeDir) -> f64;

    /// Worst (most negative) slack over both edges of a net.
    fn worst_slack_ps(&self, net: NetId) -> f64 {
        self.slack_ps(net, EdgeDir::Rising)
            .min(self.slack_ps(net, EdgeDir::Falling))
    }

    /// Worst finite slack over the whole design, or `None` when no net
    /// carries a finite slack (no primary outputs, or none reachable).
    fn worst_slack_overall_ps(&self) -> Option<f64>;
}

/// Fold the design-worst finite slack out of `(required, arrival)`
/// pairs. Shared by both backends so their answers are bit-identical.
pub(crate) fn worst_finite_slack(pairs: impl Iterator<Item = ([f64; 2], [f64; 2])>) -> Option<f64> {
    let mut worst: Option<f64> = None;
    for (required, arrival) in pairs {
        for i in 0..2 {
            let slack = required[i] - arrival[i];
            if slack.is_finite() {
                worst = Some(match worst {
                    Some(w) => w.min(slack),
                    None => slack,
                });
            }
        }
    }
    worst
}

/// Deterministic two-way minimum over non-NaN keys. Agrees with the
/// [`worst_finite_slack`] fold on every multiset the index can hold:
/// keys are finite slacks or the `+inf` neutral element, and a finite
/// `required − arrival` is never `-0.0` (IEEE `x − y` with `x == y`
/// rounds to `+0.0`), so equal keys are equal *bits* and any
/// association of the minimum reproduces the fold bit-for-bit.
#[inline]
pub(crate) fn min2(a: f64, b: f64) -> f64 {
    if a <= b {
        a
    } else {
        b
    }
}

/// Incrementally maintained design-worst slack: a tournament tree of
/// per-rank partial minima over the per-net worst *finite* slacks.
///
/// The leaves hold one key per net — the worst finite slack over both
/// edges, or `+inf` when neither edge carries one (the same skip rule
/// as [`worst_finite_slack`]) — and every internal node the minimum of
/// its two children, so the root *is* the design-worst slack. A leaf
/// update re-derives only its root path and stops as soon as a parent
/// is bit-unchanged: O(log nets) per moved slack, against the O(nets)
/// fold the query used to pay. The incremental
/// [`TimingGraph`](crate::incremental::TimingGraph) feeds it exactly
/// the nets its backward flush re-derived (plus the nets whose forward
/// arrival moved), making the design-worst slack query O(1) on a
/// flushed graph.
#[derive(Debug, Clone)]
pub(crate) struct WorstSlackIndex {
    /// Leaf capacity: net count rounded up to a power of two (so the
    /// tree is complete and parent/child arithmetic is shift-only).
    cap: usize,
    /// 1-based heap layout: `tree[1]` is the root, leaves occupy
    /// `tree[cap .. cap + nets]`; `+inf` pads unused slots (the neutral
    /// element of the min).
    tree: Vec<f64>,
}

impl WorstSlackIndex {
    /// An index over `nets` leaves, all at the `+inf` neutral key.
    pub(crate) fn new(nets: usize) -> Self {
        let cap = nets.next_power_of_two().max(1);
        WorstSlackIndex {
            cap,
            tree: vec![f64::INFINITY; 2 * cap],
        }
    }

    /// The key of one net: its worst finite slack over both edges,
    /// `+inf` when no edge carries one — bit-compatible with what
    /// [`worst_finite_slack`] would fold in for this net.
    pub(crate) fn key(required: [f64; 2], arrival: [f64; 2]) -> f64 {
        let mut k = f64::INFINITY;
        for i in 0..2 {
            let s = required[i] - arrival[i];
            if s.is_finite() && s < k {
                k = s;
            }
        }
        k
    }

    /// The key of one net across every corner: `required`/`arrival` are
    /// the net's corner-innermost slices (length = corner count), and
    /// the key is the min over corners of the per-corner
    /// [`WorstSlackIndex::key`] — folded with [`min2`] in corner order,
    /// so with one corner this reduces to `key` bit-for-bit.
    pub(crate) fn key_over(required: &[[f64; 2]], arrival: &[[f64; 2]]) -> f64 {
        debug_assert_eq!(required.len(), arrival.len());
        let mut k = Self::key(required[0], arrival[0]);
        for c in 1..required.len() {
            k = min2(k, Self::key(required[c], arrival[c]));
        }
        k
    }

    /// Replace one net's key and re-derive the partial minima along its
    /// root path; O(log nets), cut short where a parent is bit-unchanged.
    pub(crate) fn update(&mut self, net: usize, key: f64) {
        // The key domain is finite-or-`+inf` (the neutral element) by
        // construction of [`WorstSlackIndex::key`]. A NaN or `-inf`
        // smuggled in here is the only way the root could ever fold a
        // design with no finite slack into a bogus non-`None` answer —
        // refuse it at the boundary instead of letting `min2` propagate
        // it silently.
        debug_assert!(
            !key.is_nan() && key != f64::NEG_INFINITY,
            "worst-slack index keys are finite slacks or the +inf neutral element, got {key}"
        );
        let mut i = self.cap + net;
        if self.tree[i].to_bits() == key.to_bits() {
            return;
        }
        self.tree[i] = key;
        while i > 1 {
            i /= 2;
            let m = min2(self.tree[2 * i], self.tree[2 * i + 1]);
            if self.tree[i].to_bits() == m.to_bits() {
                break;
            }
            self.tree[i] = m;
        }
    }

    /// Apply one batch of `(leaf slot, key)` updates — the parallel
    /// backward drain's per-worker folded leaf refreshes, merged at the
    /// barrier and applied here by the coordinator in one pass. Returns
    /// the number applied (for the flush's stats). Entry order is
    /// irrelevant: slots repeat only with identical final keys (a net's
    /// required and arrival are settled before its key is computed), so
    /// repeats hit the leaf's bit-unchanged early return.
    pub(crate) fn update_batch(&mut self, updates: &[(usize, f64)]) -> usize {
        for &(slot, key) in updates {
            self.update(slot, key);
        }
        updates.len()
    }

    /// The design-worst finite slack; `None` when no net carries one —
    /// a root still at the `+inf` neutral element means every leaf is
    /// unconstrained (zero primary outputs, an infinite constraint, a
    /// post-surgery design whose endpoints all went infinite), and must
    /// never be folded into a finite answer.
    pub(crate) fn worst(&self) -> Option<f64> {
        let root = self.tree[1];
        root.is_finite().then_some(root)
    }

    /// Rebuild wholesale from one key per net — O(nets) min folds, used
    /// when every slack may have moved (constraint/option invalidation,
    /// graph surgery growing the net space). Leaves past `keys.len()`
    /// (the power-of-two padding, and every leaf of a zero-net design)
    /// are re-padded with the `+inf` neutral element.
    pub(crate) fn rebuild(&mut self, keys: &[f64]) {
        debug_assert!(
            keys.iter().all(|k| !k.is_nan() && *k != f64::NEG_INFINITY),
            "worst-slack index keys are finite slacks or the +inf neutral element"
        );
        let cap = keys.len().next_power_of_two().max(1);
        self.cap = cap;
        self.tree.clear();
        self.tree.resize(2 * cap, f64::INFINITY);
        self.tree[cap..cap + keys.len()].copy_from_slice(keys);
        for i in (1..cap).rev() {
            self.tree[i] = min2(self.tree[2 * i], self.tree[2 * i + 1]);
        }
    }

    /// Deep-consistency audit for
    /// [`verify_state`](crate::TimingGraph::verify_state): every leaf
    /// must bit-match its independently recomputed key, padding leaves
    /// must still hold the `+inf` neutral element, and every internal
    /// node (the root included) must bit-match the `min2` of its
    /// children — i.e. the incrementally maintained tree is exactly the
    /// tree [`WorstSlackIndex::rebuild`] would produce from `keys`.
    pub(crate) fn audit_against(&self, keys: &[f64]) -> Result<(), String> {
        if keys.len() > self.cap || self.tree.len() != 2 * self.cap {
            return Err(format!(
                "worst-slack tree sized for {} leaves, {} nets",
                self.cap,
                keys.len()
            ));
        }
        for (slot, &key) in keys.iter().enumerate() {
            let leaf = self.tree[self.cap + slot];
            if leaf.to_bits() != key.to_bits() {
                return Err(format!(
                    "worst-slack leaf {slot} holds {leaf} but the slabs refold to {key}"
                ));
            }
        }
        for (i, &pad) in self.tree[self.cap + keys.len()..].iter().enumerate() {
            if pad != f64::INFINITY {
                return Err(format!(
                    "worst-slack padding leaf {} holds {pad}, not the +inf neutral element",
                    keys.len() + i
                ));
            }
        }
        for i in (1..self.cap).rev() {
            let m = min2(self.tree[2 * i], self.tree[2 * i + 1]);
            if self.tree[i].to_bits() != m.to_bits() {
                return Err(format!(
                    "worst-slack node {i} holds {} but its children fold to {m}",
                    self.tree[i]
                ));
            }
        }
        Ok(())
    }
}

/// Result of the backward (required-time) pass.
#[derive(Debug, Clone)]
pub struct SlackReport {
    /// The constraint the pass ran against (ps).
    tc_ps: f64,
    /// `required[net][edge]` in ps; `+inf` where unconstrained.
    required: Vec<[f64; 2]>,
    /// Copy of the forward arrivals for slack computation.
    arrival: Vec<[f64; 2]>,
}

fn eidx(e: Edge) -> usize {
    match e {
        Edge::Rising => 0,
        Edge::Falling => 1,
    }
}

impl SlackReport {
    /// Assemble a report from raw backward state (the incremental
    /// engine's materialization path).
    pub(crate) fn from_parts(tc_ps: f64, required: Vec<[f64; 2]>, arrival: Vec<[f64; 2]>) -> Self {
        SlackReport {
            tc_ps,
            required,
            arrival,
        }
    }

    /// The cycle constraint the required times were computed against
    /// (ps).
    pub fn constraint_ps(&self) -> f64 {
        self.tc_ps
    }

    /// Required time of a net for an edge (ps); `+inf` where
    /// unconstrained.
    pub fn required_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        self.required[net.index()][eidx(edge.into())]
    }

    /// Slack of a net for an edge (ps): `required − arrival`. Negative
    /// means the net lies on a violating path; `+inf` means
    /// unconstrained (never NaN — see the module docs).
    pub fn slack_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        let i = eidx(edge.into());
        self.required[net.index()][i] - self.arrival[net.index()][i]
    }

    /// Worst (most negative) slack over both edges of a net.
    pub fn worst_slack_ps(&self, net: NetId) -> f64 {
        self.slack_ps(net, EdgeDir::Rising)
            .min(self.slack_ps(net, EdgeDir::Falling))
    }

    /// Worst finite slack over the whole design.
    ///
    /// Returns `None` when no net carries a finite slack — a circuit
    /// with zero primary outputs has nothing to constrain, and the old
    /// `+inf` sentinel read like an infinitely relaxed design.
    pub fn worst_slack_overall_ps(&self) -> Option<f64> {
        worst_finite_slack(
            self.required
                .iter()
                .copied()
                .zip(self.arrival.iter().copied()),
        )
    }
}

impl SlackView for SlackReport {
    fn constraint_ps(&self) -> f64 {
        SlackReport::constraint_ps(self)
    }
    fn required_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        SlackReport::required_ps(self, net, edge)
    }
    fn slack_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        SlackReport::slack_ps(self, net, edge)
    }
    fn worst_slack_ps(&self, net: NetId) -> f64 {
        SlackReport::worst_slack_ps(self, net)
    }
    fn worst_slack_overall_ps(&self) -> Option<f64> {
        SlackReport::worst_slack_overall_ps(self)
    }
}

/// Backward pass: compute required times against a cycle constraint
/// `tc_ps` applied at every primary output.
///
/// Must be called with the same circuit/sizing the `report` was computed
/// from (arc delays are re-derived with the report's slopes). Accepts any
/// timing backend — a one-shot [`crate::TimingReport`] or an incremental
/// [`crate::TimingGraph`] — so the sizing loop never forces a full
/// re-analysis just to read slacks. A backend that maintains its own
/// backward state under exactly `tc_ps` (a `TimingGraph` after
/// [`set_constraint`](crate::incremental::TimingGraph::set_constraint))
/// short-circuits the whole pass: the cached state is materialized in
/// O(nets) with no arc evaluations, bit-identical to the full pass.
///
/// # Errors
///
/// Propagates [`Circuit::topo_order`] errors.
pub fn required_times<V: TimingView + ?Sized>(
    circuit: &Circuit,
    lib: &Library,
    sizing: &Sizing,
    report: &V,
    tc_ps: f64,
) -> Result<SlackReport, NetlistError> {
    if let Some(cached) = report.cached_required_times(tc_ps, sizing) {
        return Ok(cached);
    }
    let order = circuit.topo_order()?;
    let n_nets = circuit.net_count();
    let mut required = vec![[f64::INFINITY; 2]; n_nets];
    let mut arrival = vec![[f64::NEG_INFINITY; 2]; n_nets];

    for net in circuit.net_ids() {
        for (i, dir) in [(0usize, EdgeDir::Rising), (1, EdgeDir::Falling)] {
            arrival[net.index()][i] = report.arrival_ps(net, dir);
        }
        if circuit.net(net).is_output() {
            required[net.index()] = [tc_ps; 2];
        }
    }

    const EDGES: [Edge; 2] = [Edge::Rising, Edge::Falling];
    for &gid in order.iter().rev() {
        let gate = circuit.gate(gid);
        let out = gate.output();
        let cin = sizing.cin_ff(gid);
        let load = report.net_load_ff(out);
        for out_edge in EDGES {
            let req_out = required[out.index()][eidx(out_edge)];
            if req_out == f64::INFINITY {
                continue;
            }
            for &in_net in gate.inputs() {
                for &in_edge in compatible_input_edges(gate.kind(), out_edge) {
                    let dir: EdgeDir = in_edge.into();
                    let slope = report.slope_ps(in_net, dir);
                    let d = gate_delay_with_output_edge(
                        lib,
                        gate.kind(),
                        cin,
                        load,
                        slope,
                        in_edge,
                        out_edge,
                    );
                    let candidate = req_out - d.delay_ps;
                    let slot = &mut required[in_net.index()][eidx(in_edge)];
                    if candidate < *slot {
                        *slot = candidate;
                    }
                }
            }
        }
    }

    Ok(SlackReport {
        tc_ps,
        required,
        arrival,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, TimingReport};
    use pops_netlist::builders::{inverter_chain, ripple_carry_adder};
    use pops_netlist::CellKind;

    fn setup(c: &Circuit) -> (Library, Sizing, TimingReport) {
        let lib = Library::cmos025();
        let s = Sizing::minimum(c, &lib);
        let r = analyze(c, &lib, &s).unwrap();
        (lib, s, r)
    }

    #[test]
    fn slack_zero_at_exact_constraint_on_critical_output() {
        let c = inverter_chain(5);
        let (lib, s, r) = setup(&c);
        let tc = r.critical_delay_ps();
        let slacks = required_times(&c, &lib, &s, &r, tc).unwrap();
        // The critical output's slack is exactly zero.
        let worst = slacks.worst_slack_overall_ps().unwrap();
        assert!(worst.abs() < 1e-6, "worst slack {worst}");
    }

    #[test]
    fn slack_is_negative_under_an_impossible_constraint() {
        let c = inverter_chain(4);
        let (lib, s, r) = setup(&c);
        let slacks = required_times(&c, &lib, &s, &r, 0.5 * r.critical_delay_ps()).unwrap();
        assert!(slacks.worst_slack_overall_ps().unwrap() < 0.0);
    }

    #[test]
    fn slack_is_positive_under_a_loose_constraint() {
        let c = ripple_carry_adder(4);
        let (lib, s, r) = setup(&c);
        let slacks = required_times(&c, &lib, &s, &r, 2.0 * r.critical_delay_ps()).unwrap();
        assert!(slacks.worst_slack_overall_ps().unwrap() > 0.0);
    }

    #[test]
    fn critical_path_nets_carry_the_worst_slack() {
        let c = ripple_carry_adder(4);
        let (lib, s, r) = setup(&c);
        let tc = r.critical_delay_ps();
        let slacks = required_times(&c, &lib, &s, &r, tc).unwrap();
        let worst = slacks.worst_slack_overall_ps().unwrap();
        let path = r.critical_path();
        // Every gate output along the critical path carries (close to)
        // the design-worst slack.
        let last = *path.gates.last().unwrap();
        let out = c.gate(last).output();
        assert!(
            (slacks.worst_slack_ps(out) - worst).abs() < 1e-6,
            "endpoint slack {} vs worst {worst}",
            slacks.worst_slack_ps(out)
        );
    }

    #[test]
    fn moving_the_constraint_shifts_slack_linearly() {
        let c = inverter_chain(3);
        let (lib, s, r) = setup(&c);
        let t0 = r.critical_delay_ps();
        let s1 = required_times(&c, &lib, &s, &r, t0).unwrap();
        let s2 = required_times(&c, &lib, &s, &r, t0 + 100.0).unwrap();
        let d = s2.worst_slack_overall_ps().unwrap() - s1.worst_slack_overall_ps().unwrap();
        assert!((d - 100.0).abs() < 1e-6, "slack shift {d}");
    }

    #[test]
    fn zero_output_circuit_has_no_overall_slack() {
        // A circuit whose gates feed nothing marked as a primary output:
        // nothing is constrained, so there is no worst slack — the old
        // `+inf` sentinel read like an infinitely relaxed design.
        let mut c = Circuit::new("no-po");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let _y = c.add_gate(CellKind::Nand2, &[a, b], "y").unwrap();
        let (lib, s, r) = setup(&c);
        let slacks = required_times(&c, &lib, &s, &r, 100.0).unwrap();
        assert_eq!(slacks.worst_slack_overall_ps(), None);
        // Per-net queries still answer: everything is unconstrained.
        for net in c.net_ids() {
            assert_eq!(slacks.worst_slack_ps(net), f64::INFINITY);
            assert!(!slacks.worst_slack_ps(net).is_nan());
        }
    }

    #[test]
    fn tournament_tree_agrees_with_the_fold() {
        use pops_netlist::rng::SplitMix64;
        let mut rng = SplitMix64::new(0x0070_4E1D);
        for nets in [0usize, 1, 2, 3, 17, 64, 65, 200] {
            // Random (required, arrival) pairs mixing finite values with
            // the real domains' infinities.
            let pairs: Vec<([f64; 2], [f64; 2])> = (0..nets)
                .map(|_| {
                    let mut required = [0.0f64; 2];
                    let mut arrival = [0.0f64; 2];
                    for i in 0..2 {
                        required[i] = if rng.chance(0.2) {
                            f64::INFINITY
                        } else {
                            1000.0 * rng.next_f64()
                        };
                        arrival[i] = if rng.chance(0.1) {
                            f64::NEG_INFINITY
                        } else {
                            1000.0 * rng.next_f64()
                        };
                    }
                    (required, arrival)
                })
                .collect();
            let keys: Vec<f64> = pairs
                .iter()
                .map(|&(r, a)| WorstSlackIndex::key(r, a))
                .collect();
            let mut index = WorstSlackIndex::new(nets);
            index.rebuild(&keys);
            let fold = worst_finite_slack(pairs.iter().copied());
            assert_eq!(index.worst().map(f64::to_bits), fold.map(f64::to_bits));

            // Point updates converge to the same root as a rebuild.
            let mut incremental = WorstSlackIndex::new(nets);
            for (i, &k) in keys.iter().enumerate() {
                incremental.update(i, k);
            }
            assert_eq!(
                incremental.worst().map(f64::to_bits),
                fold.map(f64::to_bits)
            );
            // Raising the minimum's key re-derives the next-worst.
            if nets > 1 {
                if let Some(worst) = fold {
                    let pos = keys.iter().position(|k| k.to_bits() == worst.to_bits());
                    if let Some(pos) = pos {
                        let mut rest = keys.clone();
                        rest[pos] = f64::INFINITY;
                        incremental.update(pos, f64::INFINITY);
                        let mut refold = WorstSlackIndex::new(nets);
                        refold.rebuild(&rest);
                        assert_eq!(
                            incremental.worst().map(f64::to_bits),
                            refold.worst().map(f64::to_bits)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn constraint_is_recorded_on_the_report() {
        let c = inverter_chain(3);
        let (lib, s, r) = setup(&c);
        let slacks = required_times(&c, &lib, &s, &r, 123.5).unwrap();
        assert_eq!(slacks.constraint_ps(), 123.5);
        // And through the trait object surface.
        let view: &dyn SlackView = &slacks;
        assert_eq!(view.constraint_ps(), 123.5);
    }
}
