//! Required times and slacks — the backward STA pass.
//!
//! POPS decides *where* to spend optimization effort from path slacks:
//! a negative-slack net sits on a path that misses the constraint. The
//! backward pass propagates required times from the primary outputs
//! through the same arcs (and the same arc delays) the forward pass
//! used.
//!
//! # Value domains (the NaN policy)
//!
//! Required times are `+inf` on unconstrained nets (no path to a
//! primary output) and finite everywhere else; arrivals are `-inf` on
//! forward-unreachable nets and finite everywhere else. Slack
//! (`required − arrival`) is therefore **finite or `+inf`, never NaN**:
//! the only NaN-producing combination (`+inf − +inf` / `-inf − -inf`)
//! cannot occur. A `+inf` slack means "this net does not constrain the
//! design"; [`SlackView::worst_slack_overall_ps`] skips those and
//! returns `None` when *no* net carries a finite slack (e.g. a circuit
//! with zero primary outputs).

use pops_delay::model::{gate_delay_with_output_edge, Edge};
use pops_delay::Library;
use pops_netlist::{Circuit, NetId, NetlistError};

use crate::analysis::{compatible_input_edges, EdgeDir, TimingView};
use crate::sizing::Sizing;

/// Read-only view over a backward (required-time) state: the query
/// surface shared by the one-shot [`SlackReport`] and the incremental
/// [`crate::incremental::TimingGraph`] (after
/// [`set_constraint`](crate::incremental::TimingGraph::set_constraint)).
///
/// Slack-driven consumers — candidate ranking in the sizing loop,
/// endpoint budgets in the circuit flow — are generic over this trait,
/// so they work unchanged whether the required times came from a full
/// backward pass or from reverse dirty-cone propagation.
pub trait SlackView {
    /// The cycle constraint the required times were computed against
    /// (ps).
    fn constraint_ps(&self) -> f64;

    /// Required time of a net for an edge (ps); `+inf` where
    /// unconstrained.
    fn required_ps(&self, net: NetId, edge: EdgeDir) -> f64;

    /// Slack of a net for an edge (ps): `required − arrival`. Negative
    /// means the net lies on a violating path; `+inf` means the net does
    /// not constrain the design (see the module docs — never NaN).
    fn slack_ps(&self, net: NetId, edge: EdgeDir) -> f64;

    /// Worst (most negative) slack over both edges of a net.
    fn worst_slack_ps(&self, net: NetId) -> f64 {
        self.slack_ps(net, EdgeDir::Rising)
            .min(self.slack_ps(net, EdgeDir::Falling))
    }

    /// Worst finite slack over the whole design, or `None` when no net
    /// carries a finite slack (no primary outputs, or none reachable).
    fn worst_slack_overall_ps(&self) -> Option<f64>;
}

/// Fold the design-worst finite slack out of `(required, arrival)`
/// pairs. Shared by both backends so their answers are bit-identical.
pub(crate) fn worst_finite_slack(pairs: impl Iterator<Item = ([f64; 2], [f64; 2])>) -> Option<f64> {
    let mut worst: Option<f64> = None;
    for (required, arrival) in pairs {
        for i in 0..2 {
            let slack = required[i] - arrival[i];
            if slack.is_finite() {
                worst = Some(match worst {
                    Some(w) => w.min(slack),
                    None => slack,
                });
            }
        }
    }
    worst
}

/// Result of the backward (required-time) pass.
#[derive(Debug, Clone)]
pub struct SlackReport {
    /// The constraint the pass ran against (ps).
    tc_ps: f64,
    /// `required[net][edge]` in ps; `+inf` where unconstrained.
    required: Vec<[f64; 2]>,
    /// Copy of the forward arrivals for slack computation.
    arrival: Vec<[f64; 2]>,
}

fn eidx(e: Edge) -> usize {
    match e {
        Edge::Rising => 0,
        Edge::Falling => 1,
    }
}

impl SlackReport {
    /// Assemble a report from raw backward state (the incremental
    /// engine's materialization path).
    pub(crate) fn from_parts(tc_ps: f64, required: Vec<[f64; 2]>, arrival: Vec<[f64; 2]>) -> Self {
        SlackReport {
            tc_ps,
            required,
            arrival,
        }
    }

    /// The cycle constraint the required times were computed against
    /// (ps).
    pub fn constraint_ps(&self) -> f64 {
        self.tc_ps
    }

    /// Required time of a net for an edge (ps); `+inf` where
    /// unconstrained.
    pub fn required_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        self.required[net.index()][eidx(edge.into())]
    }

    /// Slack of a net for an edge (ps): `required − arrival`. Negative
    /// means the net lies on a violating path; `+inf` means
    /// unconstrained (never NaN — see the module docs).
    pub fn slack_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        let i = eidx(edge.into());
        self.required[net.index()][i] - self.arrival[net.index()][i]
    }

    /// Worst (most negative) slack over both edges of a net.
    pub fn worst_slack_ps(&self, net: NetId) -> f64 {
        self.slack_ps(net, EdgeDir::Rising)
            .min(self.slack_ps(net, EdgeDir::Falling))
    }

    /// Worst finite slack over the whole design.
    ///
    /// Returns `None` when no net carries a finite slack — a circuit
    /// with zero primary outputs has nothing to constrain, and the old
    /// `+inf` sentinel read like an infinitely relaxed design.
    pub fn worst_slack_overall_ps(&self) -> Option<f64> {
        worst_finite_slack(
            self.required
                .iter()
                .copied()
                .zip(self.arrival.iter().copied()),
        )
    }
}

impl SlackView for SlackReport {
    fn constraint_ps(&self) -> f64 {
        SlackReport::constraint_ps(self)
    }
    fn required_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        SlackReport::required_ps(self, net, edge)
    }
    fn slack_ps(&self, net: NetId, edge: EdgeDir) -> f64 {
        SlackReport::slack_ps(self, net, edge)
    }
    fn worst_slack_ps(&self, net: NetId) -> f64 {
        SlackReport::worst_slack_ps(self, net)
    }
    fn worst_slack_overall_ps(&self) -> Option<f64> {
        SlackReport::worst_slack_overall_ps(self)
    }
}

/// Backward pass: compute required times against a cycle constraint
/// `tc_ps` applied at every primary output.
///
/// Must be called with the same circuit/sizing the `report` was computed
/// from (arc delays are re-derived with the report's slopes). Accepts any
/// timing backend — a one-shot [`crate::TimingReport`] or an incremental
/// [`crate::TimingGraph`] — so the sizing loop never forces a full
/// re-analysis just to read slacks. A backend that maintains its own
/// backward state under exactly `tc_ps` (a `TimingGraph` after
/// [`set_constraint`](crate::incremental::TimingGraph::set_constraint))
/// short-circuits the whole pass: the cached state is materialized in
/// O(nets) with no arc evaluations, bit-identical to the full pass.
///
/// # Errors
///
/// Propagates [`Circuit::topo_order`] errors.
pub fn required_times<V: TimingView + ?Sized>(
    circuit: &Circuit,
    lib: &Library,
    sizing: &Sizing,
    report: &V,
    tc_ps: f64,
) -> Result<SlackReport, NetlistError> {
    if let Some(cached) = report.cached_required_times(tc_ps, sizing) {
        return Ok(cached);
    }
    let order = circuit.topo_order()?;
    let n_nets = circuit.net_count();
    let mut required = vec![[f64::INFINITY; 2]; n_nets];
    let mut arrival = vec![[f64::NEG_INFINITY; 2]; n_nets];

    for net in circuit.net_ids() {
        for (i, dir) in [(0usize, EdgeDir::Rising), (1, EdgeDir::Falling)] {
            arrival[net.index()][i] = report.arrival_ps(net, dir);
        }
        if circuit.net(net).is_output() {
            required[net.index()] = [tc_ps; 2];
        }
    }

    const EDGES: [Edge; 2] = [Edge::Rising, Edge::Falling];
    for &gid in order.iter().rev() {
        let gate = circuit.gate(gid);
        let out = gate.output();
        let cin = sizing.cin_ff(gid);
        let load = report.net_load_ff(out);
        for out_edge in EDGES {
            let req_out = required[out.index()][eidx(out_edge)];
            if req_out == f64::INFINITY {
                continue;
            }
            for &in_net in gate.inputs() {
                for &in_edge in compatible_input_edges(gate.kind(), out_edge) {
                    let dir: EdgeDir = in_edge.into();
                    let slope = report.slope_ps(in_net, dir);
                    let d = gate_delay_with_output_edge(
                        lib,
                        gate.kind(),
                        cin,
                        load,
                        slope,
                        in_edge,
                        out_edge,
                    );
                    let candidate = req_out - d.delay_ps;
                    let slot = &mut required[in_net.index()][eidx(in_edge)];
                    if candidate < *slot {
                        *slot = candidate;
                    }
                }
            }
        }
    }

    Ok(SlackReport {
        tc_ps,
        required,
        arrival,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, TimingReport};
    use pops_netlist::builders::{inverter_chain, ripple_carry_adder};
    use pops_netlist::CellKind;

    fn setup(c: &Circuit) -> (Library, Sizing, TimingReport) {
        let lib = Library::cmos025();
        let s = Sizing::minimum(c, &lib);
        let r = analyze(c, &lib, &s).unwrap();
        (lib, s, r)
    }

    #[test]
    fn slack_zero_at_exact_constraint_on_critical_output() {
        let c = inverter_chain(5);
        let (lib, s, r) = setup(&c);
        let tc = r.critical_delay_ps();
        let slacks = required_times(&c, &lib, &s, &r, tc).unwrap();
        // The critical output's slack is exactly zero.
        let worst = slacks.worst_slack_overall_ps().unwrap();
        assert!(worst.abs() < 1e-6, "worst slack {worst}");
    }

    #[test]
    fn slack_is_negative_under_an_impossible_constraint() {
        let c = inverter_chain(4);
        let (lib, s, r) = setup(&c);
        let slacks = required_times(&c, &lib, &s, &r, 0.5 * r.critical_delay_ps()).unwrap();
        assert!(slacks.worst_slack_overall_ps().unwrap() < 0.0);
    }

    #[test]
    fn slack_is_positive_under_a_loose_constraint() {
        let c = ripple_carry_adder(4);
        let (lib, s, r) = setup(&c);
        let slacks = required_times(&c, &lib, &s, &r, 2.0 * r.critical_delay_ps()).unwrap();
        assert!(slacks.worst_slack_overall_ps().unwrap() > 0.0);
    }

    #[test]
    fn critical_path_nets_carry_the_worst_slack() {
        let c = ripple_carry_adder(4);
        let (lib, s, r) = setup(&c);
        let tc = r.critical_delay_ps();
        let slacks = required_times(&c, &lib, &s, &r, tc).unwrap();
        let worst = slacks.worst_slack_overall_ps().unwrap();
        let path = r.critical_path();
        // Every gate output along the critical path carries (close to)
        // the design-worst slack.
        let last = *path.gates.last().unwrap();
        let out = c.gate(last).output();
        assert!(
            (slacks.worst_slack_ps(out) - worst).abs() < 1e-6,
            "endpoint slack {} vs worst {worst}",
            slacks.worst_slack_ps(out)
        );
    }

    #[test]
    fn moving_the_constraint_shifts_slack_linearly() {
        let c = inverter_chain(3);
        let (lib, s, r) = setup(&c);
        let t0 = r.critical_delay_ps();
        let s1 = required_times(&c, &lib, &s, &r, t0).unwrap();
        let s2 = required_times(&c, &lib, &s, &r, t0 + 100.0).unwrap();
        let d = s2.worst_slack_overall_ps().unwrap() - s1.worst_slack_overall_ps().unwrap();
        assert!((d - 100.0).abs() < 1e-6, "slack shift {d}");
    }

    #[test]
    fn zero_output_circuit_has_no_overall_slack() {
        // A circuit whose gates feed nothing marked as a primary output:
        // nothing is constrained, so there is no worst slack — the old
        // `+inf` sentinel read like an infinitely relaxed design.
        let mut c = Circuit::new("no-po");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let _y = c.add_gate(CellKind::Nand2, &[a, b], "y").unwrap();
        let (lib, s, r) = setup(&c);
        let slacks = required_times(&c, &lib, &s, &r, 100.0).unwrap();
        assert_eq!(slacks.worst_slack_overall_ps(), None);
        // Per-net queries still answer: everything is unconstrained.
        for net in c.net_ids() {
            assert_eq!(slacks.worst_slack_ps(net), f64::INFINITY);
            assert!(!slacks.worst_slack_ps(net).is_nan());
        }
    }

    #[test]
    fn constraint_is_recorded_on_the_report() {
        let c = inverter_chain(3);
        let (lib, s, r) = setup(&c);
        let slacks = required_times(&c, &lib, &s, &r, 123.5).unwrap();
        assert_eq!(slacks.constraint_ps(), 123.5);
        // And through the trait object surface.
        let view: &dyn SlackView = &slacks;
        assert_eq!(view.constraint_ps(), 123.5);
    }
}
