//! Structural netlist builders.
//!
//! These produce the concrete circuits the paper experiments on directly:
//! inverter chains and mixed-gate arrays (Fig. 1/3/6 use 11- and 13-gate
//! paths), plus a genuine gate-level ripple-carry adder used as the
//! `Adder16` workload.

use crate::cell::CellKind;
use crate::circuit::{Circuit, NetId};
use crate::error::NetlistError;

/// Build a chain of `n` inverters: `in -> inv -> inv -> ... -> out`.
///
/// The canonical tapered-buffer optimization testbed (Mead & Rem, ref.
/// [15] of the paper).
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// let c = pops_netlist::builders::inverter_chain(5);
/// assert_eq!(c.gate_count(), 5);
/// assert_eq!(c.depth().unwrap(), 5);
/// ```
pub fn inverter_chain(n: usize) -> Circuit {
    assert!(n > 0, "inverter_chain requires at least one stage");
    let mut c = Circuit::new(format!("inv_chain_{n}"));
    let mut prev = c.add_input("in");
    for i in 0..n {
        prev = c
            .add_gate(CellKind::Inv, &[prev], format!("s{i}"))
            .expect("arity is correct by construction");
    }
    c.mark_output(prev);
    c
}

/// Build a single path ("gate array" in the paper's wording) whose stages
/// use the given cells in order. Side inputs of multi-input cells are tied
/// to dedicated primary inputs so that the circuit is well formed and the
/// main path is the unique longest path.
///
/// The paper's Fig. 3 uses an 11-gate array and Fig. 6 a 13-gate array.
///
/// # Errors
///
/// Propagates construction errors (they indicate a bug in the cell list,
/// e.g. an arity-0 cell).
///
/// # Example
///
/// ```
/// use pops_netlist::{builders::gate_array, CellKind};
///
/// # fn main() -> Result<(), pops_netlist::NetlistError> {
/// let cells = [CellKind::Inv, CellKind::Nand2, CellKind::Nor2];
/// let c = gate_array("demo", &cells)?;
/// assert_eq!(c.gate_count(), 3);
/// assert_eq!(c.depth().unwrap(), 3);
/// # Ok(())
/// # }
/// ```
pub fn gate_array(name: &str, cells: &[CellKind]) -> Result<Circuit, NetlistError> {
    let mut c = Circuit::new(name);
    let mut prev = c.add_input("in");
    for (i, &kind) in cells.iter().enumerate() {
        let mut inputs = vec![prev];
        for pin in 1..kind.num_inputs() {
            inputs.push(c.add_input(format!("side_{i}_{pin}")));
        }
        prev = c.add_gate(kind, &inputs, format!("s{i}"))?;
    }
    c.mark_output(prev);
    Ok(c)
}

/// The paper's 11-gate path used for the Fig. 3 constant-sensitivity
/// illustration: a representative mix of inverters, NANDs and NORs.
pub fn eleven_gate_path() -> Circuit {
    use CellKind::*;
    gate_array(
        "array11",
        &[
            Inv, Nand2, Inv, Nor2, Nand3, Inv, Nor3, Nand2, Inv, Nor2, Inv,
        ],
    )
    .expect("static cell list is valid")
}

/// The paper's 13-gate array used for the Fig. 6 constraint-domain
/// exploration.
pub fn thirteen_gate_array() -> Circuit {
    use CellKind::*;
    gate_array(
        "array13",
        &[
            Inv, Nand2, Nor2, Inv, Nand3, Inv, Nor3, Nand2, Inv, Nor2, Nand2, Inv, Inv,
        ],
    )
    .expect("static cell list is valid")
}

/// One full adder in NAND-only form. Returns `(sum, carry_out)`.
///
/// Decomposition (9 NAND2 gates, the `NAND(a,b)` term shared between the
/// propagate XOR and the carry):
/// `p = a XOR b`, `sum = p XOR cin`, `cout = NAND(NAND(a,b), NAND(p,cin))`.
fn full_adder(
    c: &mut Circuit,
    a: NetId,
    b: NetId,
    cin: NetId,
    tag: &str,
) -> Result<(NetId, NetId), NetlistError> {
    // p = a XOR b, exposing the shared NAND(a, b) term.
    let nab = c.add_gate(CellKind::Nand2, &[a, b], format!("{tag}_nab"))?;
    let pa = c.add_gate(CellKind::Nand2, &[a, nab], format!("{tag}_pa"))?;
    let pb = c.add_gate(CellKind::Nand2, &[b, nab], format!("{tag}_pb"))?;
    let p = c.add_gate(CellKind::Nand2, &[pa, pb], format!("{tag}_p"))?;
    // sum = p XOR cin, exposing NAND(p, cin) for the carry.
    let npc = c.add_gate(CellKind::Nand2, &[p, cin], format!("{tag}_npc"))?;
    let sa = c.add_gate(CellKind::Nand2, &[p, npc], format!("{tag}_sa"))?;
    let sb = c.add_gate(CellKind::Nand2, &[cin, npc], format!("{tag}_sb"))?;
    let sum = c.add_gate(CellKind::Nand2, &[sa, sb], format!("{tag}_s_x"))?;
    let cout = c.add_gate(CellKind::Nand2, &[nab, npc], format!("{tag}_co"))?;
    Ok((sum, cout))
}

/// Build an `n`-bit ripple-carry adder from NAND2 gates only
/// (XORs decomposed). Inputs `a0..a{n-1}`, `b0..b{n-1}`, `cin`; outputs
/// `sum0..sum{n-1}`, `cout`.
///
/// # Panics
///
/// Panics if `bits == 0`.
///
/// # Example
///
/// ```
/// let adder = pops_netlist::builders::ripple_carry_adder(4);
/// assert_eq!(adder.primary_outputs().len(), 5); // 4 sums + carry
/// ```
pub fn ripple_carry_adder(bits: usize) -> Circuit {
    assert!(bits > 0, "adder needs at least one bit");
    let mut c = Circuit::new(format!("adder{bits}"));
    let a: Vec<NetId> = (0..bits).map(|i| c.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..bits).map(|i| c.add_input(format!("b{i}"))).collect();
    let mut carry = c.add_input("cin");
    for i in 0..bits {
        let (sum, cout) = full_adder(&mut c, a[i], b[i], carry, &format!("fa{i}"))
            .expect("full adder construction is statically valid");
        c.mark_output(sum);
        carry = cout;
    }
    c.mark_output(carry);
    c
}

/// A balanced tree of XOR2 gates over `leaves` inputs (parity function),
/// characteristic of the ECAT-style c499/c1355 structure.
///
/// # Panics
///
/// Panics if `leaves < 2`.
pub fn xor_tree(leaves: usize) -> Circuit {
    assert!(leaves >= 2, "xor tree needs at least two leaves");
    let mut c = Circuit::new(format!("xor_tree_{leaves}"));
    let mut frontier: Vec<NetId> = (0..leaves).map(|i| c.add_input(format!("x{i}"))).collect();
    let mut level = 0usize;
    while frontier.len() > 1 {
        let mut next = Vec::with_capacity(frontier.len().div_ceil(2));
        for (j, pair) in frontier.chunks(2).enumerate() {
            if pair.len() == 2 {
                let y = c
                    .add_gate(CellKind::Xor2, &[pair[0], pair[1]], format!("t{level}_{j}"))
                    .expect("arity correct");
                next.push(y);
            } else {
                next.push(pair[0]);
            }
        }
        frontier = next;
        level += 1;
    }
    c.mark_output(frontier[0]);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn inverter_chain_inverts_odd_lengths() {
        for n in 1..6 {
            let c = inverter_chain(n);
            let out = c.evaluate(&[("in", true)].into_iter().collect()).unwrap();
            let y = out.values().next().copied().unwrap();
            assert_eq!(y, n % 2 == 0, "chain of {n}");
        }
    }

    #[test]
    fn gate_array_depth_equals_length() {
        let c = eleven_gate_path();
        assert_eq!(c.gate_count(), 11);
        assert_eq!(c.depth().unwrap(), 11);
        let c = thirteen_gate_array();
        assert_eq!(c.gate_count(), 13);
        assert_eq!(c.depth().unwrap(), 13);
    }

    fn add_via_circuit(c: &Circuit, bits: usize, a: u64, b: u64, cin: bool) -> u64 {
        let mut vals: HashMap<String, bool> = HashMap::new();
        for i in 0..bits {
            vals.insert(format!("a{i}"), a >> i & 1 == 1);
            vals.insert(format!("b{i}"), b >> i & 1 == 1);
        }
        vals.insert("cin".into(), cin);
        let borrowed: HashMap<&str, bool> = vals.iter().map(|(k, &v)| (k.as_str(), v)).collect();
        let out = c.evaluate(&borrowed).unwrap();
        let mut result = 0u64;
        for i in 0..bits {
            // sum nets are named fa{i}_s_x by the builder
            if out[&format!("fa{i}_s_x")] {
                result |= 1 << i;
            }
        }
        if out[&format!("fa{}_co", bits - 1)] {
            result |= 1 << bits;
        }
        result
    }

    #[test]
    fn four_bit_adder_is_correct_exhaustively() {
        let bits = 4;
        let c = ripple_carry_adder(bits);
        for a in 0..16u64 {
            for b in 0..16u64 {
                for cin in [false, true] {
                    let expect = a + b + cin as u64;
                    assert_eq!(
                        add_via_circuit(&c, bits, a, b, cin),
                        expect,
                        "{a}+{b}+{cin}"
                    );
                }
            }
        }
    }

    #[test]
    fn sixteen_bit_adder_spot_checks() {
        let bits = 16;
        let c = ripple_carry_adder(bits);
        for (a, b, cin) in [
            (0u64, 0u64, false),
            (0xFFFF, 1, false),
            (0x8000, 0x8000, false),
            (12345, 54321, true),
            (0xFFFF, 0xFFFF, true),
        ] {
            let expect = a + b + cin as u64;
            assert_eq!(add_via_circuit(&c, bits, a, b, cin), expect);
        }
    }

    #[test]
    fn adder16_gate_count_is_nine_per_bit() {
        let c = ripple_carry_adder(16);
        assert_eq!(c.gate_count(), 16 * 9);
    }

    #[test]
    fn xor_tree_computes_parity() {
        let leaves = 8;
        let c = xor_tree(leaves);
        for bits in 0..(1u32 << leaves) {
            let mut vals: HashMap<String, bool> = HashMap::new();
            for i in 0..leaves {
                vals.insert(format!("x{i}"), bits >> i & 1 == 1);
            }
            let borrowed: HashMap<&str, bool> =
                vals.iter().map(|(k, &v)| (k.as_str(), v)).collect();
            let out = c.evaluate(&borrowed).unwrap();
            let parity = bits.count_ones() % 2 == 1;
            assert_eq!(out.values().next().copied().unwrap(), parity);
        }
    }

    #[test]
    fn xor_tree_depth_is_logarithmic() {
        let c = xor_tree(16);
        assert_eq!(c.depth().unwrap(), 4);
        let c = xor_tree(9);
        assert_eq!(c.depth().unwrap(), 4);
    }

    #[test]
    fn builders_validate() {
        ripple_carry_adder(8).validate().unwrap();
        inverter_chain(7).validate().unwrap();
        xor_tree(5).validate().unwrap();
        eleven_gate_path().validate().unwrap();
        thirteen_gate_array().validate().unwrap();
    }
}
