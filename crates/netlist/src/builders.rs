//! Structural netlist builders.
//!
//! These produce the concrete circuits the paper experiments on directly:
//! inverter chains and mixed-gate arrays (Fig. 1/3/6 use 11- and 13-gate
//! paths), plus a genuine gate-level ripple-carry adder used as the
//! `Adder16` workload.

use crate::cell::CellKind;
use crate::circuit::{Circuit, NetDriver, NetId};
use crate::error::NetlistError;
use crate::rng::SplitMix64;

/// Build a chain of `n` inverters: `in -> inv -> inv -> ... -> out`.
///
/// The canonical tapered-buffer optimization testbed (Mead & Rem, ref.
/// [15] of the paper).
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// let c = pops_netlist::builders::inverter_chain(5);
/// assert_eq!(c.gate_count(), 5);
/// assert_eq!(c.depth().unwrap(), 5);
/// ```
pub fn inverter_chain(n: usize) -> Circuit {
    assert!(n > 0, "inverter_chain requires at least one stage");
    let mut c = Circuit::new(format!("inv_chain_{n}"));
    let mut prev = c.add_input("in");
    for i in 0..n {
        prev = c
            .add_gate(CellKind::Inv, &[prev], format!("s{i}"))
            .expect("arity is correct by construction");
    }
    c.mark_output(prev);
    c
}

/// Build a single path ("gate array" in the paper's wording) whose stages
/// use the given cells in order. Side inputs of multi-input cells are tied
/// to dedicated primary inputs so that the circuit is well formed and the
/// main path is the unique longest path.
///
/// The paper's Fig. 3 uses an 11-gate array and Fig. 6 a 13-gate array.
///
/// # Errors
///
/// Propagates construction errors (they indicate a bug in the cell list,
/// e.g. an arity-0 cell).
///
/// # Example
///
/// ```
/// use pops_netlist::{builders::gate_array, CellKind};
///
/// # fn main() -> Result<(), pops_netlist::NetlistError> {
/// let cells = [CellKind::Inv, CellKind::Nand2, CellKind::Nor2];
/// let c = gate_array("demo", &cells)?;
/// assert_eq!(c.gate_count(), 3);
/// assert_eq!(c.depth().unwrap(), 3);
/// # Ok(())
/// # }
/// ```
pub fn gate_array(name: &str, cells: &[CellKind]) -> Result<Circuit, NetlistError> {
    let mut c = Circuit::new(name);
    let mut prev = c.add_input("in");
    for (i, &kind) in cells.iter().enumerate() {
        let mut inputs = vec![prev];
        for pin in 1..kind.num_inputs() {
            inputs.push(c.add_input(format!("side_{i}_{pin}")));
        }
        prev = c.add_gate(kind, &inputs, format!("s{i}"))?;
    }
    c.mark_output(prev);
    Ok(c)
}

/// The paper's 11-gate path used for the Fig. 3 constant-sensitivity
/// illustration: a representative mix of inverters, NANDs and NORs.
pub fn eleven_gate_path() -> Circuit {
    use CellKind::*;
    gate_array(
        "array11",
        &[
            Inv, Nand2, Inv, Nor2, Nand3, Inv, Nor3, Nand2, Inv, Nor2, Inv,
        ],
    )
    .expect("static cell list is valid")
}

/// The paper's 13-gate array used for the Fig. 6 constraint-domain
/// exploration.
pub fn thirteen_gate_array() -> Circuit {
    use CellKind::*;
    gate_array(
        "array13",
        &[
            Inv, Nand2, Nor2, Inv, Nand3, Inv, Nor3, Nand2, Inv, Nor2, Nand2, Inv, Inv,
        ],
    )
    .expect("static cell list is valid")
}

/// One full adder in NAND-only form. Returns `(sum, carry_out)`.
///
/// Decomposition (9 NAND2 gates, the `NAND(a,b)` term shared between the
/// propagate XOR and the carry):
/// `p = a XOR b`, `sum = p XOR cin`, `cout = NAND(NAND(a,b), NAND(p,cin))`.
fn full_adder(
    c: &mut Circuit,
    a: NetId,
    b: NetId,
    cin: NetId,
    tag: &str,
) -> Result<(NetId, NetId), NetlistError> {
    // p = a XOR b, exposing the shared NAND(a, b) term.
    let nab = c.add_gate(CellKind::Nand2, &[a, b], format!("{tag}_nab"))?;
    let pa = c.add_gate(CellKind::Nand2, &[a, nab], format!("{tag}_pa"))?;
    let pb = c.add_gate(CellKind::Nand2, &[b, nab], format!("{tag}_pb"))?;
    let p = c.add_gate(CellKind::Nand2, &[pa, pb], format!("{tag}_p"))?;
    // sum = p XOR cin, exposing NAND(p, cin) for the carry.
    let npc = c.add_gate(CellKind::Nand2, &[p, cin], format!("{tag}_npc"))?;
    let sa = c.add_gate(CellKind::Nand2, &[p, npc], format!("{tag}_sa"))?;
    let sb = c.add_gate(CellKind::Nand2, &[cin, npc], format!("{tag}_sb"))?;
    let sum = c.add_gate(CellKind::Nand2, &[sa, sb], format!("{tag}_s_x"))?;
    let cout = c.add_gate(CellKind::Nand2, &[nab, npc], format!("{tag}_co"))?;
    Ok((sum, cout))
}

/// Build an `n`-bit ripple-carry adder from NAND2 gates only
/// (XORs decomposed). Inputs `a0..a{n-1}`, `b0..b{n-1}`, `cin`; outputs
/// `sum0..sum{n-1}`, `cout`.
///
/// # Panics
///
/// Panics if `bits == 0`.
///
/// # Example
///
/// ```
/// let adder = pops_netlist::builders::ripple_carry_adder(4);
/// assert_eq!(adder.primary_outputs().len(), 5); // 4 sums + carry
/// ```
pub fn ripple_carry_adder(bits: usize) -> Circuit {
    assert!(bits > 0, "adder needs at least one bit");
    let mut c = Circuit::new(format!("adder{bits}"));
    let a: Vec<NetId> = (0..bits).map(|i| c.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..bits).map(|i| c.add_input(format!("b{i}"))).collect();
    let mut carry = c.add_input("cin");
    for i in 0..bits {
        let (sum, cout) = full_adder(&mut c, a[i], b[i], carry, &format!("fa{i}"))
            .expect("full adder construction is statically valid");
        c.mark_output(sum);
        carry = cout;
    }
    c.mark_output(carry);
    c
}

/// A balanced tree of XOR2 gates over `leaves` inputs (parity function),
/// characteristic of the ECAT-style c499/c1355 structure.
///
/// # Panics
///
/// Panics if `leaves < 2`.
pub fn xor_tree(leaves: usize) -> Circuit {
    assert!(leaves >= 2, "xor tree needs at least two leaves");
    let mut c = Circuit::new(format!("xor_tree_{leaves}"));
    let mut frontier: Vec<NetId> = (0..leaves).map(|i| c.add_input(format!("x{i}"))).collect();
    let mut level = 0usize;
    while frontier.len() > 1 {
        let mut next = Vec::with_capacity(frontier.len().div_ceil(2));
        for (j, pair) in frontier.chunks(2).enumerate() {
            if pair.len() == 2 {
                let y = c
                    .add_gate(CellKind::Xor2, &[pair[0], pair[1]], format!("t{level}_{j}"))
                    .expect("arity correct");
                next.push(y);
            } else {
                next.push(pair[0]);
            }
        }
        frontier = next;
        level += 1;
    }
    c.mark_output(frontier[0]);
    c
}

/// Derive constant-0 and constant-1 nets from an arbitrary `seed` net:
/// `0 = seed AND NOT seed`, `1 = seed OR NOT seed`. The netlist format has
/// no constant cells, so blocks that need a tied-off carry (carry-select
/// speculation) synthesize the constants structurally.
fn constant_pair(c: &mut Circuit, seed: NetId, tag: &str) -> (NetId, NetId) {
    let n = c
        .add_gate(CellKind::Inv, &[seed], format!("{tag}_kn"))
        .expect("arity correct");
    let zero = c
        .add_gate(CellKind::And2, &[seed, n], format!("{tag}_k0"))
        .expect("arity correct");
    let one = c
        .add_gate(CellKind::Or2, &[seed, n], format!("{tag}_k1"))
        .expect("arity correct");
    (zero, one)
}

/// NAND-decomposed 2:1 mux: `out = s ? b : a`. Callers pass the inverted
/// select `ns` so one inverter can serve a whole selected block.
fn mux2(
    c: &mut Circuit,
    a: NetId,
    b: NetId,
    s: NetId,
    ns: NetId,
    name: String,
) -> Result<NetId, NetlistError> {
    let t0 = c.add_gate(CellKind::Nand2, &[a, ns], format!("{name}_t0"))?;
    let t1 = c.add_gate(CellKind::Nand2, &[b, s], format!("{name}_t1"))?;
    c.add_gate(CellKind::Nand2, &[t0, t1], name)
}

/// Emit an `bits`-wide carry-select adder into `c`. Every block computes
/// both speculative ripple chains (carry-in 0 and 1) and the block carry
/// selects sums and carry-out through muxes; block 0 selects on `cin`
/// itself. Returns `(sums, carry_out)`; marks nothing as output.
fn carry_select_into(
    c: &mut Circuit,
    prefix: &str,
    block_bits: usize,
    a: &[NetId],
    b: &[NetId],
    cin: NetId,
) -> (Vec<NetId>, NetId) {
    let bits = a.len();
    assert!(bits > 0 && bits == b.len() && block_bits > 0);
    let (zero, one) = constant_pair(c, a[0], &format!("{prefix}c"));
    let mut sums = Vec::with_capacity(bits);
    let mut select = cin;
    let mut blk = 0usize;
    let mut lo = 0usize;
    while lo < bits {
        let hi = (lo + block_bits).min(bits);
        // Two speculative ripple chains over bits [lo, hi).
        let mut carry = [zero, one];
        let mut spec: Vec<[NetId; 2]> = Vec::with_capacity(hi - lo);
        for i in lo..hi {
            let mut pair = [zero; 2];
            for (v, cr) in carry.into_iter().enumerate() {
                let (s, co) = full_adder(c, a[i], b[i], cr, &format!("{prefix}b{blk}v{v}_fa{i}"))
                    .expect("full adder construction is statically valid");
                pair[v] = s;
                carry[v] = co;
            }
            spec.push(pair);
        }
        // Select on the block's true carry-in.
        let ns = c
            .add_gate(CellKind::Inv, &[select], format!("{prefix}b{blk}_ns"))
            .expect("arity correct");
        for (i, pair) in spec.iter().enumerate() {
            let s = mux2(
                c,
                pair[0],
                pair[1],
                select,
                ns,
                format!("{prefix}s{}", lo + i),
            )
            .expect("arity correct");
            sums.push(s);
        }
        select = mux2(
            c,
            carry[0],
            carry[1],
            select,
            ns,
            format!("{prefix}co{blk}"),
        )
        .expect("arity correct");
        lo = hi;
        blk += 1;
    }
    (sums, select)
}

/// Build an `bits`-bit carry-select adder (blocks of `block_bits`).
/// Inputs `a0..`, `b0..`, `cin`; outputs `s0..s{bits-1}`, then the carry —
/// `primary_outputs()` is exactly that order.
///
/// # Panics
///
/// Panics if `bits == 0` or `block_bits == 0`.
pub fn carry_select_adder(bits: usize, block_bits: usize) -> Circuit {
    let mut c = Circuit::new(format!("csel_adder{bits}"));
    let a: Vec<NetId> = (0..bits).map(|i| c.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..bits).map(|i| c.add_input(format!("b{i}"))).collect();
    let cin = c.add_input("cin");
    let (sums, cout) = carry_select_into(&mut c, "", block_bits, &a, &b, cin);
    for s in sums {
        c.mark_output(s);
    }
    c.mark_output(cout);
    c
}

/// Half adder: `(sum, carry) = (x XOR y, x AND y)`.
fn half_adder(c: &mut Circuit, x: NetId, y: NetId, tag: &str) -> (NetId, NetId) {
    let s = c
        .add_gate(CellKind::Xor2, &[x, y], format!("{tag}_s"))
        .expect("arity correct");
    let co = c
        .add_gate(CellKind::And2, &[x, y], format!("{tag}_c"))
        .expect("arity correct");
    (s, co)
}

/// Emit a schoolbook carry-propagate array multiplier into `c`: AND-gate
/// partial products reduced row by row with ripple full/half adders.
/// Returns the `2n` product nets, LSB first; marks nothing as output.
fn array_multiplier_into(c: &mut Circuit, prefix: &str, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
    let n = a.len();
    assert!(n >= 2 && n == b.len());
    let pp = |c: &mut Circuit, i: usize, j: usize, a: NetId, b: NetId| {
        c.add_gate(CellKind::And2, &[a, b], format!("{prefix}pp{i}_{j}"))
            .expect("arity correct")
    };
    // Accumulator holds the running partial-sum bits for weights
    // i..i+len-1 before row i is added.
    let mut acc: Vec<NetId> = (0..n).map(|j| pp(c, 0, j, a[0], b[j])).collect();
    let mut products = Vec::with_capacity(2 * n);
    for (i, &ai) in a.iter().enumerate().skip(1) {
        products.push(acc[0]); // weight i-1 is final
        let mut next = Vec::with_capacity(n + 1);
        let mut carry: Option<NetId> = None;
        for (j, &bj) in b.iter().enumerate() {
            let x = pp(c, i, j, ai, bj);
            let y = acc.get(j + 1).copied();
            let tag = format!("{prefix}r{i}_{j}");
            let s = match (y, carry) {
                (Some(y), Some(cr)) => {
                    let (s, co) =
                        full_adder(c, x, y, cr, &tag).expect("full adder is statically valid");
                    carry = Some(co);
                    s
                }
                (Some(y), None) => {
                    let (s, co) = half_adder(c, x, y, &tag);
                    carry = Some(co);
                    s
                }
                (None, Some(cr)) => {
                    let (s, co) = half_adder(c, x, cr, &tag);
                    carry = Some(co);
                    s
                }
                (None, None) => x,
            };
            next.push(s);
        }
        if let Some(cr) = carry {
            next.push(cr);
        }
        acc = next;
    }
    products.extend(acc);
    debug_assert_eq!(products.len(), 2 * n);
    products
}

/// Build an `bits`×`bits` array multiplier (the c6288 structure, scaled).
/// Inputs `a0..`, `b0..`; `primary_outputs()` is the `2*bits`-bit product,
/// LSB first.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn array_multiplier(bits: usize) -> Circuit {
    let mut c = Circuit::new(format!("array_mult{bits}"));
    let a: Vec<NetId> = (0..bits).map(|i| c.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..bits).map(|i| c.add_input(format!("b{i}"))).collect();
    for p in array_multiplier_into(&mut c, "", &a, &b) {
        c.mark_output(p);
    }
    c
}

const CLOUD_MIX: &[(CellKind, u32)] = &[
    (CellKind::Nand2, 30),
    (CellKind::Nor2, 15),
    (CellKind::Inv, 15),
    (CellKind::And2, 10),
    (CellKind::Or2, 10),
    (CellKind::Xor2, 10),
    (CellKind::Nand3, 5),
    (CellKind::Nor3, 5),
];

/// Grow `gates` random-logic gates into `c`, layered so levels are wide
/// (good for level-parallel evaluation) and sampling fanins with a
/// recency bias from `seeds` and previously created layers.
fn cloud_into(c: &mut Circuit, rng: &mut SplitMix64, prefix: &str, seeds: &[NetId], gates: usize) {
    assert!(!seeds.is_empty());
    if gates == 0 {
        return;
    }
    let levels = (gates as f64).sqrt().round() as usize;
    let levels = levels.clamp(1, 512).min(gates);
    let weights: Vec<u32> = CLOUD_MIX.iter().map(|&(_, w)| w).collect();
    let mut pool: Vec<Vec<NetId>> = vec![seeds.to_vec()];
    let mut remaining = gates;
    for layer in 1..=levels {
        let at_this = remaining / (levels - layer + 1);
        let at_this = if layer == levels {
            remaining
        } else {
            at_this.max(1)
        };
        let mut created = Vec::with_capacity(at_this);
        for g in 0..at_this {
            let kind = CLOUD_MIX[rng.weighted(&weights)].0;
            let mut inputs: Vec<NetId> = Vec::with_capacity(kind.num_inputs());
            while inputs.len() < kind.num_inputs() {
                // Recency bias: 70% previous layer, else any lower layer.
                let l = if rng.chance(0.7) {
                    layer - 1
                } else {
                    rng.below(layer)
                };
                let bucket = &pool[l];
                let mut pick = bucket[rng.below(bucket.len())];
                for _ in 0..4 {
                    if !inputs.contains(&pick) {
                        break;
                    }
                    pick = bucket[rng.below(bucket.len())];
                }
                inputs.push(pick);
            }
            let out = c
                .add_gate(kind, &inputs, format!("{prefix}l{layer}_{g}"))
                .expect("generator produces valid arities");
            created.push(out);
        }
        remaining -= at_this;
        pool.push(created);
    }
    debug_assert_eq!(remaining, 0);
}

/// Build a standalone seeded random-logic cloud with `inputs` primary
/// inputs and exactly `gates` gates.
///
/// # Panics
///
/// Panics if `inputs == 0` or `gates == 0`.
pub fn random_logic_cloud(inputs: usize, gates: usize, seed: u64) -> Circuit {
    assert!(inputs > 0 && gates > 0);
    let mut c = Circuit::new(format!("cloud{gates}"));
    let pis: Vec<NetId> = (0..inputs).map(|i| c.add_input(format!("x{i}"))).collect();
    let mut rng = SplitMix64::new(seed);
    cloud_into(&mut c, &mut rng, "", &pis, gates);
    mark_sinks_as_outputs(&mut c);
    c
}

fn mark_sinks_as_outputs(c: &mut Circuit) {
    let sinks: Vec<NetId> = c
        .net_ids()
        .filter(|&n| {
            c.net(n).loads().is_empty() && matches!(c.net(n).driver(), Some(NetDriver::Gate(_)))
        })
        .collect();
    for n in sinks {
        c.mark_output(n);
    }
}

/// Compose a synthetic fabric of exactly `target_gates` gates: an array
/// multiplier (~35% of the budget), a carry-select adder (~15%), and a
/// seeded random-logic cloud stitched to their result buses (the rest).
/// Deterministic in `seed`; every sink net becomes a primary output.
///
/// This is the generator behind the `synth10k`/`synth100k`/`synth1m`
/// scaling classes in [`crate::suite`].
///
/// # Panics
///
/// Panics if `target_gates < 1000`.
pub fn synthetic_fabric(name: &str, target_gates: usize, seed: u64) -> Circuit {
    assert!(
        target_gates >= 1000,
        "synthetic_fabric targets production scale; use the dedicated builders below 1k gates"
    );
    let mut c = Circuit::new(name);
    let mut rng = SplitMix64::new(seed);

    // Array multiplier: ~10·n² gates, aim at 35% of the budget.
    let mult_bits = ((0.035 * target_gates as f64).sqrt() as usize).max(4);
    let ma: Vec<NetId> = (0..mult_bits)
        .map(|i| c.add_input(format!("ma{i}")))
        .collect();
    let mb: Vec<NetId> = (0..mult_bits)
        .map(|i| c.add_input(format!("mb{i}")))
        .collect();
    let products = array_multiplier_into(&mut c, "m_", &ma, &mb);

    // Carry-select adder: ~21 gates/bit + block overhead, aim at 15%.
    let add_bits = ((0.15 * target_gates as f64 / 21.0) as usize).max(8);
    let aa: Vec<NetId> = (0..add_bits)
        .map(|i| c.add_input(format!("aa{i}")))
        .collect();
    let ab: Vec<NetId> = (0..add_bits)
        .map(|i| c.add_input(format!("ab{i}")))
        .collect();
    let cin = c.add_input("acin");
    let (sums, cout) = carry_select_into(&mut c, "a_", 8, &aa, &ab, cin);

    // Random-logic cloud consumes the exact remaining budget, stitched to
    // the datapath results plus a few dedicated inputs.
    let used = c.gate_count();
    assert!(
        used < target_gates,
        "datapath overshot the budget: {used} of {target_gates}"
    );
    let mut cloud_seeds: Vec<NetId> = (0..32.min(target_gates / 100).max(1))
        .map(|i| c.add_input(format!("cx{i}")))
        .collect();
    cloud_seeds.extend(products.iter().copied());
    cloud_seeds.extend(sums.iter().copied());
    cloud_seeds.push(cout);
    cloud_into(&mut c, &mut rng, "cl_", &cloud_seeds, target_gates - used);

    mark_sinks_as_outputs(&mut c);
    debug_assert_eq!(c.gate_count(), target_gates);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn inverter_chain_inverts_odd_lengths() {
        for n in 1..6 {
            let c = inverter_chain(n);
            let out = c.evaluate(&[("in", true)].into_iter().collect()).unwrap();
            let y = out.values().next().copied().unwrap();
            assert_eq!(y, n % 2 == 0, "chain of {n}");
        }
    }

    #[test]
    fn gate_array_depth_equals_length() {
        let c = eleven_gate_path();
        assert_eq!(c.gate_count(), 11);
        assert_eq!(c.depth().unwrap(), 11);
        let c = thirteen_gate_array();
        assert_eq!(c.gate_count(), 13);
        assert_eq!(c.depth().unwrap(), 13);
    }

    fn add_via_circuit(c: &Circuit, bits: usize, a: u64, b: u64, cin: bool) -> u64 {
        let mut vals: HashMap<String, bool> = HashMap::new();
        for i in 0..bits {
            vals.insert(format!("a{i}"), a >> i & 1 == 1);
            vals.insert(format!("b{i}"), b >> i & 1 == 1);
        }
        vals.insert("cin".into(), cin);
        let borrowed: HashMap<&str, bool> = vals.iter().map(|(k, &v)| (k.as_str(), v)).collect();
        let out = c.evaluate(&borrowed).unwrap();
        let mut result = 0u64;
        for i in 0..bits {
            // sum nets are named fa{i}_s_x by the builder
            if out[&format!("fa{i}_s_x")] {
                result |= 1 << i;
            }
        }
        if out[&format!("fa{}_co", bits - 1)] {
            result |= 1 << bits;
        }
        result
    }

    #[test]
    fn four_bit_adder_is_correct_exhaustively() {
        let bits = 4;
        let c = ripple_carry_adder(bits);
        for a in 0..16u64 {
            for b in 0..16u64 {
                for cin in [false, true] {
                    let expect = a + b + cin as u64;
                    assert_eq!(
                        add_via_circuit(&c, bits, a, b, cin),
                        expect,
                        "{a}+{b}+{cin}"
                    );
                }
            }
        }
    }

    #[test]
    fn sixteen_bit_adder_spot_checks() {
        let bits = 16;
        let c = ripple_carry_adder(bits);
        for (a, b, cin) in [
            (0u64, 0u64, false),
            (0xFFFF, 1, false),
            (0x8000, 0x8000, false),
            (12345, 54321, true),
            (0xFFFF, 0xFFFF, true),
        ] {
            let expect = a + b + cin as u64;
            assert_eq!(add_via_circuit(&c, bits, a, b, cin), expect);
        }
    }

    #[test]
    fn adder16_gate_count_is_nine_per_bit() {
        let c = ripple_carry_adder(16);
        assert_eq!(c.gate_count(), 16 * 9);
    }

    #[test]
    fn xor_tree_computes_parity() {
        let leaves = 8;
        let c = xor_tree(leaves);
        for bits in 0..(1u32 << leaves) {
            let mut vals: HashMap<String, bool> = HashMap::new();
            for i in 0..leaves {
                vals.insert(format!("x{i}"), bits >> i & 1 == 1);
            }
            let borrowed: HashMap<&str, bool> =
                vals.iter().map(|(k, &v)| (k.as_str(), v)).collect();
            let out = c.evaluate(&borrowed).unwrap();
            let parity = bits.count_ones() % 2 == 1;
            assert_eq!(out.values().next().copied().unwrap(), parity);
        }
    }

    #[test]
    fn xor_tree_depth_is_logarithmic() {
        let c = xor_tree(16);
        assert_eq!(c.depth().unwrap(), 4);
        let c = xor_tree(9);
        assert_eq!(c.depth().unwrap(), 4);
    }

    #[test]
    fn builders_validate() {
        ripple_carry_adder(8).validate().unwrap();
        inverter_chain(7).validate().unwrap();
        xor_tree(5).validate().unwrap();
        eleven_gate_path().validate().unwrap();
        thirteen_gate_array().validate().unwrap();
        carry_select_adder(9, 4).validate().unwrap();
        array_multiplier(5).validate().unwrap();
        random_logic_cloud(16, 300, 7).validate().unwrap();
    }

    /// Evaluate a circuit whose `primary_outputs()` form a binary word,
    /// LSB first, under inputs named by `(prefix, index)` pairs.
    fn eval_word(c: &Circuit, inputs: &[(&str, u64, usize)], extra: &[(&str, bool)]) -> u64 {
        let mut vals: HashMap<String, bool> = HashMap::new();
        for &(prefix, value, bits) in inputs {
            for i in 0..bits {
                vals.insert(format!("{prefix}{i}"), value >> i & 1 == 1);
            }
        }
        for &(name, v) in extra {
            vals.insert(name.into(), v);
        }
        let borrowed: HashMap<&str, bool> = vals.iter().map(|(k, &v)| (k.as_str(), v)).collect();
        let out = c.evaluate(&borrowed).unwrap();
        let mut word = 0u64;
        for (i, &net) in c.primary_outputs().iter().enumerate() {
            if out[c.net(net).name()] {
                word |= 1 << i;
            }
        }
        word
    }

    #[test]
    fn carry_select_adder_is_correct_exhaustively() {
        let bits = 4;
        let c = carry_select_adder(bits, 2);
        for a in 0..16u64 {
            for b in 0..16u64 {
                for cin in [false, true] {
                    let got = eval_word(&c, &[("a", a, bits), ("b", b, bits)], &[("cin", cin)]);
                    assert_eq!(got, a + b + cin as u64, "{a}+{b}+{cin}");
                }
            }
        }
    }

    #[test]
    fn carry_select_adder_wide_spot_checks() {
        let bits = 24;
        let c = carry_select_adder(bits, 8);
        for (a, b, cin) in [
            (0u64, 0u64, false),
            (0xFF_FFFF, 1, false),
            (0x80_0000, 0x80_0000, true),
            (0xABCDEF, 0x123456, true),
            (0xFF_FFFF, 0xFF_FFFF, true),
        ] {
            let got = eval_word(&c, &[("a", a, bits), ("b", b, bits)], &[("cin", cin)]);
            assert_eq!(got, a + b + cin as u64, "{a}+{b}+{cin}");
        }
    }

    #[test]
    fn array_multiplier_is_correct_exhaustively() {
        let bits = 4;
        let c = array_multiplier(bits);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let got = eval_word(&c, &[("a", a, bits), ("b", b, bits)], &[]);
                assert_eq!(got, a * b, "{a}*{b}");
            }
        }
    }

    #[test]
    fn array_multiplier_wide_spot_checks() {
        let bits = 8;
        let c = array_multiplier(bits);
        for (a, b) in [(0u64, 0u64), (255, 255), (181, 97), (128, 2), (199, 83)] {
            let got = eval_word(&c, &[("a", a, bits), ("b", b, bits)], &[]);
            assert_eq!(got, a * b, "{a}*{b}");
        }
    }

    #[test]
    fn random_logic_cloud_is_deterministic_and_exact() {
        let a = random_logic_cloud(24, 1000, 42);
        let b = random_logic_cloud(24, 1000, 42);
        assert_eq!(a.gate_count(), 1000);
        assert_eq!(b.gate_count(), 1000);
        for (ga, gb) in a.gate_ids().zip(b.gate_ids()) {
            assert_eq!(a.gate(ga).kind(), b.gate(gb).kind());
            assert_eq!(a.gate(ga).inputs(), b.gate(gb).inputs());
        }
        let c = random_logic_cloud(24, 1000, 43);
        let differs = a
            .gate_ids()
            .zip(c.gate_ids())
            .any(|(ga, gc)| a.gate(ga).inputs() != c.gate(gc).inputs());
        assert!(differs, "different seeds should give different clouds");
    }

    #[test]
    fn synthetic_fabric_hits_target_exactly() {
        let c = synthetic_fabric("fab", 2000, 1);
        assert_eq!(c.gate_count(), 2000);
        c.validate().unwrap();
        // Deep datapath + wide cloud: levels must be non-trivial.
        assert!(c.depth().unwrap() > 20);
    }
}
