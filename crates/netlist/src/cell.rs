//! The static CMOS cell library used throughout the reproduction.
//!
//! The paper's experiments involve inverters, buffers, NAND2/NAND3,
//! NOR2/NOR3 (Table 2), plus the AND/OR/XOR cells occurring in the ISCAS'85
//! benchmarks. Each [`CellKind`] knows its logic function, its pin count,
//! whether it inverts, and its De Morgan dual (the §4.2 restructuring move).

use std::fmt;
use std::str::FromStr;

use crate::error::NetlistError;

/// A static CMOS combinational cell.
///
/// The numeric suffix is the number of inputs. `Inv` and `Buf` are
/// single-input. All cells are single-output.
///
/// # Example
///
/// ```
/// use pops_netlist::CellKind;
///
/// assert_eq!(CellKind::Nand3.num_inputs(), 3);
/// assert!(CellKind::Nand3.is_inverting());
/// assert_eq!(CellKind::Nor2.demorgan_dual(), Some(CellKind::Nand2));
/// assert_eq!(CellKind::Nand2.evaluate(&[true, false]), true);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Non-inverting buffer (two cascaded inverter stages in one cell).
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 4-input NAND.
    Nand4,
    /// 2-input NOR.
    Nor2,
    /// 3-input NOR.
    Nor3,
    /// 4-input NOR.
    Nor4,
    /// 2-input AND (NAND + output inverter internally).
    And2,
    /// 3-input AND.
    And3,
    /// 4-input AND.
    And4,
    /// 2-input OR (NOR + output inverter internally).
    Or2,
    /// 3-input OR.
    Or3,
    /// 4-input OR.
    Or4,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
}

/// Threshold-voltage variant of a cell instance.
///
/// Multi-Vt libraries (Kaur & Noor, arXiv 1307.3017) implement every cell in
/// up to three flavours that trade speed against leakage: a low-Vt (LVT)
/// variant that switches fastest but leaks the most, a standard-Vt (SVT)
/// baseline, and a high-Vt (HVT) variant that is slower but leaks an order
/// of magnitude less. The variant is a property of each placed *instance*
/// (the same `CellKind` can be LVT on a critical path and HVT off it), so it
/// lives alongside the netlist rather than inside the cell enumeration.
///
/// ```
/// use pops_netlist::cell::VtClass;
///
/// assert_eq!(VtClass::default(), VtClass::Svt);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VtClass {
    /// Low threshold: fastest, leakiest.
    Lvt,
    /// Standard threshold: the library baseline.
    #[default]
    Svt,
    /// High threshold: slowest, least leakage.
    Hvt,
}

/// All Vt variants, in a stable order (useful for characterization loops).
pub const ALL_VT_CLASSES: [VtClass; 3] = [VtClass::Lvt, VtClass::Svt, VtClass::Hvt];

/// All library cells, in a stable order (useful for characterization loops).
pub const ALL_CELLS: [CellKind; 16] = [
    CellKind::Inv,
    CellKind::Buf,
    CellKind::Nand2,
    CellKind::Nand3,
    CellKind::Nand4,
    CellKind::Nor2,
    CellKind::Nor3,
    CellKind::Nor4,
    CellKind::And2,
    CellKind::And3,
    CellKind::And4,
    CellKind::Or2,
    CellKind::Or3,
    CellKind::Or4,
    CellKind::Xor2,
    CellKind::Xnor2,
];

impl CellKind {
    /// Number of input pins of the cell.
    ///
    /// ```
    /// # use pops_netlist::CellKind;
    /// assert_eq!(CellKind::Inv.num_inputs(), 1);
    /// assert_eq!(CellKind::Nor4.num_inputs(), 4);
    /// ```
    pub fn num_inputs(self) -> usize {
        use CellKind::*;
        match self {
            Inv | Buf => 1,
            Nand2 | Nor2 | And2 | Or2 | Xor2 | Xnor2 => 2,
            Nand3 | Nor3 | And3 | Or3 => 3,
            Nand4 | Nor4 | And4 | Or4 => 4,
        }
    }

    /// Whether the cell logically inverts its (first) input: a rising input
    /// edge produces a falling output edge.
    ///
    /// For XOR/XNOR the polarity depends on the side-input value; following
    /// the paper's path-delay convention we classify them by their behaviour
    /// with non-controlling side inputs (XOR passes the edge, XNOR inverts).
    pub fn is_inverting(self) -> bool {
        use CellKind::*;
        matches!(
            self,
            Inv | Nand2 | Nand3 | Nand4 | Nor2 | Nor3 | Nor4 | Xnor2
        )
    }

    /// The De Morgan dual used by the §4.2 restructuring step:
    /// `NORn(a…) = NANDn(¬a…)` with inverted inputs/outputs, and vice versa.
    ///
    /// Returns `None` for cells that have no series-stack dual (inverters,
    /// buffers, XOR family and the compound AND/OR cells, which the paper
    /// does not restructure).
    pub fn demorgan_dual(self) -> Option<CellKind> {
        use CellKind::*;
        match self {
            Nand2 => Some(Nor2),
            Nand3 => Some(Nor3),
            Nand4 => Some(Nor4),
            Nor2 => Some(Nand2),
            Nor3 => Some(Nand3),
            Nor4 => Some(Nand4),
            _ => None,
        }
    }

    /// Evaluate the cell's logic function.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    ///
    /// ```
    /// # use pops_netlist::CellKind;
    /// assert_eq!(CellKind::Xor2.evaluate(&[true, false]), true);
    /// assert_eq!(CellKind::Nor3.evaluate(&[false, false, false]), true);
    /// ```
    pub fn evaluate(self, inputs: &[bool]) -> bool {
        assert_eq!(
            inputs.len(),
            self.num_inputs(),
            "cell {self} expects {} inputs, got {}",
            self.num_inputs(),
            inputs.len()
        );
        use CellKind::*;
        match self {
            Inv => !inputs[0],
            Buf => inputs[0],
            Nand2 | Nand3 | Nand4 => !inputs.iter().all(|&b| b),
            Nor2 | Nor3 | Nor4 => !inputs.iter().any(|&b| b),
            And2 | And3 | And4 => inputs.iter().all(|&b| b),
            Or2 | Or3 | Or4 => inputs.iter().any(|&b| b),
            Xor2 => inputs[0] ^ inputs[1],
            Xnor2 => !(inputs[0] ^ inputs[1]),
        }
    }

    /// Number of series transistors in the N pull-down stack.
    ///
    /// This drives the falling-edge logical weight `DW_HL` in the delay
    /// model: NANDs stack their NMOS devices in series.
    pub fn series_nmos(self) -> usize {
        use CellKind::*;
        match self {
            Inv | Buf => 1,
            Nand2 => 2,
            Nand3 => 3,
            Nand4 => 4,
            Nor2 | Nor3 | Nor4 => 1,
            // Compound cells: first stage stack (AND = NAND stage).
            And2 => 2,
            And3 => 3,
            And4 => 4,
            Or2 | Or3 | Or4 => 1,
            // XOR-family transmission/branch structures behave like a
            // 2-stack on both edges.
            Xor2 | Xnor2 => 2,
        }
    }

    /// Number of series transistors in the P pull-up stack.
    ///
    /// Drives the rising-edge logical weight `DW_LH`: NORs stack their PMOS
    /// devices in series, which is why they are the least efficient cells
    /// (lowest `Flimit` in Table 2 of the paper).
    pub fn series_pmos(self) -> usize {
        use CellKind::*;
        match self {
            Inv | Buf => 1,
            Nand2 | Nand3 | Nand4 => 1,
            Nor2 => 2,
            Nor3 => 3,
            Nor4 => 4,
            And2 | And3 | And4 => 1,
            Or2 => 2,
            Or3 => 3,
            Or4 => 4,
            Xor2 | Xnor2 => 2,
        }
    }

    /// Canonical library name (upper-case, as used in `.bench` dumps).
    pub fn name(self) -> &'static str {
        use CellKind::*;
        match self {
            Inv => "NOT",
            Buf => "BUF",
            Nand2 | Nand3 | Nand4 => "NAND",
            Nor2 | Nor3 | Nor4 => "NOR",
            And2 | And3 | And4 => "AND",
            Or2 | Or3 | Or4 => "OR",
            Xor2 => "XOR",
            Xnor2 => "XNOR",
        }
    }

    /// Resolve a `.bench` operator name plus an input count into a cell.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] if the operator is unknown or
    /// the arity is unsupported (e.g. a 7-input NAND).
    pub fn from_op(op: &str, arity: usize) -> Result<CellKind, NetlistError> {
        use CellKind::*;
        let unknown = || NetlistError::UnknownCell {
            op: op.to_string(),
            arity,
        };
        match (op.to_ascii_uppercase().as_str(), arity) {
            ("NOT" | "INV", 1) => Ok(Inv),
            ("BUF" | "BUFF", 1) => Ok(Buf),
            ("NAND", 2) => Ok(Nand2),
            ("NAND", 3) => Ok(Nand3),
            ("NAND", 4) => Ok(Nand4),
            ("NOR", 2) => Ok(Nor2),
            ("NOR", 3) => Ok(Nor3),
            ("NOR", 4) => Ok(Nor4),
            ("AND", 2) => Ok(And2),
            ("AND", 3) => Ok(And3),
            ("AND", 4) => Ok(And4),
            ("OR", 2) => Ok(Or2),
            ("OR", 3) => Ok(Or3),
            ("OR", 4) => Ok(Or4),
            ("XOR", 2) => Ok(Xor2),
            ("XNOR", 2) => Ok(Xnor2),
            _ => Err(unknown()),
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.num_inputs();
        if n > 1 {
            write!(f, "{}{}", self.name(), n)
        } else {
            f.write_str(self.name())
        }
    }
}

impl FromStr for CellKind {
    type Err = NetlistError;

    /// Parses display names such as `"NAND2"`, `"NOT"`, `"NOR3"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let split = s.find(|c: char| c.is_ascii_digit());
        let (op, arity) = match split {
            Some(i) => {
                let arity: usize = s[i..].parse().map_err(|_| NetlistError::UnknownCell {
                    op: s.to_string(),
                    arity: 0,
                })?;
                (&s[..i], arity)
            }
            None => (s, 1),
        };
        CellKind::from_op(op, arity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_is_consistent_with_display_suffix() {
        for cell in ALL_CELLS {
            let shown = cell.to_string();
            if cell.num_inputs() > 1 {
                assert!(
                    shown.ends_with(&cell.num_inputs().to_string()),
                    "{shown} should end with its arity"
                );
            }
        }
    }

    #[test]
    fn display_round_trips_through_from_str() {
        for cell in ALL_CELLS {
            let round: CellKind = cell.to_string().parse().expect("parse display name");
            assert_eq!(round, cell);
        }
    }

    #[test]
    fn demorgan_dual_is_an_involution_on_nand_nor() {
        for cell in ALL_CELLS {
            if let Some(dual) = cell.demorgan_dual() {
                assert_eq!(dual.demorgan_dual(), Some(cell));
                assert_eq!(dual.num_inputs(), cell.num_inputs());
            }
        }
    }

    #[test]
    fn demorgan_dual_complements_with_inverted_inputs() {
        // NORn(a..) == NANDn(!a..) inverted at the *inputs* only:
        // De Morgan: !(a|b) == (!a)&(!b) == !NAND(!a,!b) — so
        // NOR(a,b) == INV(NAND(INV a, INV b)) is false; the identity is
        // NOR(a,b) == AND(!a,!b), i.e. NAND(!a,!b) == !NOR(a,b).
        for (cell, n) in [
            (CellKind::Nor2, 2),
            (CellKind::Nor3, 3),
            (CellKind::Nor4, 4),
        ] {
            let dual = cell.demorgan_dual().unwrap();
            for pattern in 0..(1u32 << n) {
                let ins: Vec<bool> = (0..n).map(|i| pattern >> i & 1 == 1).collect();
                let inv: Vec<bool> = ins.iter().map(|b| !b).collect();
                assert_eq!(
                    cell.evaluate(&ins),
                    !dual.evaluate(&inv),
                    "{cell} vs {dual}"
                );
            }
        }
    }

    #[test]
    fn nand_truth_table() {
        assert!(CellKind::Nand2.evaluate(&[false, false]));
        assert!(CellKind::Nand2.evaluate(&[true, false]));
        assert!(!CellKind::Nand2.evaluate(&[true, true]));
    }

    #[test]
    fn nor_truth_table() {
        assert!(CellKind::Nor2.evaluate(&[false, false]));
        assert!(!CellKind::Nor2.evaluate(&[true, false]));
        assert!(!CellKind::Nor2.evaluate(&[true, true]));
    }

    #[test]
    fn xor_xnor_are_complements() {
        for a in [false, true] {
            for b in [false, true] {
                assert_ne!(
                    CellKind::Xor2.evaluate(&[a, b]),
                    CellKind::Xnor2.evaluate(&[a, b])
                );
            }
        }
    }

    #[test]
    fn series_stacks_match_cell_structure() {
        assert_eq!(CellKind::Nand4.series_nmos(), 4);
        assert_eq!(CellKind::Nand4.series_pmos(), 1);
        assert_eq!(CellKind::Nor4.series_pmos(), 4);
        assert_eq!(CellKind::Nor4.series_nmos(), 1);
        assert_eq!(CellKind::Inv.series_nmos(), 1);
    }

    #[test]
    fn from_op_rejects_unknown() {
        assert!(CellKind::from_op("MAJ", 3).is_err());
        assert!(CellKind::from_op("NAND", 9).is_err());
    }

    #[test]
    fn inverting_classification() {
        assert!(CellKind::Nor3.is_inverting());
        assert!(!CellKind::And2.is_inverting());
        assert!(!CellKind::Buf.is_inverting());
        assert!(!CellKind::Xor2.is_inverting());
        assert!(CellKind::Xnor2.is_inverting());
    }
}
