//! Circuit statistics: the structural summaries used to sanity-check the
//! benchmark suite against the published ISCAS'85 profiles.

use std::collections::HashMap;

use crate::cell::CellKind;
use crate::circuit::{Circuit, NetDriver};
use crate::error::NetlistError;

/// Structural summary of a circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitStats {
    /// Total gate count.
    pub gates: usize,
    /// Total net count.
    pub nets: usize,
    /// Primary inputs / outputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Logic depth in gate levels.
    pub depth: usize,
    /// Gates per logic level (index 1..=depth; index 0 unused).
    pub gates_per_level: Vec<usize>,
    /// Fan-out histogram: `fanout_histogram[k]` = nets driving `k` pins
    /// (capped at the last bucket).
    pub fanout_histogram: Vec<usize>,
    /// Maximum fan-out over all nets.
    pub max_fanout: usize,
    /// Mean fan-out over driven nets.
    pub mean_fanout: f64,
    /// Cell usage counts.
    pub cell_mix: HashMap<CellKind, usize>,
}

/// Cap of the fan-out histogram (nets above land in the last bucket).
const FANOUT_BUCKETS: usize = 17;

/// Compute the statistics of a circuit.
///
/// # Errors
///
/// Propagates [`Circuit::topo_order`] errors (cyclic/undriven circuits).
///
/// # Example
///
/// ```
/// use pops_netlist::{builders::ripple_carry_adder, stats::circuit_stats};
///
/// # fn main() -> Result<(), pops_netlist::NetlistError> {
/// let s = circuit_stats(&ripple_carry_adder(4))?;
/// assert_eq!(s.gates, 36);
/// assert!(s.max_fanout >= 2); // shared NAND terms fan out
/// # Ok(())
/// # }
/// ```
pub fn circuit_stats(circuit: &Circuit) -> Result<CircuitStats, NetlistError> {
    let levels = circuit.logic_levels()?;
    let depth = levels.iter().copied().max().unwrap_or(0);
    let mut gates_per_level = vec![0usize; depth + 1];
    for &l in &levels {
        gates_per_level[l] += 1;
    }

    let mut fanout_histogram = vec![0usize; FANOUT_BUCKETS];
    let mut max_fanout = 0usize;
    let mut fanout_sum = 0usize;
    let mut driven = 0usize;
    for net in circuit.net_ids() {
        if matches!(
            circuit.net(net).driver(),
            Some(NetDriver::Gate(_)) | Some(NetDriver::PrimaryInput)
        ) {
            let f = circuit.net(net).fanout();
            fanout_histogram[f.min(FANOUT_BUCKETS - 1)] += 1;
            max_fanout = max_fanout.max(f);
            fanout_sum += f;
            driven += 1;
        }
    }

    Ok(CircuitStats {
        gates: circuit.gate_count(),
        nets: circuit.net_count(),
        inputs: circuit.primary_inputs().len(),
        outputs: circuit.primary_outputs().len(),
        depth,
        gates_per_level,
        fanout_histogram,
        max_fanout,
        mean_fanout: if driven > 0 {
            fanout_sum as f64 / driven as f64
        } else {
            0.0
        },
        cell_mix: circuit.cell_histogram(),
    })
}

impl CircuitStats {
    /// Fraction of gates whose cell belongs to the NOR family — the
    /// §4.2 restructuring candidates.
    pub fn nor_fraction(&self) -> f64 {
        if self.gates == 0 {
            return 0.0;
        }
        let nors: usize = self
            .cell_mix
            .iter()
            .filter(|(k, _)| matches!(k, CellKind::Nor2 | CellKind::Nor3 | CellKind::Nor4))
            .map(|(_, &n)| n)
            .sum();
        nors as f64 / self.gates as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{inverter_chain, ripple_carry_adder};
    use crate::suite;

    #[test]
    fn chain_stats() {
        let s = circuit_stats(&inverter_chain(5)).unwrap();
        assert_eq!(s.gates, 5);
        assert_eq!(s.depth, 5);
        assert_eq!(s.inputs, 1);
        // One gate per level.
        assert!(s.gates_per_level[1..].iter().all(|&n| n == 1));
        assert_eq!(s.max_fanout, 1);
    }

    #[test]
    fn adder_stats_match_structure() {
        let s = circuit_stats(&ripple_carry_adder(8)).unwrap();
        assert_eq!(s.gates, 72);
        assert_eq!(s.inputs, 17); // 8 + 8 + cin
        assert_eq!(s.outputs, 9); // 8 sums + cout
        assert!(s.mean_fanout > 1.0);
        assert_eq!(s.cell_mix[&CellKind::Nand2], 72);
    }

    #[test]
    fn suite_stats_match_profiles() {
        for name in ["c432", "c6288"] {
            let profile = suite::BenchmarkSuite::new().profile(name).unwrap();
            let s = circuit_stats(&suite::circuit(name).unwrap()).unwrap();
            assert_eq!(s.gates, profile.total_gates);
            assert_eq!(s.depth, profile.path_gates);
            assert_eq!(s.inputs, profile.n_inputs);
        }
    }

    #[test]
    fn c6288_is_nor_dominated() {
        // The multiplier profile is NOR-rich (like the real c6288).
        let s = circuit_stats(&suite::circuit("c6288").unwrap()).unwrap();
        assert!(s.nor_fraction() > 0.4, "NOR fraction {}", s.nor_fraction());
        let s = circuit_stats(&suite::circuit("c1355").unwrap()).unwrap();
        assert!(s.nor_fraction() < 0.3);
    }

    #[test]
    fn histogram_counts_every_driven_net() {
        let c = ripple_carry_adder(2);
        let s = circuit_stats(&c).unwrap();
        let total: usize = s.fanout_histogram.iter().sum();
        // Every PI and gate output net is counted once.
        assert_eq!(total, c.primary_inputs().len() + c.gate_count());
    }
}
