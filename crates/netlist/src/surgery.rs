//! Batched netlist surgery: [`EditPlan`]s over [`Circuit`]s.
//!
//! The optimization flow decides *what* to restructure (buffer an
//! over-limit net, De Morgan a weak NOR) long before it is safe to
//! mutate anything — candidates come from path analysis over an
//! immutable timing view. An [`EditPlan`] captures those decisions as
//! data: a list of [`EditOp`]s referencing existing [`NetId`]s /
//! [`GateId`]s, applied later in one shot by [`EditPlan::apply_to`] (or
//! by `TimingGraph::apply_edits`, which additionally patches its
//! incremental timing state around the same application).
//!
//! Every op maps onto one of the [`Circuit`] surgery primitives and is
//! validated before it mutates; the returned [`AppliedEdit`] log names
//! the gates and nets each op created or touched — exactly what an
//! incremental timing engine needs to seed its dirty cones.
//!
//! Ids are append-only: no op ever invalidates an existing `GateId` or
//! `NetId`, so ops within one plan may reference the same base ids.
//! Application order is the plan order; planners that mix buffer and
//! De Morgan ops should emit the buffer ops first (a De Morgan rewires
//! its gate's input pins, which would invalidate a later buffer op's
//! recorded `(gate, pin)` list).

use crate::cell::CellKind;
use crate::circuit::{Circuit, GateId, NetId};
use crate::error::NetlistError;

/// One structural edit, in netlist terms.
#[derive(Debug, Clone, PartialEq)]
pub enum EditOp {
    /// Insert an Inv→Inv buffer pair after `net`, re-homing the listed
    /// load pins onto the pair's output ([`Circuit::insert_buffer`]).
    InsertBuffer {
        /// The over-limit net to relieve.
        net: NetId,
        /// Load pins to move behind the buffer.
        loads: Vec<(GateId, usize)>,
        /// Input capacitance for the two inverters (fF): `[first,
        /// second]` — the first loads the relieved net, the second
        /// drives the moved pins.
        stage_cin_ff: [f64; 2],
    },
    /// Swap a gate's cell and input wiring ([`Circuit::replace_gate`]).
    /// Raw primitive: callers are responsible for logic equivalence.
    ReplaceGate {
        /// Gate to rewrite.
        gate: GateId,
        /// New cell.
        kind: CellKind,
        /// New input nets, in pin order (must match the cell's arity).
        inputs: Vec<NetId>,
    },
    /// Rewrite a NAND/NOR into its De Morgan dual plus inverters,
    /// preserving the logic function ([`Circuit::demorgan_gate`]).
    DeMorgan {
        /// The gate to dualize.
        gate: GateId,
        /// Input capacitance for every created inverter (fF).
        inv_cin_ff: f64,
    },
}

/// An ordered batch of structural edits.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EditPlan {
    ops: Vec<EditOp>,
}

/// What one applied [`EditOp`] did to the circuit: the ids it created
/// (with suggested sizes for new gates) and the pre-existing ids whose
/// connectivity it changed. Consumed by incremental timing engines to
/// seed dirty cones and extend their per-gate/per-net state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AppliedEdit {
    /// Gates created by this op, in id order.
    pub new_gates: Vec<GateId>,
    /// Suggested input capacitance per created gate (fF), parallel to
    /// `new_gates`.
    pub new_gate_cin_ff: Vec<f64>,
    /// Nets created by this op.
    pub new_nets: Vec<NetId>,
    /// Pre-existing *and* new nets whose driver, load pins or fanout
    /// set changed.
    pub touched_nets: Vec<NetId>,
    /// Pre-existing gates whose cell, input wiring or output net
    /// changed (created gates are listed in `new_gates` only).
    pub touched_gates: Vec<GateId>,
}

impl EditPlan {
    /// An empty plan.
    pub fn new() -> Self {
        EditPlan::default()
    }

    /// Append an op.
    pub fn push(&mut self, op: EditOp) {
        self.ops.push(op);
    }

    /// Append every op of `other`.
    pub fn extend(&mut self, other: EditPlan) {
        self.ops.extend(other.ops);
    }

    /// The ops, in application order.
    pub fn ops(&self) -> &[EditOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the plan holds no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Apply every op to `circuit`, in order, and return one
    /// [`AppliedEdit`] per op.
    ///
    /// # Errors
    ///
    /// The first failing op's error. Ops preceding it remain applied
    /// (each op is individually atomic: it validates before mutating);
    /// callers needing all-or-nothing semantics should apply to a clone.
    pub fn apply_to(&self, circuit: &mut Circuit) -> Result<Vec<AppliedEdit>, NetlistError> {
        let mut applied = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            applied.push(op.apply_to(circuit)?);
        }
        Ok(applied)
    }

    /// Cheap whole-plan screening against `circuit` *before* anything
    /// is applied: every referenced gate and net id must be in range,
    /// and every capacitance a created gate would enter at must be
    /// finite and positive (a NaN or non-positive drive would poison
    /// downstream timing state where convergence cuts never fire).
    /// Purely id-range and value checks — per-op structural
    /// preconditions (pin arities, cell kinds, drive conflicts) are
    /// still validated by each op at application time, since they can
    /// depend on the ops applied before it.
    ///
    /// # Errors
    ///
    /// [`NetlistError::InvalidId`] naming the out-of-range id;
    /// [`NetlistError::UnsupportedEdit`] naming the offending
    /// capacitance value.
    pub fn validate(&self, circuit: &Circuit) -> Result<(), NetlistError> {
        let n_gates = circuit.gate_count();
        let n_nets = circuit.net_count();
        let check_gate = |gate: GateId| {
            if gate.index() >= n_gates {
                Err(NetlistError::InvalidId(format!(
                    "gate {} out of range for a {n_gates}-gate circuit",
                    gate.index()
                )))
            } else {
                Ok(())
            }
        };
        let check_net = |net: NetId| {
            if net.index() >= n_nets {
                Err(NetlistError::InvalidId(format!(
                    "net {} out of range for a {n_nets}-net circuit",
                    net.index()
                )))
            } else {
                Ok(())
            }
        };
        let check_cin = |cin_ff: f64| {
            if !cin_ff.is_finite() || cin_ff <= 0.0 {
                Err(NetlistError::UnsupportedEdit(format!(
                    "created gate capacitance {cin_ff} fF must be finite and positive"
                )))
            } else {
                Ok(())
            }
        };
        for op in &self.ops {
            match op {
                EditOp::InsertBuffer {
                    net,
                    loads,
                    stage_cin_ff,
                } => {
                    check_net(*net)?;
                    for &(gate, _) in loads {
                        check_gate(gate)?;
                    }
                    for &cin in stage_cin_ff {
                        check_cin(cin)?;
                    }
                }
                EditOp::ReplaceGate { gate, inputs, .. } => {
                    check_gate(*gate)?;
                    for &net in inputs {
                        check_net(net)?;
                    }
                }
                EditOp::DeMorgan { gate, inv_cin_ff } => {
                    check_gate(*gate)?;
                    check_cin(*inv_cin_ff)?;
                }
            }
        }
        Ok(())
    }
}

impl From<Vec<EditOp>> for EditPlan {
    fn from(ops: Vec<EditOp>) -> Self {
        EditPlan { ops }
    }
}

impl EditOp {
    /// Apply this single op to `circuit`.
    ///
    /// # Errors
    ///
    /// As the underlying [`Circuit`] surgery primitive.
    pub fn apply_to(&self, circuit: &mut Circuit) -> Result<AppliedEdit, NetlistError> {
        match self {
            EditOp::InsertBuffer {
                net,
                loads,
                stage_cin_ff,
            } => {
                let ins = circuit.insert_buffer(*net, loads)?;
                Ok(AppliedEdit {
                    new_gates: vec![ins.first, ins.second],
                    new_gate_cin_ff: stage_cin_ff.to_vec(),
                    new_nets: vec![ins.mid_net, ins.out_net],
                    touched_nets: vec![*net, ins.mid_net, ins.out_net],
                    touched_gates: loads.iter().map(|&(g, _)| g).collect(),
                })
            }
            EditOp::ReplaceGate { gate, kind, inputs } => {
                let old_inputs = circuit.gate(*gate).inputs().to_vec();
                circuit.replace_gate(*gate, *kind, inputs)?;
                let mut touched_nets = old_inputs;
                touched_nets.extend_from_slice(inputs);
                touched_nets.push(circuit.gate(*gate).output());
                touched_nets.sort_unstable();
                touched_nets.dedup();
                Ok(AppliedEdit {
                    new_gates: Vec::new(),
                    new_gate_cin_ff: Vec::new(),
                    new_nets: Vec::new(),
                    touched_nets,
                    touched_gates: vec![*gate],
                })
            }
            EditOp::DeMorgan { gate, inv_cin_ff } => {
                let old_inputs = circuit.gate(*gate).inputs().to_vec();
                let y = circuit.gate(*gate).output();
                let edit = circuit.demorgan_gate(*gate)?;
                let mut new_gates = edit.input_invs.clone();
                new_gates.push(edit.output_inv);
                let mut new_nets = edit.input_nets.clone();
                new_nets.push(edit.inner_net);
                let mut touched_nets = old_inputs;
                touched_nets.extend_from_slice(&new_nets);
                touched_nets.push(y);
                touched_nets.sort_unstable();
                touched_nets.dedup();
                Ok(AppliedEdit {
                    new_gate_cin_ff: vec![*inv_cin_ff; new_gates.len()],
                    new_gates,
                    new_nets,
                    touched_nets,
                    touched_gates: vec![*gate],
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nor_into_fanout() -> (Circuit, GateId, NetId, Vec<GateId>) {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let y = c.add_gate(CellKind::Nor2, &[a, b], "y").unwrap();
        let g = c.driver_gate(y).unwrap();
        let mut sinks = Vec::new();
        for i in 0..3 {
            let s = c.add_gate(CellKind::Inv, &[y], format!("s{i}")).unwrap();
            sinks.push(c.driver_gate(s).unwrap());
            c.mark_output(s);
        }
        (c, g, y, sinks)
    }

    #[test]
    fn plan_applies_ops_in_order_and_logs_ids() {
        let (mut c, g, y, sinks) = nor_into_fanout();
        let gates_before = c.gate_count();
        let mut plan = EditPlan::new();
        plan.push(EditOp::InsertBuffer {
            net: y,
            loads: vec![(sinks[1], 0), (sinks[2], 0)],
            stage_cin_ff: [1.0, 4.0],
        });
        plan.push(EditOp::DeMorgan {
            gate: g,
            inv_cin_ff: 1.0,
        });
        let applied = plan.apply_to(&mut c).unwrap();
        assert_eq!(applied.len(), 2);
        assert_eq!(applied[0].new_gates.len(), 2);
        assert_eq!(applied[0].new_gate_cin_ff, vec![1.0, 4.0]);
        assert_eq!(applied[1].new_gates.len(), 3); // 2 input invs + output inv
                                                   // New ids are dense and append-only.
        let all_new: Vec<usize> = applied
            .iter()
            .flat_map(|a| a.new_gates.iter().map(|g| g.index()))
            .collect();
        assert_eq!(
            all_new,
            (gates_before..gates_before + 5).collect::<Vec<_>>()
        );
        c.validate().unwrap();
    }

    #[test]
    fn buffer_then_demorgan_preserves_all_outputs() {
        let (mut c, g, y, sinks) = nor_into_fanout();
        let reference = c.clone();
        let plan: EditPlan = vec![
            EditOp::InsertBuffer {
                net: y,
                loads: vec![(sinks[0], 0)],
                stage_cin_ff: [1.0, 1.0],
            },
            EditOp::DeMorgan {
                gate: g,
                inv_cin_ff: 1.0,
            },
        ]
        .into();
        plan.apply_to(&mut c).unwrap();
        for pattern in 0..4u32 {
            let values = [("a", pattern & 1 == 1), ("b", pattern & 2 == 2)]
                .into_iter()
                .collect();
            assert_eq!(
                reference.evaluate(&values).unwrap(),
                c.evaluate(&values).unwrap(),
                "pattern {pattern:b}"
            );
        }
    }

    #[test]
    fn failing_op_reports_its_error() {
        let (mut c, _, y, sinks) = nor_into_fanout();
        let plan: EditPlan = vec![EditOp::InsertBuffer {
            net: y,
            loads: vec![(sinks[0], 3)],
            stage_cin_ff: [1.0, 1.0],
        }]
        .into();
        assert!(matches!(
            plan.apply_to(&mut c),
            Err(NetlistError::UnsupportedEdit(_))
        ));
    }

    #[test]
    fn replace_gate_op_logs_old_and_new_nets() {
        let (mut c, g, y, _) = nor_into_fanout();
        let a = c.primary_inputs()[0];
        let plan: EditPlan = vec![EditOp::ReplaceGate {
            gate: g,
            kind: CellKind::Nand2,
            inputs: vec![a, a],
        }]
        .into();
        let applied = plan.apply_to(&mut c).unwrap();
        assert!(applied[0].new_gates.is_empty());
        assert!(applied[0].touched_nets.contains(&y));
        assert!(applied[0].touched_nets.contains(&a));
        assert_eq!(applied[0].touched_gates, vec![g]);
        c.validate().unwrap();
    }
}
