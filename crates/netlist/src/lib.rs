//! Gate-level netlist substrate for the POPS optimization protocol.
//!
//! This crate provides everything the DATE 2005 paper assumes as its design
//! representation:
//!
//! * a static CMOS [`cell::CellKind`] library (inverters, buffers,
//!   NAND/NOR/AND/OR of 2–4 inputs, XOR/XNOR),
//! * an arena-based combinational [`circuit::Circuit`] graph,
//! * ISCAS'85 [`bench_format`] (`.bench`) parsing and writing,
//! * structural [`builders`] (ripple-carry adders, inverter chains, the
//!   paper's 11/13-gate arrays),
//! * a seeded, deterministic ISCAS'85-like benchmark [`suite`] whose
//!   critical-path profiles match the circuits evaluated in the paper.
//!
//! # Example
//!
//! ```
//! use pops_netlist::prelude::*;
//!
//! # fn main() -> Result<(), NetlistError> {
//! let mut c = Circuit::new("toy");
//! let a = c.add_input("a");
//! let b = c.add_input("b");
//! let n = c.add_gate(CellKind::Nand2, &[a, b], "n")?;
//! let y = c.add_gate(CellKind::Inv, &[n], "y")?;
//! c.mark_output(y);
//! assert_eq!(c.gate_count(), 2);
//! // NAND followed by INV behaves as AND:
//! let out = c.evaluate(&[("a", true), ("b", true)].into_iter().collect())?;
//! assert_eq!(out["y"], true);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_format;
pub mod builders;
pub mod cell;
pub mod circuit;
pub mod error;
pub mod rng;
pub mod stats;
pub mod suite;
pub mod surgery;

pub use cell::{CellKind, VtClass};
pub use circuit::{BufferInsertion, Circuit, DeMorganEdit, Gate, GateId, Net, NetDriver, NetId};
pub use error::NetlistError;
pub use surgery::{AppliedEdit, EditOp, EditPlan};

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::bench_format::{parse_bench, write_bench};
    pub use crate::cell::CellKind;
    pub use crate::circuit::{Circuit, Gate, GateId, Net, NetDriver, NetId};
    pub use crate::error::NetlistError;
    pub use crate::suite::{self, BenchmarkSuite, CircuitProfile};
    pub use crate::surgery::{AppliedEdit, EditOp, EditPlan};
}
