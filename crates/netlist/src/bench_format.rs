//! ISCAS'85 `.bench` format reader and writer.
//!
//! The `.bench` dialect accepted here is the common combinational subset:
//!
//! ```text
//! # c17 — smallest ISCAS'85 benchmark
//! INPUT(1)
//! INPUT(2)
//! OUTPUT(22)
//! 10 = NAND(1, 3)
//! 22 = NAND(10, 16)
//! ```
//!
//! Sequential elements (`DFF`) are rejected — the paper optimizes
//! combinational paths between latches, so netlists handed to the tool are
//! already latch-bounded.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::cell::CellKind;
use crate::circuit::Circuit;
use crate::error::NetlistError;

/// Parse `.bench` text into a [`Circuit`].
///
/// Net declaration order is preserved; forward references are allowed (a
/// gate may use a net defined later in the file), as in the original
/// benchmark distribution.
///
/// # Errors
///
/// [`NetlistError::BenchSyntax`] for malformed lines,
/// [`NetlistError::UnknownCell`] for unsupported operators, and the usual
/// structural errors (multiple drivers, cycles) from circuit construction.
///
/// # Example
///
/// ```
/// use pops_netlist::bench_format::parse_bench;
///
/// # fn main() -> Result<(), pops_netlist::NetlistError> {
/// let c = parse_bench(
///     "toy",
///     "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n",
/// )?;
/// assert_eq!(c.gate_count(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse_bench(name: &str, text: &str) -> Result<Circuit, NetlistError> {
    struct PendingGate {
        line: usize,
        op: String,
        operands: Vec<String>,
        output: String,
    }

    let mut inputs: Vec<(usize, String)> = Vec::new();
    let mut outputs: Vec<(usize, String)> = Vec::new();
    let mut pending: Vec<PendingGate> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let stripped = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        }
        .trim();
        if stripped.is_empty() {
            continue;
        }
        let syntax = |message: String| NetlistError::BenchSyntax { line, message };

        if let Some(rest) = strip_directive(stripped, "INPUT", line) {
            inputs.push((line, rest?.to_string()));
        } else if let Some(rest) = strip_directive(stripped, "OUTPUT", line) {
            outputs.push((line, rest?.to_string()));
        } else if let Some(eq) = stripped.find('=') {
            let output = stripped[..eq].trim();
            let rhs = stripped[eq + 1..].trim();
            if output.is_empty() {
                return Err(syntax("missing output name before `=`".into()));
            }
            let open = rhs
                .find('(')
                .ok_or_else(|| syntax(format!("expected `OP(...)`, got `{rhs}`")))?;
            if !rhs.ends_with(')') {
                return Err(syntax(format!("missing closing `)` in `{rhs}`")));
            }
            let op = rhs[..open].trim().to_string();
            let operands: Vec<String> = rhs[open + 1..rhs.len() - 1]
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if operands.is_empty() {
                return Err(syntax(format!("gate `{output}` has no operands")));
            }
            if op.eq_ignore_ascii_case("DFF") {
                return Err(syntax(
                    "sequential element DFF not supported; supply latch-bounded \
                     combinational logic"
                        .into(),
                ));
            }
            pending.push(PendingGate {
                line,
                op,
                operands,
                output: output.to_string(),
            });
        } else {
            return Err(syntax(format!("unrecognized statement `{stripped}`")));
        }
    }

    let mut circuit = Circuit::new(name);
    let mut declared: HashMap<String, crate::circuit::NetId> = HashMap::new();
    for (line, input) in &inputs {
        if declared.contains_key(input) {
            return Err(NetlistError::BenchSyntax {
                line: *line,
                message: format!("input `{input}` declared twice"),
            });
        }
        let id = circuit.add_input(input.clone());
        declared.insert(input.clone(), id);
    }
    // Pre-declare every gate output so forward references resolve.
    for gate in &pending {
        if declared.contains_key(&gate.output) {
            return Err(NetlistError::BenchSyntax {
                line: gate.line,
                message: format!("net `{}` driven twice", gate.output),
            });
        }
        let id = circuit.add_net(gate.output.clone());
        declared.insert(gate.output.clone(), id);
    }
    for gate in &pending {
        let kind = CellKind::from_op(&gate.op, gate.operands.len())?;
        let ins: Result<Vec<_>, _> = gate
            .operands
            .iter()
            .map(|o| {
                declared
                    .get(o)
                    .copied()
                    .ok_or_else(|| NetlistError::UndefinedNet(o.clone()))
            })
            .collect();
        circuit.add_gate_driving(kind, &ins?, declared[&gate.output])?;
    }
    for (line, output) in &outputs {
        match declared.get(output) {
            Some(&id) => circuit.mark_output(id),
            None => {
                return Err(NetlistError::BenchSyntax {
                    line: *line,
                    message: format!("OUTPUT references undefined net `{output}`"),
                })
            }
        }
    }
    circuit.validate()?;
    Ok(circuit)
}

fn strip_directive<'a>(
    line: &'a str,
    keyword: &str,
    lineno: usize,
) -> Option<Result<&'a str, NetlistError>> {
    let upper = line.to_ascii_uppercase();
    if !upper.starts_with(keyword) {
        return None;
    }
    let rest = line[keyword.len()..].trim();
    if let Some(inner) = rest.strip_prefix('(').and_then(|r| r.strip_suffix(')')) {
        let inner = inner.trim();
        if inner.is_empty() {
            return Some(Err(NetlistError::BenchSyntax {
                line: lineno,
                message: format!("{keyword} with empty name"),
            }));
        }
        Some(Ok(inner))
    } else {
        Some(Err(NetlistError::BenchSyntax {
            line: lineno,
            message: format!("malformed {keyword} directive: `{line}`"),
        }))
    }
}

/// Serialize a [`Circuit`] to `.bench` text.
///
/// The output parses back (`parse_bench`) to a structurally identical
/// circuit: same inputs/outputs, same gates in the same net-name space.
///
/// # Example
///
/// ```
/// use pops_netlist::bench_format::{parse_bench, write_bench};
///
/// # fn main() -> Result<(), pops_netlist::NetlistError> {
/// let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
/// let c = parse_bench("t", src)?;
/// let round = parse_bench("t", &write_bench(&c))?;
/// assert_eq!(round.gate_count(), c.gate_count());
/// # Ok(())
/// # }
/// ```
pub fn write_bench(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", circuit.name());
    let _ = writeln!(
        out,
        "# {} inputs, {} outputs, {} gates",
        circuit.primary_inputs().len(),
        circuit.primary_outputs().len(),
        circuit.gate_count()
    );
    for &n in circuit.primary_inputs() {
        let _ = writeln!(out, "INPUT({})", circuit.net(n).name());
    }
    for &n in circuit.primary_outputs() {
        let _ = writeln!(out, "OUTPUT({})", circuit.net(n).name());
    }
    // Emit in topological order so humans can read the file top-down.
    let order = circuit
        .topo_order()
        .expect("write_bench requires an acyclic circuit");
    for gid in order {
        let gate = circuit.gate(gid);
        let operands: Vec<&str> = gate
            .inputs()
            .iter()
            .map(|&n| circuit.net(n).name())
            .collect();
        let _ = writeln!(
            out,
            "{} = {}({})",
            circuit.net(gate.output()).name(),
            gate.kind().name(),
            operands.join(", ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    const C17: &str = "\
# c17 ISCAS'85
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    #[test]
    fn parses_c17() {
        let c = parse_bench("c17", C17).unwrap();
        assert_eq!(c.gate_count(), 6);
        assert_eq!(c.primary_inputs().len(), 5);
        assert_eq!(c.primary_outputs().len(), 2);
        assert_eq!(c.depth().unwrap(), 3);
    }

    #[test]
    fn c17_functional_check() {
        let c = parse_bench("c17", C17).unwrap();
        // Reference: 22 = !( !(1&3) & !(2 & !(3&6)) )
        let eval = |v1: bool, v2: bool, v3: bool, v6: bool, v7: bool| {
            let vals: HashMap<&str, bool> = [("1", v1), ("2", v2), ("3", v3), ("6", v6), ("7", v7)]
                .into_iter()
                .collect();
            c.evaluate(&vals).unwrap()
        };
        for bits in 0..32u32 {
            let b = |i: u32| bits >> i & 1 == 1;
            let (v1, v2, v3, v6, v7) = (b(0), b(1), b(2), b(3), b(4));
            let n10 = !(v1 && v3);
            let n11 = !(v3 && v6);
            let n16 = !(v2 && n11);
            let n19 = !(n11 && v7);
            let out = eval(v1, v2, v3, v6, v7);
            assert_eq!(out["22"], !(n10 && n16));
            assert_eq!(out["23"], !(n16 && n19));
        }
    }

    #[test]
    fn round_trip_preserves_structure_and_function() {
        let c = parse_bench("c17", C17).unwrap();
        let text = write_bench(&c);
        let r = parse_bench("c17", &text).unwrap();
        assert_eq!(r.gate_count(), c.gate_count());
        assert_eq!(r.primary_inputs().len(), c.primary_inputs().len());
        assert_eq!(r.primary_outputs().len(), c.primary_outputs().len());
        for bits in 0..32u32 {
            let b = |i: u32| bits >> i & 1 == 1;
            let vals: HashMap<&str, bool> = [
                ("1", b(0)),
                ("2", b(1)),
                ("3", b(2)),
                ("6", b(3)),
                ("7", b(4)),
            ]
            .into_iter()
            .collect();
            assert_eq!(c.evaluate(&vals).unwrap(), r.evaluate(&vals).unwrap());
        }
    }

    #[test]
    fn forward_references_are_accepted() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(m)\nm = NOT(a)\n";
        let c = parse_bench("fwd", src).unwrap();
        assert_eq!(c.gate_count(), 2);
        assert_eq!(c.depth().unwrap(), 2);
    }

    #[test]
    fn rejects_dff() {
        let src = "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n";
        let err = parse_bench("seq", src).unwrap_err();
        assert!(matches!(err, NetlistError::BenchSyntax { .. }), "{err}");
    }

    #[test]
    fn rejects_double_drive() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n";
        let err = parse_bench("dd", src).unwrap_err();
        assert!(matches!(err, NetlistError::BenchSyntax { .. }), "{err}");
    }

    #[test]
    fn rejects_unknown_operator() {
        let src = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = MAJ(a, b, c)\n";
        let err = parse_bench("maj", src).unwrap_err();
        assert!(matches!(err, NetlistError::UnknownCell { .. }), "{err}");
    }

    #[test]
    fn rejects_missing_paren() {
        let err = parse_bench("bad", "INPUT(a)\ny = NOT a\n").unwrap_err();
        assert!(matches!(err, NetlistError::BenchSyntax { .. }));
    }

    #[test]
    fn rejects_undefined_output() {
        let err = parse_bench("bad", "INPUT(a)\nOUTPUT(nope)\n").unwrap_err();
        assert!(matches!(err, NetlistError::BenchSyntax { .. }));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "\n# hello\nINPUT(a)  # trailing\n\nOUTPUT(y)\ny = NOT(a)\n";
        let c = parse_bench("c", src).unwrap();
        assert_eq!(c.gate_count(), 1);
    }
}
