//! Error types for netlist construction, validation and parsing.

use std::error::Error;
use std::fmt;

/// Errors produced while building, validating or parsing netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// An operator name / arity combination not present in the library.
    UnknownCell {
        /// Operator as written (e.g. `"MAJ"`).
        op: String,
        /// Number of operands supplied.
        arity: usize,
    },
    /// A gate was declared with the wrong number of inputs for its cell.
    ArityMismatch {
        /// The cell kind involved.
        cell: String,
        /// Inputs the cell expects.
        expected: usize,
        /// Inputs actually supplied.
        got: usize,
    },
    /// A net name was referenced before being declared.
    UndefinedNet(String),
    /// Two drivers were attached to the same net.
    MultipleDrivers(String),
    /// A net name was declared twice.
    DuplicateNet(String),
    /// The combinational graph contains a cycle.
    CombinationalCycle,
    /// Syntax error while parsing a `.bench` file.
    BenchSyntax {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An evaluation was requested with a missing primary-input value.
    MissingInputValue(String),
    /// A referenced id is out of range for this circuit.
    InvalidId(String),
    /// A netlist surgery operation is not applicable to its target
    /// (e.g. De Morgan on a cell without a series-stack dual, or a
    /// buffer insertion naming a pin that does not load the net).
    UnsupportedEdit(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownCell { op, arity } => {
                write!(f, "unknown cell `{op}` with {arity} inputs")
            }
            NetlistError::ArityMismatch {
                cell,
                expected,
                got,
            } => {
                write!(f, "cell {cell} expects {expected} inputs, got {got}")
            }
            NetlistError::UndefinedNet(name) => write!(f, "undefined net `{name}`"),
            NetlistError::MultipleDrivers(name) => {
                write!(f, "net `{name}` has more than one driver")
            }
            NetlistError::DuplicateNet(name) => write!(f, "net `{name}` declared twice"),
            NetlistError::CombinationalCycle => write!(f, "combinational cycle detected"),
            NetlistError::BenchSyntax { line, message } => {
                write!(f, "bench syntax error at line {line}: {message}")
            }
            NetlistError::MissingInputValue(name) => {
                write!(f, "no value provided for primary input `{name}`")
            }
            NetlistError::InvalidId(what) => write!(f, "invalid id: {what}"),
            NetlistError::UnsupportedEdit(what) => write!(f, "unsupported edit: {what}"),
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let samples: Vec<NetlistError> = vec![
            NetlistError::UnknownCell {
                op: "MAJ".into(),
                arity: 3,
            },
            NetlistError::ArityMismatch {
                cell: "NAND2".into(),
                expected: 2,
                got: 3,
            },
            NetlistError::UndefinedNet("x".into()),
            NetlistError::MultipleDrivers("x".into()),
            NetlistError::DuplicateNet("x".into()),
            NetlistError::CombinationalCycle,
            NetlistError::BenchSyntax {
                line: 3,
                message: "bad token".into(),
            },
            NetlistError::MissingInputValue("a".into()),
            NetlistError::InvalidId("gate 42".into()),
        ];
        for e in samples {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'), "no trailing punctuation: {s}");
        }
    }
}
