//! Deterministic ISCAS'85-like benchmark suite.
//!
//! The paper evaluates POPS on the longest path of each ISCAS'85 circuit
//! (plus a 16-bit adder and a small `fpd` block). Its Table 1 reports the
//! number of gates on each optimized path. Since the original 0.25 µm
//! technology-mapped netlists are not available, this module synthesizes,
//! from a fixed seed, a layered DAG per circuit whose
//!
//! * **critical-path length equals the paper's published path gate count**
//!   (the generator embeds a "spine" of exactly that many levels and caps
//!   the layer count at the same value, so the longest path is exact),
//! * total gate count and I/O counts match the real circuit's published
//!   statistics,
//! * cell mix reflects the real circuit's character (XOR-rich c499,
//!   NOR+INV c6288 multiplier, NAND-mapped c1355, …),
//! * spine nets carry realistic off-path fan-out (side loads are biased to
//!   tap spine nets), which is what makes sizing-vs-buffering interesting.
//!
//! Generation is pure (SplitMix64, no external RNG), so every experiment
//! in the repository is exactly reproducible.
//!
//! # Example
//!
//! ```
//! use pops_netlist::suite;
//!
//! let c432 = suite::circuit("c432").expect("known benchmark");
//! assert_eq!(c432.depth().unwrap(), 29); // Table 1: 29 gates on the path
//! ```

use crate::cell::CellKind;
use crate::circuit::{Circuit, NetDriver, NetId};
use crate::rng::SplitMix64;

/// Generation profile for one benchmark circuit.
#[derive(Debug, Clone)]
pub struct CircuitProfile {
    /// Benchmark name (`"c432"`, `"adder16"`, …).
    pub name: &'static str,
    /// Gates on the critical path — the paper's Table 1 "Gate nb" column.
    pub path_gates: usize,
    /// Total gate count (published size of the real circuit).
    pub total_gates: usize,
    /// Primary input count.
    pub n_inputs: usize,
    /// Primary output count of the real circuit (generation hint; actual
    /// outputs are all sink nets).
    pub n_outputs: usize,
    /// Weighted cell mix.
    pub gate_mix: &'static [(CellKind, u32)],
    /// Seed for the deterministic generator.
    pub seed: u64,
}

use CellKind::*;

/// The eleven circuits evaluated in the paper (Tables 1/3, Figs. 2/4/8).
pub const PROFILES: &[CircuitProfile] = &[
    CircuitProfile {
        name: "adder16",
        path_gates: 99,
        total_gates: 320,
        n_inputs: 33,
        n_outputs: 17,
        gate_mix: &[(Nand2, 60), (Inv, 20), (Nor2, 12), (And2, 8)],
        seed: 0xADD3_1600,
    },
    CircuitProfile {
        name: "fpd",
        path_gates: 14,
        total_gates: 120,
        n_inputs: 16,
        n_outputs: 8,
        gate_mix: &[(Nand2, 40), (Nor2, 30), (Inv, 30)],
        seed: 0xF9D0_0001,
    },
    CircuitProfile {
        name: "c432",
        path_gates: 29,
        total_gates: 160,
        n_inputs: 36,
        n_outputs: 7,
        gate_mix: &[
            (Nor2, 30),
            (Nor3, 12),
            (Inv, 18),
            (Nand2, 20),
            (And2, 10),
            (Xor2, 10),
        ],
        seed: 0xC432,
    },
    CircuitProfile {
        name: "c499",
        path_gates: 29,
        total_gates: 202,
        n_inputs: 41,
        n_outputs: 32,
        gate_mix: &[(Xor2, 40), (Nand2, 20), (Inv, 20), (Nor2, 10), (And2, 10)],
        seed: 0xC499,
    },
    CircuitProfile {
        name: "c880",
        path_gates: 28,
        total_gates: 383,
        n_inputs: 60,
        n_outputs: 26,
        gate_mix: &[
            (Nand2, 30),
            (Nor2, 15),
            (And2, 15),
            (Inv, 20),
            (Nand3, 10),
            (Or2, 10),
        ],
        seed: 0xC880,
    },
    CircuitProfile {
        name: "c1355",
        path_gates: 30,
        total_gates: 546,
        n_inputs: 41,
        n_outputs: 32,
        gate_mix: &[(Nand2, 55), (Inv, 25), (Nor2, 15), (And2, 5)],
        seed: 0xC1355,
    },
    CircuitProfile {
        name: "c1908",
        path_gates: 44,
        total_gates: 880,
        n_inputs: 33,
        n_outputs: 25,
        gate_mix: &[(Nand2, 45), (Inv, 25), (Nor2, 15), (Nand3, 10), (Buf, 5)],
        seed: 0xC1908,
    },
    CircuitProfile {
        name: "c3540",
        path_gates: 58,
        total_gates: 1669,
        n_inputs: 50,
        n_outputs: 22,
        gate_mix: &[
            (Nand2, 28),
            (Nor2, 17),
            (And3, 8),
            (Inv, 22),
            (Or2, 10),
            (Nand3, 10),
            (Xor2, 5),
        ],
        seed: 0xC3540,
    },
    CircuitProfile {
        name: "c5315",
        path_gates: 60,
        total_gates: 2307,
        n_inputs: 178,
        n_outputs: 123,
        gate_mix: &[
            (Nand2, 32),
            (Nor2, 18),
            (Inv, 22),
            (And2, 10),
            (Or2, 10),
            (Nand3, 5),
            (Nor3, 3),
        ],
        seed: 0xC5315,
    },
    CircuitProfile {
        name: "c6288",
        path_gates: 116,
        total_gates: 2416,
        n_inputs: 32,
        n_outputs: 32,
        gate_mix: &[(Nor2, 55), (Inv, 25), (And2, 20)],
        seed: 0xC6288,
    },
    CircuitProfile {
        name: "c7552",
        path_gates: 47,
        total_gates: 3512,
        n_inputs: 207,
        n_outputs: 108,
        gate_mix: &[
            (Nand2, 38),
            (Inv, 25),
            (Nor2, 15),
            (And2, 10),
            (Xor2, 7),
            (Buf, 5),
        ],
        seed: 0xC7552,
    },
];

/// The benchmark suite: profile lookup and construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BenchmarkSuite;

impl BenchmarkSuite {
    /// Create a suite handle.
    pub fn new() -> Self {
        BenchmarkSuite
    }

    /// All profiles, in the paper's presentation order.
    pub fn profiles(&self) -> &'static [CircuitProfile] {
        PROFILES
    }

    /// Look up a profile by name.
    pub fn profile(&self, name: &str) -> Option<&'static CircuitProfile> {
        PROFILES.iter().find(|p| p.name == name)
    }

    /// Build a circuit by benchmark name.
    pub fn circuit(&self, name: &str) -> Option<Circuit> {
        self.profile(name).map(build)
    }
}

/// Build a circuit by benchmark name (free-function convenience).
pub fn circuit(name: &str) -> Option<Circuit> {
    BenchmarkSuite::new().circuit(name)
}

/// Names of all benchmarks in presentation order.
pub fn names() -> Vec<&'static str> {
    PROFILES.iter().map(|p| p.name).collect()
}

/// A production-scale synthetic size class (built by
/// [`crate::builders::synthetic_fabric`]): an array multiplier plus a
/// carry-select adder plus a random-logic cloud composing to exactly
/// `target_gates` gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalingClass {
    /// Class name (`"synth10k"`, …).
    pub name: &'static str,
    /// Exact gate count of the generated fabric.
    pub target_gates: usize,
    /// Seed for the deterministic generator.
    pub seed: u64,
}

/// Scaling size classes used by the `sta_scaling` bench and the parallel
/// differential tests. Unlike [`PROFILES`], these model no published
/// benchmark — they exist to exercise the engine at 10k–1M gates.
pub const SCALING_CLASSES: &[ScalingClass] = &[
    ScalingClass {
        name: "synth10k",
        target_gates: 10_000,
        seed: 0x5CA1_E010,
    },
    ScalingClass {
        name: "synth100k",
        target_gates: 100_000,
        seed: 0x5CA1_E100,
    },
    ScalingClass {
        name: "synth1m",
        target_gates: 1_000_000,
        seed: 0x5CA1_E1F0,
    },
];

/// Look up a scaling class by name.
pub fn scaling_class(name: &str) -> Option<&'static ScalingClass> {
    SCALING_CLASSES.iter().find(|c| c.name == name)
}

/// Build a scaling fabric by class name (`"synth10k"`, `"synth100k"`,
/// `"synth1m"`).
pub fn scaling_circuit(name: &str) -> Option<Circuit> {
    scaling_class(name).map(|c| crate::builders::synthetic_fabric(c.name, c.target_gates, c.seed))
}

/// Names of all scaling classes, smallest first.
pub fn scaling_names() -> Vec<&'static str> {
    SCALING_CLASSES.iter().map(|c| c.name).collect()
}

fn pick_kind(rng: &mut SplitMix64, mix: &[(CellKind, u32)]) -> CellKind {
    let weights: Vec<u32> = mix.iter().map(|&(_, w)| w).collect();
    mix[rng.weighted(&weights)].0
}

/// Sample an input net strictly below `layer`.
///
/// `pool[l]` holds the nets created at layer `l` (`pool[0]` = primary
/// inputs). With probability 0.2 a *spine* net is chosen, giving the
/// critical path realistic off-path fan-out.
fn sample_below(rng: &mut SplitMix64, pool: &[Vec<NetId>], spine: &[NetId], layer: usize) -> NetId {
    debug_assert!(layer >= 1);
    if layer >= 2 && !spine.is_empty() && rng.chance(0.2) {
        // Spine nets for layers 1..layer are spine[0..layer-1].
        let hi = (layer - 1).min(spine.len());
        return spine[rng.below(hi)];
    }
    // Recency bias: 60% previous layer, else uniform lower layer.
    let l = if rng.chance(0.6) {
        layer - 1
    } else {
        rng.below(layer)
    };
    let bucket = &pool[l];
    if bucket.is_empty() {
        // Only possible if a layer produced no nets, which the spine
        // prevents; fall back to primary inputs.
        return pool[0][rng.below(pool[0].len())];
    }
    bucket[rng.below(bucket.len())]
}

fn sample_distinct(
    rng: &mut SplitMix64,
    pool: &[Vec<NetId>],
    spine: &[NetId],
    layer: usize,
    taken: &[NetId],
) -> NetId {
    for _ in 0..8 {
        let candidate = sample_below(rng, pool, spine, layer);
        if !taken.contains(&candidate) {
            return candidate;
        }
    }
    sample_below(rng, pool, spine, layer)
}

/// Deterministically build the circuit described by `profile`.
///
/// Postconditions (checked by the module tests):
/// * `circuit.depth() == profile.path_gates`,
/// * `circuit.gate_count() == max(profile.total_gates, profile.path_gates)`,
/// * the net `spine{path_gates}` is on a longest path ending at an output.
pub fn build(profile: &CircuitProfile) -> Circuit {
    let mut rng = SplitMix64::new(profile.seed);
    let mut c = Circuit::new(profile.name);
    let pis: Vec<NetId> = (0..profile.n_inputs)
        .map(|i| c.add_input(format!("pi{i}")))
        .collect();

    let levels = profile.path_gates;
    let fillers_total = profile.total_gates.saturating_sub(levels);
    let mut fillers_at = vec![fillers_total / levels; levels];
    for slot in fillers_at.iter_mut().take(fillers_total % levels) {
        *slot += 1;
    }

    let mut pool: Vec<Vec<NetId>> = Vec::with_capacity(levels + 1);
    pool.push(pis.clone());
    let mut spine: Vec<NetId> = Vec::with_capacity(levels);

    for layer in 1..=levels {
        let mut created = Vec::new();

        // The spine gate: guarantees a path of exactly `levels` gates.
        let kind = pick_kind(&mut rng, profile.gate_mix);
        let mut inputs = Vec::with_capacity(kind.num_inputs());
        let main_in = if layer == 1 {
            pis[rng.below(pis.len())]
        } else {
            spine[layer - 2]
        };
        inputs.push(main_in);
        while inputs.len() < kind.num_inputs() {
            inputs.push(sample_distinct(&mut rng, &pool, &spine, layer, &inputs));
        }
        let out = c
            .add_gate(kind, &inputs, format!("spine{layer}"))
            .expect("generator produces valid arities");
        spine.push(out);
        created.push(out);

        // Filler gates at this layer.
        for f in 0..fillers_at[layer - 1] {
            let kind = pick_kind(&mut rng, profile.gate_mix);
            let mut inputs: Vec<NetId> = Vec::with_capacity(kind.num_inputs());
            while inputs.len() < kind.num_inputs() {
                inputs.push(sample_distinct(&mut rng, &pool, &spine, layer, &inputs));
            }
            let out = c
                .add_gate(kind, &inputs, format!("f{layer}_{f}"))
                .expect("generator produces valid arities");
            created.push(out);
        }
        pool.push(created);
    }

    // Every sink net becomes a primary output (the real benchmarks have no
    // dangling internal nets). This always includes the spine end.
    let sinks: Vec<NetId> = c
        .net_ids()
        .filter(|&n| {
            c.net(n).loads().is_empty() && matches!(c.net(n).driver(), Some(NetDriver::Gate(_)))
        })
        .collect();
    for n in sinks {
        c.mark_output(n);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_build_and_validate() {
        for p in PROFILES {
            let c = build(p);
            c.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn depth_matches_paper_path_gate_counts() {
        for p in PROFILES {
            let c = build(p);
            assert_eq!(
                c.depth().unwrap(),
                p.path_gates,
                "{} should have a {}-gate critical path",
                p.name,
                p.path_gates
            );
        }
    }

    #[test]
    fn gate_counts_match_profiles() {
        for p in PROFILES {
            let c = build(p);
            assert_eq!(
                c.gate_count(),
                p.total_gates.max(p.path_gates),
                "{}",
                p.name
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = circuit("c880").unwrap();
        let b = circuit("c880").unwrap();
        assert_eq!(a.gate_count(), b.gate_count());
        for (ga, gb) in a.gate_ids().zip(b.gate_ids()) {
            assert_eq!(a.gate(ga).kind(), b.gate(gb).kind());
            assert_eq!(a.gate(ga).inputs(), b.gate(gb).inputs());
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(circuit("c6288").is_some());
        assert!(circuit("c9999").is_none());
        assert_eq!(names().len(), PROFILES.len());
        let suite = BenchmarkSuite::new();
        assert_eq!(suite.profile("fpd").unwrap().path_gates, 14);
    }

    #[test]
    fn spine_end_is_an_output() {
        for p in PROFILES {
            let c = build(p);
            let spine_end = c
                .net_by_name(&format!("spine{}", p.path_gates))
                .expect("spine end net exists");
            assert!(c.net(spine_end).is_output(), "{}", p.name);
        }
    }

    #[test]
    fn spine_nets_carry_off_path_fanout() {
        // The generator biases side sampling toward spine nets; on a large
        // circuit some spine net must have fanout > 1.
        let c = circuit("c7552").unwrap();
        let multi = (1..=47)
            .filter_map(|l| c.net_by_name(&format!("spine{l}")))
            .filter(|&n| c.net(n).fanout() > 1)
            .count();
        assert!(
            multi > 5,
            "expected off-path loading on the spine, got {multi}"
        );
    }

    #[test]
    fn cell_mix_respects_profile_support() {
        for p in PROFILES {
            let c = build(p);
            let allowed: Vec<CellKind> = p.gate_mix.iter().map(|&(k, _)| k).collect();
            for (kind, _) in c.cell_histogram() {
                assert!(allowed.contains(&kind), "{}: unexpected {kind}", p.name);
            }
        }
    }

    #[test]
    fn scaling_classes_build_exactly_and_validate() {
        let c = scaling_circuit("synth10k").unwrap();
        assert_eq!(c.gate_count(), 10_000);
        c.validate().unwrap();
        assert!(scaling_circuit("synth2g").is_none());
        assert_eq!(scaling_names(), ["synth10k", "synth100k", "synth1m"]);
        assert_eq!(scaling_class("synth1m").unwrap().target_gates, 1_000_000);
    }

    #[test]
    fn evaluation_runs_on_generated_circuits() {
        let c = circuit("fpd").unwrap();
        let values: std::collections::HashMap<&str, bool> = c
            .primary_inputs()
            .iter()
            .enumerate()
            .map(|(i, &n)| (c.net(n).name(), i % 2 == 0))
            .collect();
        let out = c.evaluate(&values).unwrap();
        assert!(!out.is_empty());
    }
}
