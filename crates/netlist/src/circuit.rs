//! Arena-based combinational circuit graph.
//!
//! A [`Circuit`] owns two arenas — nets and gates — indexed by the opaque
//! ids [`NetId`] and [`GateId`]. Every net has at most one driver (a
//! primary input or a gate output) and any number of loads (gate input
//! pins or primary outputs). The graph must be acyclic; [`Circuit::topo_order`]
//! both checks this and provides the evaluation/timing order used by the
//! STA and optimizer crates.

use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

use crate::cell::CellKind;
use crate::error::NetlistError;

/// Opaque index of a net within a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

/// Opaque index of a gate within a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub(crate) u32);

impl NetId {
    /// Raw index (stable for the lifetime of the circuit).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl GateId {
    /// Raw index (stable for the lifetime of the circuit).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetDriver {
    /// The net is a primary input of the circuit.
    PrimaryInput,
    /// The net is driven by the output of a gate.
    Gate(GateId),
}

/// A net: one driver, many loads.
#[derive(Debug, Clone)]
pub struct Net {
    name: String,
    driver: Option<NetDriver>,
    /// `(gate, pin index)` pairs loading this net.
    loads: Vec<(GateId, usize)>,
    is_output: bool,
}

impl Net {
    /// Net name as declared.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The driver, if the net is driven yet.
    pub fn driver(&self) -> Option<NetDriver> {
        self.driver
    }

    /// Gate input pins loading this net.
    pub fn loads(&self) -> &[(GateId, usize)] {
        &self.loads
    }

    /// Whether the net is marked as a primary output.
    pub fn is_output(&self) -> bool {
        self.is_output
    }

    /// Fan-out count (number of gate input pins driven).
    pub fn fanout(&self) -> usize {
        self.loads.len()
    }
}

/// A gate instance: a cell plus its net connections.
#[derive(Debug, Clone)]
pub struct Gate {
    kind: CellKind,
    inputs: Vec<NetId>,
    output: NetId,
}

impl Gate {
    /// The library cell implementing this gate.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Input nets, in pin order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Output net.
    pub fn output(&self) -> NetId {
        self.output
    }
}

/// A combinational gate-level circuit.
///
/// # Example
///
/// ```
/// use pops_netlist::{CellKind, Circuit};
///
/// # fn main() -> Result<(), pops_netlist::NetlistError> {
/// let mut c = Circuit::new("half_adder");
/// let a = c.add_input("a");
/// let b = c.add_input("b");
/// let s = c.add_gate(CellKind::Xor2, &[a, b], "sum")?;
/// let co = c.add_gate(CellKind::And2, &[a, b], "carry")?;
/// c.mark_output(s);
/// c.mark_output(co);
/// assert_eq!(c.gate_count(), 2);
/// assert_eq!(c.primary_inputs().len(), 2);
/// assert!(c.topo_order().is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Circuit {
    name: String,
    nets: Vec<Net>,
    gates: Vec<Gate>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    by_name: HashMap<String, NetId>,
    /// Cached [`Circuit::topo_order`] result; reset by every structural
    /// mutation so a stale order can never be observed.
    topo_cache: OnceLock<Result<Vec<GateId>, NetlistError>>,
    /// Cached [`Circuit::logic_levels`] result, invalidated likewise.
    levels_cache: OnceLock<Result<Vec<usize>, NetlistError>>,
}

/// Record of one [`Circuit::insert_buffer`]: the Inv→Inv pair and the
/// nets it created.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferInsertion {
    /// First (load-isolating) inverter; its input is the buffered net.
    pub first: GateId,
    /// Second (driving) inverter; it takes over the moved loads.
    pub second: GateId,
    /// Internal net between the two inverters.
    pub mid_net: NetId,
    /// New net carrying the moved load pins, driven by `second`.
    pub out_net: NetId,
}

/// Record of one [`Circuit::demorgan_gate`]: the inverters and nets the
/// rewrite created.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeMorganEdit {
    /// Per-input inverters, in pin order.
    pub input_invs: Vec<GateId>,
    /// Their output nets — the rewired gate's new inputs, in pin order.
    pub input_nets: Vec<NetId>,
    /// New internal net now driven by the rewired (dual) gate.
    pub inner_net: NetId,
    /// Output inverter restoring the original polarity on the original
    /// output net.
    pub output_inv: GateId,
}

impl Circuit {
    /// Create an empty circuit with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Circuit {
            name: name.into(),
            nets: Vec::new(),
            gates: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            by_name: HashMap::new(),
            topo_cache: OnceLock::new(),
            levels_cache: OnceLock::new(),
        }
    }

    /// Drop the memoized topo/level results. Every mutation of gates,
    /// drivers or load pins must call this before returning.
    fn invalidate_structure_caches(&mut self) {
        self.topo_cache = OnceLock::new();
        self.levels_cache = OnceLock::new();
    }

    /// Circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Primary input nets, in declaration order.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary output nets, in declaration order.
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Iterate over all gate ids.
    pub fn gate_ids(&self) -> impl Iterator<Item = GateId> + '_ {
        (0..self.gates.len() as u32).map(GateId)
    }

    /// Iterate over all net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.nets.len() as u32).map(NetId)
    }

    /// Access a gate.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Access a net.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Look a net up by name.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.by_name.get(name).copied()
    }

    /// Create an undriven, unnamed-load net.
    ///
    /// If `name` collides with an existing net, a fresh suffixed name is
    /// generated (netlist builders rely on this for internal nets).
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let mut name = name.into();
        if self.by_name.contains_key(&name) {
            let mut i = 1usize;
            loop {
                let candidate = format!("{name}_{i}");
                if !self.by_name.contains_key(&candidate) {
                    name = candidate;
                    break;
                }
                i += 1;
            }
        }
        let id = NetId(self.nets.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.nets.push(Net {
            name,
            driver: None,
            loads: Vec::new(),
            is_output: false,
        });
        id
    }

    /// Declare a primary input net.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.add_net(name);
        self.nets[id.index()].driver = Some(NetDriver::PrimaryInput);
        self.inputs.push(id);
        self.invalidate_structure_caches();
        id
    }

    /// Add a gate driving a freshly created net named `output_name`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] if `inputs` does not match
    /// the cell's pin count, or [`NetlistError::InvalidId`] if an input net
    /// id is out of range.
    pub fn add_gate(
        &mut self,
        kind: CellKind,
        inputs: &[NetId],
        output_name: impl Into<String>,
    ) -> Result<NetId, NetlistError> {
        let out = self.add_net(output_name);
        self.add_gate_driving(kind, inputs, out)?;
        Ok(out)
    }

    /// Add a gate driving an existing (so far undriven) net.
    ///
    /// # Errors
    ///
    /// As [`Circuit::add_gate`], plus [`NetlistError::MultipleDrivers`] if
    /// `output` already has a driver.
    pub fn add_gate_driving(
        &mut self,
        kind: CellKind,
        inputs: &[NetId],
        output: NetId,
    ) -> Result<GateId, NetlistError> {
        if inputs.len() != kind.num_inputs() {
            return Err(NetlistError::ArityMismatch {
                cell: kind.to_string(),
                expected: kind.num_inputs(),
                got: inputs.len(),
            });
        }
        for &net in inputs.iter().chain(std::iter::once(&output)) {
            if net.index() >= self.nets.len() {
                return Err(NetlistError::InvalidId(format!("net {net}")));
            }
        }
        if self.nets[output.index()].driver.is_some() {
            return Err(NetlistError::MultipleDrivers(
                self.nets[output.index()].name.clone(),
            ));
        }
        let gid = GateId(self.gates.len() as u32);
        for (pin, &net) in inputs.iter().enumerate() {
            self.nets[net.index()].loads.push((gid, pin));
        }
        self.nets[output.index()].driver = Some(NetDriver::Gate(gid));
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
        });
        self.invalidate_structure_caches();
        Ok(gid)
    }

    /// The gate driving a net, if any (`None` for primary inputs and
    /// undriven nets).
    pub fn driver_gate(&self, net: NetId) -> Option<GateId> {
        match self.nets[net.index()].driver {
            Some(NetDriver::Gate(g)) => Some(g),
            _ => None,
        }
    }

    /// Gates loading a net, one entry per connected input pin (a gate
    /// tapping the net on several pins appears once per pin).
    ///
    /// This is the fanout adjacency the incremental timing engine walks
    /// when a net's arrival changes.
    pub fn fanout_gates(&self, net: NetId) -> impl Iterator<Item = GateId> + '_ {
        self.nets[net.index()].loads.iter().map(|&(g, _pin)| g)
    }

    /// Mark a net as a primary output.
    pub fn mark_output(&mut self, net: NetId) {
        if !self.nets[net.index()].is_output {
            self.nets[net.index()].is_output = true;
            self.outputs.push(net);
        }
    }

    // ---- netlist surgery ----
    //
    // The structural write-back primitives: every mutation below keeps
    // the arena append-only (existing `GateId`/`NetId` values stay
    // valid), validates its preconditions *before* touching anything,
    // and invalidates the topo/level caches on success.

    /// Check that every `(gate, pin)` pair currently loads `net`, with
    /// no duplicates. Shared precondition of the pin-moving edits.
    fn check_load_pins(&self, net: NetId, loads: &[(GateId, usize)]) -> Result<(), NetlistError> {
        if loads.is_empty() {
            return Err(NetlistError::UnsupportedEdit(format!(
                "no load pins to move off net `{}`",
                self.nets[net.index()].name
            )));
        }
        for (i, &(g, pin)) in loads.iter().enumerate() {
            if g.index() >= self.gates.len() {
                return Err(NetlistError::InvalidId(format!("gate {g}")));
            }
            let gate = &self.gates[g.index()];
            if pin >= gate.inputs.len() || gate.inputs[pin] != net {
                return Err(NetlistError::UnsupportedEdit(format!(
                    "pin {pin} of {g} does not load net `{}`",
                    self.nets[net.index()].name
                )));
            }
            if loads[..i].contains(&(g, pin)) {
                return Err(NetlistError::UnsupportedEdit(format!(
                    "pin {pin} of {g} listed twice"
                )));
            }
        }
        Ok(())
    }

    /// Move the given load pins of `net` onto a fresh, *undriven* net
    /// and return it. The caller must attach a driver (this is the load
    /// re-homing step of buffer insertion; [`Circuit::insert_buffer`]
    /// does both). Primary-output status stays on the original net.
    ///
    /// # Errors
    ///
    /// [`NetlistError::InvalidId`] for out-of-range ids,
    /// [`NetlistError::UnsupportedEdit`] if `loads` is empty, lists a
    /// pin twice or names a pin that does not load `net`.
    pub fn split_net(
        &mut self,
        net: NetId,
        loads: &[(GateId, usize)],
    ) -> Result<NetId, NetlistError> {
        if net.index() >= self.nets.len() {
            return Err(NetlistError::InvalidId(format!("net {net}")));
        }
        self.check_load_pins(net, loads)?;
        let new = self.add_net(format!("{}_split", self.nets[net.index()].name));
        self.nets[net.index()]
            .loads
            .retain(|pin| !loads.contains(pin));
        for &(g, pin) in loads {
            self.gates[g.index()].inputs[pin] = new;
            self.nets[new.index()].loads.push((g, pin));
        }
        self.invalidate_structure_caches();
        Ok(new)
    }

    /// Insert a polarity-preserving Inv→Inv buffer pair after `net`,
    /// re-homing the given load pins onto the pair's output (the
    /// paper's Fig. 5 load isolation: the relieved driver now sees the
    /// first inverter instead of the moved pins).
    ///
    /// The original net keeps its driver, its remaining loads and its
    /// primary-output status; the moved pins see the same logic value
    /// through the double inversion.
    ///
    /// # Errors
    ///
    /// As [`Circuit::split_net`], plus [`NetlistError::UndefinedNet`]
    /// if `net` has no driver (buffering an undriven net would leave
    /// the pair dangling).
    pub fn insert_buffer(
        &mut self,
        net: NetId,
        loads: &[(GateId, usize)],
    ) -> Result<BufferInsertion, NetlistError> {
        if net.index() >= self.nets.len() {
            return Err(NetlistError::InvalidId(format!("net {net}")));
        }
        if self.nets[net.index()].driver.is_none() {
            return Err(NetlistError::UndefinedNet(
                self.nets[net.index()].name.clone(),
            ));
        }
        let out_net = self.split_net(net, loads)?;
        let mid_net = self.add_net(format!("{}_buf", self.nets[net.index()].name));
        let first = self.add_gate_driving(CellKind::Inv, &[net], mid_net)?;
        let second = self.add_gate_driving(CellKind::Inv, &[mid_net], out_net)?;
        Ok(BufferInsertion {
            first,
            second,
            mid_net,
            out_net,
        })
    }

    /// Whether `target` is reachable from `gate`'s output through the
    /// load/driver adjacency (i.e. `target` lies in `gate`'s transitive
    /// fanout). Used to reject rewirings that would close a cycle.
    fn in_fanout_cone(&self, gate: GateId, target: GateId) -> bool {
        let mut seen = vec![false; self.gates.len()];
        let mut stack = vec![gate];
        seen[gate.index()] = true;
        while let Some(g) = stack.pop() {
            let out = self.gates[g.index()].output;
            for &(load, _) in &self.nets[out.index()].loads {
                if load == target {
                    return true;
                }
                if !seen[load.index()] {
                    seen[load.index()] = true;
                    stack.push(load);
                }
            }
        }
        false
    }

    /// Swap a gate's cell and rewire its input pins; the output net is
    /// untouched. This is the raw replacement primitive — it does *not*
    /// preserve the logic function by itself (see
    /// [`Circuit::demorgan_gate`] for the polarity-correct rewrite).
    ///
    /// All preconditions are validated *before* anything mutates —
    /// including acyclicity: unlike construction-time `add_gate`, the
    /// surgery primitive operates on complete circuits, so undriven
    /// input nets are rejected and a rewiring that would close a
    /// combinational cycle (a new input driven from the gate's own
    /// fanout cone) fails up front instead of poisoning the circuit
    /// for the next [`Circuit::topo_order`].
    ///
    /// # Errors
    ///
    /// [`NetlistError::InvalidId`] for out-of-range ids,
    /// [`NetlistError::ArityMismatch`] if `inputs` does not match the
    /// new cell's pin count, [`NetlistError::UndefinedNet`] for an
    /// undriven input and [`NetlistError::CombinationalCycle`] if the
    /// rewiring would create a cycle.
    pub fn replace_gate(
        &mut self,
        gate: GateId,
        kind: CellKind,
        inputs: &[NetId],
    ) -> Result<(), NetlistError> {
        if gate.index() >= self.gates.len() {
            return Err(NetlistError::InvalidId(format!("gate {gate}")));
        }
        if inputs.len() != kind.num_inputs() {
            return Err(NetlistError::ArityMismatch {
                cell: kind.to_string(),
                expected: kind.num_inputs(),
                got: inputs.len(),
            });
        }
        for &net in inputs {
            if net.index() >= self.nets.len() {
                return Err(NetlistError::InvalidId(format!("net {net}")));
            }
            // Nets already feeding the gate cannot introduce anything
            // new; only genuinely new connections need the checks.
            if self.gates[gate.index()].inputs.contains(&net) {
                continue;
            }
            match self.nets[net.index()].driver {
                None => {
                    return Err(NetlistError::UndefinedNet(
                        self.nets[net.index()].name.clone(),
                    ));
                }
                Some(NetDriver::Gate(d)) => {
                    if d == gate || self.in_fanout_cone(gate, d) {
                        return Err(NetlistError::CombinationalCycle);
                    }
                }
                Some(NetDriver::PrimaryInput) => {}
            }
        }
        let old_inputs = std::mem::take(&mut self.gates[gate.index()].inputs);
        for (pin, &n) in old_inputs.iter().enumerate() {
            self.nets[n.index()]
                .loads
                .retain(|&(g, p)| !(g == gate && p == pin));
        }
        for (pin, &n) in inputs.iter().enumerate() {
            self.nets[n.index()].loads.push((gate, pin));
        }
        let g = &mut self.gates[gate.index()];
        g.kind = kind;
        g.inputs = inputs.to_vec();
        self.invalidate_structure_caches();
        Ok(())
    }

    /// Rewrite a NAND/NOR gate into its De Morgan dual (§4.2 of the
    /// paper): `NORn(a…)` becomes `NANDn(¬a…)` followed by an output
    /// inverter, and vice versa. One inverter is inserted per input,
    /// the gate itself is [`Circuit::replace_gate`]d by its dual onto a
    /// fresh internal net, and the original output net — loads and
    /// primary-output status untouched — is re-driven by the polarity
    /// restoring inverter, so the logic function at the output net (and
    /// everywhere downstream) is preserved exactly.
    ///
    /// # Errors
    ///
    /// [`NetlistError::InvalidId`] for an out-of-range gate and
    /// [`NetlistError::UnsupportedEdit`] for cells without a
    /// series-stack dual (anything outside the NAND/NOR families).
    pub fn demorgan_gate(&mut self, gate: GateId) -> Result<DeMorganEdit, NetlistError> {
        if gate.index() >= self.gates.len() {
            return Err(NetlistError::InvalidId(format!("gate {gate}")));
        }
        let kind = self.gates[gate.index()].kind;
        let Some(dual) = kind.demorgan_dual() else {
            return Err(NetlistError::UnsupportedEdit(format!(
                "{kind} has no De Morgan dual"
            )));
        };
        let old_inputs = self.gates[gate.index()].inputs.clone();
        let y = self.gates[gate.index()].output;

        let mut input_invs = Vec::with_capacity(old_inputs.len());
        let mut input_nets = Vec::with_capacity(old_inputs.len());
        for &a in &old_inputs {
            let na = self.add_net(format!("{}_dm", self.nets[a.index()].name));
            let inv = self.add_gate_driving(CellKind::Inv, &[a], na)?;
            input_invs.push(inv);
            input_nets.push(na);
        }

        // Re-home the gate's output onto a fresh internal net, then swap
        // in the dual over the inverted inputs and restore polarity on
        // the original net.
        let inner_net = self.add_net(format!("{}_dmz", self.nets[y.index()].name));
        self.nets[y.index()].driver = None;
        self.nets[inner_net.index()].driver = Some(NetDriver::Gate(gate));
        self.gates[gate.index()].output = inner_net;
        self.replace_gate(gate, dual, &input_nets)?;
        let output_inv = self.add_gate_driving(CellKind::Inv, &[inner_net], y)?;

        self.invalidate_structure_caches();
        Ok(DeMorganEdit {
            input_invs,
            input_nets,
            inner_net,
            output_inv,
        })
    }

    /// Gates in a valid topological (fanin-before-fanout) order.
    ///
    /// The result is memoized: repeated calls between mutations return a
    /// clone of the cached order instead of re-running the graph walk
    /// (STA construction, evaluation and level queries all start here).
    /// Every structural mutation — adding gates or inputs, netlist
    /// surgery — invalidates the cache, so a stale order is impossible.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the circuit is
    /// cyclic, or [`NetlistError::UndefinedNet`] if some gate input net has
    /// no driver.
    pub fn topo_order(&self) -> Result<Vec<GateId>, NetlistError> {
        self.topo_cache
            .get_or_init(|| self.compute_topo_order())
            .clone()
    }

    fn compute_topo_order(&self) -> Result<Vec<GateId>, NetlistError> {
        // Kahn's algorithm over gates; a gate becomes ready once all of its
        // input nets are resolved (primary inputs start resolved).
        let mut unresolved: Vec<usize> = self
            .gates
            .iter()
            .map(|g| {
                g.inputs
                    .iter()
                    .filter(|&&n| {
                        !matches!(self.nets[n.index()].driver, Some(NetDriver::PrimaryInput))
                    })
                    .count()
            })
            .collect();
        for gate in &self.gates {
            for &n in &gate.inputs {
                if self.nets[n.index()].driver.is_none() {
                    return Err(NetlistError::UndefinedNet(
                        self.nets[n.index()].name.clone(),
                    ));
                }
            }
        }
        let mut ready: Vec<GateId> = self
            .gate_ids()
            .filter(|&g| unresolved[g.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.gates.len());
        while let Some(gid) = ready.pop() {
            order.push(gid);
            let out = self.gates[gid.index()].output;
            for &(load, _) in &self.nets[out.index()].loads {
                unresolved[load.index()] -= 1;
                if unresolved[load.index()] == 0 {
                    ready.push(load);
                }
            }
        }
        if order.len() != self.gates.len() {
            return Err(NetlistError::CombinationalCycle);
        }
        Ok(order)
    }

    /// Logic level of every gate: 1 + max level over fanin gates
    /// (primary inputs are level 0).
    ///
    /// Memoized and invalidated together with [`Circuit::topo_order`].
    ///
    /// # Errors
    ///
    /// Propagates [`Circuit::topo_order`] errors.
    pub fn logic_levels(&self) -> Result<Vec<usize>, NetlistError> {
        self.levels_cache
            .get_or_init(|| {
                let order = self.topo_order()?;
                let mut level = vec![0usize; self.gates.len()];
                for gid in order {
                    let mut lvl = 1;
                    for &n in self.gates[gid.index()].inputs() {
                        if let Some(NetDriver::Gate(src)) = self.nets[n.index()].driver {
                            lvl = lvl.max(level[src.index()] + 1);
                        }
                    }
                    level[gid.index()] = lvl;
                }
                Ok(level)
            })
            .clone()
    }

    /// Depth of the circuit in gate levels (0 for an empty circuit).
    ///
    /// # Errors
    ///
    /// Propagates [`Circuit::topo_order`] errors.
    pub fn depth(&self) -> Result<usize, NetlistError> {
        Ok(self.logic_levels()?.into_iter().max().unwrap_or(0))
    }

    /// Evaluate the circuit on the given primary-input assignment and
    /// return the value of every *named output* net.
    ///
    /// # Errors
    ///
    /// [`NetlistError::MissingInputValue`] if an input has no value,
    /// plus any [`Circuit::topo_order`] error.
    pub fn evaluate(
        &self,
        input_values: &HashMap<&str, bool>,
    ) -> Result<HashMap<String, bool>, NetlistError> {
        let values = self.evaluate_all(input_values)?;
        Ok(self
            .outputs
            .iter()
            .map(|&n| (self.nets[n.index()].name.clone(), values[n.index()]))
            .collect())
    }

    /// Evaluate the circuit and return the value of *every* net, indexed by
    /// [`NetId::index`].
    ///
    /// # Errors
    ///
    /// As [`Circuit::evaluate`].
    pub fn evaluate_all(
        &self,
        input_values: &HashMap<&str, bool>,
    ) -> Result<Vec<bool>, NetlistError> {
        let order = self.topo_order()?;
        let mut values = vec![false; self.nets.len()];
        for &n in &self.inputs {
            let name = self.nets[n.index()].name.as_str();
            match input_values.get(name) {
                Some(&v) => values[n.index()] = v,
                None => return Err(NetlistError::MissingInputValue(name.to_string())),
            }
        }
        let mut buf = Vec::with_capacity(4);
        for gid in order {
            let gate = &self.gates[gid.index()];
            buf.clear();
            buf.extend(gate.inputs.iter().map(|&n| values[n.index()]));
            values[gate.output.index()] = gate.kind.evaluate(&buf);
        }
        Ok(values)
    }

    /// Structural sanity check: every output reachable, every net driven,
    /// acyclic. Builders call this before handing circuits to timing.
    ///
    /// # Errors
    ///
    /// The first violation found, as a [`NetlistError`].
    pub fn validate(&self) -> Result<(), NetlistError> {
        for net in &self.nets {
            if net.driver.is_none() && (net.is_output || !net.loads.is_empty()) {
                return Err(NetlistError::UndefinedNet(net.name.clone()));
            }
        }
        self.topo_order()?;
        Ok(())
    }

    /// Total number of gate input pins (a cheap size proxy used in reports).
    pub fn pin_count(&self) -> usize {
        self.gates.iter().map(|g| g.inputs.len()).sum()
    }

    /// Histogram of cell kinds used.
    pub fn cell_histogram(&self) -> HashMap<CellKind, usize> {
        let mut h = HashMap::new();
        for g in &self.gates {
            *h.entry(g.kind).or_insert(0) += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn and_of_two() -> (Circuit, NetId) {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let n = c.add_gate(CellKind::Nand2, &[a, b], "n").unwrap();
        let y = c.add_gate(CellKind::Inv, &[n], "y").unwrap();
        c.mark_output(y);
        (c, y)
    }

    #[test]
    fn build_and_evaluate() {
        let (c, _) = and_of_two();
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = c
                .evaluate(&[("a", a), ("b", b)].into_iter().collect())
                .unwrap();
            assert_eq!(out["y"], a && b);
        }
    }

    #[test]
    fn topo_order_is_fanin_first() {
        let (c, _) = and_of_two();
        let order = c.topo_order().unwrap();
        let pos: HashMap<GateId, usize> = order.iter().enumerate().map(|(i, &g)| (g, i)).collect();
        for gid in c.gate_ids() {
            for &n in c.gate(gid).inputs() {
                if let Some(NetDriver::Gate(src)) = c.net(n).driver() {
                    assert!(pos[&src] < pos[&gid]);
                }
            }
        }
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let err = c.add_gate(CellKind::Nand2, &[a], "n").unwrap_err();
        assert!(matches!(err, NetlistError::ArityMismatch { .. }));
    }

    #[test]
    fn double_drive_is_rejected() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let n = c.add_gate(CellKind::Inv, &[a], "n").unwrap();
        let err = c.add_gate_driving(CellKind::Inv, &[a], n).unwrap_err();
        assert!(matches!(err, NetlistError::MultipleDrivers(_)));
    }

    #[test]
    fn undriven_loaded_net_fails_validation() {
        let mut c = Circuit::new("t");
        let ghost = c.add_net("ghost");
        let _ = c.add_gate(CellKind::Inv, &[ghost], "y").unwrap();
        assert!(matches!(
            c.validate(),
            Err(NetlistError::UndefinedNet(name)) if name == "ghost"
        ));
    }

    #[test]
    fn net_name_collision_gets_suffixed() {
        let mut c = Circuit::new("t");
        let a = c.add_net("x");
        let b = c.add_net("x");
        assert_ne!(a, b);
        assert_eq!(c.net(a).name(), "x");
        assert_eq!(c.net(b).name(), "x_1");
    }

    #[test]
    fn levels_and_depth() {
        let (c, _) = and_of_two();
        let levels = c.logic_levels().unwrap();
        assert_eq!(levels.iter().max(), Some(&2));
        assert_eq!(c.depth().unwrap(), 2);
    }

    #[test]
    fn fanout_counts_pins() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let _x = c.add_gate(CellKind::Inv, &[a], "x").unwrap();
        let _y = c.add_gate(CellKind::Inv, &[a], "y").unwrap();
        let _z = c.add_gate(CellKind::Nand2, &[a, a], "z").unwrap();
        // 'a' drives inv, inv and both pins of the nand: 4 pins.
        assert_eq!(c.net(a).fanout(), 4);
    }

    #[test]
    fn missing_input_value_is_reported() {
        let (c, _) = and_of_two();
        let err = c
            .evaluate(&[("a", true)].into_iter().collect())
            .unwrap_err();
        assert!(matches!(err, NetlistError::MissingInputValue(n) if n == "b"));
    }

    #[test]
    fn histogram_counts_cells() {
        let (c, _) = and_of_two();
        let h = c.cell_histogram();
        assert_eq!(h[&CellKind::Nand2], 1);
        assert_eq!(h[&CellKind::Inv], 1);
    }

    #[test]
    fn mark_output_is_idempotent() {
        let (mut c, y) = and_of_two();
        c.mark_output(y);
        c.mark_output(y);
        assert_eq!(c.primary_outputs().len(), 1);
    }

    /// A net with a driver, three inverter loads and PO status — the
    /// shared fixture for the surgery tests.
    fn fanout_tree() -> (Circuit, NetId, Vec<GateId>) {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let n = c.add_gate(CellKind::Inv, &[a], "n").unwrap();
        let mut loads = Vec::new();
        for i in 0..3 {
            let y = c.add_gate(CellKind::Inv, &[n], format!("y{i}")).unwrap();
            loads.push(c.driver_gate(y).unwrap());
            c.mark_output(y);
        }
        c.mark_output(n);
        (c, n, loads)
    }

    #[test]
    fn split_net_moves_exactly_the_named_pins() {
        let (mut c, n, loads) = fanout_tree();
        let moved = [(loads[1], 0), (loads[2], 0)];
        let new = c.split_net(n, &moved).unwrap();
        assert_eq!(c.net(n).loads(), &[(loads[0], 0)]);
        assert_eq!(c.net(new).loads(), &moved);
        assert!(c.net(new).driver().is_none());
        assert_eq!(c.gate(loads[1]).inputs(), &[new]);
        // PO status stays on the original net.
        assert!(c.net(n).is_output());
        assert!(!c.net(new).is_output());
    }

    #[test]
    fn split_net_rejects_bogus_pins() {
        let (mut c, n, loads) = fanout_tree();
        assert!(matches!(
            c.split_net(n, &[]),
            Err(NetlistError::UnsupportedEdit(_))
        ));
        assert!(matches!(
            c.split_net(n, &[(loads[0], 7)]),
            Err(NetlistError::UnsupportedEdit(_))
        ));
        assert!(matches!(
            c.split_net(n, &[(loads[0], 0), (loads[0], 0)]),
            Err(NetlistError::UnsupportedEdit(_))
        ));
    }

    #[test]
    fn insert_buffer_preserves_logic_and_relieves_the_net() {
        let (mut c, n, loads) = fanout_tree();
        let before = c.evaluate(&[("a", true)].into_iter().collect()).unwrap();
        let ins = c.insert_buffer(n, &[(loads[0], 0), (loads[1], 0)]).unwrap();
        c.validate().unwrap();
        // The net now drives one remaining load + the first inverter.
        assert_eq!(c.net(n).fanout(), 2);
        assert_eq!(c.net(ins.out_net).fanout(), 2);
        assert_eq!(c.gate(ins.first).kind(), CellKind::Inv);
        assert_eq!(c.gate(ins.second).kind(), CellKind::Inv);
        let after = c.evaluate(&[("a", true)].into_iter().collect()).unwrap();
        assert_eq!(before, after, "buffering must not change any output");
    }

    #[test]
    fn insert_buffer_requires_a_driven_net() {
        let mut c = Circuit::new("t");
        let ghost = c.add_net("ghost");
        let y = c.add_gate(CellKind::Inv, &[ghost], "y").unwrap();
        let g = c.driver_gate(y).unwrap();
        assert!(matches!(
            c.insert_buffer(ghost, &[(g, 0)]),
            Err(NetlistError::UndefinedNet(_))
        ));
    }

    #[test]
    fn replace_gate_rewires_pin_loads() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let d = c.add_input("d");
        let y = c.add_gate(CellKind::Nand2, &[a, b], "y").unwrap();
        let g = c.driver_gate(y).unwrap();
        c.replace_gate(g, CellKind::Nor2, &[a, d]).unwrap();
        assert_eq!(c.gate(g).kind(), CellKind::Nor2);
        assert_eq!(c.gate(g).inputs(), &[a, d]);
        assert_eq!(c.net(b).fanout(), 0);
        assert_eq!(c.net(d).loads(), &[(g, 1)]);
        c.validate().unwrap();
    }

    #[test]
    fn replace_gate_rejects_cycles_and_undriven_inputs_up_front() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let x = c.add_gate(CellKind::Inv, &[a], "x").unwrap();
        let y = c.add_gate(CellKind::Inv, &[x], "y").unwrap();
        let z = c.add_gate(CellKind::Inv, &[y], "z").unwrap();
        c.mark_output(z);
        let gx = c.driver_gate(x).unwrap();
        // Rewiring x's driver to read its own transitive fanout (z)
        // would close a cycle: rejected before any mutation.
        assert!(matches!(
            c.replace_gate(gx, CellKind::Inv, &[z]),
            Err(NetlistError::CombinationalCycle)
        ));
        // Undriven inputs are rejected too (surgery runs on complete
        // circuits, unlike construction-time add_gate).
        let ghost = c.add_net("ghost");
        assert!(matches!(
            c.replace_gate(gx, CellKind::Inv, &[ghost]),
            Err(NetlistError::UndefinedNet(_))
        ));
        // Nothing was mutated by the failed attempts.
        assert_eq!(c.gate(gx).inputs(), &[a]);
        c.validate().unwrap();
        // A legal rewiring still works.
        c.replace_gate(gx, CellKind::Buf, &[a]).unwrap();
        assert_eq!(c.gate(gx).kind(), CellKind::Buf);
        c.validate().unwrap();
    }

    #[test]
    fn replace_gate_rejects_arity_mismatch() {
        let (mut c, _, loads) = fanout_tree();
        let a = c.primary_inputs()[0];
        assert!(matches!(
            c.replace_gate(loads[0], CellKind::Nand3, &[a]),
            Err(NetlistError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn demorgan_preserves_the_truth_table() {
        for kind in [CellKind::Nor2, CellKind::Nand3, CellKind::Nor4] {
            let n = kind.num_inputs();
            let mut c = Circuit::new("t");
            let ins: Vec<NetId> = (0..n).map(|i| c.add_input(format!("i{i}"))).collect();
            let y = c.add_gate(kind, &ins, "y").unwrap();
            let g = c.driver_gate(y).unwrap();
            c.mark_output(y);
            let mut dual = c.clone();
            let edit = dual.demorgan_gate(g).unwrap();
            dual.validate().unwrap();
            assert_eq!(dual.gate(g).kind(), kind.demorgan_dual().unwrap());
            assert_eq!(edit.input_invs.len(), n);
            for pattern in 0..(1u32 << n) {
                let names: Vec<String> = (0..n).map(|i| format!("i{i}")).collect();
                let values: HashMap<&str, bool> = names
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (s.as_str(), pattern >> i & 1 == 1))
                    .collect();
                assert_eq!(
                    c.evaluate(&values).unwrap()["y"],
                    dual.evaluate(&values).unwrap()["y"],
                    "{kind} pattern {pattern:b}"
                );
            }
        }
    }

    #[test]
    fn demorgan_rejects_cells_without_a_dual() {
        let (mut c, _, loads) = fanout_tree();
        assert!(matches!(
            c.demorgan_gate(loads[0]),
            Err(NetlistError::UnsupportedEdit(_))
        ));
    }

    #[test]
    fn demorgan_keeps_the_output_net_and_its_loads() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let y = c.add_gate(CellKind::Nor2, &[a, b], "y").unwrap();
        let g = c.driver_gate(y).unwrap();
        let z = c.add_gate(CellKind::Inv, &[y], "z").unwrap();
        c.mark_output(z);
        c.mark_output(y);
        let edit = c.demorgan_gate(g).unwrap();
        assert_eq!(c.driver_gate(y), Some(edit.output_inv));
        assert!(c.net(y).is_output());
        assert_eq!(c.net(y).fanout(), 1, "downstream load untouched");
        assert_eq!(c.driver_gate(edit.inner_net), Some(g));
        c.validate().unwrap();
    }

    #[test]
    fn topo_and_level_caches_survive_reads_and_reset_on_surgery() {
        let (mut c, n, loads) = fanout_tree();
        // Warm both caches, twice (second call must hit the cache).
        let t1 = c.topo_order().unwrap();
        let t2 = c.topo_order().unwrap();
        assert_eq!(t1, t2);
        let l1 = c.logic_levels().unwrap();
        assert_eq!(l1, c.logic_levels().unwrap());

        // Every surgery primitive must refresh them.
        c.insert_buffer(n, &[(loads[0], 0)]).unwrap();
        let t3 = c.topo_order().unwrap();
        assert_eq!(t3.len(), c.gate_count(), "stale topo after insert_buffer");
        assert_eq!(c.logic_levels().unwrap().len(), c.gate_count());

        let g = c.driver_gate(n).unwrap();
        c.demorgan_gate(loads[1]).ok();
        let a = c.primary_inputs()[0];
        c.replace_gate(g, CellKind::Inv, &[a]).unwrap();
        let t4 = c.topo_order().unwrap();
        assert_eq!(t4.len(), c.gate_count(), "stale topo after replace_gate");

        // The cached order stays a valid fanin-first order.
        let pos: HashMap<GateId, usize> = t4.iter().enumerate().map(|(i, &g)| (g, i)).collect();
        for gid in c.gate_ids() {
            for &net in c.gate(gid).inputs() {
                if let Some(NetDriver::Gate(src)) = c.net(net).driver() {
                    assert!(pos[&src] < pos[&gid]);
                }
            }
        }
    }
}
